"""Gate-level BIST session execution and signatures."""

import pytest

from repro.bist.gatesim import MachineFault, SequentialGateSimulator
from repro.bist.session import BISTSession
from repro.core.bibs import make_bibs_testable
from repro.datapath.compiler import Add, Mul, Var, compile_datapath
from repro.errors import SimulationError
from repro.graph.build import build_circuit_graph
from repro.rtl.simulate import RTLSimulator


@pytest.fixture(scope="module")
def tiny():
    a, b = Var("a"), Var("b")
    compiled = compile_datapath([("o", Add(Mul(a, b), a))], "tiny", width=3)
    circuit = compiled.circuit
    design = make_bibs_testable(build_circuit_graph(circuit))
    return circuit, design.kernels[0]


# --------------------------------------------------------------- simulator

def test_gate_simulator_matches_word_simulator(tiny):
    circuit, _ = tiny
    gate_sim = SequentialGateSimulator(circuit)
    word_sim = RTLSimulator(circuit)
    import random

    rng = random.Random(5)
    vectors = [
        {"a": rng.randrange(8), "b": rng.randrange(8)} for _ in range(12)
    ]
    gate_trace = gate_sim.run(len(vectors), lambda t: vectors[t])
    word_trace = word_sim.run(vectors)
    for g, w in zip(gate_trace, word_trace):
        assert g == w


def test_machine_fault_isolation(tiny):
    """A fault in machine 1 must never leak into machine 0."""
    circuit, kernel = tiny
    simulator = SequentialGateSimulator(circuit)
    target = simulator.register_in_bits["R_A1"][0]
    clean = simulator.run(6, lambda t: {"a": 5, "b": 3})
    dual = simulator.run(
        6, lambda t: {"a": 5, "b": 3}, machines=2,
        faults=[MachineFault(1, target, 1)],
    )
    assert clean == dual  # trace reports machine 0 only


def test_fault_on_unknown_machine_rejected(tiny):
    circuit, _ = tiny
    simulator = SequentialGateSimulator(circuit)
    with pytest.raises(SimulationError):
        simulator.run(
            1, lambda t: {"a": 0, "b": 0}, machines=2,
            faults=[MachineFault(5, 0, 1)],
        )


# ------------------------------------------------------------------ session

def test_session_universe_excludes_dead_and_pi_logic(tiny):
    circuit, kernel = tiny
    session = BISTSession(circuit, kernel)
    full = session.fault_universe()
    cone = session.kernel_fault_universe()
    assert 0 < len(cone) < len(full)


def test_session_detects_most_cone_faults(tiny):
    circuit, kernel = tiny
    session = BISTSession(circuit, kernel)
    faults = session.kernel_fault_universe()
    result = session.run(cycles=session.tpg.test_time() + 6, faults=faults)
    assert result.coverage > 0.85
    assert result.golden_signatures  # one per SA register
    assert set(result.golden_signatures) == set(kernel.sa_registers)


def test_session_signature_determinism(tiny):
    circuit, kernel = tiny
    session = BISTSession(circuit, kernel)
    first = session.run(cycles=40)
    second = session.run(cycles=40)
    assert first.golden_signatures == second.golden_signatures


def test_fault_free_fault_list_gives_no_detections(tiny):
    circuit, kernel = tiny
    session = BISTSession(circuit, kernel)
    result = session.run(cycles=30, faults=[])
    assert result.detected == [] and result.undetected == []
    assert result.coverage == 1.0


def test_aliasing_rate_is_small(tiny):
    """With the decoupled MISR polynomial, aliasing sits near 2^-w."""
    circuit, kernel = tiny
    session = BISTSession(circuit, kernel)
    faults = session.kernel_fault_universe()
    aliased, observable = session.aliasing_study(70, faults)
    assert observable > 50
    assert aliased / observable < 0.2  # 3-bit MISR: expectation 12.5%


def test_machines_chunking_consistency(tiny):
    """Results are identical whatever the machines-per-pass chunking."""
    circuit, kernel = tiny
    session = BISTSession(circuit, kernel)
    faults = session.kernel_fault_universe()[:40]
    a = session.run(cycles=50, faults=faults, machines_per_pass=8)
    b = session.run(cycles=50, faults=faults, machines_per_pass=64)
    assert a.golden_signatures == b.golden_signatures
    assert {f for f in a.detected} == {f for f in b.detected}

"""PODEM ATPG: test generation and redundancy identification."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.atpg.podem import PodemStatus, classify_faults, podem
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.faults import Fault, full_fault_universe
from repro.faultsim.simulator import FaultSimulator
from repro.netlist.builders import ripple_adder
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist

from tests.conftest import make_random_netlist


def redundant_or_circuit():
    """y = a OR (a AND b): t/0 is a classic redundant fault."""
    netlist = Netlist()
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    t = netlist.add_gate(GateType.AND, [a, b], name="t")
    y = netlist.add_gate(GateType.OR, [a, t], name="y")
    netlist.mark_output(y)
    return netlist, t


def test_podem_finds_tests_on_tiny(tiny):
    simulator = FaultSimulator(tiny)
    faults, _ = collapse_faults(tiny)
    for fault in faults:
        result = podem(tiny, fault)
        assert result.status is PodemStatus.DETECTED
        pattern = [result.test[n] for n in tiny.primary_inputs]
        assert simulator.detects(fault, pattern)


def test_podem_proves_redundancy():
    netlist, t = redundant_or_circuit()
    result = podem(netlist, Fault(t, 0))
    assert result.status is PodemStatus.REDUNDANT


def test_podem_detectable_in_redundant_circuit():
    netlist, t = redundant_or_circuit()
    result = podem(netlist, Fault(t, 1))
    assert result.status is PodemStatus.DETECTED


def test_classify_faults_splits_correctly():
    netlist, t = redundant_or_circuit()
    faults = full_fault_universe(netlist)
    redundant, tests, aborted = classify_faults(netlist, faults)
    assert Fault(t, 0) in redundant
    assert not aborted
    simulator = FaultSimulator(netlist)
    for fault, test in tests.items():
        pattern = [test[n] for n in netlist.primary_inputs]
        assert simulator.detects(fault, pattern)


@given(st.integers(0, 40))
@settings(max_examples=10, deadline=None)
def test_podem_agrees_with_exhaustive_search(seed):
    """Property: PODEM says REDUNDANT iff no input pattern detects the fault."""
    netlist = make_random_netlist(4, 10, seed=seed)
    simulator = FaultSimulator(netlist)
    faults, _ = collapse_faults(netlist)
    patterns = list(itertools.product((0, 1), repeat=4))
    for fault in faults[::4]:
        truly_detectable = any(simulator.detects(fault, p) for p in patterns)
        result = podem(netlist, fault, max_backtracks=10_000)
        if result.status is PodemStatus.DETECTED:
            assert truly_detectable
            pattern = [result.test[n] for n in netlist.primary_inputs]
            assert simulator.detects(fault, pattern)
        elif result.status is PodemStatus.REDUNDANT:
            assert not truly_detectable


def test_podem_on_adder_carry_chain():
    """Every collapsed fault of a 4-bit adder is detectable; PODEM finds all."""
    netlist = Netlist()
    a = netlist.new_inputs(4, prefix="a")
    b = netlist.new_inputs(4, prefix="b")
    for net in ripple_adder(netlist, a, b):
        netlist.mark_output(net)
    faults, _ = collapse_faults(netlist)
    simulator = FaultSimulator(netlist)
    for fault in faults:
        result = podem(netlist, fault)
        assert result.status is PodemStatus.DETECTED, fault.describe(netlist)
        pattern = [result.test[n] for n in netlist.primary_inputs]
        assert simulator.detects(fault, pattern)


def test_pin_fault_podem():
    netlist = Netlist()
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    g1 = netlist.add_gate(GateType.AND, [a, b], name="g1")
    g2 = netlist.add_gate(GateType.OR, [a, b], name="g2")
    netlist.mark_output(g1)
    netlist.mark_output(g2)
    pin_fault = Fault(a, 1, gate_index=0, pin=0)
    result = podem(netlist, pin_fault)
    assert result.status is PodemStatus.DETECTED
    simulator = FaultSimulator(netlist)
    pattern = [result.test[n] for n in netlist.primary_inputs]
    assert simulator.detects(pin_fault, pattern)

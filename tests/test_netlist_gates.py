"""Gate primitive semantics."""

import itertools

import pytest

from repro.errors import NetlistError
from repro.netlist.gates import (
    CONTROLLED_OUTPUT,
    CONTROLLING_VALUE,
    GateType,
    evaluate_gate,
    validate_fanin,
)


def bits(values):
    """Pack a list of single-bit patterns into parallel ints (1 per input)."""
    return values


REFERENCE = {
    GateType.AND: lambda vs: int(all(vs)),
    GateType.NAND: lambda vs: int(not all(vs)),
    GateType.OR: lambda vs: int(any(vs)),
    GateType.NOR: lambda vs: int(not any(vs)),
    GateType.XOR: lambda vs: sum(vs) % 2,
    GateType.XNOR: lambda vs: 1 - sum(vs) % 2,
}


@pytest.mark.parametrize("gtype", list(REFERENCE))
@pytest.mark.parametrize("fanin", [2, 3, 4])
def test_truth_tables(gtype, fanin):
    for combo in itertools.product((0, 1), repeat=fanin):
        assert evaluate_gate(gtype, list(combo), 1) == REFERENCE[gtype](combo)


def test_not_and_buf():
    assert evaluate_gate(GateType.NOT, [0], 1) == 1
    assert evaluate_gate(GateType.NOT, [1], 1) == 0
    assert evaluate_gate(GateType.BUF, [0], 1) == 0
    assert evaluate_gate(GateType.BUF, [1], 1) == 1


def test_constants():
    assert evaluate_gate(GateType.CONST0, [], 0b1111) == 0
    assert evaluate_gate(GateType.CONST1, [], 0b1111) == 0b1111


def test_packed_evaluation_is_bitwise():
    # 4 patterns at once: AND of 1100 and 1010 is 1000.
    assert evaluate_gate(GateType.AND, [0b1100, 0b1010], 0b1111) == 0b1000
    assert evaluate_gate(GateType.NOR, [0b1100, 0b1010], 0b1111) == 0b0001
    assert evaluate_gate(GateType.XNOR, [0b1100, 0b1010], 0b1111) == 0b1001


def test_inverting_respects_mask():
    # Inversion must not leak bits above the mask.
    out = evaluate_gate(GateType.NAND, [0b11, 0b01], 0b11)
    assert out == 0b10


def test_base_and_inverting_metadata():
    assert GateType.NAND.base is GateType.AND
    assert GateType.NAND.is_inverting
    assert not GateType.AND.is_inverting
    assert GateType.NOT.base is GateType.BUF
    assert GateType.XNOR.base is GateType.XOR


def test_controlling_values():
    assert CONTROLLING_VALUE[GateType.AND] == 0
    assert CONTROLLING_VALUE[GateType.OR] == 1
    assert CONTROLLED_OUTPUT[GateType.NAND] == 1
    assert CONTROLLED_OUTPUT[GateType.NOR] == 0
    assert GateType.XOR not in CONTROLLING_VALUE


@pytest.mark.parametrize(
    "gtype,bad_fanin",
    [
        (GateType.AND, 1),
        (GateType.OR, 0),
        (GateType.NOT, 2),
        (GateType.BUF, 0),
        (GateType.CONST0, 1),
        (GateType.XOR, 1),
    ],
)
def test_validate_fanin_rejects(gtype, bad_fanin):
    with pytest.raises(NetlistError):
        validate_fanin(gtype, bad_fanin)


@pytest.mark.parametrize(
    "gtype,good_fanin",
    [
        (GateType.AND, 2),
        (GateType.AND, 5),
        (GateType.NOT, 1),
        (GateType.CONST1, 0),
        (GateType.XNOR, 3),
    ],
)
def test_validate_fanin_accepts(gtype, good_fanin):
    validate_fanin(gtype, good_fanin)  # must not raise

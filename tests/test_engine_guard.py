"""Engine integration tests for :mod:`repro.guard`.

The contract under test (see ``docs/ROBUSTNESS.md``): a tripped budget or
cancel token stops a run cleanly at a shard-round boundary with a
``partial=True`` result and a structured ``stop_reason`` — never an
exception — the checkpoint journal survives, and ``resume=True`` later
completes the run bit-identically to one that was never interrupted.  The
``sigterm`` / ``oom`` chaos modes make cancellation and memory pressure
deterministic, so every path here is reproducible in CI.
"""

from __future__ import annotations

from typing import Optional

import pytest

from repro import telemetry
from repro.engine import FaultInjector, simulate
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.patterns import RandomPatternSource
from repro.guard import (
    STOP_CANCELLED,
    STOP_DEADLINE,
    STOP_MEMORY,
    STOP_PATTERNS,
    STOP_SIGTERM,
    Budget,
    CancelToken,
)
from tests.conftest import make_random_netlist
from tests.test_engine import JOBS, assert_identical

try:  # pragma: no cover - optional in minimal environments
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

MAX_PATTERNS = 1 << 9
BATCH = 128


def _run(netlist, faults, *, jobs: Optional[int] = None,
         max_patterns: int = MAX_PATTERNS, **options):
    source = RandomPatternSource(len(netlist.primary_inputs), seed=11)
    # One batch per round keeps round boundaries at BATCH-pattern strides,
    # so budget cuts land mid-run rather than beyond it.
    options.setdefault("chunk_batches", 1)
    return simulate(
        netlist, faults, source,
        max_patterns=max_patterns, jobs=jobs, batch_width=BATCH,
        stop_when_complete=False, drop_detected=False,
        **options,
    )


@pytest.fixture(scope="module")
def circuit():
    netlist = make_random_netlist(10, 90, seed=21)
    faults, _ = collapse_faults(netlist)
    return netlist, faults[::3]


# ---------------------------------------------------------------- deadlines


@pytest.mark.parametrize("jobs", [None, JOBS], ids=["serial", "parallel"])
def test_zero_deadline_stops_immediately(circuit, jobs):
    netlist, faults = circuit
    result = _run(netlist, faults, jobs=jobs, budget=Budget(deadline=0))
    assert result.partial
    assert result.stop_reason == STOP_DEADLINE
    assert result.n_patterns == 0
    assert not result.first_detection
    assert {s.stop_reason for s in result.shards} == {STOP_DEADLINE}
    payload = result.to_json()
    assert payload["partial"] is True
    assert payload["stop_reason"] == STOP_DEADLINE


@pytest.mark.parametrize("jobs", [None, JOBS], ids=["serial", "parallel"])
def test_generous_deadline_changes_nothing(circuit, jobs):
    netlist, faults = circuit
    reference = _run(netlist, faults, jobs=jobs)
    guarded = _run(netlist, faults, jobs=jobs, budget=Budget(deadline=3600))
    assert not guarded.partial
    assert guarded.stop_reason is None
    assert_identical(reference, guarded)


# ------------------------------------------------------------- pattern caps


@pytest.mark.parametrize("jobs", [None, JOBS], ids=["serial", "parallel"])
def test_pattern_budget_stops_at_round_boundary(circuit, jobs):
    netlist, faults = circuit
    cap = MAX_PATTERNS // 2
    result = _run(netlist, faults, jobs=jobs,
                  budget=Budget(max_patterns=cap))
    assert result.partial
    assert result.stop_reason == STOP_PATTERNS
    assert result.n_patterns == cap
    # The truncated run is an exact prefix of the full run.
    full = _run(netlist, faults, jobs=jobs)
    prefix = {f: i for f, i in full.first_detection.items() if i < cap}
    assert result.first_detection == prefix
    assert result.coverage() <= full.coverage()


def test_pattern_budget_cut_resumes_bit_identically(circuit, tmp_path):
    netlist, faults = circuit
    reference = _run(netlist, faults, jobs=JOBS)
    cut = _run(netlist, faults, jobs=JOBS,
               budget=Budget(max_patterns=MAX_PATTERNS // 2),
               checkpoint_dir=tmp_path)
    assert cut.partial
    # The budget is deliberately not part of the journal key: the same
    # run resumed *without* it completes from the cut point.
    resumed = _run(netlist, faults, jobs=JOBS,
                   checkpoint_dir=tmp_path, resume=True)
    assert not resumed.partial
    assert resumed.rounds_resumed > 0
    assert_identical(reference, resumed)


# ------------------------------------------------------------- cancellation


@pytest.mark.parametrize("jobs", [None, JOBS], ids=["serial", "parallel"])
def test_pretripped_token_stops_before_work(circuit, jobs):
    netlist, faults = circuit
    token = CancelToken()
    token.trip()
    result = _run(netlist, faults, jobs=jobs, cancel=token)
    assert result.partial
    assert result.stop_reason == STOP_CANCELLED
    assert result.n_patterns == 0


def test_chaos_sigterm_partial_then_resume(circuit, tmp_path):
    netlist, faults = circuit
    reference = _run(netlist, faults, jobs=JOBS)
    cut = _run(netlist, faults, jobs=JOBS,
               chaos=FaultInjector.parse("sigterm:1"),
               checkpoint_dir=tmp_path)
    assert cut.partial
    assert cut.stop_reason == STOP_SIGTERM
    assert 0 < cut.n_patterns < MAX_PATTERNS
    assert cut.to_json()["partial"] is True
    resumed = _run(netlist, faults, jobs=JOBS,
                   checkpoint_dir=tmp_path, resume=True)
    assert not resumed.partial
    assert resumed.rounds_resumed > 0
    assert_identical(reference, resumed)


# ------------------------------------------------------------------- memory


def test_chaos_oom_ladder_degrades_but_stays_bit_identical(circuit):
    netlist, faults = circuit
    reference = _run(netlist, faults, jobs=JOBS)
    pressured = _run(netlist, faults, jobs=JOBS, chunk_batches=2,
                     chaos=FaultInjector.parse("oom:0:times=5"))
    # Chaos pressure adapts (halve, then serial) but never stops: the run
    # completes and the merged results cannot drift.
    assert not pressured.partial
    assert pressured.stop_reason is None
    assert pressured.memory_adaptations > 0
    assert pressured.degraded_shards
    assert_identical(reference, pressured)


@pytest.mark.parametrize("jobs", [None, JOBS], ids=["serial", "parallel"])
def test_tiny_rss_limit_stops_with_memory_reason(circuit, jobs):
    netlist, faults = circuit
    result = _run(netlist, faults, jobs=jobs,
                  budget=Budget(max_rss=1, max_patterns=None))
    assert result.partial
    assert result.stop_reason == STOP_MEMORY
    assert result.n_patterns < MAX_PATTERNS


def test_huge_rss_limit_changes_nothing(circuit):
    netlist, faults = circuit
    reference = _run(netlist, faults, jobs=JOBS)
    guarded = _run(netlist, faults, jobs=JOBS, budget=Budget(max_rss="1g"))
    assert not guarded.partial
    assert_identical(reference, guarded)


# ---------------------------------------------------------------- telemetry


def test_guard_stop_publishes_metrics(circuit):
    netlist, faults = circuit
    telemetry.enable()
    try:
        telemetry.get_telemetry().metrics.reset()
        result = _run(netlist, faults, jobs=JOBS,
                      budget=Budget(max_patterns=MAX_PATTERNS // 2))
        counters = telemetry.get_telemetry().metrics.snapshot()["counters"]
        assert counters.get("guard.stops") == 1
        assert counters.get(f"guard.stop.{STOP_PATTERNS}") == 1
        assert counters.get("engine.partial_runs") == 1
        assert result.partial
    finally:
        telemetry.disable()


def test_oom_adaptations_publish_metrics(circuit):
    netlist, faults = circuit
    telemetry.enable()
    try:
        telemetry.get_telemetry().metrics.reset()
        _run(netlist, faults, jobs=JOBS, chunk_batches=2,
             chaos=FaultInjector.parse("oom:0:times=5"))
        counters = telemetry.get_telemetry().metrics.snapshot()["counters"]
        assert counters.get("guard.memory_pressure", 0) > 0
        assert counters.get("guard.halve_chunk", 0) >= 1
        assert counters.get("guard.degrade_serial", 0) >= 1
        assert counters.get("guard.memory_adaptations", 0) > 0
    finally:
        telemetry.disable()


# ------------------------------------------------------- property: any cut


if HAVE_HYPOTHESIS:

    @settings(max_examples=8, deadline=None)
    @given(cut_round=st.integers(min_value=0, max_value=2))
    def test_any_cut_point_is_partial_prefix_and_resumable(cut_round, tmp_path_factory):
        netlist = make_random_netlist(8, 50, seed=5)
        faults, _ = collapse_faults(netlist)
        faults = faults[::4]
        tmp_path = tmp_path_factory.mktemp("guard-cut")
        reference = _run(netlist, faults, jobs=2)
        cut = _run(netlist, faults, jobs=2,
                   chaos=FaultInjector.parse(f"sigterm:{cut_round}"),
                   checkpoint_dir=tmp_path)
        assert cut.partial and cut.stop_reason == STOP_SIGTERM
        assert cut.n_patterns <= reference.n_patterns
        assert cut.coverage() <= reference.coverage()
        prefix = {f: i for f, i in reference.first_detection.items()
                  if i < cut.n_patterns}
        assert cut.first_detection == prefix
        resumed = _run(netlist, faults, jobs=2,
                       checkpoint_dir=tmp_path, resume=True)
        assert not resumed.partial
        assert_identical(reference, resumed)

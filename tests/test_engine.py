"""Engine equivalence suite: parallel == serial, bit for bit.

The contract of :func:`repro.engine.simulate` is that ``jobs=N`` is purely
an execution strategy — the ``first_detection`` map, pattern count and the
entire coverage curve must be identical to the serial run on every circuit.
The suite exercises the paper's bundled circuits (figure4, figure9 and the
c3a2m data path kernel) plus random netlists across the stop/drop
semantics, and unit-tests the golden-run cache and instrumentation.
"""

from __future__ import annotations

import os

import pytest

from repro.core.bibs import make_bibs_testable
from repro.core.flow import lower_kernel_to_netlist
from repro.engine import EngineResult, GoldenCache, simulate
from repro.errors import SimulationError
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.coverage import coverage_curve
from repro.faultsim.patterns import RandomPatternSource, SequencePatternSource
from repro.faultsim.simulator import FaultSimulator
from repro.graph.build import build_circuit_graph
from repro.netlist.gates import GateType
from tests.conftest import make_random_netlist

# CI runs the suite a second time at jobs=2 via this knob; any worker
# count must reproduce the serial results exactly.
JOBS = int(os.environ.get("REPRO_ENGINE_JOBS", "4"))


def attach_generic_expanders(circuit) -> None:
    """Give structural blocks (figure4/figure9 carry none) a deterministic
    gate-level behaviour: each output bit is XOR(AND(a, b), c) over a
    rotating selection of input bits, so every block mixes its inputs and
    the lowered kernels have a non-trivial fault population."""

    def make_expander(out_widths):
        def expander(netlist, inputs, prefix):
            flat = [bit for group in inputs for bit in group]
            outputs = []
            for position, width in enumerate(out_widths):
                bits = []
                for i in range(width):
                    a = flat[(position + i) % len(flat)]
                    b = flat[(position + 2 * i + 1) % len(flat)]
                    c = flat[(3 * position + i + 2) % len(flat)]
                    conj = netlist.add_gate(
                        GateType.AND, [a, b], name=f"{prefix}_a{position}_{i}"
                    )
                    bits.append(netlist.add_gate(
                        GateType.XOR, [conj, c], name=f"{prefix}_x{position}_{i}"
                    ))
                outputs.append(bits)
            return outputs

        return expander

    for block in circuit.blocks.values():
        if block.gate_expander is None:
            widths = [circuit.nets[n].width for n in block.output_nets]
            block.gate_expander = make_expander(widths)


def lowered_kernels(circuit):
    """All logic kernels of the circuit's BIBS design, as netlists."""
    graph = build_circuit_graph(circuit)
    design = make_bibs_testable(graph)
    return [
        lower_kernel_to_netlist(circuit, kernel)
        for kernel in design.kernels
        if kernel.logic_blocks
    ]


def figure4_netlists():
    from repro.library.figures import figure4

    circuit = figure4()
    attach_generic_expanders(circuit)
    return circuit.name, lowered_kernels(circuit)


def figure9_netlists():
    from repro.library.ka_example import figure9

    circuit = figure9()
    attach_generic_expanders(circuit)
    return circuit.name, lowered_kernels(circuit)


def c3a2m_netlists():
    from repro.datapath.filters import all_filters

    circuit = all_filters()["c3a2m"].circuit
    return circuit.name, lowered_kernels(circuit)


def assert_identical(serial, parallel):
    assert parallel.first_detection == serial.first_detection
    assert parallel.n_patterns == serial.n_patterns
    assert parallel.coverage() == serial.coverage()
    assert coverage_curve(parallel) == coverage_curve(serial)


@pytest.mark.parametrize(
    "build", [figure4_netlists, figure9_netlists, c3a2m_netlists],
    ids=["figure4", "figure9", "c3a2m"],
)
def test_parallel_matches_serial_on_bundled_circuits(build):
    name, netlists = build()
    assert netlists, f"{name}: no logic kernels"
    for netlist in netlists:
        faults, _ = collapse_faults(netlist)
        # Subsample large universes to keep the suite quick; equivalence
        # must hold for any fault list, so a slice is as probing as all.
        if len(faults) > 120:
            faults = faults[::7]
        n_inputs = len(netlist.primary_inputs)
        serial = simulate(
            netlist, faults,
            RandomPatternSource(n_inputs, seed=9),
            max_patterns=512, jobs=1, batch_width=64,
        )
        parallel = simulate(
            netlist, faults,
            RandomPatternSource(n_inputs, seed=9),
            max_patterns=512, jobs=JOBS, batch_width=64,
        )
        assert_identical(serial, parallel)


@pytest.mark.parametrize("stop", [True, False])
@pytest.mark.parametrize("drop", [True, False])
def test_parallel_matches_serial_across_semantics(stop, drop):
    netlist = make_random_netlist(5, 30, seed=4)
    faults, _ = collapse_faults(netlist)
    source = lambda: RandomPatternSource(5, seed=17)  # noqa: E731
    serial = simulate(
        netlist, faults, source(), max_patterns=96, jobs=1,
        batch_width=16, stop_when_complete=stop, drop_detected=drop,
    )
    parallel = simulate(
        netlist, faults, source(), max_patterns=96, jobs=3,
        batch_width=16, chunk_batches=2, stop_when_complete=stop,
        drop_detected=drop,
    )
    assert_identical(serial, parallel)


def test_engine_matches_legacy_simulator_run():
    """FaultSimulator.run (the old entry point) is the same computation."""
    netlist = make_random_netlist(6, 40, seed=8)
    simulator = FaultSimulator(netlist, batch_width=32)
    legacy = simulator.run(RandomPatternSource(6, seed=2), 256)
    engine = simulate(
        netlist, None, RandomPatternSource(6, seed=2),
        max_patterns=256, batch_width=32,
    )
    assert engine.first_detection == legacy.first_detection
    assert engine.n_patterns == legacy.n_patterns


def test_jobs_exceeding_faults_and_empty_fault_list():
    netlist = make_random_netlist(4, 12, seed=3)
    faults, _ = collapse_faults(netlist)
    few = faults[:2]
    serial = simulate(netlist, few, RandomPatternSource(4, seed=5),
                      max_patterns=64, jobs=1, batch_width=16)
    wide = simulate(netlist, few, RandomPatternSource(4, seed=5),
                    max_patterns=64, jobs=8, batch_width=16)
    assert_identical(serial, wide)

    empty = simulate(netlist, [], RandomPatternSource(4, seed=5),
                     max_patterns=64, jobs=4, batch_width=16)
    assert empty.first_detection == {}
    assert empty.n_patterns == 0


def test_width_mismatch_raises():
    netlist = make_random_netlist(4, 12, seed=3)
    with pytest.raises(SimulationError):
        simulate(netlist, None, RandomPatternSource(7, seed=1), max_patterns=16)


# ---------------------------------------------------------------- the cache


def test_cache_hit_miss_accounting():
    netlist = make_random_netlist(5, 25, seed=6)
    cache = GoldenCache()
    source = lambda: RandomPatternSource(5, seed=11)  # noqa: E731

    first = simulate(netlist, None, source(), max_patterns=128,
                     batch_width=32, cache=cache)
    assert first.cache_misses == 1
    assert first.cache_hits == 0

    second = simulate(netlist, None, source(), max_patterns=128,
                      batch_width=32, cache=cache)
    assert second.cache_hits == 1
    assert second.cache_misses == 0
    assert second.first_detection == first.first_detection

    # A different stream is a different entry, never a stale hit.
    other = simulate(netlist, None, RandomPatternSource(5, seed=12),
                     max_patterns=128, batch_width=32, cache=cache)
    assert other.cache_misses == 1
    counters = cache.counters()
    assert counters["hits"] == 1
    assert counters["misses"] == 2
    assert counters["batch_entries"] == 2


def test_cache_distinguishes_netlists_and_widths():
    cache = GoldenCache()
    a = make_random_netlist(4, 15, seed=1)
    b = make_random_netlist(4, 15, seed=2)
    source = lambda: RandomPatternSource(4, seed=3)  # noqa: E731
    simulate(a, None, source(), max_patterns=32, batch_width=16, cache=cache)
    simulate(b, None, source(), max_patterns=32, batch_width=16, cache=cache)
    simulate(a, None, source(), max_patterns=32, batch_width=8, cache=cache)
    assert cache.counters()["misses"] == 3
    assert cache.counters()["hits"] == 0


def test_cache_skips_unfingerprintable_sources():
    netlist = make_random_netlist(4, 15, seed=1)
    cache = GoldenCache()

    class OpaqueSource(RandomPatternSource):
        fingerprint = None  # not callable -> no stable identity

    result = simulate(netlist, None, OpaqueSource(4, seed=3),
                      max_patterns=32, batch_width=16, cache=cache)
    assert result.cache_hits == 0
    assert result.cache_misses == 0
    assert cache.counters()["batch_entries"] == 0


def test_cache_lru_bound():
    cache = GoldenCache(max_entries=2)
    for seed in range(4):
        netlist = make_random_netlist(4, 10, seed=seed)
        simulate(netlist, None, RandomPatternSource(4, seed=1),
                 max_patterns=16, batch_width=16, cache=cache)
    assert cache.counters()["batch_entries"] == 2


def test_cache_hit_miss_eviction_counts():
    """The LRU bound is enforced and observable: four distinct entries
    through a 2-entry cache evict twice; a re-read of an evicted entry is
    a miss (and a third eviction), a re-read of a live one is a hit."""
    cache = GoldenCache(max_entries=2)
    netlists = [make_random_netlist(4, 10, seed=s) for s in range(4)]
    source = lambda: RandomPatternSource(4, seed=1)  # noqa: E731
    for netlist in netlists:
        simulate(netlist, None, source(), max_patterns=16,
                 batch_width=16, cache=cache)
    counters = cache.counters()
    assert counters["misses"] == 4
    assert counters["evictions"] == 2
    assert counters["batch_entries"] == 2

    # netlists[0] was evicted -> miss + another eviction.
    simulate(netlists[0], None, source(), max_patterns=16,
             batch_width=16, cache=cache)
    assert cache.counters()["misses"] == 5
    assert cache.counters()["evictions"] == 3
    # netlists[0] is now resident -> hit, nothing evicted.
    simulate(netlists[0], None, source(), max_patterns=16,
             batch_width=16, cache=cache)
    assert cache.counters()["hits"] == 1
    assert cache.counters()["evictions"] == 3


def test_cache_memo_bound_and_evictions():
    cache = GoldenCache(max_entries=4, max_memo_entries=2)
    for i in range(5):
        cache.put(("memo", i), i)
    assert cache.counters()["memo_entries"] == 2
    assert cache.counters()["evictions"] == 3
    assert cache.get(("memo", 4)) == 4
    assert cache.get(("memo", 0)) is None  # evicted


def test_golden_batches_window_bounds_memory():
    """max_batches_per_entry keeps only a window of golden batches; evicted
    batches recompute from the (pure) stream with identical values."""
    from repro.engine import GoldenBatches
    from repro.netlist.evaluate import Evaluator

    netlist = make_random_netlist(4, 12, seed=5)
    source = RandomPatternSource(4, seed=3)
    unbounded = GoldenBatches(Evaluator(netlist), source, 16)
    reference = [dict(unbounded.golden_batch(i)) for i in range(6)]

    bounded = GoldenBatches(
        Evaluator(netlist), RandomPatternSource(4, seed=3), 16,
        max_cached_batches=2,
    )
    for index in range(6):
        assert bounded.golden_batch(index) == reference[index]
        assert bounded.n_cached_batches <= 2
    assert bounded.evictions > 0
    # Re-reading an evicted early batch restarts the stream, recomputes,
    # and still agrees bit for bit.
    assert bounded.golden_batch(0) == reference[0]
    assert bounded.recomputes == 1
    assert bounded.golden_batch(5) == reference[5]

    with pytest.raises(ValueError):
        GoldenBatches(Evaluator(netlist), source, 16, max_cached_batches=0)


def test_bounded_cache_end_to_end_matches_unbounded():
    netlist = make_random_netlist(5, 25, seed=6)
    source = lambda: RandomPatternSource(5, seed=11)  # noqa: E731
    plain = simulate(netlist, None, source(), max_patterns=128,
                     batch_width=16, cache=GoldenCache())
    bounded = simulate(netlist, None, source(), max_patterns=128,
                       batch_width=16,
                       cache=GoldenCache(max_batches_per_entry=2))
    assert bounded.first_detection == plain.first_detection
    assert bounded.n_patterns == plain.n_patterns


def test_cache_rejects_nonpositive_bound():
    with pytest.raises(ValueError):
        GoldenCache(max_entries=0)
    with pytest.raises(ValueError):
        GoldenCache(max_memo_entries=0)


# ------------------------------------------------------- instrumentation


def test_instrumentation_serial_and_parallel():
    netlist = make_random_netlist(5, 30, seed=4)
    faults, _ = collapse_faults(netlist)

    serial = simulate(netlist, faults, RandomPatternSource(5, seed=7),
                      max_patterns=64, jobs=1, batch_width=16)
    assert isinstance(serial, EngineResult)
    assert serial.jobs == 1
    assert len(serial.shards) == 1
    assert serial.shards[0].n_faults == len(faults)
    assert serial.shards[0].patterns_simulated > 0
    assert serial.events_propagated > 0
    assert serial.wall_time >= 0.0

    parallel = simulate(netlist, faults, RandomPatternSource(5, seed=7),
                        max_patterns=64, jobs=3, batch_width=16)
    assert parallel.jobs == 3
    assert len(parallel.shards) == 3
    assert sum(s.n_faults for s in parallel.shards) == len(faults)
    assert sum(s.faults_dropped for s in parallel.shards) == len(
        parallel.first_detection
    )

    payload = parallel.to_json()
    engine_block = payload["engine"]
    assert engine_block["jobs"] == 3
    assert len(engine_block["shards"]) == 3
    for shard in engine_block["shards"]:
        assert set(shard) == {
            "shard", "n_faults", "faults_dropped", "events_propagated",
            "patterns_simulated", "wall_time", "patterns_per_second",
            "retries", "timeouts", "failures", "rounds_resumed",
            "degraded_reason", "memory_adaptations", "stop_reason",
        }
        # A healthy run exercises none of the recovery machinery (unless
        # ambient chaos is injecting failures on purpose — the recovery
        # *results* are still checked above either way).
        if not os.environ.get("REPRO_CHAOS"):
            assert shard["retries"] == 0
            assert shard["timeouts"] == 0
            assert shard["failures"] == 0
            assert shard["rounds_resumed"] == 0
            assert shard["degraded_reason"] is None


def test_sequence_source_round_trip_through_engine():
    """SequencePatternSource (the session replay path) works sharded."""
    netlist = make_random_netlist(4, 20, seed=9)
    patterns = [tuple((p >> i) & 1 for i in range(4)) for p in range(16)] * 3
    serial = simulate(netlist, None, SequencePatternSource(patterns),
                      max_patterns=len(patterns), jobs=1, batch_width=16)
    parallel = simulate(netlist, None, SequencePatternSource(patterns),
                        max_patterns=len(patterns), jobs=4, batch_width=16)
    assert_identical(serial, parallel)


def test_equivalence_with_tracing_enabled():
    """The telemetry layer must never perturb results: serial == parallel
    bit-identically while spans and metrics are being recorded."""
    from repro import telemetry

    netlist = make_random_netlist(6, 40, seed=17)
    instance = telemetry.get_telemetry()
    baseline = simulate(netlist, None, RandomPatternSource(6, seed=9),
                        max_patterns=128, jobs=1, batch_width=16)
    instance.reset()
    instance.enable()
    try:
        serial = simulate(netlist, None, RandomPatternSource(6, seed=9),
                          max_patterns=128, jobs=1, batch_width=16)
        parallel = simulate(netlist, None, RandomPatternSource(6, seed=9),
                            max_patterns=128, jobs=JOBS, batch_width=16)
        assert_identical(serial, parallel)
        # Tracing on == tracing off, down to the detection indices.
        assert serial.first_detection == baseline.first_detection
        assert serial.n_patterns == baseline.n_patterns
    finally:
        instance.reset()
        instance.disable()

"""Packed evaluation: correctness against single-pattern reference."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.netlist.evaluate import (
    Evaluator,
    evaluate_single,
    pack_patterns,
    unpack_patterns,
)

from tests.conftest import make_random_netlist, tiny_and_or


def test_evaluate_single_truth():
    netlist = tiny_and_or()
    a, b, c = (netlist.find_net(n) for n in "abc")
    y = netlist.find_net("y")
    for va in (0, 1):
        for vb in (0, 1):
            for vc in (0, 1):
                values = evaluate_single(netlist, {a: va, b: vb, c: vc})
                assert values[y] == int((va and vb) or vc)


def test_missing_input_raises():
    netlist = tiny_and_or()
    evaluator = Evaluator(netlist)
    with pytest.raises(SimulationError):
        evaluator.run({netlist.find_net("a"): 1}, 1)


def test_overrides_force_net_values():
    netlist = tiny_and_or()
    a, b, c = (netlist.find_net(n) for n in "abc")
    t = netlist.find_net("t")
    y = netlist.find_net("y")
    evaluator = Evaluator(netlist)
    # Force the AND output to 1 although a=b=0.
    values = evaluator.run({a: 0, b: 0, c: 0}, 1, overrides={t: 1})
    assert values[y] == 1


def test_pack_unpack_roundtrip():
    patterns = [[0, 1, 1], [1, 0, 1], [1, 1, 0], [0, 0, 0]]
    packed = pack_patterns(patterns)
    assert unpack_patterns(packed, len(patterns)) == patterns


def test_pack_rejects_ragged():
    with pytest.raises(SimulationError):
        pack_patterns([[0, 1], [1]])


@given(st.integers(0, 2**30), st.integers(0, 10))
@settings(max_examples=30, deadline=None)
def test_packed_equals_per_pattern(seed_bits, seed):
    """Property: one packed pass == W independent single-pattern passes."""
    netlist = make_random_netlist(5, 25, seed=seed)
    evaluator = Evaluator(netlist)
    width = 8
    mask = (1 << width) - 1
    rng_bits = seed_bits
    inputs = {}
    for i, net in enumerate(netlist.primary_inputs):
        inputs[net] = (rng_bits >> (i * 6)) & mask
    packed = evaluator.run(inputs, mask)
    for pattern in range(width):
        single_inputs = {
            net: (inputs[net] >> pattern) & 1 for net in netlist.primary_inputs
        }
        single = evaluate_single(netlist, single_inputs)
        for po in netlist.primary_outputs:
            assert (packed[po] >> pattern) & 1 == single[po]


def test_outputs_helper():
    netlist = tiny_and_or()
    evaluator = Evaluator(netlist)
    a, b, c = (netlist.find_net(n) for n in "abc")
    values = evaluator.run({a: 1, b: 1, c: 0}, 1)
    assert evaluator.outputs(values) == [1]

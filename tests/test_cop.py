"""COP testability measures."""

import itertools
import math

import pytest

from repro.faultsim.collapse import collapse_faults
from repro.faultsim.cop import (
    estimate_detection_probabilities,
    observabilities,
    predicted_patterns_for_coverage,
    signal_probabilities,
)
from repro.faultsim.faults import Fault
from repro.faultsim.simulator import FaultSimulator
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist

from tests.conftest import make_random_netlist, tiny_and_or


def test_signal_probabilities_basic_gates():
    netlist = Netlist()
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    and_out = netlist.add_gate(GateType.AND, [a, b])
    or_out = netlist.add_gate(GateType.OR, [a, b])
    xor_out = netlist.add_gate(GateType.XOR, [a, b])
    nand_out = netlist.add_gate(GateType.NAND, [a, b])
    netlist.mark_output(and_out)
    netlist.mark_output(or_out)
    netlist.mark_output(xor_out)
    netlist.mark_output(nand_out)
    prob = signal_probabilities(netlist)
    assert prob[and_out] == pytest.approx(0.25)
    assert prob[or_out] == pytest.approx(0.75)
    assert prob[xor_out] == pytest.approx(0.5)
    assert prob[nand_out] == pytest.approx(0.75)


def test_probabilities_exact_on_fanout_free_tree():
    """Without reconvergence COP is exact; check against enumeration."""
    netlist = make_random_netlist(4, 8, seed=23)
    prob = signal_probabilities(netlist)
    for po in netlist.primary_outputs:
        ones = 0
        from repro.netlist.evaluate import evaluate_single

        for combo in itertools.product((0, 1), repeat=4):
            assign = {n: v for n, v in zip(netlist.primary_inputs, combo)}
            ones += evaluate_single(netlist, assign)[po]
        exact = ones / 16
        # COP is approximate under reconvergence; allow slack but demand
        # the right ballpark.
        assert abs(prob[po] - exact) < 0.35


def test_observability_of_po_is_one():
    netlist = tiny_and_or()
    obs = observabilities(netlist)
    assert obs[netlist.find_net("y")] == pytest.approx(1.0)


def test_observability_through_and_gate():
    netlist = tiny_and_or()
    obs = observabilities(netlist)
    prob = signal_probabilities(netlist)
    # t reaches y through OR: observable iff c=0 -> 0.5.
    assert obs[netlist.find_net("t")] == pytest.approx(0.5)
    # a reaches y through AND (needs b=1) then OR (needs c=0).
    assert obs[netlist.find_net("a")] == pytest.approx(0.25)


def test_xor_path_fully_observable():
    netlist = Netlist()
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    y = netlist.add_gate(GateType.XOR, [a, b])
    netlist.mark_output(y)
    obs = observabilities(netlist)
    assert obs[a] == pytest.approx(1.0)


def test_detection_probability_estimates():
    netlist = tiny_and_or()
    faults, _ = collapse_faults(netlist)
    estimates = estimate_detection_probabilities(netlist, faults)
    by_fault = {e.fault: e for e in estimates}
    y = netlist.find_net("y")
    # y s-a-0: excite needs y=1 (p = 1 - 0.75*0.5 = 0.625), O = 1.
    assert by_fault[Fault(y, 0)].detection_probability == pytest.approx(0.625)
    for estimate in estimates:
        assert 0.0 <= estimate.detection_probability <= 1.0


def test_expected_patterns_inverse():
    netlist = tiny_and_or()
    estimates = estimate_detection_probabilities(
        netlist, [Fault(netlist.find_net("y"), 0)]
    )
    assert estimates[0].expected_patterns() == pytest.approx(1 / 0.625)


def test_predicted_patterns_monotone_in_target():
    netlist = make_random_netlist(5, 25, seed=9)
    faults, _ = collapse_faults(netlist)
    estimates = estimate_detection_probabilities(netlist, faults)
    # Random netlists contain constant cones, hence zero-probability
    # (estimated-undetectable) faults; target below the reachable fraction.
    reachable = sum(
        1 for e in estimates if e.detection_probability > 0
    ) / len(estimates)
    lo, hi = 0.5 * reachable, 0.9 * reachable
    p_lo = predicted_patterns_for_coverage(estimates, lo)
    p_hi = predicted_patterns_for_coverage(estimates, hi)
    assert p_lo is not None and p_hi is not None and p_lo <= p_hi
    # Beyond the reachable fraction the prediction is None.
    assert predicted_patterns_for_coverage(estimates, reachable + 0.05) is None


def test_prediction_correlates_with_measurement():
    """COP's predicted pattern count lands within a small factor of the
    fault simulator's measurement on the adder."""
    from repro.faultsim.patterns import RandomPatternSource
    from repro.netlist.builders import ripple_adder

    netlist = Netlist()
    a = netlist.new_inputs(4, prefix="a")
    b = netlist.new_inputs(4, prefix="b")
    for net in ripple_adder(netlist, a, b):
        netlist.mark_output(net)
    faults, _ = collapse_faults(netlist)
    estimates = estimate_detection_probabilities(netlist, faults)
    predicted = predicted_patterns_for_coverage(estimates, 0.95)
    simulator = FaultSimulator(netlist)
    result = simulator.run(RandomPatternSource(8, seed=5), 4096)
    measured = result.patterns_for_coverage(0.95)
    assert predicted is not None and measured is not None
    assert predicted / 8 <= measured <= predicted * 8


def test_unreachable_target_returns_none():
    netlist = tiny_and_or()
    estimates = estimate_detection_probabilities(
        netlist, [Fault(netlist.find_net("y"), 0)]
    )
    # A fabricated zero-probability fault makes 100% unreachable.
    from repro.faultsim.cop import FaultEstimate

    estimates = estimates + [FaultEstimate(Fault(0, 1), 0.0)]
    assert predicted_patterns_for_coverage(estimates, 1.0) is None
    assert math.isinf(estimates[-1].expected_patterns())

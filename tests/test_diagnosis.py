"""Signature-based fault diagnosis."""

import pytest

from repro.bist.diagnosis import build_fault_dictionary
from repro.bist.session import BISTSession
from repro.core.bibs import make_bibs_testable
from repro.datapath.compiler import Add, Mul, Var, compile_datapath
from repro.graph.build import build_circuit_graph


@pytest.fixture(scope="module")
def setup():
    a, b = Var("a"), Var("b")
    compiled = compile_datapath([("o", Add(Mul(a, b), a))], "mac", width=3)
    circuit = compiled.circuit
    design = make_bibs_testable(build_circuit_graph(circuit))
    session = BISTSession(circuit, design.kernels[0])
    faults = session.kernel_fault_universe()
    dictionary = build_fault_dictionary(session, cycles=95, faults=faults)
    return session, faults, dictionary


def test_dictionary_covers_detected_faults(setup):
    session, faults, dictionary = setup
    result = session.run(95, faults=faults)
    assert dictionary.n_faults == len(result.detected)
    assert dictionary.n_classes <= dictionary.n_faults


def test_candidates_roundtrip(setup):
    """Looking up a fault's own signature must return a set containing it."""
    session, faults, dictionary = setup
    result = session.run(95, faults=faults)
    for fault in result.detected[:20]:
        observed = result.fault_signatures[fault]
        candidates = dictionary.candidates(observed)
        assert fault in candidates


def test_golden_signature_yields_no_candidates(setup):
    session, faults, dictionary = setup
    result = session.run(95, faults=[])
    assert dictionary.candidates(result.golden_signatures) == []


def test_unknown_signature_yields_no_candidates(setup):
    _, _, dictionary = setup
    fake = {name: value ^ 0b101 for name, value in dict(dictionary.golden).items()}
    # May collide with a real class by chance; accept either but require a
    # clean miss for a clearly impossible signature width.
    fake["__not_a_register__"] = 1
    assert dictionary.candidates(fake) == []


def test_resolution_metrics(setup):
    _, _, dictionary = setup
    resolution = dictionary.diagnostic_resolution()
    assert resolution >= 1.0
    fraction = dictionary.distinguishable_fraction()
    assert 0.0 <= fraction <= 1.0
    # A 3-bit signature can name at most 7 faulty classes per register
    # pattern; with one SA register the class count is <= 2^3 - 1.
    assert dictionary.n_classes <= 7


def test_longer_sessions_never_reduce_class_count(setup):
    """More compression cycles can only refine (or keep) the partition for
    this fixed fault set — checked empirically on two window sizes."""
    session, faults, _ = setup
    short = build_fault_dictionary(session, cycles=50, faults=faults)
    long = build_fault_dictionary(session, cycles=95, faults=faults)
    # Not a theorem (MISR folding can merge), but holds on this kernel and
    # guards the machinery; the class counts stay within the 3-bit bound.
    assert short.n_classes <= 7 and long.n_classes <= 7

"""Cross-cutting properties and smaller API corners."""

import itertools

from hypothesis import given, settings, strategies as st

from repro import errors
from repro.bits.design_space import DesignPoint, pareto_front
from repro.graph.model import CircuitGraph, EdgeKind, VertexKind
from repro.netlist.evaluate import evaluate_single
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist

from tests.conftest import make_random_netlist


# ----------------------------------------------------------------- errors

def test_error_hierarchy():
    for name in (
        "NetlistError", "RTLError", "GraphError", "BalanceError",
        "TPGError", "SelectionError", "ScheduleError", "SimulationError",
    ):
        klass = getattr(errors, name)
        assert issubclass(klass, errors.ReproError)
        assert issubclass(klass, Exception)


# ---------------------------------------------------------------- pruning

@given(st.integers(0, 40))
@settings(max_examples=20, deadline=None)
def test_prune_preserves_po_functions(seed):
    """Property: prune_to_outputs never changes any PO's function."""
    netlist = make_random_netlist(4, 15, seed=seed)
    pruned = netlist.prune_to_outputs()
    assert len(pruned.gates) <= len(netlist.gates)
    for combo in itertools.product((0, 1), repeat=4):
        full_assign = dict(zip(netlist.primary_inputs, combo))
        pruned_assign = dict(zip(pruned.primary_inputs, combo))
        full = evaluate_single(netlist, full_assign)
        slim = evaluate_single(pruned, pruned_assign)
        full_words = [full[n] for n in netlist.primary_outputs]
        slim_words = [slim[n] for n in pruned.primary_outputs]
        assert full_words == slim_words


# ------------------------------------------------------------ pareto front

def _point(registers, area, delay, time):
    return DesignPoint(
        bilbo_registers=tuple(registers),
        n_registers=len(registers),
        added_area=area,
        maximal_delay=delay,
        test_time_proxy=time,
        n_kernels=1,
        n_sessions=1,
    )


def test_pareto_front_drops_dominated_points():
    a = _point(["R1"], 10.0, 2, 100)
    b = _point(["R2"], 12.0, 3, 200)  # dominated by a
    c = _point(["R3"], 5.0, 4, 300)   # trades area for delay/time
    front = pareto_front([a, b, c])
    assert a in front and c in front and b not in front


def test_pareto_front_keeps_incomparable_points():
    a = _point(["R1"], 1.0, 5, 5)
    b = _point(["R2"], 5.0, 1, 5)
    c = _point(["R3"], 5.0, 5, 1)
    assert len(pareto_front([a, b, c])) == 3


def test_dominates_requires_strict_improvement():
    a = _point(["R1"], 1.0, 1, 1)
    twin = _point(["R2"], 1.0, 1, 1)
    assert not a.dominates(twin)
    assert not twin.dominates(a)


# ------------------------------------------------------------- graph misc

def test_subgraph_edge_filter():
    graph = CircuitGraph()
    graph.add_vertex("a", VertexKind.LOGIC)
    graph.add_vertex("b", VertexKind.LOGIC)
    graph.add_edge("a", "b", EdgeKind.WIRE)
    graph.add_edge("a", "b", EdgeKind.REGISTER, 4, "R")
    sub = graph.subgraph(["a", "b"], edge_filter=lambda e: e.is_register)
    assert len(sub.edges) == 1
    assert sub.edges[0].register == "R"


# ----------------------------------------------------------- gate metadata

def test_const_gates_in_netlists():
    netlist = Netlist()
    zero = netlist.add_gate(GateType.CONST0, [], name="z")
    one = netlist.add_gate(GateType.CONST1, [], name="o")
    out = netlist.add_gate(GateType.OR, [zero, one])
    netlist.mark_output(out)
    values = evaluate_single(netlist, {})
    assert values[out] == 1


def test_fanout_count_includes_multiple_pins_of_one_gate():
    netlist = Netlist()
    a = netlist.new_input("a")
    netlist.add_gate(GateType.XOR, [a, a])
    assert netlist.fanout_count(a) == 2

"""Test-session scheduling (the [13] scheduler)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ka85 import make_ka_testable
from repro.core.kernels import extract_kernels
from repro.core.schedule import (
    ScheduledKernel,
    kernels_conflict,
    schedule_kernels,
)
from repro.datapath.filters import all_filters, c5a2m
from repro.errors import ScheduleError
from repro.graph.build import build_circuit_graph
from repro.library.figures import figure4


def _figure4_kernels():
    graph = build_circuit_graph(figure4())
    return [
        k for k in extract_kernels(graph, ["R1", "R3", "R6", "R7", "R8", "R9"])
        if k.logic_blocks
    ]


def test_conflicting_chain_kernels():
    """Example 1's two kernels share registers (SA of one = TPG of the
    other), so two sessions are required."""
    kernels = _figure4_kernels()
    assert kernels_conflict(kernels[0], kernels[1])
    schedule = schedule_kernels(
        [ScheduledKernel(k, 100) for k in kernels]
    )
    assert schedule.n_sessions == 2
    assert schedule.total_test_time == 200


def test_datapath_ka_schedules_in_two_sessions():
    """Table 2 row 2: every KA-85 filter design runs in two sessions."""
    for compiled in all_filters().values():
        design = make_ka_testable(build_circuit_graph(compiled.circuit)).design
        items = [ScheduledKernel(k, max(1, k.input_width)) for k in design.kernels]
        assert schedule_kernels(items).n_sessions == 2


def test_session_time_is_max_and_total_is_sum():
    """The paper's c5a2m arithmetic: sessions of 2140 and 32 -> 2172."""
    design = make_ka_testable(build_circuit_graph(c5a2m().circuit)).design
    lengths = {}
    for kernel in design.kernels:
        lengths[kernel.name] = 2140 if any(
            b.startswith("M") for b in kernel.logic_blocks
        ) else 32
    items = [ScheduledKernel(k, lengths[k.name]) for k in design.kernels]
    schedule = schedule_kernels(items)
    assert schedule.total_test_time == 2172
    assert schedule.total_patterns == 2 * 2140 + 5 * 32


def test_tpg_sharing_is_allowed():
    """Two kernels reading the same TPG register may share a session."""
    kernels = _figure4_kernels()
    k1, k2 = kernels
    # Same-kernel copies conflict only through TPG/SA and SA/SA clashes;
    # two kernels with identical TPGs but disjoint SAs do not conflict.
    assert not (set(k1.tpg_registers) & set(k1.sa_registers))


def test_empty_schedule_rejected():
    with pytest.raises(ScheduleError):
        schedule_kernels([])


def test_exact_never_worse_than_greedy():
    design = make_ka_testable(build_circuit_graph(c5a2m().circuit)).design
    items = [ScheduledKernel(k, 10 + i) for i, k in enumerate(design.kernels)]
    exact = schedule_kernels(items, optimal_limit=20)
    greedy = schedule_kernels(items, optimal_limit=0)
    assert exact.n_sessions <= greedy.n_sessions


@given(st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_property_schedules_are_conflict_free(seed):
    """Property: no session contains two conflicting kernels."""
    import random

    rng = random.Random(seed)
    design = make_ka_testable(build_circuit_graph(c5a2m().circuit)).design
    items = [
        ScheduledKernel(k, rng.randrange(1, 1000)) for k in design.kernels
    ]
    schedule = schedule_kernels(items)
    for session in schedule.sessions:
        for i, a in enumerate(session):
            for b in session[i + 1:]:
                assert not kernels_conflict(a.kernel, b.kernel)
    assert schedule.total_test_time == sum(
        max(k.test_length for k in s) for s in schedule.sessions
    )

"""Path queries: depth, enumeration, maximal delay."""

from repro.datapath.filters import c3a2m, c5a2m
from repro.graph.build import build_circuit_graph
from repro.graph.model import CircuitGraph, EdgeKind, VertexKind
from repro.graph.paths import (
    all_paths,
    maximal_delay,
    path_sequential_length,
    reachable_from,
    sequential_depth,
)


def test_sequential_depth_of_pipelines():
    assert sequential_depth(build_circuit_graph(c5a2m().circuit)) == 4
    assert sequential_depth(build_circuit_graph(c3a2m().circuit)) == 6


def test_all_paths_enumeration():
    graph = CircuitGraph()
    for name in "sabt":
        graph.add_vertex(name, VertexKind.LOGIC)
    graph.add_edge("s", "a", EdgeKind.WIRE)
    graph.add_edge("s", "b", EdgeKind.WIRE)
    graph.add_edge("a", "t", EdgeKind.WIRE)
    graph.add_edge("b", "t", EdgeKind.REGISTER, 4, "R")
    paths = all_paths(graph, "s", "t")
    assert sorted(paths) == [["s", "a", "t"], ["s", "b", "t"]]
    assert path_sequential_length(graph, ["s", "a", "t"]) == 0
    assert path_sequential_length(graph, ["s", "b", "t"]) == 1


def test_reachable_from():
    graph = CircuitGraph()
    for name in "abc":
        graph.add_vertex(name, VertexKind.LOGIC)
    graph.add_edge("a", "b", EdgeKind.WIRE)
    assert reachable_from(graph, ["a"]) == {"a", "b"}
    assert reachable_from(graph, ["c"]) == {"c"}


def test_maximal_delay_counts_only_bilbo_registers():
    """Table 2 row 4 semantics: BIBS=2, KA counts every converted register."""
    graph = build_circuit_graph(c3a2m().circuit)
    all_registers = [e.register for e in graph.register_edges()]
    pi_po = [r for r in all_registers if r.startswith("R_") and
             (len(r) == 3 or r in ("R_A3",))]
    # BIBS converts PI + PO registers only -> delay 2.
    from repro.core.bibs import mandatory_bilbo_registers

    bibs = mandatory_bilbo_registers(graph)
    assert maximal_delay(graph, bibs) == 2
    # Converting everything gives the full pipeline length + PI + PO.
    assert maximal_delay(graph, all_registers) == sequential_depth(graph)
    # No conversions: no BILBO delay at all.
    assert maximal_delay(graph, []) == 0

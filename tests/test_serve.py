"""The BIST service: validation, queue quotas, HTTP API, cached E2E.

Three layers, cheapest first: pure-unit coverage of the request schema,
result cache and tenant-quota queue; an in-thread server exercising every
route and error mapping over real HTTP; and one subprocess end-to-end
test submitting the ``c3a2m`` library design twice — the first run must
be bit-identical to a direct :func:`repro.engine.simulate` call, the
second must come from the run-key cache with ``cache_hit == 1`` on
``/metrics`` and at least 10x lower latency.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro import telemetry
from repro.serve import (
    ApiError,
    Job,
    JobQueue,
    JobRequest,
    ResultCache,
)
from tests.serve_utils import ServeClient, spawn_server, thread_server

CYCLE_BENCH = "INPUT(a)\nOUTPUT(y)\ny = AND(a, y)\n"


# ------------------------------------------------------------- request schema

def make_request(**fields):
    doc = {"design": "mac4"}
    doc.update(fields)
    return JobRequest.from_json(doc)


def test_request_defaults():
    request = make_request()
    assert request.design == "mac4"
    assert request.tenant == "default"
    assert request.seed == 1994
    assert request.stop_when_complete and request.drop_detected
    assert request.target == "mac4"


def test_request_rejects_unknown_fields():
    with pytest.raises(ApiError) as excinfo:
        make_request(bogus=1)
    assert excinfo.value.status == 400
    assert "bogus" in str(excinfo.value)


@pytest.mark.parametrize("doc", [
    {},                                        # neither target
    {"design": "mac4", "bench": "x"},          # both targets
    {"design": 7},                             # wrong type
    {"design": "mac4", "seed": "one"},         # non-int
    {"design": "mac4", "max_patterns": 0},     # below minimum
    {"design": "mac4", "deadline": -1},        # negative deadline
    {"design": "mac4", "kernel": "warp"},      # unknown kernel
    {"design": "mac4", "executor": "warp"},    # unknown executor
    {"design": "mac4", "tenant": ""},          # empty tenant
    {"design": "mac4", "jobs": True},          # bool is not an int
    [1, 2],                                    # not an object
])
def test_request_validation_rejects(doc):
    with pytest.raises(ApiError) as excinfo:
        JobRequest.from_json(doc)
    assert excinfo.value.status == 400


def test_bench_target_is_content_addressed():
    a = JobRequest.from_json({"bench": CYCLE_BENCH})
    b = JobRequest.from_json({"bench": CYCLE_BENCH})
    c = JobRequest.from_json({"bench": CYCLE_BENCH + "\n"})
    assert a.target == b.target != c.target
    assert a.target.startswith("bench-")


# --------------------------------------------------------------- result cache

@pytest.fixture()
def metrics():
    telemetry.reset()
    telemetry.enable()
    yield telemetry.get_telemetry().metrics
    telemetry.reset()
    telemetry.disable()


def test_cache_hit_miss_counters(metrics):
    cache = ResultCache(4)
    assert cache.get("k1") is None
    assert cache.put("k1", {"coverage": 1.0, "partial": False})
    assert cache.get("k1") == {"coverage": 1.0, "partial": False}
    counters = metrics.snapshot()["counters"]
    assert counters["cache.hit"] == 1
    assert counters["cache.miss"] == 1


def test_cache_refuses_partial_and_unkeyed(metrics):
    cache = ResultCache(4)
    assert not cache.put("k1", {"partial": True})
    assert not cache.put(None, {"partial": False})
    assert cache.get("k1") is None
    assert cache.get(None) is None


def test_cache_lru_eviction(metrics):
    cache = ResultCache(2)
    cache.put("a", {"n": 1})
    cache.put("b", {"n": 2})
    assert cache.get("a") is not None   # refresh a; b is now oldest
    cache.put("c", {"n": 3})
    assert cache.get("b") is None       # evicted
    assert cache.get("a") is not None
    assert cache.get("c") is not None
    assert len(cache) == 2


# ------------------------------------------------------------------ job queue

def _job(job_id: str, tenant: str) -> Job:
    return Job(job_id, JobRequest.from_json(
        {"design": "mac4", "tenant": tenant}), run_key=None)


def test_queue_tenant_quota_skips_saturated_tenant():
    async def scenario():
        queue = JobQueue(tenant_quota=1)
        queue.submit(_job("a1", "alice"))
        queue.submit(_job("a2", "alice"))
        queue.submit(_job("b1", "bob"))
        first = await queue.acquire()
        # alice is at quota: her second job is skipped in favour of bob's.
        second = await queue.acquire()
        assert (first.id, second.id) == ("a1", "b1")
        await queue.release(first)
        third = await queue.acquire()
        assert third.id == "a2"
        await queue.release(second)
        await queue.release(third)

    asyncio.run(scenario())


def test_queue_full_raises_429():
    async def scenario():
        queue = JobQueue(max_queued=1)
        queue.submit(_job("a1", "alice"))
        with pytest.raises(ApiError) as excinfo:
            queue.submit(_job("a2", "alice"))
        assert excinfo.value.status == 429

    asyncio.run(scenario())


def test_queue_close_cancels_pending_and_unblocks_workers():
    async def scenario():
        queue = JobQueue()
        queue.submit(_job("a1", "alice"))
        cancelled = await queue.close()
        assert [job.id for job in cancelled] == ["a1"]
        assert cancelled[0].state == "cancelled"
        assert await queue.acquire() is None
        with pytest.raises(ApiError) as excinfo:
            queue.submit(_job("a2", "alice"))
        assert excinfo.value.status == 503

    asyncio.run(scenario())


# ------------------------------------------------------- in-thread HTTP layer

@pytest.fixture()
def server(tmp_path, metrics):
    with thread_server(tmp_path / "state", workers=2) as (thread, client):
        yield client


def test_healthz_and_unknown_routes(server):
    status, doc = server.request("GET", "/healthz")
    assert status == 200 and doc["status"] == "ok"
    status, doc = server.request("GET", "/nope")
    assert status == 404 and doc["error"] == "not-found"
    status, doc = server.request("POST", "/healthz")
    assert status == 405 and doc["error"] == "method-not-allowed"
    status, doc = server.request("GET", "/v1/jobs/job-99999")
    assert status == 404 and doc["error"] == "unknown-job"


def test_submit_poll_result_roundtrip(server):
    doc = server.submit({"design": "mac4", "max_patterns": 256})
    assert doc["state"] in ("queued", "running", "done")
    assert doc["run_key"]
    done = server.wait(doc["id"])
    assert done["state"] == "done"
    assert done["error"] is None
    status, result = server.result(doc["id"])
    assert status == 200
    assert result["kind"] == "faultsim"
    assert result["circuit"] == "mac4"
    assert result["n_patterns"] <= 256
    assert result["partial"] is False
    assert result["run_key"] == doc["run_key"]
    # Fault tables are stripped unless asked for.
    assert "first_detection" not in result
    status, full = server.result(doc["id"], include_faults=True)
    assert status == 200 and len(full["first_detection"]) > 0


def test_result_pending_is_409(server):
    # A big pattern budget keeps the worker busy long enough that the
    # immediate result query almost always lands before the job is done.
    doc = server.submit({"design": "c3a2m", "max_patterns": 1 << 16,
                         "stop_when_complete": False})
    status, body = server.result(doc["id"])
    if status == 409:  # racy by nature: the worker may already be done
        assert body["error"] == "pending"
        assert body["state"] in ("queued", "running")
    server.wait(doc["id"], timeout=120)
    status, _ = server.result(doc["id"])
    assert status == 200


def test_unknown_design_is_404_with_catalog(server):
    status, doc = server.request("POST", "/v1/jobs", {"design": "nope"})
    assert status == 404
    assert doc["error"] == "unknown-design"
    assert "c3a2m" in doc["available"]


def test_lint_failure_is_422_with_findings(server):
    status, doc = server.request("POST", "/v1/jobs", {"bench": CYCLE_BENCH})
    assert status == 422
    assert doc["error"] == "lint"
    rules = {finding["rule"] for finding in doc["findings"]}
    assert "NL001" in rules  # the combinational cycle
    for finding in doc["findings"]:
        assert {"rule", "severity", "location", "message"} <= set(finding)


def test_lint_payload_matches_cli_shape(server):
    """Server 422 body == LintError.payload() == selftest --json error doc."""
    from repro.errors import LintError
    from repro.lint.runner import preflight_netlist
    from repro.netlist import bench_io

    status, doc = server.request("POST", "/v1/jobs", {"bench": CYCLE_BENCH})
    assert status == 422
    netlist = bench_io.loads(CYCLE_BENCH, name=JobRequest.from_json(
        {"bench": CYCLE_BENCH}).target, validate=False)
    with pytest.raises(LintError) as excinfo:
        preflight_netlist(netlist)
    assert doc == excinfo.value.payload()


def test_malformed_submissions(server):
    status, doc = server.request("POST", "/v1/jobs",
                                 {"design": "mac4", "frobnicate": 1})
    assert status == 400 and "frobnicate" in doc["message"]
    status, body = server.raw("POST", "/v1/jobs", b"{not json")
    assert status == 400
    status, doc = server.request("POST", "/v1/jobs", {"bench": "y = AND(("})
    assert status == 400 and doc["error"] == "bad-netlist"


def test_job_listing(server):
    doc = server.submit({"design": "mac4", "max_patterns": 128})
    server.wait(doc["id"])
    status, listing = server.request("GET", "/v1/jobs")
    assert status == 200
    assert doc["id"] in {job["id"] for job in listing["jobs"]}


def test_metrics_endpoint_is_valid_prometheus(server):
    from repro.telemetry.export import parse_prometheus_text

    doc = server.submit({"design": "mac4", "max_patterns": 128})
    server.wait(doc["id"])
    status, text = server.request("GET", "/metrics")
    assert status == 200
    samples = parse_prometheus_text(text)
    assert samples["serve_jobs_submitted"] >= 1
    assert "cache_miss" in samples


def test_deadline_maps_to_budget_partial_result(server):
    # A zero-second deadline expires before the first round: the job still
    # completes (never 500s), but reports a partial, deadline-stopped run.
    doc = server.submit({"design": "mac4", "deadline": 0,
                         "max_patterns": 4096})
    done = server.wait(doc["id"])
    assert done["state"] == "done"
    status, result = server.result(doc["id"])
    assert status == 200
    assert result["partial"] is True
    assert result["stop_reason"] == "deadline"
    assert result["guard"]["budget"]["deadline"] == 0


# --------------------------------------------------------- subprocess E2E

def _direct_reference(max_patterns: int):
    """What the engine says when called directly, shaped like the API."""
    from repro.cli_args import result_payload
    from repro.engine import simulate
    from repro.exec.config import RunConfig
    from repro.faultsim.collapse import collapse_faults
    from repro.faultsim.patterns import RandomPatternSource
    from repro.library.scenarios import c3a2m_kernel

    netlist = c3a2m_kernel()
    faults, _ = collapse_faults(netlist)
    result = simulate(
        netlist, faults,
        RandomPatternSource(len(netlist.primary_inputs), seed=1994),
        config=RunConfig(max_patterns=max_patterns, check=False),
    )
    return result_payload(result, include_faults=True)


def test_e2e_c3a2m_twice_cached_and_bit_identical(tmp_path):
    # Big enough that the first (simulating) run dwarfs the fixed HTTP
    # cost, so the >=10x cached-latency assertion has a wide margin.
    max_patterns = 16384
    submission = {"design": "c3a2m", "max_patterns": max_patterns,
                  "include_faults": True}
    process, port = spawn_server(tmp_path / "state", "--workers", "1")
    client = ServeClient("127.0.0.1", port)
    try:
        start = time.monotonic()
        first = client.submit(submission)
        assert first["cached"] is False
        client.wait(first["id"], timeout=120)
        status, first_result = client.result(first["id"])
        first_latency = time.monotonic() - start
        assert status == 200

        start = time.monotonic()
        second = client.submit(submission)
        status, second_result = client.result(second["id"])
        second_latency = time.monotonic() - start
        assert status == 200
        assert second["cached"] is True and second["state"] == "done"
        assert second["run_key"] == first["run_key"]

        # The cached response is the first response, byte for byte.
        assert second_result == first_result

        # The service hit the cache exactly once so far.
        status, metrics_body = client.request("GET", "/metrics")
        assert status == 200
        from repro.telemetry.export import parse_prometheus_text

        samples = parse_prometheus_text(metrics_body)
        assert samples["cache_hit"] == 1

        # Cached answers are >= 10x faster than simulating.  One cached
        # round-trip is a few ms, so a scheduler hiccup can skew a single
        # sample — take the best of a few (they are all cache hits).
        cached_latencies = [second_latency]
        for _ in range(3):
            start = time.monotonic()
            again = client.submit(submission)
            status, _body = client.result(again["id"])
            cached_latencies.append(time.monotonic() - start)
            assert status == 200 and again["cached"] is True
        assert first_latency >= 10 * min(cached_latencies), (
            f"cached={min(cached_latencies):.4f}s vs "
            f"first={first_latency:.4f}s"
        )
    finally:
        client.close()
        process.terminate()
        process.wait(timeout=30)

    # First run is bit-identical to calling the engine directly: same
    # payload once the surfaces' own context (circuit/seed/run_key/guard)
    # and the volatile engine block (wall time) are set aside.
    reference = _direct_reference(max_patterns)
    volatile = ("engine", "guard", "circuit", "seed", "run_key")
    served = {key: value for key, value in first_result.items()
              if key not in volatile}
    expected = {key: value for key, value in reference.items()
                if key not in volatile}
    assert served == expected
    assert served["first_detection"] == reference["first_detection"]

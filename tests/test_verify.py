"""Theorem 4/7 verification machinery (and its ability to catch bad TPGs)."""

import pytest

from repro.errors import TPGError
from repro.tpg.design import Cone, InputRegister, KernelSpec, Slot, TPGDesign
from repro.tpg.sc_tpg import sc_tpg
from repro.tpg.verify import (
    cone_pattern_set,
    expected_pattern_count,
    minimum_lfsr_degree_witness,
    verify_cone,
    verify_design,
)


def test_expected_counts():
    spec = KernelSpec(
        (InputRegister("A", 2), InputRegister("B", 2)),
        (Cone("O1", {"A": 0, "B": 0}), Cone("O2", {"A": 0})),
    )
    design = sc_tpg(
        KernelSpec.single_cone([("A", 2, 0), ("B", 2, 0)])
    )
    # w == M: all-zero unreachable -> 2^M - 1.
    assert expected_pattern_count(design, design.kernel.cones[0]) == 15
    # For a narrower cone (w < M) the expectation is the full 2^w.
    narrow = Cone("N", {"A": 0})
    assert expected_pattern_count(design, narrow) == 4


def test_naive_tpg_without_compensation_fails_verification():
    """A plain concatenated LFSR misses patterns when depths differ.

    This is exactly the paper's motivation for SC_TPG (Figure 10): without
    the extra delay FFs the shifted tuple cannot cover all combinations.
    """
    spec = KernelSpec.single_cone([("A", 2, 1), ("B", 2, 0)], name="naive")
    # Hand-build the *wrong* TPG: registers simply concatenated.
    slots = [
        Slot(1, ("A", 1)), Slot(2, ("A", 2)),
        Slot(3, ("B", 1)), Slot(4, ("B", 2)),
    ]
    bad = TPGDesign(spec, slots, 4)
    verdicts = verify_design(bad)
    assert not all(v.exhaustive for v in verdicts)
    # And the correct SC_TPG design passes.
    good = sc_tpg(spec)
    assert all(v.exhaustive for v in verify_design(good))


def test_seed_invariance():
    """Exhaustiveness holds from every non-zero seed (full-period property)."""
    design = sc_tpg(KernelSpec.single_cone([("A", 2, 1), ("B", 2, 0)]))
    for seed in (1, 5, 9, 15):
        assert all(v.exhaustive for v in verify_design(design, seed=seed))


def test_verify_cone_fields():
    design = sc_tpg(KernelSpec.single_cone([("A", 3, 0)]))
    verdict = verify_cone(design, design.kernel.cones[0])
    assert verdict.width == 3
    assert verdict.distinct_patterns == 7
    assert verdict.expected_patterns == 7
    assert verdict.exhaustive


def test_max_steps_guard():
    design = sc_tpg(KernelSpec.single_cone([("A", 8, 0), ("B", 8, 0), ("C", 8, 0)]))
    with pytest.raises(TPGError):
        cone_pattern_set(design, design.kernel.cones[0], max_steps=1000)


def test_minimum_lfsr_degree_witness():
    design = sc_tpg(KernelSpec.single_cone([("A", 2, 0), ("B", 2, 0)]))
    witness = minimum_lfsr_degree_witness(design)
    assert witness == {"cone": 15}

"""SequentialGateSimulator details and TPG backward-extension model."""

import pytest

from repro.bist.gatesim import MachineFault, SequentialGateSimulator
from repro.datapath.compiler import Add, Mul, Var, compile_datapath
from repro.errors import SimulationError
from repro.tpg.design import KernelSpec
from repro.tpg.lfsr import Type1LFSR
from repro.tpg.sc_tpg import sc_tpg
from repro.tpg.polynomials import reciprocal, primitive_polynomial
from repro.tpg.gf2 import is_primitive


@pytest.fixture(scope="module")
def mac():
    a, b = Var("a"), Var("b")
    return compile_datapath([("o", Add(Mul(a, b), a))], "mac", width=3).circuit


def test_forced_registers_override_state(mac):
    simulator = SequentialGateSimulator(mac)
    trace_forced = simulator.run(
        4, lambda t: {"a": 0, "b": 0},
        forced_registers=lambda t: {"R_a": 5, "R_b": 3},
    )
    # With R_a/R_b forced, PO shows (5*3 + 5) mod 8 after the pipe fills.
    assert trace_forced[-1][mac.nets[mac.primary_outputs[0]].name] == (5 * 3 + 5) % 8


def test_packed_register_state_initialisation(mac):
    simulator = SequentialGateSimulator(mac)
    mask = 0b11  # two machines
    state = {
        name: [mask] * len(bits)
        for name, bits in simulator.register_out_bits.items()
    }
    seen = {}

    def observe(t, values):
        for name, bits in simulator.register_out_bits.items():
            seen[name] = simulator.machine_word(values, bits, 0)

    simulator.run(
        1, lambda t: {"a": 0, "b": 0}, machines=2,
        observe=observe, packed_register_state=state,
    )
    for name, width_bits in simulator.register_out_bits.items():
        assert seen[name] == (1 << len(width_bits)) - 1


def test_machine_limit(mac):
    simulator = SequentialGateSimulator(mac)
    with pytest.raises(SimulationError):
        simulator.run(1, lambda t: {"a": 0, "b": 0}, machines=0)


def test_fault_on_pi_bit(mac):
    simulator = SequentialGateSimulator(mac)
    pi_bit = simulator.pi_bits["a"][0]
    values_seen = {}

    def observe(t, values):
        values_seen[t] = values[pi_bit]

    simulator.run(
        2, lambda t: {"a": 1, "b": 0}, machines=2,
        faults=[MachineFault(1, pi_bit, 0)], observe=observe,
    )
    # Machine 0 sees 1, machine 1 sees the stuck 0 -> packed value 0b01.
    assert values_seen[0] == 0b01


def test_reset_state_word(mac):
    simulator = SequentialGateSimulator(mac)
    captured = {}

    def observe(t, values):
        captured[t] = simulator.machine_word(
            values, simulator.register_out_bits["R_a"], 0
        )

    simulator.run(1, lambda t: {"a": 0, "b": 0}, observe=observe, reset_state=0b101)
    assert captured[0] == 0b101


# --------------------------------------------------- TPG backward extension

def test_backward_extension_consistency():
    """b(-k) for shift-register stages must extend the m-sequence backward:
    stepping the LFSR forward from the reconstructed past state reproduces
    the seeded state."""
    spec = KernelSpec.single_cone([("A", 3, 3), ("B", 3, 0)], name="deep")
    design = sc_tpg(spec)
    assert design.max_label > design.lfsr_stages  # SR extension exists
    m = design.lfsr_stages
    streams = design.register_streams(1, seed=0b100101)
    # Rebuild b(t) for t in [-(max_label-1), 0] via the design's model and
    # check the LFSR recurrence holds across the negative range.
    lfsr = Type1LFSR(m, design.polynomial)
    # State at time t is (b(t), b(t-1), ..., b(t-m+1)) in stage order.
    seed = 0b100101
    bit = lambda t: _design_bit(design, seed, t)
    for t in range(-(design.max_label - m), 1):
        state = 0
        for k in range(m):
            state |= bit(t - k) << k
        nxt = 0
        for k in range(m):
            nxt |= bit(t + 1 - k) << k
        assert lfsr.step(state) == nxt


def _design_bit(design, seed, t):
    """b(t) through the design's public stream model."""
    if t >= 0:
        stream = design.bit_stream(seed)
        for _ in range(t):
            next(stream)
        return next(stream)
    # negative times via a register cell at the right label/depth
    streams = design.register_streams(1, seed=seed)
    # reconstruct via value_of semantics: cell labelled L_k at time 0 is
    # b(1-k); find a label equal to 1-t.
    label = 1 - t
    for (register, cell), cell_label in design.cell_labels.items():
        if cell_label == label:
            word = streams[register][0]
            return (word >> (cell - 1)) & 1
    # fall back to an extra FF position: simulate one long stream shifted.
    values = design.register_streams(label + 1, seed=seed)
    for (register, cell), cell_label in design.cell_labels.items():
        if cell_label == 1:
            return (values[register][label - 1] >> (cell - 1)) & 1
    raise AssertionError("no cell at label 1")


def test_reciprocal_polynomial():
    poly = primitive_polynomial(5)
    flipped = reciprocal(poly)
    assert flipped != poly
    assert is_primitive(flipped)
    assert reciprocal(flipped) == poly

"""repro.telemetry: tracer nesting, metrics semantics, exporters, manifests,
multiprocess span merging, and the off-by-default contract."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro import telemetry
from repro.engine import simulate
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.patterns import RandomPatternSource
from repro.telemetry import export
from repro.telemetry.manifest import RunManifest, config_fingerprint
from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.trace import NOOP_SPAN, Tracer
from tests.conftest import make_random_netlist


@pytest.fixture
def tele():
    """The global telemetry instance, enabled and wiped, restored after."""
    instance = telemetry.get_telemetry()
    was_enabled = instance.enabled
    instance.reset()
    instance.enable()
    yield instance
    instance.reset()
    if not was_enabled:
        instance.disable()


# ---------------------------------------------------------------- the tracer


def test_nested_spans_record_parent_ids_in_order(tele):
    with telemetry.span("outer", level=0) as outer:
        with telemetry.span("middle") as middle:
            with telemetry.span("inner"):
                pass
        outer.set_attribute("post", True)
    records = tele.tracer.snapshot()
    assert [r.name for r in records] == ["inner", "middle", "outer"]
    inner, middle_rec, outer_rec = records
    assert outer_rec.parent_id is None
    assert middle_rec.parent_id == outer_rec.span_id
    assert inner.parent_id == middle_rec.span_id
    assert outer_rec.attributes == {"level": 0, "post": True}
    # The parent's window contains the child's.
    assert outer_rec.ts <= middle_rec.ts <= inner.ts
    assert outer_rec.duration >= middle_rec.duration >= inner.duration >= 0.0


def test_sibling_spans_share_a_parent(tele):
    with telemetry.span("parent"):
        with telemetry.span("first"):
            pass
        with telemetry.span("second"):
            pass
    records = {r.name: r for r in tele.tracer.snapshot()}
    assert records["first"].parent_id == records["parent"].span_id
    assert records["second"].parent_id == records["parent"].span_id


def test_traced_decorator_spans_the_callable(tele):
    @telemetry.traced("decorated.work", flavor="test")
    def work(x):
        return x + 1

    assert work(1) == 2
    (record,) = tele.tracer.snapshot()
    assert record.name == "decorated.work"
    assert record.attributes == {"flavor": "test"}


def test_tracer_buffer_bound_counts_drops():
    tracer = Tracer(max_records=2)
    tracer.enabled = True
    for _ in range(4):
        with tracer.span("s"):
            pass
    assert len(tracer.snapshot()) == 2
    assert tracer.dropped == 2


def test_drain_and_absorb_round_trip(tele):
    with telemetry.span("shipped"):
        pass
    records = tele.tracer.drain()
    assert tele.tracer.snapshot() == []
    tele.tracer.absorb(records)
    assert [r.name for r in tele.tracer.snapshot()] == ["shipped"]


# -------------------------------------------------------- disabled no-op path


def test_disabled_telemetry_is_inert():
    instance = telemetry.get_telemetry()
    assert not instance.enabled  # the suite-wide default
    assert telemetry.span("anything", k=1) is NOOP_SPAN
    with telemetry.span("nested") as span:
        span.set_attribute("ignored", True)
        with telemetry.span("inner"):
            pass
    telemetry.count("nothing")
    telemetry.gauge_set("nothing", 1)
    telemetry.observe("nothing", 1.0)
    assert instance.tracer.snapshot() == []
    snap = instance.metrics.snapshot()
    assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


def test_disabled_simulate_records_nothing():
    netlist = make_random_netlist(5, 20, seed=11)
    instance = telemetry.get_telemetry()
    instance.reset()
    simulate(netlist, None, RandomPatternSource(5, seed=2),
             max_patterns=32, jobs=1, batch_width=16)
    assert instance.tracer.snapshot() == []
    assert instance.metrics.snapshot()["counters"] == {}


# ------------------------------------------------------------------- metrics


def test_counter_rejects_negative_increment():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    counter.inc(2)
    counter.inc(0)
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.value == 2


def test_registry_rejects_cross_type_name_reuse():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")
    with pytest.raises(ValueError):
        registry.histogram("x")


def test_histogram_rejects_unsorted_boundaries():
    with pytest.raises(ValueError):
        Histogram("h", boundaries=(1.0, 1.0, 2.0))
    with pytest.raises(ValueError):
        Histogram("h", boundaries=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", boundaries=())


def test_histogram_bucket_edges_use_le_semantics():
    histogram = Histogram("h", boundaries=(1.0, 10.0, 100.0))
    for value in (0.5, 1.0, 1.5, 10.0, 99.9, 100.0, 100.1):
        histogram.observe(value)
    # le semantics: a value equal to a boundary counts in that bucket.
    assert histogram.cumulative_buckets() == [
        (1.0, 2),      # 0.5, 1.0
        (10.0, 4),     # + 1.5, 10.0
        (100.0, 6),    # + 99.9, 100.0
        ("+Inf", 7),   # everything, including 100.1
    ]
    assert histogram.count == 7
    assert histogram.sum == pytest.approx(0.5 + 1.0 + 1.5 + 10.0
                                          + 99.9 + 100.0 + 100.1)


# ----------------------------------------------------------------- exporters


def test_prometheus_text_escaping_and_round_trip():
    registry = MetricsRegistry()
    registry.counter("engine.rounds", help='back\\slash and\nnewline').inc(3)
    registry.gauge("queue.depth").set(1.5)
    registry.histogram("lat", boundaries=(0.5, 2.0)).observe(0.5)
    text = export.to_prometheus_text(registry.snapshot(),
                                     registry.help_texts())
    # Dotted names sanitized, HELP escaped per the exposition format.
    assert "# HELP engine_rounds back\\\\slash and\\nnewline" in text
    assert "# TYPE engine_rounds counter" in text
    assert "engine_rounds 3" in text
    assert 'lat_bucket{le="0.5"} 1' in text
    assert 'lat_bucket{le="+Inf"} 1' in text
    samples = export.parse_prometheus_text(text)
    assert samples["engine_rounds"] == 3.0
    assert samples["queue_depth"] == 1.5
    assert samples['lat_bucket{le="0.5"}'] == 1.0
    assert samples["lat_count"] == 1.0


def test_escape_label_value_handles_quotes():
    assert export.escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


@pytest.mark.parametrize("bad", [
    "not a metric line",
    "# BOGUS comment kind",
    "name_only",
    "",
])
def test_parse_prometheus_text_rejects_malformed(bad):
    with pytest.raises(ValueError):
        export.parse_prometheus_text(bad)


def test_chrome_trace_events_are_valid_and_rebased(tele):
    with telemetry.span("a", tag=1):
        with telemetry.span("b"):
            pass
    payload = export.to_chrome_trace(tele.tracer.snapshot(),
                                     other_data={"note": "x"})
    assert export.validate_chrome_trace(payload) == []
    events = payload["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert len(metadata) == 1 and metadata[0]["name"] == "process_name"
    assert len(spans) == 2
    for event in spans:
        assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        assert event["pid"] == os.getpid()
        assert isinstance(event["tid"], int)
    # Rebased: the earliest span starts the trace at ts == 0.
    assert min(e["ts"] for e in spans) == 0.0
    assert payload["otherData"] == {"note": "x"}


def test_validate_chrome_trace_flags_structural_problems():
    assert export.validate_chrome_trace([]) == ["top level is not an object"]
    assert export.validate_chrome_trace({}) == [
        "traceEvents missing or not a list"
    ]
    errors = export.validate_chrome_trace({"traceEvents": [
        {"ph": "X", "name": "ok", "ts": -1, "dur": 0, "pid": 1, "tid": 1},
        {"name": "no-phase"},
    ]})
    assert any("ts" in error for error in errors)
    assert any("missing ph" in error for error in errors)


# ------------------------------------------------------------ run manifests


def test_config_fingerprint_is_order_independent():
    assert (config_fingerprint({"a": 1, "b": 2})
            == config_fingerprint({"b": 2, "a": 1}))
    assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})


def test_manifest_round_trip(tmp_path, tele):
    with telemetry.span("work"):
        telemetry.count("engine.rounds", 2)
    manifest = RunManifest.collect(
        config={"jobs": 2, "circuit": "tiny"},
        shards=[{"shard": 0}],
        extra={"note": "round trip"},
    )
    path = tmp_path / "manifest.json"
    manifest.write(path)
    loaded = RunManifest.from_json(json.loads(path.read_text()))
    assert loaded.fingerprint == manifest.fingerprint
    assert loaded.config == {"jobs": 2, "circuit": "tiny"}
    assert [s["name"] for s in loaded.spans] == ["work"]
    assert loaded.metrics["counters"]["engine.rounds"] == 2
    assert loaded.shards == [{"shard": 0}]
    assert loaded.extra == {"note": "round trip"}
    with pytest.raises(ValueError):
        RunManifest.from_json({"kind": "something-else"})


# ----------------------------------------- engine integration & multiprocess


def test_engine_publishes_metrics_from_shard_stats(tele):
    netlist = make_random_netlist(5, 30, seed=4)
    faults, _ = collapse_faults(netlist)
    result = simulate(netlist, faults, RandomPatternSource(5, seed=7),
                      max_patterns=64, jobs=1, batch_width=16)
    counters = tele.metrics.snapshot()["counters"]
    # Derived once per run from the summed ShardStats — the single source
    # of truth — so registry and result must agree exactly.
    assert counters["engine.runs"] == 1
    assert counters["engine.patterns_simulated"] == sum(
        s.patterns_simulated for s in result.shards
    )
    assert counters["faultsim.events_propagated"] == result.events_propagated
    assert counters["engine.faults_dropped"] == sum(
        s.faults_dropped for s in result.shards
    )
    assert counters["engine.rounds"] >= 1
    histogram = tele.metrics.snapshot()["histograms"]["patterns_per_second"]
    assert histogram["count"] == sum(
        1 for s in result.shards if s.wall_time > 0.0
    )


def test_parallel_run_merges_worker_spans(tele):
    netlist = make_random_netlist(6, 40, seed=9)
    result = simulate(netlist, None, RandomPatternSource(6, seed=5),
                      max_patterns=64, jobs=2, batch_width=16)
    assert result.jobs == 2
    spans = tele.tracer.snapshot()
    names = {record.name for record in spans}
    assert {"engine.simulate", "engine.round", "engine.merge",
            "engine.shard_round"} <= names
    shard_rounds = [r for r in spans if r.name == "engine.shard_round"]
    pids = {record.pid for record in shard_rounds}
    # Worker spans were drained in the children and absorbed at shard join.
    assert len(pids) == 2
    assert os.getpid() not in pids
    # The merged buffer still exports as one loadable trace.
    assert export.validate_chrome_trace(export.to_chrome_trace(spans)) == []


def test_tracing_on_preserves_bit_identical_equivalence(tele):
    netlist = make_random_netlist(6, 40, seed=21)
    source = lambda: RandomPatternSource(6, seed=13)  # noqa: E731
    serial = simulate(netlist, None, source(),
                      max_patterns=128, jobs=1, batch_width=16)
    parallel = simulate(netlist, None, source(),
                        max_patterns=128, jobs=3, batch_width=16)
    assert parallel.first_detection == serial.first_detection
    assert parallel.n_patterns == serial.n_patterns


def test_write_trace_and_metrics_files(tmp_path, tele):
    netlist = make_random_netlist(5, 20, seed=3)
    result = simulate(netlist, None, RandomPatternSource(5, seed=2),
                      max_patterns=32, jobs=1, batch_width=16)
    manifest = RunManifest.collect(
        config={"test": True},
        shards=[s.to_json() for s in result.shards],
    )
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.prom"
    export.write_trace(trace_path, manifest=manifest)
    export.write_metrics(metrics_path)
    trace = json.loads(trace_path.read_text())
    assert export.validate_chrome_trace(trace) == []
    assert trace["otherData"]["manifest"]["config"] == {"test": True}
    assert "spans" not in trace["otherData"]["manifest"]
    samples = export.parse_prometheus_text(metrics_path.read_text())
    assert samples["engine_runs"] == 1.0


def test_env_var_enables_telemetry_in_fresh_process(tmp_path):
    script = (
        "from repro import telemetry\n"
        "assert telemetry.enabled()\n"
        "print('enabled')\n"
    )
    env = dict(os.environ, REPRO_TELEMETRY="1")
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    process = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, env=env, timeout=60,
    )
    assert process.returncode == 0, process.stderr
    assert "enabled" in process.stdout


def test_benchmark_record_script(tmp_path):
    script = os.path.join(
        os.path.dirname(__file__), os.pardir, "benchmarks", "record.py"
    )
    out = tmp_path / "BENCH_engine.json"
    process = subprocess.run(
        [sys.executable, os.path.abspath(script), "--out", str(out),
         "--scenarios", "c3a2m_kernel,mac4_kernel",
         "--jobs", "1,2", "--max-patterns", "256", "--quiet"],
        capture_output=True, text=True, timeout=300,
    )
    assert process.returncode == 0, process.stderr
    payload = json.loads(out.read_text())
    assert payload["kind"] == "bench-engine"
    assert payload["version"] == 3
    cells = {
        (entry["scenario"], entry["kernel"], entry["jobs"],
         entry["executor"])
        for entry in payload["entries"]
    }
    for scenario in ("c3a2m_kernel", "mac4_kernel"):
        for kernel in ("packed", "vec"):
            assert (scenario, kernel, 1, "serial") in cells
            for executor in ("serial", "thread", "process"):
                assert (scenario, kernel, 2, executor) in cells
    for entry in payload["entries"]:
        assert entry["wall_time"] > 0.0
        assert entry["patterns_per_second"] > 0.0

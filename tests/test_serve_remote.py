"""Serve x remote regression: an unavailable execution substrate is a
structured 503, not a generic failure.

When a submitted job names an executor whose backend cannot start — the
``remote`` backend with no reachable peers being the canonical case —
the service must fail *that job* with ``503 executor-unavailable`` and a
``retry_after`` hint, keep serving, and replay the same structured error
from the result endpoint.  A misconfigured peer set must never look like
a bug in the design under test.
"""

from __future__ import annotations

import socket

import pytest

from repro.exec.remote import START_GRACE_ENV_VAR, set_default_peers
from repro.serve.app import EXECUTOR_RETRY_AFTER_SECONDS
from tests.serve_utils import thread_server


@pytest.fixture
def dead_peer(monkeypatch):
    """A peer address nobody listens on, pinned as the peer set."""
    monkeypatch.setenv(START_GRACE_ENV_VAR, "0")
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    set_default_peers(f"127.0.0.1:{port}")
    try:
        yield f"127.0.0.1:{port}"
    finally:
        set_default_peers(None)


def test_unreachable_peers_fail_the_job_with_structured_503(
    dead_peer, tmp_path
):
    with thread_server(tmp_path) as (server, client):
        del server
        doc = client.submit(
            {"design": "mac4", "executor": "remote", "jobs": 2,
             "max_patterns": 64}
        )
        done = client.wait(doc["id"])
        assert done["state"] == "failed"
        status, body = client.result(doc["id"])
        assert status == 503
        assert body["error"] == "executor-unavailable"
        assert body["retry_after"] == EXECUTOR_RETRY_AFTER_SECONDS
        assert "could not reach" in body["message"]
        # The substrate failure poisoned one job, not the service: the
        # same design still runs on a local backend.
        recovered = client.submit(
            {"design": "mac4", "executor": "serial", "max_patterns": 64}
        )
        assert client.wait(recovered["id"])["state"] == "done"


def test_no_peers_at_all_is_the_same_structured_503(
    monkeypatch, tmp_path
):
    monkeypatch.delenv("REPRO_PEERS", raising=False)
    set_default_peers(None)
    with thread_server(tmp_path) as (server, client):
        del server
        doc = client.submit(
            {"design": "mac4", "executor": "remote", "jobs": 2,
             "max_patterns": 64}
        )
        assert client.wait(doc["id"])["state"] == "failed"
        status, body = client.result(doc["id"])
        assert status == 503
        assert body["error"] == "executor-unavailable"
        assert "no peers" in body["message"]

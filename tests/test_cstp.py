"""Circular self-test path (the paper's CSTP contrast)."""

import pytest

from repro.core.bibs import make_bibs_testable
from repro.bist.session import BISTSession
from repro.datapath.compiler import Add, Mul, Var, compile_datapath
from repro.errors import SimulationError
from repro.graph.build import build_circuit_graph
from repro.rtl.circuit import RTLCircuit
from repro.tpg.cstp import CSTPSession


@pytest.fixture(scope="module")
def mac3():
    a, b = Var("a"), Var("b")
    compiled = compile_datapath([("o", Add(Mul(a, b), a))], "t", width=3)
    return compiled.circuit


def test_ring_covers_all_register_cells(mac3):
    session = CSTPSession(mac3)
    assert len(session.ring) == mac3.total_register_bits()


def test_registerless_circuit_rejected():
    circuit = RTLCircuit("c")
    pi = circuit.new_input("pi", 2)
    out = circuit.add_net("out", 2)
    from repro.datapath.modules import passthrough_spec

    _, wf, ge = passthrough_spec(2)
    circuit.add_block("B", [pi], [out], word_func=wf, gate_expander=ge)
    circuit.mark_output(out)
    with pytest.raises(SimulationError):
        CSTPSession(circuit)


def test_golden_signature_deterministic(mac3):
    session = CSTPSession(mac3)
    assert session.run(50).golden_state == session.run(50).golden_state


def test_detects_faults(mac3):
    session = CSTPSession(mac3)
    design = make_bibs_testable(build_circuit_graph(mac3))
    faults = BISTSession(mac3, design.kernels[0]).kernel_fault_universe()
    result = session.run(512, faults=faults)
    assert result.coverage > 0.9


def test_chunking_consistency(mac3):
    session = CSTPSession(mac3)
    faults = session.fault_universe()[:30]
    a = session.run(60, faults=faults, machines_per_pass=8)
    b = session.run(60, faults=faults, machines_per_pass=64)
    assert a.golden_state == b.golden_state
    assert set(a.detected) == set(b.detected)


def test_input_coverage_needs_multiple_periods(mac3):
    """The paper's CSTP drawback: all 2^M kernel input patterns take
    roughly T x 2^M cycles with T well above 1."""
    session = CSTPSession(mac3)
    space = 1 << 6  # R_a + R_b = 6 bits
    coverage = session.input_pattern_coverage(
        ["R_a", "R_b"], max_cycles=16 * space,
        checkpoints=[space, 2 * space],
    )
    assert coverage[space] < 0.9          # one "period" is far from enough
    exhausted = [c for c, frac in coverage.items() if frac == 1.0]
    assert exhausted, "CSTP never covered the input space"
    t_factor = min(exhausted) / space
    assert 1.5 < t_factor < 16


def test_bibs_tpg_covers_in_one_period(mac3):
    """Contrast: the BIBS TPG is functionally exhaustive in 2^M - 1."""
    design = make_bibs_testable(build_circuit_graph(mac3))
    session = BISTSession(mac3, design.kernels[0])
    from repro.tpg.verify import verify_design

    assert all(v.exhaustive for v in verify_design(session.tpg))

"""Smoke tests: every example script runs green.

Examples are user-facing documentation; these tests keep them honest.
Heavier scripts get reduced budgets via their CLI flags.
"""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr[-2000:]
    return process.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "100.00% of detectable" in out
    assert "BIBS converts" in out


def test_filter_bist_comparison():
    out = run_example(
        "filter_bist_comparison.py",
        "--circuit", "c5a2m", "--max-patterns", "4096", "--seeds", "1",
    )
    assert "# of BILBO registers" in out
    assert "BIBS" in out and "KA-85" in out


def test_tpg_gallery():
    out = run_example("tpg_gallery.py")
    assert "7.2%" in out
    assert "[OK]" in out and "FAIL" not in out


def test_pseudo_exhaustive_tour():
    out = run_example("pseudo_exhaustive_tour.py")
    assert "M =  8" in out or "M = 8" in out
    assert "12-stage LFSR" in out


def test_balance_explorer():
    out = run_example("balance_explorer.py")
    assert "BIBS saves 2 registers / 9 flip-flops" in out


def test_selftest_dry_run():
    out = run_example("selftest_dry_run.py")
    assert "controller program" in out
    assert "signature-detected" in out


def test_testability_tour():
    out = run_example("testability_tour.py")
    assert "k = 2" in out
    assert "functionally exhaustive in one period" in out

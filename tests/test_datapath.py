"""Datapath compiler and the Table-1 filter circuits."""

import random

import pytest

from repro.datapath.compiler import (
    Add,
    Mul,
    Var,
    compile_datapath,
    evaluate_expr,
    expr_stage,
)
from repro.datapath.filters import FUNCTION_STRINGS, all_filters, c3a2m, c4a4m, c5a2m
from repro.datapath.modules import adder_spec, multiplier_spec, passthrough_spec
from repro.errors import RTLError
from repro.graph.build import build_circuit_graph
from repro.analysis.balance import is_balanced
from repro.rtl.simulate import RTLSimulator, flatten_latency


# ---------------------------------------------------------------- modules

def test_adder_spec_slices_wide_operands():
    _, word_func, _ = adder_spec(4)
    assert word_func([0xFF, 0x01]) == [0]  # (15 + 1) mod 16 with slicing


def test_multiplier_spec_full_product():
    _, word_func, _ = multiplier_spec(4, 8)
    assert word_func([15, 15]) == [225]


def test_passthrough_spec():
    _, word_func, _ = passthrough_spec(4)
    assert word_func([9]) == [9]


# --------------------------------------------------------------- compiler

def test_expr_stage():
    a, b, c = Var("a"), Var("b"), Var("c")
    expr = Add(Mul(Add(a, b), c), a)
    assert expr_stage(a) == 0
    assert expr_stage(expr) == 3


def test_bare_var_output_rejected():
    with pytest.raises(RTLError):
        compile_datapath([("o", Var("a"))], "bad")


def test_shared_subexpression_single_block():
    a, b, c = Var("a"), Var("b"), Var("c")
    shared = Add(a, b)
    compiled = compile_datapath(
        [("o", Mul(shared, c)), ("p", Mul(shared, a))], "shared", width=4
    )
    assert compiled.n_adders == 1
    assert compiled.n_multipliers == 2


def test_compiled_datapaths_are_balanced():
    for compiled in all_filters().values():
        graph = build_circuit_graph(compiled.circuit)
        assert is_balanced(graph), compiled.circuit.name


def test_filter_structure_counts():
    """The register-placement model of DESIGN.md Section 7."""
    f5 = c5a2m()
    assert (f5.n_adders, f5.n_multipliers) == (5, 2)
    assert len(f5.circuit.registers) == 15
    assert f5.n_delay_registers == 0
    assert f5.n_stages == 3

    f3 = c3a2m()
    assert (f3.n_adders, f3.n_multipliers) == (3, 2)
    assert len(f3.circuit.registers) == 21
    assert f3.n_delay_registers == 10
    assert f3.n_stages == 5

    f4 = c4a4m()
    assert (f4.n_adders, f4.n_multipliers) == (4, 4)
    assert len(f4.circuit.registers) == 20
    assert f4.n_delay_registers == 4
    assert f4.n_stages == 3


def test_filter_pi_po_counts():
    assert len(c5a2m().circuit.primary_inputs) == 8
    assert len(c3a2m().circuit.primary_inputs) == 6
    assert len(c4a4m().circuit.primary_inputs) == 8
    assert len(c4a4m().circuit.primary_outputs) == 2


def test_function_strings_cover_all():
    assert set(FUNCTION_STRINGS) == set(all_filters())


@pytest.mark.parametrize("width", [4])
def test_c5a2m_functional_behaviour(width):
    """The pipeline computes the paper's expression after its latency."""
    compiled = c5a2m(width=width)
    circuit = compiled.circuit
    simulator = RTLSimulator(circuit)
    latency = flatten_latency(circuit)
    rng = random.Random(7)
    vectors = [
        {name: rng.randrange(1 << width) for name in "abcdefgh"}
        for _ in range(12)
    ]
    trace = simulator.run(vectors)
    mask = (1 << width) - 1
    out_name = circuit.nets[circuit.primary_outputs[0]].name
    for t in range(latency, len(vectors)):
        v = vectors[t - latency]
        expected = (
            ((v["a"] + v["b"]) & mask) * ((v["c"] + v["d"]) & mask)
            + ((v["e"] + v["f"]) & mask) * ((v["g"] + v["h"]) & mask)
        ) & mask
        assert trace[t][out_name] == expected


def test_c4a4m_dual_output_behaviour():
    compiled = c4a4m(width=4)
    circuit = compiled.circuit
    simulator = RTLSimulator(circuit)
    latency = flatten_latency(circuit)
    rng = random.Random(9)
    vectors = [
        {name: rng.randrange(16) for name in "abcdefgh"}
        for _ in range(10)
    ]
    trace = simulator.run(vectors)
    names = [circuit.nets[n].name for n in circuit.primary_outputs]
    for t in range(latency, len(vectors)):
        v = vectors[t - latency]
        fg = (v["f"] + v["g"]) & 0xF
        bc = (v["b"] + v["c"]) & 0xF
        o = ((v["a"] * fg) & 0xF) + ((v["e"] * bc) & 0xF) & 0xF
        o = (((v["a"] * fg) & 0xF) + ((v["e"] * bc) & 0xF)) & 0xF
        p = (((v["d"] * bc) & 0xF) + ((v["h"] * fg) & 0xF)) & 0xF
        outputs = trace[t]
        assert outputs[names[0]] == o
        assert outputs[names[1]] == p


def test_evaluate_expr_matches_word_semantics():
    a, b = Var("a"), Var("b")
    expr = Mul(Add(a, b), a)
    value = evaluate_expr(expr, {"a": 10, "b": 9}, width=4, mul_out_width=8)
    assert value == (((10 + 9) & 0xF) * 10) & 0xFF

"""Equivalence collapsing correctness."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.faultsim.collapse import collapse_faults, collapse_ratio
from repro.faultsim.simulator import FaultSimulator
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist

from tests.conftest import make_random_netlist, tiny_and_or


def test_collapse_shrinks_universe():
    netlist = tiny_and_or()
    representatives, mapping = collapse_faults(netlist)
    assert len(representatives) < len(mapping)
    assert set(mapping.values()) == set(representatives)


def test_and_gate_collapse_rule():
    # For y = AND(a, b): a/0, b/0 and y/0 are one equivalence class.
    netlist = Netlist()
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    y = netlist.add_gate(GateType.AND, [a, b])
    netlist.mark_output(y)
    representatives, mapping = collapse_faults(netlist)
    classes = {}
    for fault, rep in mapping.items():
        classes.setdefault(rep, set()).add((fault.net, fault.stuck_at))
    merged = [c for c in classes.values() if len(c) > 1]
    assert len(merged) == 1
    assert merged[0] == {(a, 0), (b, 0), (y, 0)}


def test_nand_gate_collapse_rule():
    netlist = Netlist()
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    y = netlist.add_gate(GateType.NAND, [a, b])
    netlist.mark_output(y)
    _, mapping = collapse_faults(netlist)
    classes = {}
    for fault, rep in mapping.items():
        classes.setdefault(rep, set()).add((fault.net, fault.stuck_at))
    merged = [c for c in classes.values() if len(c) > 1]
    assert merged == [{(a, 0), (b, 0), (y, 1)}]


def test_not_chain_collapses_through():
    # a -> NOT -> NOT -> y: all faults collapse to 2 classes.
    netlist = Netlist()
    a = netlist.new_input("a")
    t = netlist.add_gate(GateType.NOT, [a])
    y = netlist.add_gate(GateType.NOT, [t])
    netlist.mark_output(y)
    representatives, _ = collapse_faults(netlist)
    assert len(representatives) == 2


def test_xor_admits_no_collapse():
    netlist = Netlist()
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    y = netlist.add_gate(GateType.XOR, [a, b])
    netlist.mark_output(y)
    representatives, mapping = collapse_faults(netlist)
    assert len(representatives) == len(mapping) == 6


@given(st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_collapsed_classes_are_truly_equivalent(seed):
    """Property: a pattern detects a fault iff it detects its representative.

    Checked exhaustively over all input patterns of a small random netlist.
    """
    netlist = make_random_netlist(4, 12, seed=seed)
    _, mapping = collapse_faults(netlist)
    simulator = FaultSimulator(netlist)
    patterns = list(itertools.product((0, 1), repeat=4))
    for fault, rep in mapping.items():
        if fault == rep:
            continue
        for pattern in patterns:
            assert simulator.detects(fault, pattern) == simulator.detects(rep, pattern)


def test_collapse_ratio_bounds():
    netlist = make_random_netlist(4, 20, seed=2)
    ratio = collapse_ratio(netlist)
    assert 0 < ratio <= 1

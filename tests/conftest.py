"""Shared test fixtures and strategies."""

from __future__ import annotations

import os
import random
from typing import List

import pytest

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist

try:  # pragma: no cover - hypothesis is in the [test] extra, but optional
    from hypothesis import HealthCheck, settings

    # CI pins a profile (plus --hypothesis-seed) for deterministic runs;
    # the nightly profile searches much harder with a fresh seed.
    settings.register_profile(
        "ci", max_examples=40, deadline=None, derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile(
        "nightly", max_examples=400, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile("dev", max_examples=30, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover
    pass


def make_random_netlist(
    n_inputs: int, n_gates: int, seed: int, n_outputs: int = 2
) -> Netlist:
    """A random DAG netlist (deterministic for a given seed)."""
    rng = random.Random(seed)
    netlist = Netlist(f"random{seed}")
    available: List[int] = netlist.new_inputs(n_inputs, prefix="i")
    binary = [
        GateType.AND, GateType.NAND, GateType.OR,
        GateType.NOR, GateType.XOR, GateType.XNOR,
    ]
    for index in range(n_gates):
        gtype = rng.choice(binary + [GateType.NOT])
        if gtype is GateType.NOT:
            inputs = [rng.choice(available)]
        else:
            inputs = rng.sample(available, k=min(2, len(available)))
            if len(inputs) == 1:
                inputs = inputs * 2
        out = netlist.add_gate(gtype, inputs, name=f"g{index}")
        available.append(out)
    for net in available[-n_outputs:]:
        netlist.mark_output(net)
    netlist.validate()
    return netlist


def tiny_and_or() -> Netlist:
    """y = (a AND b) OR c — the workhorse 2-gate example."""
    netlist = Netlist("tiny")
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    c = netlist.new_input("c")
    t = netlist.add_net("t")
    netlist.add_gate(GateType.AND, [a, b], t, name="t")
    y = netlist.add_net("y")
    netlist.add_gate(GateType.OR, [t, c], y, name="y")
    netlist.mark_output(y)
    return netlist


@pytest.fixture
def tiny():
    return tiny_and_or()

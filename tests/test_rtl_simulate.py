"""Word-level RTL simulation and the register-flattening equivalence."""

import random

import pytest

from repro.datapath.compiler import Add, Mul, Var, compile_datapath, evaluate_expr
from repro.errors import RTLError
from repro.rtl.simulate import RTLSimulator, flatten_latency
from repro.rtl.circuit import RTLCircuit


def mac_circuit():
    a, b, c = Var("a"), Var("b"), Var("c")
    return compile_datapath([("o", Add(Mul(a, b), c))], "mac", width=4)


def test_pipeline_latency_matches_graph_depth():
    compiled = mac_circuit()
    assert flatten_latency(compiled.circuit) == compiled.n_stages + 1


def test_simulator_computes_expression_after_latency():
    compiled = mac_circuit()
    simulator = RTLSimulator(compiled.circuit)
    latency = flatten_latency(compiled.circuit)
    rng = random.Random(3)
    vectors = [
        {"a": rng.randrange(16), "b": rng.randrange(16), "c": rng.randrange(16)}
        for _ in range(20)
    ]
    trace = simulator.run(vectors)
    out_name = compiled.circuit.nets[compiled.circuit.primary_outputs[0]].name
    for t in range(latency, len(vectors)):
        expected = evaluate_expr(
            Add(Mul(Var("a"), Var("b")), Var("c")),
            vectors[t - latency], width=4, mul_out_width=8,
        )
        assert trace[t][out_name] == expected & 0xF


def test_flattening_equivalence():
    """The BIBS-kernel netlist equals the RTL pipeline output, latency-shifted.

    This is the operational content of Theorem 1: in a balanced circuit,
    flattening registers to wires preserves per-pattern behaviour.
    """
    from repro.core.bibs import make_bibs_testable
    from repro.core.flow import lower_kernel_to_netlist
    from repro.graph.build import build_circuit_graph
    from repro.netlist.evaluate import evaluate_single

    compiled = mac_circuit()
    circuit = compiled.circuit
    design = make_bibs_testable(build_circuit_graph(circuit))
    kernel = design.kernels[0]
    netlist = lower_kernel_to_netlist(circuit, kernel)

    rng = random.Random(11)
    for _ in range(15):
        vector = {name: rng.randrange(16) for name in ("a", "b", "c")}
        assign = {}
        for net in netlist.primary_inputs:
            pin_name = netlist.net_name(net)          # e.g. R_a_3
            register, bit = pin_name.rsplit("_", 1)
            var = register[2:]                        # strip the R_ prefix
            assign[net] = (vector[var] >> int(bit)) & 1
        values = evaluate_single(netlist, assign)
        word = sum(
            (values[net] & 1) << i
            for i, net in enumerate(netlist.primary_outputs)
        )
        expected = evaluate_expr(
            Add(Mul(Var("a"), Var("b")), Var("c")), vector, 4, 8
        )
        assert word == expected & 0xF


def test_simulator_rejects_blocks_without_word_funcs():
    circuit = RTLCircuit()
    pi = circuit.new_input("pi", 4)
    out = circuit.add_net("out", 4)
    circuit.add_block("B", [pi], [out])
    circuit.mark_output(out)
    with pytest.raises(RTLError):
        RTLSimulator(circuit)


def test_missing_pi_value():
    compiled = mac_circuit()
    simulator = RTLSimulator(compiled.circuit)
    with pytest.raises(RTLError):
        simulator.step({"a": 1})


def test_register_state_persists():
    compiled = mac_circuit()
    simulator = RTLSimulator(compiled.circuit)
    simulator.step({"a": 5, "b": 3, "c": 1})
    assert simulator.register_state["R_a"] == 5
    simulator.step({"a": 0, "b": 0, "c": 0})
    assert simulator.register_state["R_a"] == 0

"""repro.exec backend suite: protocol, registry, and cross-backend identity.

The executor layer's contract is the engine's oldest invariant restated
one level down: *where* a shard round runs — in-process, on a thread, in
a worker process — can never move a result.  The suite pins the registry
and capability surface, proves all three backends bit-identical to the
serial baseline (with and without chaos injection), and exercises the
process backend's warm-pool reuse across ``simulate()`` calls.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.engine import FaultInjector, simulate
from repro.errors import SimulationError
from repro.exec import (
    ExecutionPolicy,
    Executor,
    ExecutorCapabilities,
    RetryPolicy,
    RunConfig,
    available_executors,
    create_executor,
    resolve_executor_name,
)
from repro.exec.base import EXECUTOR_ENV_VAR
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.coverage import coverage_curve
from repro.faultsim.patterns import RandomPatternSource
from tests.conftest import make_random_netlist

BACKENDS = ("serial", "thread", "process")


def _run(netlist, faults, *, executor=None, jobs=None, chaos=None,
         max_retries=2):
    source = RandomPatternSource(len(netlist.primary_inputs), seed=23)
    config = RunConfig(
        execution=ExecutionPolicy(
            executor=executor, jobs=jobs, batch_width=64, chunk_batches=1,
        ),
        retry=RetryPolicy(max_retries=max_retries, backoff=0.0),
        chaos=chaos,
        max_patterns=512,
    )
    return simulate(netlist, faults, source, config=config)


def assert_identical(baseline, result):
    assert result.first_detection == baseline.first_detection
    assert result.n_patterns == baseline.n_patterns
    assert coverage_curve(result) == coverage_curve(baseline)


# ----------------------------------------------------------------- registry


def test_registry_lists_all_backends():
    assert available_executors() == ("process", "serial", "thread")


def test_create_executor_unknown_name_raises():
    with pytest.raises(SimulationError, match="unknown executor"):
        create_executor("quantum")


def test_created_executors_satisfy_protocol():
    for name in BACKENDS:
        backend = create_executor(name)
        assert isinstance(backend, Executor)
        assert backend.name == name
        assert isinstance(backend.capabilities, ExecutorCapabilities)


def test_resolve_explicit_name_wins(monkeypatch):
    monkeypatch.setenv(EXECUTOR_ENV_VAR, "thread")
    assert resolve_executor_name("serial") == "serial"


def test_resolve_falls_back_to_environment(monkeypatch):
    monkeypatch.setenv(EXECUTOR_ENV_VAR, "thread")
    assert resolve_executor_name(None) == "thread"


def test_resolve_defaults_to_process(monkeypatch):
    monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
    assert resolve_executor_name(None) == "process"


def test_capability_flags_per_backend():
    serial = create_executor("serial").capabilities
    assert not serial.parallel and not serial.isolated
    assert not serial.supports_timeout and not serial.worker_pids
    thread = create_executor("thread").capabilities
    assert thread.parallel and thread.supports_timeout
    assert not thread.isolated and not thread.worker_pids
    process = create_executor("process").capabilities
    assert process.parallel and process.isolated
    assert process.supports_timeout and process.worker_pids


# ------------------------------------------------------------- bit-identity


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_matches_serial_baseline(backend):
    netlist = make_random_netlist(8, 30, seed=5)
    faults, _ = collapse_faults(netlist)
    baseline = _run(netlist, faults)
    result = _run(netlist, faults, executor=backend, jobs=3)
    assert_identical(baseline, result)
    assert result.executor == backend
    assert result.jobs == 3


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_matches_serial_baseline_under_crash_chaos(backend):
    netlist = make_random_netlist(8, 30, seed=6)
    faults, _ = collapse_faults(netlist)
    baseline = _run(netlist, faults)
    chaos = FaultInjector("crash", shard=1, round_index=0)
    result = _run(netlist, faults, executor=backend, jobs=3, chaos=chaos)
    assert_identical(baseline, result)
    assert result.retries >= 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_matches_serial_baseline_under_corrupt_chaos(backend):
    netlist = make_random_netlist(8, 30, seed=7)
    faults, _ = collapse_faults(netlist)
    baseline = _run(netlist, faults)
    chaos = FaultInjector("corrupt", shard=0, round_index=0)
    result = _run(netlist, faults, executor=backend, jobs=2, chaos=chaos)
    assert_identical(baseline, result)
    assert result.retries >= 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_unrelenting_failures_degrade_in_process(backend):
    netlist = make_random_netlist(8, 30, seed=8)
    faults, _ = collapse_faults(netlist)
    baseline = _run(netlist, faults)
    chaos = FaultInjector("crash", shard=0, round_index=0, times=100)
    result = _run(netlist, faults, executor=backend, jobs=2, chaos=chaos,
                  max_retries=1)
    assert_identical(baseline, result)
    assert 0 in result.degraded_shards


def test_jobs_one_stays_on_historical_serial_path():
    netlist = make_random_netlist(8, 30, seed=9)
    faults, _ = collapse_faults(netlist)
    result = _run(netlist, faults, executor="process", jobs=1)
    assert result.executor == "serial"
    assert result.jobs == 1


def test_executor_surfaces_in_json():
    netlist = make_random_netlist(8, 20, seed=10)
    faults, _ = collapse_faults(netlist)
    result = _run(netlist, faults, executor="thread", jobs=2)
    assert result.to_json()["engine"]["executor"] == "thread"


# ---------------------------------------------------------- warm-pool reuse


def test_process_pool_is_reused_across_simulate_calls():
    from repro.exec import process as exec_process

    exec_process._drain_pool_cache()
    netlist = make_random_netlist(8, 30, seed=11)
    faults, _ = collapse_faults(netlist)
    telemetry.reset()
    telemetry.enable()
    try:
        _run(netlist, faults, executor="process", jobs=2)
        assert len(exec_process._POOL_CACHE) == 1
        parked = next(iter(exec_process._POOL_CACHE.values()))
        _run(netlist, faults, executor="process", jobs=2)
        assert next(iter(exec_process._POOL_CACHE.values())) is parked
        counters = telemetry.get_telemetry().metrics.snapshot()["counters"]
        assert counters.get("exec.pool_reuse", 0) >= 1
    finally:
        telemetry.disable()
        telemetry.reset()
        exec_process._drain_pool_cache()


def test_changing_netlist_evicts_parked_pool():
    from repro.exec import process as exec_process

    exec_process._drain_pool_cache()
    first = make_random_netlist(8, 30, seed=12)
    second = make_random_netlist(8, 30, seed=13)
    try:
        faults, _ = collapse_faults(first)
        _run(first, faults, executor="process", jobs=2)
        parked = next(iter(exec_process._POOL_CACHE.values()))
        faults, _ = collapse_faults(second)
        _run(second, faults, executor="process", jobs=2)
        # One-slot cache: the old pool was evicted, a new one was parked.
        assert len(exec_process._POOL_CACHE) == 1
        assert next(iter(exec_process._POOL_CACHE.values())) is not parked
    finally:
        exec_process._drain_pool_cache()

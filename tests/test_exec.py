"""repro.exec backend suite: protocol, registry, and cross-backend identity.

The executor layer's contract is the engine's oldest invariant restated
one level down: *where* a shard round runs — in-process, on a thread, in
a worker process — can never move a result.  The suite pins the registry
and capability surface, proves all three backends bit-identical to the
serial baseline (with and without chaos injection), and exercises the
process backend's warm-pool reuse across ``simulate()`` calls.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.engine import FaultInjector, simulate
from repro.errors import SimulationError
from repro.exec import (
    ExecutionPolicy,
    Executor,
    ExecutorCapabilities,
    RetryPolicy,
    RunConfig,
    available_executors,
    create_executor,
    resolve_executor_name,
)
from repro.exec.base import EXECUTOR_ENV_VAR
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.coverage import coverage_curve
from repro.faultsim.patterns import RandomPatternSource
from repro.guard.budget import STOP_PATTERNS, Budget
from repro.library.scenarios import c3a2m_kernel
from tests.conftest import make_random_netlist

BACKENDS = ("serial", "thread", "process")
KERNELS = ("packed", "vec")


def _run(netlist, faults, *, executor=None, jobs=None, chaos=None,
         max_retries=2, kernel=None, budget=None, max_patterns=512):
    source = RandomPatternSource(len(netlist.primary_inputs), seed=23)
    config = RunConfig(
        execution=ExecutionPolicy(
            executor=executor, jobs=jobs, batch_width=64, chunk_batches=1,
            kernel=kernel,
        ),
        retry=RetryPolicy(max_retries=max_retries, backoff=0.0),
        chaos=chaos,
        budget=budget,
        max_patterns=max_patterns,
    )
    return simulate(netlist, faults, source, config=config)


def assert_identical(baseline, result):
    assert result.first_detection == baseline.first_detection
    assert result.n_patterns == baseline.n_patterns
    assert coverage_curve(result) == coverage_curve(baseline)


# ----------------------------------------------------------------- registry


def test_registry_lists_all_backends():
    assert available_executors() == ("process", "remote", "serial", "thread")


def test_create_executor_unknown_name_raises():
    with pytest.raises(SimulationError, match="unknown executor"):
        create_executor("quantum")


def test_created_executors_satisfy_protocol():
    for name in BACKENDS:
        backend = create_executor(name)
        assert isinstance(backend, Executor)
        assert backend.name == name
        assert isinstance(backend.capabilities, ExecutorCapabilities)


def test_resolve_explicit_name_wins(monkeypatch):
    monkeypatch.setenv(EXECUTOR_ENV_VAR, "thread")
    assert resolve_executor_name("serial") == "serial"


def test_resolve_falls_back_to_environment(monkeypatch):
    monkeypatch.setenv(EXECUTOR_ENV_VAR, "thread")
    assert resolve_executor_name(None) == "thread"


def test_resolve_defaults_to_process(monkeypatch):
    monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
    assert resolve_executor_name(None) == "process"


def test_capability_flags_per_backend():
    serial = create_executor("serial").capabilities
    assert not serial.parallel and not serial.isolated
    assert not serial.supports_timeout and not serial.worker_pids
    assert not serial.detects_hangs  # nobody can watch the parent thread
    thread = create_executor("thread").capabilities
    assert thread.parallel and thread.supports_timeout
    assert not thread.isolated and not thread.worker_pids
    assert thread.detects_hangs
    process = create_executor("process").capabilities
    assert process.parallel and process.isolated
    assert process.supports_timeout and process.worker_pids
    assert process.detects_hangs
    remote = create_executor("remote").capabilities
    assert remote.parallel and remote.isolated and remote.remote
    # The remote coordinator owns its deadlines: the driver must never
    # arm a shared deadline on top of the backend's internal one.
    assert not remote.supports_timeout
    assert remote.detects_hangs
    for name in ("serial", "thread", "process"):
        assert not create_executor(name).capabilities.remote


# ------------------------------------------------------------- bit-identity


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_matches_serial_baseline(backend):
    netlist = make_random_netlist(8, 30, seed=5)
    faults, _ = collapse_faults(netlist)
    baseline = _run(netlist, faults)
    result = _run(netlist, faults, executor=backend, jobs=3)
    assert_identical(baseline, result)
    assert result.executor == backend
    assert result.jobs == 3


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_matches_serial_baseline_under_crash_chaos(backend):
    netlist = make_random_netlist(8, 30, seed=6)
    faults, _ = collapse_faults(netlist)
    baseline = _run(netlist, faults)
    chaos = FaultInjector("crash", shard=1, round_index=0)
    result = _run(netlist, faults, executor=backend, jobs=3, chaos=chaos)
    assert_identical(baseline, result)
    assert result.retries >= 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_matches_serial_baseline_under_corrupt_chaos(backend):
    netlist = make_random_netlist(8, 30, seed=7)
    faults, _ = collapse_faults(netlist)
    baseline = _run(netlist, faults)
    chaos = FaultInjector("corrupt", shard=0, round_index=0)
    result = _run(netlist, faults, executor=backend, jobs=2, chaos=chaos)
    assert_identical(baseline, result)
    assert result.retries >= 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_unrelenting_failures_degrade_in_process(backend):
    netlist = make_random_netlist(8, 30, seed=8)
    faults, _ = collapse_faults(netlist)
    baseline = _run(netlist, faults)
    chaos = FaultInjector("crash", shard=0, round_index=0, times=100)
    result = _run(netlist, faults, executor=backend, jobs=2, chaos=chaos,
                  max_retries=1)
    assert_identical(baseline, result)
    assert 0 in result.degraded_shards


def test_jobs_one_stays_on_historical_serial_path():
    netlist = make_random_netlist(8, 30, seed=9)
    faults, _ = collapse_faults(netlist)
    result = _run(netlist, faults, executor="process", jobs=1)
    assert result.executor == "serial"
    assert result.jobs == 1


def test_executor_surfaces_in_json():
    netlist = make_random_netlist(8, 20, seed=10)
    faults, _ = collapse_faults(netlist)
    result = _run(netlist, faults, executor="thread", jobs=2)
    assert result.to_json()["engine"]["executor"] == "thread"


# ---------------------------------------------------------- warm-pool reuse


def test_process_pool_is_reused_across_simulate_calls():
    from repro.exec import process as exec_process

    exec_process._drain_pool_cache()
    netlist = make_random_netlist(8, 30, seed=11)
    faults, _ = collapse_faults(netlist)
    telemetry.reset()
    telemetry.enable()
    try:
        _run(netlist, faults, executor="process", jobs=2)
        assert len(exec_process._POOL_CACHE) == 1
        parked = next(iter(exec_process._POOL_CACHE.values()))
        _run(netlist, faults, executor="process", jobs=2)
        assert next(iter(exec_process._POOL_CACHE.values())) is parked
        counters = telemetry.get_telemetry().metrics.snapshot()["counters"]
        assert counters.get("exec.pool_reuse", 0) >= 1
    finally:
        telemetry.disable()
        telemetry.reset()
        exec_process._drain_pool_cache()


def test_changing_netlist_evicts_parked_pool():
    from repro.exec import process as exec_process

    exec_process._drain_pool_cache()
    first = make_random_netlist(8, 30, seed=12)
    second = make_random_netlist(8, 30, seed=13)
    try:
        faults, _ = collapse_faults(first)
        _run(first, faults, executor="process", jobs=2)
        parked = next(iter(exec_process._POOL_CACHE.values()))
        faults, _ = collapse_faults(second)
        _run(second, faults, executor="process", jobs=2)
        # One-slot cache: the old pool was evicted, a new one was parked.
        assert len(exec_process._POOL_CACHE) == 1
        assert next(iter(exec_process._POOL_CACHE.values())) is not parked
    finally:
        exec_process._drain_pool_cache()


# ----------------------------------------------------- kernel cross-product
#
# The vectorised kernel is an evaluation strategy, exactly like the
# executor choice one axis over: kernel × backend × chaos must all land
# on the same detection tables as the packed serial baseline, on a real
# scenario (the paper's c3a2m multiplier kernel), through the retry and
# degraded paths included.


@pytest.fixture(scope="module")
def c3a2m():
    netlist = c3a2m_kernel()
    faults, _ = collapse_faults(netlist)
    # Subsample to keep the 12-cell matrix quick; identity must hold for
    # any fault list, so a slice is as probing as the full universe.
    return netlist, faults[::3]


@pytest.fixture(scope="module")
def c3a2m_baseline(c3a2m):
    netlist, faults = c3a2m
    return _run(netlist, faults, kernel="packed")


def _require_kernel(kernel):
    if kernel == "vec":
        pytest.importorskip("numpy")


@pytest.mark.parametrize("with_chaos", (False, True), ids=("clean", "chaos"))
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("kernel", KERNELS)
def test_kernel_backend_chaos_cross_product(c3a2m, c3a2m_baseline, kernel,
                                            backend, with_chaos):
    _require_kernel(kernel)
    netlist, faults = c3a2m
    chaos = (FaultInjector("crash", shard=1, round_index=0)
             if with_chaos else None)
    result = _run(netlist, faults, executor=backend, jobs=3, chaos=chaos,
                  kernel=kernel)
    assert_identical(c3a2m_baseline, result)
    assert result.kernel == kernel
    assert result.kernel_fallback is None
    if with_chaos:
        assert result.retries >= 1


@pytest.mark.parametrize("kernel", KERNELS)
def test_degraded_shards_are_kernel_agnostic(c3a2m, c3a2m_baseline, kernel):
    """A shard that exhausts its retries degrades in-process identically
    under either kernel — the recovery path re-runs the same batches."""
    _require_kernel(kernel)
    netlist, faults = c3a2m
    chaos = FaultInjector("crash", shard=0, round_index=0, times=100)
    result = _run(netlist, faults, executor="thread", jobs=2, chaos=chaos,
                  max_retries=1, kernel=kernel)
    assert_identical(c3a2m_baseline, result)
    assert 0 in result.degraded_shards


@pytest.mark.parametrize("backend", ("serial", "thread"))
def test_budget_cut_partial_runs_report_identical_undetected_sets(
        c3a2m, backend):
    """A guard budget that cuts the run mid-universe must leave the two
    kernels in the same partial state: same surviving ``undetected`` set,
    same detections — including faults dropped in the very shard round
    the budget cut lands on."""
    pytest.importorskip("numpy")
    netlist, faults = c3a2m
    results = {}
    for kernel in KERNELS:
        results[kernel] = _run(
            netlist, faults, executor=backend, jobs=2, kernel=kernel,
            budget=Budget(max_patterns=192),
        )
    packed, vec = results["packed"], results["vec"]
    assert packed.partial and vec.partial
    assert packed.stop_reason == vec.stop_reason == STOP_PATTERNS
    # The cut lands at a round boundary, strictly inside the run.
    assert 0 < packed.n_patterns < 512
    assert vec.n_patterns == packed.n_patterns
    assert vec.first_detection == packed.first_detection
    assert set(vec.undetected) == set(packed.undetected)
    # Sanity: the cut actually left live faults behind.
    assert packed.undetected


def test_explicit_vec_falls_back_on_unsupported_netlist():
    """kernel="vec" on a netlist the vectorised kernel cannot evaluate
    (a gate beyond the fan-in ceiling) silently falls back to packed —
    with the reason surfaced — rather than erroring."""
    pytest.importorskip("numpy")
    from repro.engine.vec import MAX_VEC_FANIN
    from repro.netlist.gates import GateType
    from repro.netlist.netlist import Netlist

    netlist = Netlist("wide")
    inputs = netlist.new_inputs(MAX_VEC_FANIN + 4, prefix="i")
    netlist.mark_output(netlist.add_gate(GateType.OR, inputs, name="wide"))
    netlist.mark_output(netlist.add_gate(GateType.AND, inputs[:2], name="a"))
    faults, _ = collapse_faults(netlist)

    baseline = _run(netlist, faults, kernel="packed", max_patterns=128)
    for backend in BACKENDS:
        result = _run(netlist, faults, executor=backend, jobs=2,
                      kernel="vec", max_patterns=128)
        assert_identical(baseline, result)
        assert result.kernel == "packed"
        assert "fan-in" in result.kernel_fallback
        assert result.to_json()["engine"]["kernel_fallback"] == \
            result.kernel_fallback


def test_journal_resumes_across_kernels(tmp_path, c3a2m):
    """The kernel never forks the journal key: rounds journaled by a
    packed run replay under a vec resume, the remainder runs vectorised,
    and the merged result equals a straight-through run."""
    pytest.importorskip("numpy")
    from repro.engine import ChaosInterrupt
    from repro.exec import CheckpointPolicy

    netlist, faults = c3a2m
    ckpt = str(tmp_path / "journal")

    def run(kernel, chaos=None, resume=False):
        source = RandomPatternSource(len(netlist.primary_inputs), seed=23)
        config = RunConfig(
            execution=ExecutionPolicy(
                executor="serial", jobs=2, batch_width=64, chunk_batches=1,
                kernel=kernel,
            ),
            retry=RetryPolicy(max_retries=2, backoff=0.0),
            checkpoint=CheckpointPolicy(directory=ckpt, resume=resume),
            chaos=chaos,
            max_patterns=512,
        )
        return simulate(netlist, faults, source, config=config)

    reference = _run(netlist, faults, kernel="packed")
    with pytest.raises(ChaosInterrupt):
        run("packed", chaos=FaultInjector(mode="abort", shard=0))
    resumed = run("vec", resume=True)
    assert_identical(reference, resumed)
    assert resumed.rounds_resumed >= 1
    assert resumed.kernel == "vec"


def test_kernel_surfaces_in_json(c3a2m):
    pytest.importorskip("numpy")
    netlist, faults = c3a2m
    result = _run(netlist, faults, executor="thread", jobs=2, kernel="vec")
    engine = result.to_json()["engine"]
    assert engine["kernel"] == "vec"
    assert engine["kernel_fallback"] is None

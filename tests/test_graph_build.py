"""RTL -> circuit graph construction (Section 3.1 modelling rules)."""

from repro.graph.build import build_circuit_graph
from repro.graph.model import VertexKind
from repro.library.figures import figure1, figure3
from repro.rtl.circuit import RTLCircuit


def test_fanout_vertex_created_for_multi_sink_net():
    graph = build_circuit_graph(figure1())
    fanouts = graph.vertices_of_kind(VertexKind.FANOUT)
    assert len(fanouts) == 1  # the PI feeds both C and R


def test_no_fanout_vertex_for_single_sink():
    circuit = RTLCircuit()
    pi = circuit.new_input("pi", 4)
    r_out = circuit.add_net("r_out", 4)
    circuit.add_register("R", pi, r_out)
    c_out = circuit.add_net("c_out", 4)
    circuit.add_block("C", [r_out], [c_out])
    circuit.mark_output(c_out)
    graph = build_circuit_graph(circuit)
    assert not graph.vertices_of_kind(VertexKind.FANOUT)
    assert not graph.vertices_of_kind(VertexKind.VACUOUS)


def test_vacuous_vertex_between_chained_registers():
    circuit = RTLCircuit()
    pi = circuit.new_input("pi", 4)
    mid = circuit.add_net("mid", 4)
    circuit.add_register("R1", pi, mid)
    end = circuit.add_net("end", 4)
    circuit.add_register("R2", mid, end)
    circuit.mark_output(end)
    graph = build_circuit_graph(circuit)
    vacuous = graph.vertices_of_kind(VertexKind.VACUOUS)
    assert len(vacuous) == 1
    # Both register edges attach to the vacuous vertex.
    r1 = graph.edge_for_register("R1")
    r2 = graph.edge_for_register("R2")
    assert r1.head == vacuous[0].name
    assert r2.tail == vacuous[0].name


def test_no_vacuous_when_fanout_intervenes():
    """Register-to-register through a fanout: the fanout vertex serves."""
    circuit = RTLCircuit()
    pi = circuit.new_input("pi", 4)
    mid = circuit.add_net("mid", 4)
    circuit.add_register("R1", pi, mid)
    end = circuit.add_net("end", 4)
    circuit.add_register("R2", mid, end)
    c_out = circuit.add_net("c_out", 4)
    circuit.add_block("C", [mid], [c_out])  # mid now has two sinks
    circuit.mark_output(end)
    circuit.mark_output(c_out)
    graph = build_circuit_graph(circuit)
    assert not graph.vertices_of_kind(VertexKind.VACUOUS)
    fanout = graph.vertices_of_kind(VertexKind.FANOUT)[0]
    assert graph.edge_for_register("R1").head == fanout.name
    assert graph.edge_for_register("R2").tail == fanout.name


def test_register_edge_weights_are_widths():
    graph = build_circuit_graph(figure3())
    for edge in graph.register_edges():
        assert edge.weight == 8


def test_figure3_vertex_census():
    graph = build_circuit_graph(figure3())
    kinds = {}
    for vertex in graph.vertices.values():
        kinds[vertex.kind] = kinds.get(vertex.kind, 0) + 1
    assert kinds[VertexKind.LOGIC] == 8       # A..H
    assert kinds[VertexKind.INPUT] == 1
    assert kinds[VertexKind.OUTPUT] == 1
    assert kinds[VertexKind.FANOUT] == 1      # FO1
    assert kinds[VertexKind.VACUOUS] == 1     # V1 between R2 and R3
    assert len(graph.register_edges()) == 9   # R1..R9


def test_pi_and_po_vertices_named():
    graph = build_circuit_graph(figure1())
    assert any(v.name == "PI(pi)" for v in graph.input_vertices())
    assert any(v.name.startswith("PO(") for v in graph.output_vertices())


def test_block_ports_are_edges():
    """The paper: ports correspond to in/out edges on a vertex."""
    graph = build_circuit_graph(figure3())
    # H has four input ports in the reconstruction.
    assert len(graph.in_edges("H")) == 4
    assert len(graph.out_edges("H")) == 2

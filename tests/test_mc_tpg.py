"""Procedure MC_TPG against Examples 5-7 plus properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.library.kernels import (
    example5_kernel,
    example6_kernel,
    example7_kernel,
)
from repro.tpg.design import Cone, InputRegister, KernelSpec
from repro.tpg.mc_tpg import cone_spans, mc_tpg
from repro.tpg.verify import is_functionally_exhaustive, verify_design


def test_example5_displacement_and_lfsr_size():
    """Figure 17: displacement +2 and a 9-stage LFSR despite 8-wide cones."""
    design = mc_tpg(example5_kernel())
    assert design.lfsr_stages == 9
    # R1 at L1-4, two separation FFs, R2 at L7-10.
    assert design.register_label_span("R1") == (1, 4)
    assert design.register_label_span("R2") == (7, 10)
    spans = {s.cone: s for s in cone_spans(design)}
    assert spans["O1"].physical_span == 10 and spans["O1"].logical_span == 8
    assert spans["O2"].physical_span == 10 and spans["O2"].logical_span == 9


def test_example6_eleven_stages():
    """Figure 19: logical span 11 although the physical span is 10."""
    design = mc_tpg(example6_kernel())
    assert design.lfsr_stages == 11
    assert design.max_label == 11  # step 5 appended the eleventh stage
    spans = {s.cone: s for s in cone_spans(design)}
    assert spans["O2"].logical_span == 11


def test_example7_order_dependence():
    """Figure 21: 16 stages in the given order, 8 after permutation."""
    kernel = example7_kernel()
    assert mc_tpg(kernel).lfsr_stages == 16
    permuted = mc_tpg(kernel.permuted(["R1", "R3", "R2"]))
    assert permuted.lfsr_stages == 8
    # Sharing: R3 overlaps R1, R2 overlaps R3.
    assert permuted.register_label_span("R1") == (1, 4)
    assert permuted.register_label_span("R3") == (4, 7)
    assert permuted.register_label_span("R2") == (7, 10)


@pytest.mark.parametrize(
    "factory", [example5_kernel, example6_kernel, example7_kernel]
)
def test_examples_functionally_exhaustive_at_width3(factory):
    """Theorem 7 verified by exact enumeration at reduced width."""
    assert is_functionally_exhaustive(mc_tpg(factory(width=3)))


def test_example7_permuted_still_exhaustive_at_width3():
    # At width 3 the sharing offsets (fixed by depths) no longer scale with
    # the register width, so the best span is 7, not 2*width.
    design = mc_tpg(example7_kernel(width=3).permuted(["R1", "R3", "R2"]))
    assert design.lfsr_stages == 7
    assert is_functionally_exhaustive(design)


def test_single_cone_agrees_with_sc_tpg_sizing():
    from repro.tpg.sc_tpg import sc_tpg

    spec = KernelSpec.single_cone([("A", 3, 2), ("B", 3, 0)])
    assert mc_tpg(spec).lfsr_stages == sc_tpg(spec).lfsr_stages == 6


def test_unrelated_registers_share_stages():
    """Registers no cone jointly depends on overlap maximally."""
    spec = KernelSpec(
        (InputRegister("A", 4), InputRegister("B", 4)),
        (Cone("O1", {"A": 0}), Cone("O2", {"B": 0})),
    )
    design = mc_tpg(spec)
    assert design.lfsr_stages == 4
    assert design.register_label_span("A") == design.register_label_span("B")


def test_lfsr_at_least_max_cone_width():
    kernel = example7_kernel()
    for order in (["R1", "R2", "R3"], ["R3", "R2", "R1"], ["R2", "R1", "R3"]):
        design = mc_tpg(kernel.permuted(order))
        assert design.lfsr_stages >= kernel.max_cone_width


@st.composite
def random_multicone_kernel(draw):
    n_regs = draw(st.integers(2, 3))
    registers = tuple(
        InputRegister(f"R{i}", draw(st.integers(1, 3))) for i in range(n_regs)
    )
    n_cones = draw(st.integers(1, 3))
    cones = []
    for c in range(n_cones):
        members = draw(
            st.lists(
                st.sampled_from([r.name for r in registers]),
                min_size=1,
                max_size=n_regs,
                unique=True,
            )
        )
        depths = {m: draw(st.integers(0, 2)) for m in members}
        cones.append(Cone(f"O{c}", depths))
    return KernelSpec(registers, tuple(cones), name="random")


@given(random_multicone_kernel(), st.integers(1, 50))
@settings(max_examples=25, deadline=None)
def test_property_random_multicone_exhaustive(kernel, seed):
    """Property (Theorem 7): MC_TPG functionally exhaustively tests every
    cone of any small multi-cone kernel."""
    design = mc_tpg(kernel)
    if design.lfsr_stages > 11:  # keep exact enumeration cheap
        return
    seed = (seed % ((1 << design.lfsr_stages) - 1)) or 1
    verdicts = verify_design(design, seed=seed)
    assert all(v.exhaustive for v in verdicts), verdicts

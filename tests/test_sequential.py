"""Time-frame expansion and k-pattern detectability (Section 2's claims)."""

import pytest

from repro.datapath.compiler import Add, Mul, Var, compile_datapath
from repro.errors import SimulationError
from repro.faultsim.sequential import (
    SequentialFault,
    detects_sequence,
    minimum_detecting_length,
    unroll,
)
from repro.netlist.gates import GateType
from repro.rtl.circuit import RTLCircuit


def figure1_gate_level(width: int = 1) -> RTLCircuit:
    """Gate-level analog of Figure 1: y = AND(pi, R(pi))."""
    circuit = RTLCircuit("figure1_gates")
    pi = circuit.new_input("pi", width)
    r_out = circuit.add_net("r_out", width)
    circuit.add_register("R", pi, r_out)
    y = circuit.add_net("y", width)

    def expand(netlist, inputs, prefix):
        a, b = inputs
        return [[
            netlist.add_gate(GateType.AND, [a[i], b[i]], name=f"{prefix}_and{i}")
            for i in range(width)
        ]]

    def word(values):
        return [values[0] & values[1]]

    circuit.add_block("C", [pi, r_out], [y], word_func=word, gate_expander=expand)
    circuit.mark_output(y)
    return circuit


def pipeline(width: int = 1) -> RTLCircuit:
    """Balanced analog of Figure 2: y = NOT(R(pi))."""
    circuit = RTLCircuit("pipe")
    pi = circuit.new_input("pi", width)
    r_out = circuit.add_net("r_out", width)
    circuit.add_register("R", pi, r_out)
    y = circuit.add_net("y", width)

    def expand(netlist, inputs, prefix):
        return [[
            netlist.add_gate(GateType.NOT, [inputs[0][i]], name=f"{prefix}_n{i}")
            for i in range(width)
        ]]

    circuit.add_block(
        "C", [r_out], [y],
        word_func=lambda v: [~v[0]],
        gate_expander=expand,
    )
    circuit.mark_output(y)
    return circuit


def test_unroll_structure():
    circuit = figure1_gate_level()
    unrolled = unroll(circuit, 3)
    assert unrolled.frames == 3
    assert len(unrolled.frame_inputs) == 3
    # one AND gate per frame plus frame-0 reset constants
    ands = [g for g in unrolled.netlist.gates if g.gtype is GateType.AND]
    assert len(ands) == 3
    assert len(unrolled.fault_site_copies("pi", 0)) == 3


def test_unroll_needs_positive_frames():
    with pytest.raises(SimulationError):
        unroll(figure1_gate_level(), 0)


def test_figure1_fault_is_two_pattern_detectable():
    """The paper's Figure-1 claim: some faults need two-vector sequences."""
    circuit = figure1_gate_level()
    fault = SequentialFault("pi", 0, 0)  # PI stuck-at-0 feeds both paths
    assert minimum_detecting_length(circuit, fault, max_k=3) == 2


def test_output_fault_is_single_pattern():
    circuit = figure1_gate_level()
    assert minimum_detecting_length(circuit, SequentialFault("y", 0, 1), max_k=3) == 1


def test_balanced_pipeline_faults_are_single_pattern_after_fill():
    """All detectable faults of the balanced pipeline need k <= 2 frames
    (1 pattern + reset fill; the register output fault needs the vector to
    propagate through one frame)."""
    circuit = pipeline()
    for site, value in (("pi", 1), ("r_out", 1), ("y", 0)):
        k = minimum_detecting_length(circuit, SequentialFault(site, 0, value), max_k=3)
        assert k is not None and k <= 2, (site, value, k)


def test_sequence_length_mismatch():
    circuit = figure1_gate_level()
    unrolled = unroll(circuit, 2)
    with pytest.raises(SimulationError):
        detects_sequence(unrolled, SequentialFault("pi", 0, 0), [{"pi": 1}])


def test_specific_sequence_detection():
    circuit = figure1_gate_level()
    unrolled = unroll(circuit, 2)
    fault = SequentialFault("pi", 0, 0)
    assert detects_sequence(unrolled, fault, [{"pi": 1}, {"pi": 1}])
    assert not detects_sequence(unrolled, fault, [{"pi": 0}, {"pi": 0}])
    assert not detects_sequence(unrolled, fault, [{"pi": 1}, {"pi": 0}])


def test_undetectable_within_budget_returns_none():
    # y stuck at its fault-free value for all reachable inputs in 1 frame
    # and pi stuck-1 with constant-1 inputs never excites.
    circuit = figure1_gate_level()
    fault = SequentialFault("r_out", 0, 0)
    # r_out stuck-0: needs pi=1 at t-1 (excite) and pi=1 at t: k=2.
    assert minimum_detecting_length(circuit, fault, max_k=1) is None
    assert minimum_detecting_length(circuit, fault, max_k=2) == 2


def test_wider_datapath_random_search():
    a, b = Var("a"), Var("b")
    compiled = compile_datapath([("o", Add(Mul(a, b), a))], "tiny", width=3)
    fault = SequentialFault("R_a_q", 0, 0) if "R_a_q" in {
        n.name for n in compiled.circuit.nets
    } else SequentialFault("a_r", 0, 0)
    k = minimum_detecting_length(
        compiled.circuit, fault, max_k=4, random_trials=300
    )
    # The pipeline has depth 3; a register-output fault needs the pattern
    # plus propagation frames.
    assert k is not None and k <= 4

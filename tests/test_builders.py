"""Arithmetic gate builders against integer arithmetic."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.netlist.builders import (
    array_multiplier,
    equality_comparator,
    full_adder,
    half_adder,
    mux2,
    ripple_adder,
    word_mux2,
)
from repro.netlist.evaluate import evaluate_single
from repro.netlist.netlist import Netlist


def _build(width, builder, **kwargs):
    netlist = Netlist()
    a = netlist.new_inputs(width, prefix="a")
    b = netlist.new_inputs(width, prefix="b")
    outs = builder(netlist, a, b, **kwargs)
    for net in outs:
        netlist.mark_output(net)
    return netlist, a, b, outs


def _run(netlist, a_nets, b_nets, va, vb):
    assign = {}
    for i, net in enumerate(a_nets):
        assign[net] = (va >> i) & 1
    for i, net in enumerate(b_nets):
        assign[net] = (vb >> i) & 1
    values = evaluate_single(netlist, assign)
    return values


def _word(values, nets):
    return sum((values[net] & 1) << i for i, net in enumerate(nets))


def test_half_adder_truth():
    netlist = Netlist()
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    s, c = half_adder(netlist, a, b)
    netlist.mark_output(s)
    netlist.mark_output(c)
    for va, vb in itertools.product((0, 1), repeat=2):
        values = evaluate_single(netlist, {a: va, b: vb})
        assert values[s] == (va + vb) % 2
        assert values[c] == (va + vb) // 2


def test_full_adder_truth():
    netlist = Netlist()
    a, b, cin = netlist.new_input("a"), netlist.new_input("b"), netlist.new_input("c")
    s, c = full_adder(netlist, a, b, cin)
    for va, vb, vc in itertools.product((0, 1), repeat=3):
        values = evaluate_single(netlist, {a: va, b: vb, cin: vc})
        total = va + vb + vc
        assert values[s] == total % 2
        assert values[c] == total // 2


@pytest.mark.parametrize("width", [1, 2, 4])
def test_ripple_adder_exhaustive(width):
    netlist, a, b, outs = _build(width, ripple_adder)
    mask = (1 << width) - 1
    for va in range(1 << width):
        for vb in range(1 << width):
            values = _run(netlist, a, b, va, vb)
            assert _word(values, outs) == (va + vb) & mask


def test_ripple_adder_keep_carry():
    netlist, a, b, outs = _build(3, ripple_adder, keep_carry=True)
    assert len(outs) == 4
    values = _run(netlist, a, b, 7, 7)
    assert _word(values, outs) == 14


def test_ripple_adder_width_mismatch():
    netlist = Netlist()
    a = netlist.new_inputs(3, prefix="a")
    b = netlist.new_inputs(2, prefix="b")
    with pytest.raises(NetlistError):
        ripple_adder(netlist, a, b)


@pytest.mark.parametrize("width", [1, 2, 3])
def test_array_multiplier_exhaustive(width):
    netlist, a, b, outs = _build(width, array_multiplier)
    assert len(outs) == 2 * width
    for va in range(1 << width):
        for vb in range(1 << width):
            values = _run(netlist, a, b, va, vb)
            assert _word(values, outs) == va * vb


@pytest.mark.parametrize("out_width", [2, 4, 6])
def test_array_multiplier_truncated(out_width):
    netlist, a, b, outs = _build(4, array_multiplier, out_width=out_width)
    assert len(outs) == out_width
    mask = (1 << out_width) - 1
    for va, vb in [(15, 15), (9, 7), (12, 3), (1, 1)]:
        values = _run(netlist, a, b, va, vb)
        assert _word(values, outs) == (va * vb) & mask


@given(st.integers(0, 255), st.integers(0, 255))
@settings(max_examples=40, deadline=None)
def test_adder_and_multiplier_8bit(va, vb):
    netlist, a, b, outs = _build(8, ripple_adder)
    values = _run(netlist, a, b, va, vb)
    assert _word(values, outs) == (va + vb) & 0xFF

    netlist, a, b, outs = _build(8, array_multiplier)
    values = _run(netlist, a, b, va, vb)
    assert _word(values, outs) == va * vb


def test_equality_comparator():
    netlist = Netlist()
    a = netlist.new_inputs(3, prefix="a")
    b = netlist.new_inputs(3, prefix="b")
    eq = equality_comparator(netlist, a, b)
    for va in range(8):
        for vb in range(8):
            values = _run(netlist, a, b, va, vb)
            assert values[eq] == int(va == vb)


def test_mux2_and_word_mux():
    netlist = Netlist()
    s = netlist.new_input("s")
    x = netlist.new_input("x")
    y = netlist.new_input("y")
    out = mux2(netlist, s, x, y)
    for vs, vx, vy in itertools.product((0, 1), repeat=3):
        values = evaluate_single(netlist, {s: vs, x: vx, y: vy})
        assert values[out] == (vy if vs else vx)

    netlist = Netlist()
    s = netlist.new_input("s")
    x = netlist.new_inputs(4, prefix="x")
    y = netlist.new_inputs(4, prefix="y")
    outs = word_mux2(netlist, s, x, y)
    assign = {s: 1}
    assign.update({n: (0b1010 >> i) & 1 for i, n in enumerate(x)})
    assign.update({n: (0b0110 >> i) & 1 for i, n in enumerate(y)})
    values = evaluate_single(netlist, assign)
    assert _word(values, outs) == 0b0110

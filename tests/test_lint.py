"""The static design-rule checker: rules, reports, baselines, pre-flight."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.engine.core as engine_core
from repro.engine import simulate
from repro.errors import LintError
from repro.faultsim import RandomPatternSource
from repro.lint import (
    Finding,
    LintReport,
    Severity,
    all_rules,
    baseline_entries,
    lint_netlist,
    lint_structure,
    lint_testability,
    lint_tpg,
    load_baseline,
    rules_for,
    write_baseline,
)
from repro.lint.registry import get_rule

from tests.conftest import make_random_netlist, tiny_and_or
from tests.fixtures.lint import CLEAN, POSITIVE, cyclic_netlist

ALL_RULE_IDS = sorted(POSITIVE)


def run_family(rule_id, obj):
    target = get_rule(rule_id).target
    if target == "netlist":
        return lint_netlist(obj)
    if target == "structure":
        return lint_structure(**obj)
    if target == "testability":
        return lint_testability(obj)
    return lint_tpg(obj)


# ------------------------------------------------------------------ registry


def test_registry_families_and_titles():
    rules = all_rules()
    assert [r.id for r in rules] == ALL_RULE_IDS
    assert len({r.id for r in rules}) == len(rules)
    for r in rules:
        assert r.target in ("netlist", "structure", "tpg", "testability")
        assert r.title, f"{r.id} needs a docstring title"
    assert {r.id for r in rules_for("netlist")} == {
        i for i in ALL_RULE_IDS if i.startswith("NL")
    }


# ---------------------------------------------------------- per-rule fixtures


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_rule_fires_on_positive_fixture(rule_id):
    report = run_family(rule_id, POSITIVE[rule_id]())
    fired = [f for f in report.findings if f.rule == rule_id]
    assert fired, f"{rule_id} missed its positive fixture"
    for finding in fired:
        assert finding.severity is get_rule(rule_id).severity
        assert finding.witness, f"{rule_id} must carry a witness"
        # The witness must survive the machine-readable path.
        json.dumps(finding.to_json(report.target), default=str)


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_rule_silent_on_clean_fixture(rule_id):
    report = run_family(rule_id, CLEAN[rule_id]())
    assert not [f for f in report.findings if f.rule == rule_id]


def test_testability_family_is_advisory_not_preflight():
    """TB rules forecast coverage; they must not block the engine the way
    the structural netlist family does."""
    from repro.lint import preflight_netlist
    from tests.fixtures.lint import resistant_and_tree_netlist

    netlist = resistant_and_tree_netlist()
    # The same netlist trips TB001/TB003 under lint_testability...
    report = lint_testability(netlist)
    assert {f.rule for f in report.findings} >= {"TB001", "TB003"}
    assert not report.has_errors  # advisory severities only
    # ...but sails through the structural pre-flight untouched.
    clean = preflight_netlist(netlist)
    assert not any(f.rule.startswith("TB") for f in clean.findings)


def test_lint_testability_reuses_supplied_profile():
    from repro.analysis import analyze_netlist

    netlist = tiny_and_or()
    profile = analyze_netlist(netlist)
    report = lint_testability(netlist, profile=profile, name="custom")
    assert report.target == "custom"
    assert not report.findings


def test_cycle_witness_names_the_actual_loop():
    report = lint_netlist(cyclic_netlist())
    [finding] = [f for f in report.findings if f.rule == "NL001"]
    assert set(finding.witness["cycle_nets"]) == {"x", "loop"}


# ------------------------------------------------------------------- reports


def test_report_renders_and_roundtrips():
    report = lint_netlist(POSITIVE["NL002"]())
    text = report.render_text()
    assert "NL002" in text and "error" in text
    doc = report.to_json()
    assert doc["kind"] == "lint-report"
    assert doc["counts"]["error"] == len(report.errors)
    fingerprints = {f["fingerprint"] for f in doc["findings"]}
    assert len(fingerprints) == len(doc["findings"])


def test_severity_filter_and_ordering():
    findings = [
        Finding("ZZ", Severity.INFO, "a", "info finding"),
        Finding("AA", Severity.ERROR, "b", "error finding"),
    ]
    report = LintReport("t", findings)
    assert [f.rule for f in report.findings] == ["AA", "ZZ"]  # errors first
    assert [f.rule for f in report.filtered("error").findings] == ["AA"]
    assert report.filtered("info").counts() == {
        "error": 1, "warning": 0, "info": 1,
    }


def test_fingerprint_ignores_message_but_not_location():
    a = Finding("NL001", Severity.ERROR, "net:x", "one wording")
    b = Finding("NL001", Severity.ERROR, "net:x", "another wording")
    c = Finding("NL001", Severity.ERROR, "net:y", "one wording")
    assert a.fingerprint("t") == b.fingerprint("t")
    assert a.fingerprint("t") != c.fingerprint("t")
    assert a.fingerprint("t") != a.fingerprint("other-target")


def test_baseline_roundtrip_suppresses_known_findings(tmp_path):
    report = lint_netlist(POSITIVE["NL003"]())
    assert report.has_errors
    path = tmp_path / "baseline.json"
    count = write_baseline(str(path), [report])
    assert count == len(baseline_entries([report]))
    suppressed = report.apply_baseline(load_baseline(str(path)))
    assert not suppressed.findings
    assert len(suppressed.suppressed) == len(report.findings)
    # A new finding at a different location is NOT suppressed.
    fresh = lint_netlist(POSITIVE["NL002"]())
    still = fresh.apply_baseline(load_baseline(str(path)))
    assert still.has_errors


def test_load_baseline_rejects_garbage(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"kind": "something-else"}')
    with pytest.raises(ValueError):
        load_baseline(str(path))


# ------------------------------------------------------------------ property


@settings(deadline=None)
@given(
    n_inputs=st.integers(min_value=2, max_value=6),
    n_gates=st.integers(min_value=1, max_value=24),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_builder_made_netlists_never_have_error_findings(
    n_inputs, n_gates, seed
):
    """Anything the public builder API constructs is lint-clean: the error
    rules exactly characterize what ``add_gate``/``validate`` make
    unconstructable."""
    netlist = make_random_netlist(n_inputs, n_gates, seed)
    report = lint_netlist(netlist)
    assert not report.errors, [f.render() for f in report.errors]


# ----------------------------------------------------------------- pre-flight


def test_simulate_check_rejects_cyclic_netlist_before_spawning(monkeypatch):
    """The pre-flight must raise with the cycle as a witness before any
    worker pool (and hence any shard process) is even constructed."""

    def explode(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("worker pool constructed despite lint failure")

    monkeypatch.setattr(engine_core, "_WorkerPool", explode)
    netlist = cyclic_netlist()
    with pytest.raises(LintError) as excinfo:
        simulate(netlist, None, RandomPatternSource(1, seed=1),
                 max_patterns=4, jobs=2)
    error = excinfo.value
    assert any(f.rule == "NL001" for f in error.findings)
    [cycle_finding] = [f for f in error.findings if f.rule == "NL001"]
    assert set(cycle_finding.witness["cycle_nets"]) == {"x", "loop"}


def test_simulate_check_false_is_bit_identical():
    netlist = tiny_and_or()
    source = RandomPatternSource(len(netlist.primary_inputs), seed=7)
    checked = simulate(netlist, None, source, max_patterns=64)
    unchecked = simulate(
        netlist, None,
        RandomPatternSource(len(netlist.primary_inputs), seed=7),
        max_patterns=64, check=False,
    )
    assert checked.detected == unchecked.detected
    assert checked.coverage() == unchecked.coverage()
    assert checked.n_patterns == unchecked.n_patterns


def test_session_check_rejects_reducible_polynomial():
    from repro.bist.session import BISTSession
    from repro.core.bibs import make_bibs_testable
    from repro.datapath.compiler import Add, Mul, Var, compile_datapath
    from repro.graph.build import build_circuit_graph
    from repro.tpg.mc_tpg import mc_tpg

    circuit = compile_datapath(
        [("o", Add(Mul(Var("a"), Var("b")), Var("c")))], "mac2", width=2
    ).circuit
    graph = build_circuit_graph(circuit)
    kernel = next(
        k for k in make_bibs_testable(graph).kernels if k.logic_blocks
    )
    bad = mc_tpg(kernel.to_kernel_spec(), polynomial=0b10101)
    with pytest.raises(LintError) as excinfo:
        BISTSession(circuit, kernel, tpg=bad)
    assert any(f.rule.startswith("TP") for f in excinfo.value.findings)
    # The escape hatch still constructs (results identical by definition:
    # lint never touches the session state).
    session = BISTSession(circuit, kernel, tpg=bad, check=False)
    assert session.tpg is bad

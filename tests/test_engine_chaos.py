"""Chaos suite: the parallel engine under injected worker failure.

Every test drives :func:`repro.engine.simulate` with a deterministic
:class:`FaultInjector` plan — crash a shard worker mid-round, hang it past
the shard timeout, corrupt its result payload, exhaust its retry budget —
and asserts the merged results are bit-identical to the serial ``jobs=1``
run on the paper's bundled circuits (figure 4, figure 9, c3a2m).  The
checkpoint tests interrupt a run mid-way with ``abort`` chaos and verify
that ``resume=True`` replays the journal instead of re-running completed
shard rounds (observed through ``ShardStats.rounds_resumed``).

Run the whole engine suite under ambient chaos locally with e.g.::

    REPRO_CHAOS=crash:1 PYTHONPATH=src python -m pytest tests/test_engine.py

See ``docs/TESTING.md`` for the full spec grammar.
"""

from __future__ import annotations


import pytest

from repro.engine import (
    ChaosError,
    ChaosInterrupt,
    FaultInjector,
    simulate,
)
from repro.engine.chaos import CHAOS_ENV_VAR
from repro.errors import SimulationError
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.patterns import RandomPatternSource
from tests.test_engine import (
    JOBS,
    assert_identical,
    c3a2m_netlists,
    figure4_netlists,
    figure9_netlists,
)

CIRCUITS = [figure4_netlists, figure9_netlists, c3a2m_netlists]
CIRCUIT_IDS = ["figure4", "figure9", "c3a2m"]


def _kernel_run(netlist, *, jobs, max_patterns=1 << 9, **options):
    faults, _ = collapse_faults(netlist)
    if len(faults) > 120:
        faults = faults[::7]
    source = RandomPatternSource(len(netlist.primary_inputs), seed=7)
    return simulate(
        netlist, faults, source,
        max_patterns=max_patterns, jobs=jobs, stop_when_complete=False,
        **options,
    )


# --------------------------------------------------------- injector parsing

def test_injector_parse_round_trips():
    injector = FaultInjector.parse("delay:2:round=1:times=3:seconds=0.25")
    assert injector == FaultInjector(
        mode="delay", shard=2, round_index=1, times=3, seconds=0.25
    )
    assert FaultInjector.parse("crash:0") == FaultInjector(mode="crash", shard=0)


def test_injector_parse_rejects_garbage():
    with pytest.raises(SimulationError):
        FaultInjector.parse("meltdown:0")
    with pytest.raises(SimulationError):
        FaultInjector.parse("crash")
    with pytest.raises(SimulationError):
        FaultInjector.parse("crash:0:bogus=1")


def test_injector_from_env(monkeypatch):
    monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
    assert FaultInjector.from_env() is None
    monkeypatch.setenv(CHAOS_ENV_VAR, "raise:1:times=2")
    injector = FaultInjector.from_env()
    assert injector.mode == "raise" and injector.shard == 1
    assert injector.times == 2


def test_injector_fires_only_on_target():
    injector = FaultInjector(mode="raise", shard=1, round_index=2, times=2)
    assert injector.fires(1, 2, 0) and injector.fires(1, 2, 1)
    assert not injector.fires(1, 2, 2)  # retry budget: attempt 2 succeeds
    assert not injector.fires(0, 2, 0)
    assert not injector.fires(1, 1, 0)


# ----------------------------------------- bit-identical under any failure

@pytest.mark.parametrize("build", CIRCUITS, ids=CIRCUIT_IDS)
@pytest.mark.parametrize("mode", ["crash", "raise", "corrupt"])
def test_single_shard_failure_is_bit_identical_to_serial(build, mode):
    """Acceptance: with chaos crashing any single shard, jobs=N results
    equal serial on the bundled circuits."""
    name, netlists = build()
    assert netlists, f"{name}: no logic kernels"
    netlist = netlists[0]
    serial = _kernel_run(netlist, jobs=1)
    chaotic = _kernel_run(
        netlist, jobs=JOBS,
        chaos=FaultInjector(mode=mode, shard=JOBS - 1),
    )
    assert_identical(serial, chaotic)
    stats = chaotic.shards
    # Under the remote backend a worker crash can be absorbed *below*
    # the driver — the node dies, the unit is re-dispatched to a
    # survivor, and the recovery shows up in NodeStats rather than in
    # shard retries.  Either surface must record the event.
    node_redispatches = sum(n.redispatched for n in chaotic.nodes)
    assert sum(s.retries for s in stats) + node_redispatches >= 1
    assert sum(s.failures for s in stats) + node_redispatches >= 1
    assert all(not s.degraded for s in stats)


@pytest.mark.parametrize("build", CIRCUITS, ids=CIRCUIT_IDS)
def test_hung_shard_times_out_and_retries(build):
    name, netlists = build()
    netlist = netlists[0]
    serial = _kernel_run(netlist, jobs=1)
    chaotic = _kernel_run(
        netlist, jobs=JOBS, shard_timeout=0.5,
        chaos=FaultInjector(mode="delay", shard=0, seconds=5.0),
    )
    assert_identical(serial, chaotic)
    stats = chaotic.shards
    assert sum(s.timeouts for s in stats) >= 1
    assert sum(s.retries for s in stats) >= 1


def test_exhausted_retries_degrade_to_in_process_serial():
    """A shard that fails on every attempt is re-run in-process; results
    still match serial and the degradation is visible in the stats."""
    _, netlists = figure4_netlists()
    netlist = netlists[0]
    serial = _kernel_run(netlist, jobs=1)
    chaotic = _kernel_run(
        netlist, jobs=JOBS, max_retries=2,
        chaos=FaultInjector(mode="raise", shard=1, times=10),
    )
    assert_identical(serial, chaotic)
    stats = chaotic.shards
    degraded = [s for s in stats if s.degraded]
    assert [s.shard for s in degraded] == [1]
    assert degraded[0].degraded_reason is not None
    assert chaotic.degraded_shards == [1]


def test_corruption_is_detected_not_merged():
    """A corrupted shard payload must never reach the merge: the checksum
    rejects it, the retry succeeds, and results stay exact."""
    _, netlists = figure9_netlists()
    netlist = netlists[0]
    serial = _kernel_run(netlist, jobs=1)
    chaotic = _kernel_run(
        netlist, jobs=2,
        chaos=FaultInjector(mode="corrupt", shard=0),
    )
    assert_identical(serial, chaotic)
    assert sum(s.failures for s in chaotic.shards) == 1


def test_ambient_chaos_env_var(monkeypatch):
    """REPRO_CHAOS drives injection without any code change."""
    _, netlists = figure4_netlists()
    netlist = netlists[0]
    serial = _kernel_run(netlist, jobs=1)
    monkeypatch.setenv(CHAOS_ENV_VAR, "raise:0")
    chaotic = _kernel_run(netlist, jobs=2)
    assert_identical(serial, chaotic)
    assert sum(s.retries for s in chaotic.shards) == 1


# --------------------------------------------------------- checkpoint/resume

def test_interrupted_parallel_run_resumes_from_journal(tmp_path):
    """Acceptance: an interrupted run re-invoked with resume=True completes
    without re-running journaled shard rounds."""
    _, netlists = figure4_netlists()
    netlist = netlists[0]
    ckpt = str(tmp_path / "journal")
    options = dict(jobs=2, checkpoint_dir=ckpt, chunk_batches=1,
                   max_patterns=1 << 10)

    reference = _kernel_run(netlist, jobs=1, max_patterns=1 << 10)
    with pytest.raises(ChaosInterrupt):
        _kernel_run(
            netlist, chaos=FaultInjector(mode="abort", shard=0), **options
        )

    resumed = _kernel_run(netlist, resume=True, **options)
    assert_identical(reference, resumed)
    stats = resumed.shards
    # Both shards replay their journaled round-0 records without touching
    # a worker; later rounds execute normally.
    assert [s.rounds_resumed for s in stats] == [1, 1]
    assert resumed.rounds_resumed == 2
    assert sum(s.retries for s in stats) == 0


def test_resume_false_clears_stale_journal(tmp_path):
    _, netlists = figure4_netlists()
    netlist = netlists[0]
    ckpt = str(tmp_path / "journal")
    options = dict(jobs=2, checkpoint_dir=ckpt, chunk_batches=1,
                   max_patterns=1 << 10)
    with pytest.raises(ChaosInterrupt):
        _kernel_run(
            netlist, chaos=FaultInjector(mode="abort", shard=0), **options
        )
    fresh = _kernel_run(netlist, resume=False, **options)
    assert fresh.rounds_resumed == 0


def test_interrupted_serial_run_resumes_from_journal(tmp_path):
    _, netlists = figure9_netlists()
    netlist = netlists[0]
    ckpt = str(tmp_path / "journal")
    options = dict(jobs=1, checkpoint_dir=ckpt, max_patterns=1 << 10)

    reference = _kernel_run(netlist, jobs=1, max_patterns=1 << 10)
    with pytest.raises(ChaosInterrupt):
        _kernel_run(
            netlist, chaos=FaultInjector(mode="abort", shard=1), **options
        )
    resumed = _kernel_run(netlist, resume=True, **options)
    assert_identical(reference, resumed)
    assert resumed.rounds_resumed >= 2


def test_journal_is_keyed_by_run_parameters(tmp_path):
    """A journal written for one pattern budget must not be replayed into
    a run with a different one — the run key separates them."""
    _, netlists = figure4_netlists()
    netlist = netlists[0]
    ckpt = str(tmp_path / "journal")
    with pytest.raises(ChaosInterrupt):
        _kernel_run(
            netlist, jobs=2, checkpoint_dir=ckpt, chunk_batches=1,
            max_patterns=1 << 10,
            chaos=FaultInjector(mode="abort", shard=0),
        )
    other = _kernel_run(
        netlist, jobs=2, checkpoint_dir=ckpt, chunk_batches=1,
        max_patterns=1 << 9, resume=True,
    )
    assert other.rounds_resumed == 0
    reference = _kernel_run(netlist, jobs=1, max_patterns=1 << 9)
    assert_identical(reference, other)


def test_truncated_record_is_skipped_and_rerun(tmp_path):
    """A half-written (truncated) record must be treated as never written:
    loading skips it and the resumed run re-executes that round."""
    _, netlists = figure4_netlists()
    netlist = netlists[0]
    ckpt = tmp_path / "journal"
    options = dict(jobs=2, checkpoint_dir=str(ckpt), chunk_batches=1,
                   max_patterns=1 << 10)
    reference = _kernel_run(netlist, jobs=1, max_patterns=1 << 10)
    with pytest.raises(ChaosInterrupt):
        _kernel_run(
            netlist, chaos=FaultInjector(mode="abort", shard=0), **options
        )
    records = sorted(ckpt.glob("*/shard*_round*.rec"))
    assert records
    # Truncate one record mid-pickle, as a crash between write and fsync
    # could leave it on a lesser filesystem.
    blob = records[0].read_bytes()
    records[0].write_bytes(blob[: max(1, len(blob) // 2)])
    resumed = _kernel_run(netlist, resume=True, **options)
    assert_identical(reference, resumed)
    assert resumed.rounds_resumed == len(records) - 1


def test_stale_tmp_files_are_swept_on_load_and_clear(tmp_path):
    """``*.tmp`` litter from a killed writer is removed, never replayed."""
    from repro.engine.checkpoint import CheckpointStore

    store = CheckpointStore(tmp_path, "a" * 64)
    store.record(0, 0, {1: 5}, [2, 3], 64)
    litter = store.directory / "dead-writer-1234.tmp"
    litter.write_bytes(b"half a pickle")
    records = store.load()
    assert (0, 0) in records
    assert not litter.exists()

    litter.write_bytes(b"more litter")
    store.clear()
    assert not litter.exists()
    assert store.n_records() == 0


def test_chaos_error_is_a_simulation_error():
    assert issubclass(ChaosError, SimulationError)
    assert issubclass(ChaosInterrupt, RuntimeError)


# ---------------------------------------------------- chaos + telemetry on


def test_chaos_with_tracing_enabled_stays_bit_identical():
    """Telemetry must not perturb the engine even while shards are being
    crashed and retried: serial == chaotic-parallel with tracing on, and
    the degraded fallback leaves a span behind."""
    from repro import telemetry

    _, netlists = figure4_netlists()
    netlist = netlists[0]
    serial = _kernel_run(netlist, jobs=1)
    instance = telemetry.get_telemetry()
    instance.reset()
    instance.enable()
    try:
        chaotic = _kernel_run(
            netlist, jobs=JOBS, max_retries=1,
            chaos=FaultInjector(mode="crash", shard=0, times=10),
        )
        assert_identical(serial, chaotic)
        degraded = [s.shard for s in chaotic.shards if s.degraded]
        # Shard 0 must degrade; a crash can poison the shared pool and
        # take co-scheduled shards past their budget with it.
        assert 0 in degraded
        names = {r.name for r in instance.tracer.snapshot()}
        assert "engine.shard_round.degraded" in names
        counters = instance.metrics.snapshot()["counters"]
        assert counters["engine.degraded_shards"] == len(degraded)
        assert counters["engine.failures"] >= 1
    finally:
        instance.reset()
        instance.disable()

"""Reconfigurable TPGs (Figure 20)."""

import pytest

from repro.errors import TPGError
from repro.library.kernels import example6_kernel, example7_kernel
from repro.tpg.mc_tpg import mc_tpg
from repro.tpg.reconfigurable import (
    ReconfigurableTPG,
    build_reconfigurable,
    compare_with_monolithic,
)
from repro.tpg.verify import is_functionally_exhaustive


def test_example6_time_savings():
    """Figure 20: testing the cones separately takes ~2 x 2^8 << 2^11."""
    kernel = example6_kernel()
    monolithic = mc_tpg(kernel)
    reconfigurable = build_reconfigurable(kernel)
    assert len(reconfigurable.sessions) == 2
    assert all(s.design.lfsr_stages == 8 for s in reconfigurable.sessions)
    assert reconfigurable.total_test_time < monolithic.test_time() / 3
    mono, reconf, speedup = compare_with_monolithic(kernel, monolithic)
    assert mono == monolithic.test_time()
    assert reconf == reconfigurable.total_test_time
    assert speedup > 3.0


def test_sessions_are_exhaustive_per_cone():
    reconfigurable = build_reconfigurable(example6_kernel(width=3))
    for session in reconfigurable.sessions:
        assert is_functionally_exhaustive(session.design)


def test_control_lines():
    reconfigurable = build_reconfigurable(example7_kernel())
    assert len(reconfigurable.sessions) == 3
    assert reconfigurable.n_control_lines == 2  # ceil(log2(3))


def test_reconfigured_stage_count_positive_when_labels_differ():
    kernel = example6_kernel()
    reconfigurable = build_reconfigurable(kernel)
    # R2's cells sit at different labels in the two configurations
    # (depths differ per cone), so muxes are needed.
    assert reconfigurable.n_reconfigured_stages > 0


def test_empty_sessions_rejected():
    with pytest.raises(TPGError):
        ReconfigurableTPG(example6_kernel(), [])

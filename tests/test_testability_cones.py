"""k-step classification and cone extraction."""

import pytest

from repro.analysis.cones import cone_dependencies, kernel_spec_from_graph
from repro.analysis.testability import (
    classify,
    is_one_step_functionally_testable,
    k_step,
)
from repro.core.bibs import make_bibs_testable
from repro.errors import BalanceError
from repro.graph.build import build_circuit_graph
from repro.graph.model import CircuitGraph, EdgeKind, VertexKind
from repro.library.figures import figure1, figure2, figure3, figure4
from repro.library.kernels import figure12a, figure17a, figure21a


# ------------------------------------------------------------- testability

def test_figure1_is_two_step():
    report = classify(build_circuit_graph(figure1()))
    assert report.acyclic and not report.balanced
    assert report.k_step == 2
    assert report.worst_witness is not None


def test_figure2_is_one_step():
    graph = build_circuit_graph(figure2())
    assert k_step(graph) == 1
    assert is_one_step_functionally_testable(graph)


def test_cyclic_circuit_unclassifiable():
    report = classify(build_circuit_graph(figure3()))
    assert report.k_step is None
    assert not report.acyclic


def test_figure4_k_step_is_three():
    """Paths C1->C3 of lengths 1 and 3 -> imbalance 2 -> 3-step."""
    assert k_step(build_circuit_graph(figure4())) == 3


# ------------------------------------------------------------------ cones

def _kernel_of(circuit):
    design = make_bibs_testable(build_circuit_graph(circuit))
    return [k for k in design.kernels if k.logic_blocks][0]


def test_figure12a_spec_recovery():
    spec = _kernel_of(figure12a()).to_kernel_spec()
    assert [r.name for r in spec.registers] == ["R1", "R2", "R3"]
    assert len(spec.cones) == 1
    assert dict(spec.cones[0].depths) == {"R1": 2, "R2": 1, "R3": 0}


def test_figure17a_spec_recovery():
    spec = _kernel_of(figure17a()).to_kernel_spec()
    depths = {cone.name: dict(cone.depths) for cone in spec.cones}
    assert depths == {
        "Rout1": {"R1": 2, "R2": 0},
        "Rout2": {"R1": 1, "R2": 0},
    }


def test_figure21a_spec_recovery():
    spec = _kernel_of(figure21a()).to_kernel_spec()
    depths = {cone.name: dict(cone.depths) for cone in spec.cones}
    assert depths == {
        "S1": {"R1": 2, "R2": 0},
        "S2": {"R1": 0, "R3": 1},
        "S3": {"R2": 1, "R3": 0},
    }


def test_cone_dependencies_helper():
    kernel = _kernel_of(figure21a())
    deps = cone_dependencies(kernel.graph, kernel.input_edges, kernel.output_edges)
    assert deps == {
        "S1": ["R1", "R2"],
        "S2": ["R1", "R3"],
        "S3": ["R2", "R3"],
    }


def test_unbalanced_kernel_rejected():
    graph = CircuitGraph()
    for name in ("in", "c1", "c2", "out"):
        graph.add_vertex(name, VertexKind.LOGIC)
    tpg = graph.add_edge("in", "c1", EdgeKind.REGISTER, 4, "T")
    graph.add_edge("c1", "c2", EdgeKind.REGISTER, 4, "I")
    graph.add_edge("c1", "c2", EdgeKind.WIRE)  # unequal-length pair
    sa = graph.add_edge("c2", "out", EdgeKind.REGISTER, 4, "S")
    kernel_graph = graph.subgraph(["c1", "c2"])
    with pytest.raises(BalanceError):
        kernel_spec_from_graph(kernel_graph, [tpg], [sa])

"""SCCs, cycles, URFS witnesses, topological order."""

import pytest

from repro.errors import GraphError
from repro.graph.build import build_circuit_graph
from repro.graph.model import CircuitGraph, EdgeKind, VertexKind
from repro.graph.structures import (
    cycle_register_edges,
    cyclic_vertices,
    find_urfs_witnesses,
    is_acyclic,
    sequential_path_lengths,
    simple_cycles,
    strongly_connected_components,
    topological_order,
)
from repro.library.figures import figure3


def chain(n: int) -> CircuitGraph:
    graph = CircuitGraph()
    for i in range(n):
        graph.add_vertex(f"v{i}", VertexKind.LOGIC)
    for i in range(n - 1):
        graph.add_edge(f"v{i}", f"v{i+1}", EdgeKind.REGISTER, 4, f"R{i}")
    return graph


def test_chain_is_acyclic():
    graph = chain(5)
    assert is_acyclic(graph)
    assert strongly_connected_components(graph) == [[f"v{i}"] for i in range(5)][::1] or True
    assert all(len(c) == 1 for c in strongly_connected_components(graph))
    assert not cyclic_vertices(graph)


def test_cycle_detected():
    graph = chain(3)
    graph.add_edge("v2", "v0", EdgeKind.REGISTER, 4, "Rb")
    assert not is_acyclic(graph)
    assert cyclic_vertices(graph) == {"v0", "v1", "v2"}
    components = strongly_connected_components(graph)
    assert sorted(map(len, components)) == [3]


def test_self_loop_detected():
    graph = chain(2)
    graph.add_edge("v0", "v0", EdgeKind.REGISTER, 4, "Rself")
    assert not is_acyclic(graph)
    assert "v0" in cyclic_vertices(graph)


def test_simple_cycles_enumeration():
    graph = chain(4)
    graph.add_edge("v3", "v0", EdgeKind.REGISTER, 4, "Ra")
    graph.add_edge("v2", "v1", EdgeKind.REGISTER, 4, "Rb")
    cycles = simple_cycles(graph)
    as_sets = sorted(frozenset(c) for c in cycles)
    assert frozenset({"v0", "v1", "v2", "v3"}) in as_sets
    assert frozenset({"v1", "v2"}) in as_sets
    assert len(cycles) == 2


def test_cycle_register_edges():
    graph = chain(3)
    graph.add_edge("v2", "v0", EdgeKind.REGISTER, 4, "Rback")
    cycles = simple_cycles(graph)
    edges = cycle_register_edges(graph, cycles[0])
    assert {e.register for e in edges} == {"R0", "R1", "Rback"}


def test_figure3_cycle_is_f_h():
    graph = build_circuit_graph(figure3())
    cycles = simple_cycles(graph)
    assert [sorted(c) for c in cycles] == [["F", "H"]]


def test_sequential_path_lengths_diamond():
    graph = CircuitGraph()
    for name in "sabt":
        graph.add_vertex(name, VertexKind.LOGIC)
    graph.add_edge("s", "a", EdgeKind.REGISTER, 4, "R1")
    graph.add_edge("a", "t", EdgeKind.REGISTER, 4, "R2")
    graph.add_edge("s", "b", EdgeKind.WIRE)
    graph.add_edge("b", "t", EdgeKind.REGISTER, 4, "R3")
    lengths = sequential_path_lengths(graph)
    assert lengths[("s", "t")] == (1, 2)
    assert lengths[("s", "a")] == (1, 1)
    witnesses = find_urfs_witnesses(graph)
    assert len(witnesses) == 1
    witness = witnesses[0]
    assert (witness.source, witness.target) == ("s", "t")
    assert witness.imbalance == 1


def test_sequential_path_lengths_rejects_cycles():
    graph = chain(2)
    graph.add_edge("v1", "v0", EdgeKind.REGISTER, 4, "Rb")
    with pytest.raises(GraphError):
        sequential_path_lengths(graph)


def test_topological_order():
    graph = chain(4)
    order = topological_order(graph)
    assert order.index("v0") < order.index("v3")
    graph.add_edge("v3", "v0", EdgeKind.REGISTER, 4, "Rb")
    with pytest.raises(GraphError):
        topological_order(graph)


def test_balanced_graph_has_no_witnesses():
    graph = chain(6)
    assert find_urfs_witnesses(graph) == []

"""Levelization and combinational-cycle detection."""

import pytest

from repro.errors import NetlistError
from repro.netlist.gates import GateType
from repro.netlist.levelize import levelize, levels
from repro.netlist.netlist import Netlist

from tests.conftest import make_random_netlist, tiny_and_or


def test_levelize_respects_dependencies():
    netlist = make_random_netlist(4, 30, seed=3)
    order = levelize(netlist)
    position = {g: i for i, g in enumerate(order)}
    driver = {gate.output: i for i, gate in enumerate(netlist.gates)}
    for index, gate in enumerate(netlist.gates):
        for net in gate.inputs:
            if net in driver:
                assert position[driver[net]] < position[index]


def test_levelize_detects_cycle():
    netlist = Netlist()
    a = netlist.new_input("a")
    x = netlist.add_net("x")
    y = netlist.add_net("y")
    netlist.add_gate(GateType.AND, [a, y], x)
    netlist.add_gate(GateType.OR, [a, x], y)
    with pytest.raises(NetlistError):
        levelize(netlist)


def test_levels_start_at_one():
    netlist = tiny_and_or()
    gate_levels = levels(netlist)
    assert gate_levels[0] == 1  # AND reads only PIs
    assert gate_levels[1] == 2  # OR reads the AND


def test_levels_of_parallel_gates_equal():
    netlist = Netlist()
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    g1 = netlist.add_gate(GateType.AND, [a, b])
    g2 = netlist.add_gate(GateType.OR, [a, b])
    netlist.add_gate(GateType.XOR, [g1, g2])
    gate_levels = levels(netlist)
    assert gate_levels[0] == gate_levels[1] == 1
    assert gate_levels[2] == 2


def test_empty_netlist_levelizes():
    netlist = Netlist()
    netlist.new_input("a")
    assert levelize(netlist) == []

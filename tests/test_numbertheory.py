"""Miller-Rabin and Pollard rho support."""

from hypothesis import given, settings, strategies as st

from repro.tpg.numbertheory import factorize, is_probable_prime, prime_factors


def test_small_primes():
    primes = [2, 3, 5, 7, 11, 13, 97, 7919]
    for p in primes:
        assert is_probable_prime(p)
    for n in [1, 4, 6, 9, 91, 7917]:
        assert not is_probable_prime(n)


def test_mersenne_factorizations():
    # Known factorizations of 2^n - 1 used by primitivity checks.
    assert prime_factors(2**11 - 1) == [23, 89]
    assert prime_factors(2**12 - 1) == [3, 5, 7, 13]
    assert prime_factors(2**16 - 1) == [3, 5, 17, 257]
    assert prime_factors(2**23 - 1) == [47, 178481]
    assert prime_factors(2**29 - 1) == [233, 1103, 2089]


def test_factorize_with_multiplicity():
    assert factorize(360) == {2: 3, 3: 2, 5: 1}
    assert factorize(1) == {}
    assert factorize(2**10) == {2: 10}


@given(st.integers(2, 10**9))
@settings(max_examples=60, deadline=None)
def test_factorization_roundtrip(n):
    factors = factorize(n)
    product = 1
    for prime, exponent in factors.items():
        assert is_probable_prime(prime)
        product *= prime**exponent
    assert product == n


def test_large_semiprime():
    p, q = 1_000_003, 1_000_033
    assert sorted(factorize(p * q)) == [p, q]

"""Unit tests for :mod:`repro.guard` — budgets, tokens, signals, watchdog.

Engine-level integration (partial results, resume bit-identity, the
memory-adaptation ladder) lives in ``tests/test_engine_guard.py``; the
real-subprocess signal contract in ``tests/test_guard_signals.py``.  This
file covers the building blocks in isolation.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.engine.chaos import FaultInjector
from repro.errors import SimulationError
from repro.guard import (
    STOP_CANCELLED,
    STOP_DEADLINE,
    STOP_MEMORY,
    STOP_PATTERNS,
    STOP_REASONS,
    STOP_SIGINT,
    STOP_SIGTERM,
    Budget,
    CancelToken,
    MemoryWatchdog,
    RunGuard,
    exit_code,
    guard_summary,
    parse_memory_size,
    rss_bytes,
    signal_scope,
    total_rss,
)

# ----------------------------------------------------------------- budgets


def test_parse_memory_size_suffixes():
    assert parse_memory_size("1048576") == 1 << 20
    assert parse_memory_size("512k") == 512 * 1024
    assert parse_memory_size("512KB") == 512 * 1024
    assert parse_memory_size(" 2GiB ") == 2 * 1024 ** 3
    assert parse_memory_size("1.5m") == int(1.5 * 1024 ** 2)
    assert parse_memory_size(4096) == 4096


@pytest.mark.parametrize("bad", ["", "12q", "one gig", "1.2.3m", "m"])
def test_parse_memory_size_rejects_garbage(bad):
    with pytest.raises(SimulationError):
        parse_memory_size(bad)


def test_budget_validation():
    with pytest.raises(SimulationError):
        Budget(deadline=-1)
    with pytest.raises(SimulationError):
        Budget(max_patterns=-1)
    with pytest.raises(SimulationError):
        Budget(max_rss=-2)
    assert Budget(max_rss="64M").max_rss == 64 * 1024 ** 2


def test_budget_arm_is_idempotent_and_deadline_expires():
    budget = Budget(deadline=3600)
    assert not budget.armed
    assert not budget.expired()  # un-armed: never expired
    budget.arm()
    first = budget._expires_at
    budget.arm()
    assert budget._expires_at == first  # first arm wins
    assert not budget.expired()
    assert budget.remaining() > 0

    instant = Budget(deadline=0).arm()
    assert instant.expired()
    assert instant.remaining() == 0.0


def test_budget_bounded_and_from_cli():
    assert not Budget().bounded()
    assert Budget(max_patterns=1).bounded()
    assert Budget.from_cli(None, None, None) is None
    budget = Budget.from_cli(1.5, "1g", 256)
    assert budget is not None
    assert budget.deadline == 1.5
    assert budget.max_rss == 1024 ** 3
    assert budget.max_patterns == 256
    assert set(budget.to_json()) == {"deadline", "max_patterns", "max_rss"}


# ------------------------------------------------------------------ tokens


def test_cancel_token_first_trip_wins():
    token = CancelToken()
    assert not token.cancelled
    token.trip(STOP_SIGTERM, signum=signal.SIGTERM)
    token.trip(STOP_SIGINT, signum=signal.SIGINT)  # ignored
    assert token.cancelled
    assert token.reason == STOP_SIGTERM
    assert token.signum == signal.SIGTERM


def test_exit_code_mapping():
    assert exit_code(None) == 0
    assert exit_code(CancelToken()) == 0
    sigterm = CancelToken()
    sigterm.trip(STOP_SIGTERM, signum=signal.SIGTERM)
    assert exit_code(sigterm) == 143
    sigint = CancelToken()
    sigint.trip(STOP_SIGINT, signum=signal.SIGINT)
    assert exit_code(sigint) == 130
    plain = CancelToken()
    plain.trip()
    assert plain.reason == STOP_CANCELLED
    assert exit_code(plain) == 130


def test_signal_scope_trips_token_and_restores_handler():
    before = signal.getsignal(signal.SIGTERM)
    token = CancelToken()
    with signal_scope(token):
        assert signal.getsignal(signal.SIGTERM) != before
        os.kill(os.getpid(), signal.SIGTERM)
        assert token.cancelled
        assert token.reason == STOP_SIGTERM
        assert token.signum == signal.SIGTERM
    assert signal.getsignal(signal.SIGTERM) == before
    assert exit_code(token) == 143


def test_signal_scope_sigint_does_not_raise_keyboardinterrupt():
    token = CancelToken()
    with signal_scope(token):
        os.kill(os.getpid(), signal.SIGINT)  # would normally raise
        assert token.cancelled
    assert token.reason == STOP_SIGINT
    assert exit_code(token) == 130


# ------------------------------------------------------------------ memory


def test_rss_bytes_reads_this_process():
    rss = rss_bytes()
    assert rss is not None and rss > 0
    assert rss_bytes(os.getpid()) is not None
    assert rss_bytes(2 ** 30) is None  # no such pid: drops out of the sum
    total = total_rss([os.getpid(), 2 ** 30])
    assert total is not None and total >= rss


def test_memory_watchdog_thresholds():
    rss = rss_bytes()
    assert rss is not None
    roomy = MemoryWatchdog(max_rss=rss * 100)
    assert roomy.sample(0) == (False, False)
    assert roomy.samples == 1
    assert roomy.peak_rss > 0

    tight = MemoryWatchdog(max_rss=1)
    assert tight.sample(0) == (True, True)

    # Soft threshold: pressure without the hard limit.
    soft = MemoryWatchdog(max_rss=int(rss / 0.9))
    pressure, hard = soft.sample(0)
    assert pressure and not hard


def test_memory_watchdog_chaos_forces_pressure_without_limit():
    chaos = FaultInjector.parse("oom:2:times=2")
    dog = MemoryWatchdog(max_rss=None, chaos=chaos)
    assert dog.sample(1) == (False, False)
    assert dog.sample(2) == (True, False)   # never "hard": adapt, don't stop
    assert dog.sample(3) == (True, False)
    assert dog.sample(4) == (False, False)


# ------------------------------------------------------------------- guard


def test_runguard_create_returns_none_when_unguarded():
    assert RunGuard.create(None, None) is None
    assert RunGuard.create(None, None, FaultInjector.parse("crash:0")) is None
    assert RunGuard.create(Budget(max_patterns=8), None) is not None
    assert RunGuard.create(None, CancelToken()) is not None
    assert RunGuard.create(None, None, FaultInjector.parse("sigterm:0")) is not None
    assert RunGuard.create(None, None, FaultInjector.parse("oom:0")) is not None


def test_runguard_stop_order_cancel_before_deadline():
    token = CancelToken()
    token.trip(STOP_SIGTERM)
    guard = RunGuard(Budget(deadline=0), token)
    assert guard.should_stop(0, 16) == STOP_SIGTERM  # cancel outranks deadline
    assert guard.stop_reason == STOP_SIGTERM
    # First stop reason is latched even if a later check would differ.
    assert guard.should_stop(0, 16) == STOP_SIGTERM


def test_runguard_deadline_and_pattern_cap():
    assert RunGuard(Budget(deadline=0)).should_stop(0, 16) == STOP_DEADLINE

    guard = RunGuard(Budget(max_patterns=64))
    assert guard.should_stop(0, 32) is None
    assert guard.should_stop(32, 32) is None     # lands exactly on the cap
    assert guard.should_stop(64, 32) == STOP_PATTERNS
    over = RunGuard(Budget(max_patterns=64))
    assert over.should_stop(48, 32) == STOP_PATTERNS  # would overshoot


def test_runguard_memory_ladder():
    guard = RunGuard(Budget(max_rss=1))
    assert guard.memory_action(0, (), chunk_batches=4, already_serial=False) == "halve"
    assert guard.memory_action(1, (), chunk_batches=1, already_serial=False) == "serial"
    assert guard.memory_action(2, (), chunk_batches=1, already_serial=True) == "stop"
    assert guard.stop_reason == STOP_MEMORY
    assert [a["action"] for a in guard.adaptations] == [
        "halve_chunk", "degrade_serial",
    ]
    payload = guard.to_json()
    assert payload["stop_reason"] == STOP_MEMORY
    assert payload["peak_rss"] > 0


def test_runguard_chaos_sigterm_trips_after_target_round():
    guard = RunGuard(chaos=FaultInjector.parse("sigterm:1"))
    guard.after_round(0)
    assert guard.should_stop(16, 16) is None
    guard.after_round(1)
    assert guard.should_stop(32, 16) == STOP_SIGTERM
    assert guard.cancel is not None and guard.cancel.cancelled


# ------------------------------------------------------------------- chaos


def test_chaos_parent_modes_never_fire_in_workers():
    for spec in ("sigterm:1", "oom:0:times=3", "abort:2"):
        injector = FaultInjector.parse(spec)
        assert not injector.fires(0, 0, 0)
        assert not injector.fires(injector.shard, 0, 0)
    assert FaultInjector.parse("sigterm:1").cancels_after(1)
    assert not FaultInjector.parse("sigterm:1").cancels_after(0)
    oom = FaultInjector.parse("oom:1:times=2")
    assert [oom.oom_pressure(r) for r in range(4)] == [False, True, True, False]
    assert "sigterm" in FaultInjector.parse("sigterm:3").describe()
    assert "oom" in FaultInjector.parse("oom:0").describe()


# ----------------------------------------------------------------- summary


def test_guard_summary_shapes():
    clean = guard_summary()
    assert clean == {
        "budget": None, "cancelled": False, "partial": False,
        "stop_reason": None, "exit_code": 0,
    }
    token = CancelToken()
    token.trip(STOP_SIGTERM, signum=signal.SIGTERM)
    cut = guard_summary(Budget(deadline=5), token)
    assert cut["cancelled"] and cut["partial"]
    assert cut["stop_reason"] == STOP_SIGTERM
    assert cut["exit_code"] == 143
    assert cut["budget"]["deadline"] == 5
    deadline = guard_summary(Budget(deadline=0), None,
                             stop_reason=STOP_DEADLINE)
    assert deadline["partial"] and deadline["exit_code"] == 0


def test_stop_reasons_are_distinct():
    assert len(set(STOP_REASONS)) == len(STOP_REASONS) == 6


# --------------------------------------------------------------------- CLI


def test_cli_keyboardinterrupt_exits_130_without_traceback(monkeypatch, capsys):
    import repro.cli as cli

    def boom(args):
        raise KeyboardInterrupt

    monkeypatch.setattr(cli, "cmd_analyze", boom)
    # set_defaults captured the original function; rebuild the parser with
    # the patched one by going through main() and the patched module attr.
    monkeypatch.setattr(
        cli, "build_parser", _patched_parser_factory(cli, boom)
    )
    code = cli.main(["analyze", "whatever.json"])
    assert code == 130
    err = capsys.readouterr().err
    assert err.strip() == "interrupted"


def _patched_parser_factory(cli, func):
    original = cli.build_parser

    def build():
        parser = original()
        # Rebind every subcommand to the interrupting stub.
        return _rebind(parser, func)

    def _rebind(parser, target):
        import argparse

        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                for sub in action.choices.values():
                    sub.set_defaults(func=target)
        return parser

    return build


def test_cli_keyboardinterrupt_mentions_checkpoint(monkeypatch, capsys):
    import repro.cli as cli

    def boom(args):
        raise KeyboardInterrupt

    monkeypatch.setattr(cli, "build_parser", _patched_parser_factory(cli, boom))
    code = cli.main([
        "selftest", "whatever.json", "--checkpoint-dir", "/tmp/ck",
    ])
    assert code == 130
    err = capsys.readouterr().err
    assert err.strip() == "interrupted, checkpoint saved to /tmp/ck"

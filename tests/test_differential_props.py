"""Property-based differential suite: packed machinery vs naive references.

Every fast path in the simulation stack is checked here against an
independent, deliberately naive implementation on randomly generated
netlists (Hypothesis drives the generation):

* the packed :class:`repro.netlist.evaluate.Evaluator` (one big-int lane
  per pattern, levelized order) against a per-pattern scalar evaluator
  with its own gate semantics and its own fixpoint traversal;
* the event-driven :meth:`FaultSimulator._simulate_fault` propagator
  (schedules only gates reached by events) against brute-force full
  re-evaluation with the fault forced, per pattern, asserting identical
  packed detection masks.

The references share no code with the implementations under test — gate
truth tables are written out independently — so any disagreement is a real
bug in one of them.  Profiles live in ``tests/conftest.py``: CI runs the
``ci`` profile derandomized with a pinned ``--hypothesis-seed``, the
nightly job searches harder with a fresh seed (see ``docs/TESTING.md``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st  # noqa: E402

from repro.faultsim.faults import Fault, full_fault_universe  # noqa: E402
from repro.faultsim.simulator import FaultSimulator  # noqa: E402
from repro.netlist.evaluate import Evaluator  # noqa: E402
from repro.netlist.gates import GateType  # noqa: E402
from repro.netlist.netlist import Netlist  # noqa: E402
from tests.conftest import make_random_netlist  # noqa: E402


# ----------------------------------------------------- the naive reference

def _reference_gate(gtype: GateType, inputs: List[int]) -> int:
    """Scalar gate semantics, written out independently of evaluate_gate."""
    if gtype is GateType.AND:
        return int(all(inputs))
    if gtype is GateType.NAND:
        return int(not all(inputs))
    if gtype is GateType.OR:
        return int(any(inputs))
    if gtype is GateType.NOR:
        return int(not any(inputs))
    if gtype is GateType.XOR:
        return sum(inputs) % 2
    if gtype is GateType.XNOR:
        return (sum(inputs) + 1) % 2
    if gtype is GateType.NOT:
        return 1 - inputs[0]
    if gtype is GateType.BUF:
        return inputs[0]
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    raise AssertionError(f"unhandled gate type {gtype}")


def _reference_evaluate(
    netlist: Netlist,
    assignment: Dict[int, int],
    fault: Optional[Fault] = None,
) -> Dict[int, int]:
    """Evaluate one scalar pattern by fixpoint sweeps (no levelize).

    With ``fault`` set, the circuit is evaluated *with the fault in
    effect*: a stem fault forces the net's value wherever it is read, a
    branch fault forces only the named gate input pin.
    """
    values: Dict[int, int] = {}
    for net in netlist.primary_inputs:
        values[net] = assignment[net] & 1
        if fault is not None and fault.is_stem and fault.net == net:
            values[net] = fault.stuck_at
    pending = list(range(len(netlist.gates)))
    while pending:
        remaining = []
        progressed = False
        for gate_index in pending:
            gate = netlist.gates[gate_index]
            if not all(net in values for net in gate.inputs):
                remaining.append(gate_index)
                continue
            inputs = [values[net] for net in gate.inputs]
            if (
                fault is not None
                and not fault.is_stem
                and fault.gate_index == gate_index
            ):
                inputs[fault.pin] = fault.stuck_at
            output = _reference_gate(gate.gtype, inputs)
            if fault is not None and fault.is_stem and fault.net == gate.output:
                output = fault.stuck_at
            values[gate.output] = output
            progressed = True
        assert progressed, "netlist is not a DAG"
        pending = remaining
    return values


def _pack(per_pattern: List[Dict[int, int]], netlist: Netlist) -> Dict[int, int]:
    """Column-pack scalar per-pattern net values into big-int lanes."""
    packed: Dict[int, int] = {}
    for index, values in enumerate(per_pattern):
        bit = 1 << index
        for net, value in values.items():
            if value:
                packed[net] = packed.get(net, 0) | bit
    for net in per_pattern[0]:
        packed.setdefault(net, 0)
    return packed


# ------------------------------------------------------------- strategies

@st.composite
def netlist_and_patterns(draw):
    n_inputs = draw(st.integers(min_value=2, max_value=6))
    n_gates = draw(st.integers(min_value=1, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=1 << 20))
    netlist = make_random_netlist(n_inputs, n_gates, seed)
    n_patterns = draw(st.integers(min_value=1, max_value=12))
    patterns = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << n_inputs) - 1),
            min_size=n_patterns, max_size=n_patterns,
        )
    )
    return netlist, patterns


def _input_assignments(netlist: Netlist, patterns: List[int]):
    """Per-pattern scalar PI assignments and the packed equivalent."""
    pis = list(netlist.primary_inputs)
    scalar = [
        {net: (word >> position) & 1 for position, net in enumerate(pis)}
        for word in patterns
    ]
    packed = {
        net: sum(
            ((word >> position) & 1) << index
            for index, word in enumerate(patterns)
        )
        for position, net in enumerate(pis)
    }
    return scalar, packed


# ------------------------------------------------------------- properties

@given(netlist_and_patterns())
def test_packed_evaluator_matches_scalar_reference(case):
    """Evaluator's big-int lanes agree with naive per-pattern evaluation
    on every net, for every pattern in the batch."""
    netlist, patterns = case
    scalar_inputs, packed_inputs = _input_assignments(netlist, patterns)
    mask = (1 << len(patterns)) - 1

    packed = Evaluator(netlist).run(packed_inputs, mask)
    reference = _pack(
        [_reference_evaluate(netlist, row) for row in scalar_inputs], netlist
    )
    assert packed == reference


@given(netlist_and_patterns(), st.data())
def test_event_driven_fault_propagation_matches_brute_force(case, data):
    """_simulate_fault's packed detection mask equals, bit for bit, the
    mask obtained by fully re-evaluating the circuit with the fault forced
    and comparing primary outputs pattern by pattern."""
    netlist, patterns = case
    universe = full_fault_universe(netlist)
    fault = data.draw(st.sampled_from(universe))

    scalar_inputs, packed_inputs = _input_assignments(netlist, patterns)
    mask = (1 << len(patterns)) - 1

    golden_rows = [_reference_evaluate(netlist, row) for row in scalar_inputs]
    faulty_rows = [
        _reference_evaluate(netlist, row, fault) for row in scalar_inputs
    ]
    expected = 0
    for index, (golden, faulty) in enumerate(zip(golden_rows, faulty_rows)):
        if any(
            golden[po] != faulty[po] for po in netlist.primary_outputs
        ):
            expected |= 1 << index

    simulator = FaultSimulator(netlist, batch_width=len(patterns))
    good = _pack(golden_rows, netlist)
    assert simulator._simulate_fault(fault, good, mask) == expected


@given(netlist_and_patterns(), st.data())
def test_simulate_batch_detection_indices_match_reference(case, data):
    """simulate_batch records, per fault, exactly the first pattern index
    whose brute-force faulty evaluation differs at a primary output."""
    netlist, patterns = case
    universe = full_fault_universe(netlist)
    faults = data.draw(
        st.lists(st.sampled_from(universe), min_size=1, max_size=6,
                 unique=True)
    )

    scalar_inputs, packed_inputs = _input_assignments(netlist, patterns)
    mask = (1 << len(patterns)) - 1
    golden_rows = [_reference_evaluate(netlist, row) for row in scalar_inputs]
    good = _pack(golden_rows, netlist)

    simulator = FaultSimulator(netlist, batch_width=len(patterns))
    detections = {}
    simulator.simulate_batch(faults, good, mask, 0, detections)

    for fault in faults:
        expected = None
        for index, row in enumerate(scalar_inputs):
            faulty = _reference_evaluate(netlist, row, fault)
            if any(
                golden_rows[index][po] != faulty[po]
                for po in netlist.primary_outputs
            ):
                expected = index
                break
        assert detections.get(fault) == expected

"""BILBO register modes, MISR signatures, cost models."""

import pytest

from repro.bilbo.cost import (
    AreaReport,
    BILBO_CELL_AREA,
    DFF_AREA,
    bilbo_area,
    register_conversion_cost,
    tpg_extra_area_fraction,
)
from repro.bilbo.misr import MISR, signature_pair
from repro.bilbo.register import BILBOMode, BILBORegister
from repro.tpg.lfsr import Type1LFSR


# ------------------------------------------------------------ BILBO register

def test_normal_mode_loads_parallel():
    register = BILBORegister("R", 4)
    register.set_mode(BILBOMode.NORMAL)
    register.clock(parallel_in=0b1010)
    assert register.output() == 0b1010


def test_reset_mode():
    register = BILBORegister("R", 4)
    register.seed(0xF)
    register.set_mode(BILBOMode.RESET)
    register.clock()
    assert register.output() == 0


def test_scan_mode_shifts():
    register = BILBORegister("R", 4)
    register.set_mode(BILBOMode.SCAN)
    for bit in (1, 0, 1, 1):
        register.clock(scan_in=bit)
    # First bit scanned in has shifted furthest (to the MSB end).
    assert register.output() == 0b1011


def test_tpg_mode_is_maximal_lfsr():
    register = BILBORegister("R", 5)
    sequence = register.tpg_sequence(31, seed=1)
    assert len(set(sequence)) == 31
    assert 0 not in sequence
    lfsr = Type1LFSR(5, register.polynomial)
    assert sequence == lfsr.sequence(seed=1, count=31)


def test_sa_mode_is_misr():
    register = BILBORegister("R", 4)
    register.seed(0)
    register.set_mode(BILBOMode.SA)
    stream = [3, 7, 1, 15, 8]
    for word in stream:
        register.clock(parallel_in=word)
    misr = MISR(4, register.polynomial)
    assert register.output() == misr.signature(stream)


def test_bilbo_cannot_be_tpg_and_sa_simultaneously():
    """The BIBS motivation: in SA mode the output is the signature, not a
    pattern sequence."""
    register = BILBORegister("R", 4)
    register.seed(1)
    register.set_mode(BILBOMode.SA)
    outputs = [register.clock(parallel_in=w) for w in (5, 5, 5)]
    lfsr_states = Type1LFSR(4, register.polynomial).sequence(seed=1, count=3)
    assert outputs != lfsr_states


def test_cbilbo_generates_while_compressing():
    """A CBILBO exposes a TPG sequence while its SA half compresses."""
    register = BILBORegister("R", 4, is_cbilbo=True)
    register.seed(1)
    register.set_mode(BILBOMode.SA)
    outputs = []
    for word in (5, 9, 2):
        register.clock(parallel_in=word)
        outputs.append(register.output())
    lfsr = Type1LFSR(4, register.polynomial)
    assert outputs == lfsr.sequence(seed=1, count=4)[1:]


def test_invalid_width():
    with pytest.raises(Exception):
        BILBORegister("R", 0)


# -------------------------------------------------------------------- MISR

def test_misr_distinguishes_differing_streams():
    misr = MISR(8)
    good = [1, 2, 3, 4, 5]
    bad = [1, 2, 3, 4, 6]
    assert misr.distinguishes(good, bad)
    assert not misr.distinguishes(good, list(good))
    g, b = signature_pair(8, good, bad)
    assert g != b


def test_misr_aliasing_probability():
    assert MISR(16).aliasing_probability() == 2.0**-16


def test_misr_empirical_aliasing_is_rare():
    """Random error streams almost never alias into the good signature."""
    import random

    rng = random.Random(5)
    misr = MISR(10)
    good = [rng.getrandbits(10) for _ in range(50)]
    reference = misr.signature(good)
    aliases = 0
    trials = 300
    for _ in range(trials):
        bad = list(good)
        position = rng.randrange(len(bad))
        bad[position] ^= 1 << rng.randrange(10)
        if misr.signature(bad) == reference:
            aliases += 1
    assert aliases <= 2  # expectation ~ trials * 2^-10 = 0.3


# -------------------------------------------------------------------- cost

def test_area_calibration_reproduces_paper_figure():
    """Example 2: 2 extra D-FFs ~ 7.2% of a 12-bit BILBO register."""
    assert tpg_extra_area_fraction(2, 12) == pytest.approx(0.072, abs=1e-9)


def test_area_report():
    report = AreaReport(n_bilbo_registers=2, n_bilbo_flipflops=16, n_extra_dffs=2)
    assert report.bilbo_area == pytest.approx(16 * BILBO_CELL_AREA)
    assert report.total_area == pytest.approx(16 * BILBO_CELL_AREA + 2)
    assert report.overhead_vs_plain_registers() > 1.0  # BILBO cell > 2x DFF


def test_conversion_cost_monotone():
    widths = {"A": 8, "B": 4}
    assert register_conversion_cost(widths, ["A"]) > register_conversion_cost(
        widths, ["B"]
    )
    assert register_conversion_cost(widths, []) == 0


def test_bilbo_area_sum():
    assert bilbo_area([8, 4]) == pytest.approx(12 * BILBO_CELL_AREA)

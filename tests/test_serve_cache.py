"""Run-key cache semantics: what hits, what misses, and the golden key.

The service cache is keyed by the engine's checkpoint run key, so the
contract under test is exactly the bit-identity contract: execution
strategy (kernel, executor, governance) never changes the key; anything
semantic (seed, pattern budget, batch geometry, stop/drop flags, shard
count) always does.  A golden-key regression pins the key for a fixed
submission against the directory the checkpoint journal actually uses.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.serve import BistService, JobRequest
from tests.serve_utils import thread_server

#: The run key of the default ``mac4`` submission below.  This value is
#: fully deterministic (netlist builder, seeded pattern stream, collapsed
#: fault universe, canonical config fields) — if it moves, either the
#: engine's run-key recipe changed (update ``GOLDEN_KEY`` deliberately,
#: old journals and cache entries are invalidated) or something
#: non-semantic leaked into the key (a bug).
GOLDEN_REQUEST = {"design": "mac4", "max_patterns": 256}
GOLDEN_KEY = \
    "4593af1b0de2f492de77962799d6aebf66858c61716791b7dd2506272a6877cd"


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    return BistService(tmp_path_factory.mktemp("serve-state"))


def key_for(service, **fields):
    doc = dict(GOLDEN_REQUEST)
    doc.update(fields)
    _, key = service._prepare(JobRequest.from_json(doc))
    return key


def test_identical_submissions_share_a_key(service):
    assert key_for(service) == key_for(service)


@pytest.mark.parametrize("fields", [
    {"kernel": "packed"},
    {"kernel": "vec"},
    {"executor": "thread"},
    {"deadline": 30},                 # governance never moves results
    {"tenant": "alice"},              # tenancy is routing, not semantics
    {"include_faults": True},         # serialization shape, not semantics
])
def test_execution_strategy_is_excluded_from_the_key(service, fields):
    assert key_for(service, **fields) == key_for(service)


@pytest.mark.parametrize("fields", [
    {"seed": 7},
    {"max_patterns": 512},
    {"batch_width": 32},
    {"chunk_batches": 2},
    {"stop_when_complete": False},
    {"drop_detected": False},
    {"jobs": 2},                      # shard count shapes the round grid
    {"design": "c3a2m"},
])
def test_semantic_changes_move_the_key(service, fields):
    assert key_for(service, **fields) != key_for(service)


def test_cache_key_is_the_checkpoint_run_key(tmp_path):
    """Golden regression: the cache key IS the journal's directory name.

    Run the exact work ``_prepare`` hands a worker and assert the engine
    journals under ``<journal root>/<key[:32]>`` — the property every
    drain/resume story depends on.
    """
    from repro.engine import simulate

    service = BistService(tmp_path / "state")
    work, key = service._prepare(JobRequest.from_json(GOLDEN_REQUEST))
    netlist, faults, source, config, budget = work
    result = simulate(netlist, faults, source, config=config)
    assert not result.partial
    journal_dir = service.journal_root / key[:32]
    assert journal_dir.is_dir()
    assert list(journal_dir.glob("shard*_round*.rec"))


def test_golden_run_key(service):
    """Pin the key itself so silent recipe drift cannot pass unnoticed."""
    key = key_for(service)
    assert len(key) == 64 and int(key, 16) >= 0
    assert key == GOLDEN_KEY


# ------------------------------------------------------- end-to-end behaviour

@pytest.fixture()
def client(tmp_path):
    telemetry.reset()
    telemetry.enable()
    with thread_server(tmp_path / "state", workers=1) as (_, client):
        yield client
    telemetry.reset()
    telemetry.disable()


def _counters():
    return telemetry.get_telemetry().metrics.snapshot()["counters"]


def test_http_resubmission_hits_the_cache(client):
    first = client.submit(GOLDEN_REQUEST)
    client.wait(first["id"])
    second = client.submit(GOLDEN_REQUEST)
    assert second["cached"] is True
    assert second["state"] == "done"
    assert second["run_key"] == first["run_key"]
    status, a = client.result(first["id"])
    status_b, b = client.result(second["id"])
    assert (status, status_b) == (200, 200)
    assert a == b
    counters = _counters()
    assert counters["cache.hit"] == 1
    assert counters["cache.miss"] == 1
    # A cached job reports an empty progress curve: nothing ran.
    status, doc = client.request("GET", f"/v1/jobs/{second['id']}")
    assert status == 200 and doc["progress"] == []


def test_partial_results_are_never_cached(client):
    # deadline=0 expires before the first round: the run completes as a
    # governed partial result...
    throttled = dict(GOLDEN_REQUEST, deadline=0, max_patterns=1 << 14)
    first = client.submit(throttled)
    client.wait(first["id"])
    status, result = client.result(first["id"])
    assert status == 200 and result["partial"] is True
    # ...which must not be pinned: the identical resubmission re-runs
    # (deadline is excluded from the key, so the key *does* match).
    second = client.submit(throttled)
    assert second["cached"] is False
    assert second["run_key"] == first["run_key"]
    client.wait(second["id"])
    # Once an ungoverned run completes the measurement, it is cached and
    # later submissions of the same key are served from it.
    complete = client.submit(dict(GOLDEN_REQUEST, max_patterns=1 << 14))
    client.wait(complete["id"])
    status, full = client.result(complete["id"])
    assert status == 200 and full["partial"] is False
    again = client.submit(dict(GOLDEN_REQUEST, max_patterns=1 << 14))
    assert again["cached"] is True

"""GF(2) polynomial arithmetic and primitivity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tpg.gf2 import (
    degree,
    exponents_of,
    find_primitive_polynomial,
    is_irreducible,
    is_primitive,
    poly_from_exponents,
    poly_gcd,
    poly_mod,
    poly_mul_mod,
    poly_pow_mod,
)
from repro.tpg.lfsr import Type1LFSR


def test_poly_construction():
    poly = poly_from_exponents([12, 7, 4, 3, 0])
    assert degree(poly) == 12
    assert exponents_of(poly) == [12, 7, 4, 3, 0]


def test_poly_mod_and_gcd():
    x4_plus_x_plus_1 = poly_from_exponents([4, 1, 0])
    x = 0b10
    assert poly_mod(x, x4_plus_x_plus_1) == x
    # x^4 mod (x^4+x+1) == x+1
    assert poly_mod(1 << 4, x4_plus_x_plus_1) == 0b11
    assert poly_gcd(x4_plus_x_plus_1, x4_plus_x_plus_1) == x4_plus_x_plus_1


def test_poly_mul_mod_matches_pow():
    mod = poly_from_exponents([5, 2, 0])
    x = 0b10
    square = poly_mul_mod(x, x, mod)
    assert square == poly_pow_mod(x, 2, mod)
    assert poly_pow_mod(x, 31, mod) == 1  # order of x is 2^5-1 = 31


@pytest.mark.parametrize(
    "exponents,expected",
    [
        ([4, 1, 0], True),    # x^4+x+1: primitive
        ([4, 3, 2, 1, 0], False),  # x^4+x^3+x^2+x+1: irreducible, order 5
        ([4, 2, 0], False),   # (x^2+x+1)^2: reducible
        ([3, 1, 0], True),
        ([12, 7, 4, 3, 0], True),  # the paper's polynomial
    ],
)
def test_is_primitive_known_cases(exponents, expected):
    assert is_primitive(poly_from_exponents(exponents)) is expected


def test_irreducible_but_not_primitive():
    poly = poly_from_exponents([4, 3, 2, 1, 0])
    assert is_irreducible(poly)
    assert not is_primitive(poly)


def test_reducible_detected():
    # (x+1)(x^2+x+1) = x^3 + 1... compute: x^3+x^2+x + x^2+x+1 = x^3+1
    assert not is_irreducible(poly_from_exponents([3, 0]))


@pytest.mark.parametrize("n", [2, 3, 5, 7, 9, 11, 13, 17])
def test_find_primitive_polynomial(n):
    poly = find_primitive_polynomial(n)
    assert degree(poly) == n
    assert is_primitive(poly)


@given(st.integers(2, 10))
@settings(max_examples=9, deadline=None)
def test_primitive_implies_maximal_lfsr(n):
    """The algebraic test agrees with brute-force LFSR period counting."""
    poly = find_primitive_polynomial(n)
    assert Type1LFSR(n, poly).is_maximal()

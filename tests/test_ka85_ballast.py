"""KA-85 baseline and BALLAST partial scan."""

import pytest

from repro.core.ballast import make_balanced_by_scan
from repro.core.bibs import make_bibs_testable
from repro.core.ka85 import make_ka_testable
from repro.datapath.filters import all_filters
from repro.errors import SelectionError
from repro.graph.build import build_circuit_graph
from repro.library.figures import figure2, figure4
from repro.library.ka_example import figure9
from repro.rtl.circuit import RTLCircuit


def test_ka_on_datapaths_matches_paper():
    """Table 2 rows 3-4 for [3]: 15/15/20 registers, delay 4/6/4."""
    expected = {"c5a2m": (15, 4), "c3a2m": (15, 6), "c4a4m": (20, 4)}
    for name, compiled in all_filters().items():
        report = make_ka_testable(build_circuit_graph(compiled.circuit))
        registers, delay = expected[name]
        assert report.design.n_bilbo_registers == registers
        assert report.design.maximal_delay() == delay
        assert not report.needs_register_insertion
        assert report.design.is_valid()  # Theorem 3: KA designs are BIBS-valid


def test_ka_kernel_counts():
    expected = {"c5a2m": 7, "c3a2m": 5, "c4a4m": 6}
    for name, compiled in all_filters().items():
        report = make_ka_testable(build_circuit_graph(compiled.circuit))
        logic = [k for k in report.design.kernels if k.logic_blocks]
        assert len(logic) == expected[name]


def test_ka_converts_more_than_bibs():
    """Theorem 3's practical content: KA-85 never converts fewer registers."""
    for compiled in all_filters().values():
        graph = build_circuit_graph(compiled.circuit)
        ka = make_ka_testable(graph).design
        bibs = make_bibs_testable(graph)
        assert set(bibs.bilbo_registers) <= set(ka.bilbo_registers)
        assert ka.n_bilbo_registers > bibs.n_bilbo_registers


def test_ka_figure9():
    report = make_ka_testable(build_circuit_graph(figure9()))
    assert report.design.n_bilbo_registers == 10
    assert report.design.n_bilbo_flipflops == 52
    # Criterion 3 had to add the second cycle register.
    assert report.cycle_additions == ["R7"]


def test_ka_flags_unregistered_ports():
    circuit = RTLCircuit("combinational_port")
    a = circuit.new_input("a", 4)
    b = circuit.new_input("b", 4)
    ra = circuit.add_net("ra", 4)
    circuit.add_register("Ra", a, ra)
    # Second port of C is fed by an unregistered PI wire: KA-85 would have
    # to insert a register there.
    mid = circuit.add_net("mid", 4)
    circuit.add_block("P", [b], [mid])
    out = circuit.add_net("out", 4)
    circuit.add_block("C", [ra, mid], [out])
    circuit.mark_output(out)
    report = make_ka_testable(build_circuit_graph(circuit))
    assert report.needs_register_insertion
    # Port indices follow the vertex's in-edge order in the circuit graph.
    assert [block for block, _ in report.ports_without_registers] == ["C"]


# ----------------------------------------------------------------- BALLAST

def test_partial_scan_on_figure4():
    design = make_balanced_by_scan(build_circuit_graph(figure4()))
    assert design.scan_registers == ["R3", "R9"]
    assert design.n_scan_flipflops == 8


def test_partial_scan_on_balanced_circuit_is_empty():
    design = make_balanced_by_scan(build_circuit_graph(figure2()))
    assert design.scan_registers == []


def test_partial_scan_needs_fewer_ffs_than_bibs_extras():
    """The paper's Example 1 contrast: scan touches 8 FFs, BIBS converts
    4 extra registers (18 FFs) beyond the PI/PO pair."""
    graph = build_circuit_graph(figure4())
    scan = make_balanced_by_scan(graph)
    bibs = make_bibs_testable(graph)
    extra = set(bibs.bilbo_registers) - {"R1", "R6"}
    widths = {e.register: e.weight for e in graph.register_edges()}
    extra_ffs = sum(widths[r] for r in extra)
    assert scan.n_scan_flipflops < extra_ffs


def test_exact_limit_guard():
    graph = build_circuit_graph(figure4())  # unbalanced, 9 registers
    with pytest.raises(SelectionError):
        make_balanced_by_scan(graph, exact_limit=3, method="exact")
    # auto degrades to the greedy heuristic instead of failing.
    design = make_balanced_by_scan(graph, exact_limit=3, method="auto")
    assert design.scan_registers  # a valid (heuristic) balancing set

"""The minimal-TPG search (the paper's open problem, Section 5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TPGError
from repro.library.kernels import (
    example5_kernel,
    example6_kernel,
    example7_kernel,
)
from repro.tpg.design import Cone, InputRegister, KernelSpec
from repro.tpg.mc_tpg import mc_tpg
from repro.tpg.minimal import design_from_offsets, minimal_tpg, optimality_gap
from repro.tpg.pseudo_exhaustive import best_register_order
from repro.tpg.verify import is_functionally_exhaustive, verify_design


def test_minimal_never_worse_than_mc_tpg():
    for factory in (example5_kernel, example6_kernel, example7_kernel):
        kernel = factory()
        constructive, optimal = optimality_gap(kernel)
        assert optimal <= constructive


def test_minimal_matches_permutation_search_on_example7():
    """MC_TPG with the right register order already reaches the 2^w bound
    on Example 7; the offset search confirms that is optimal."""
    kernel = example7_kernel()
    assert minimal_tpg(kernel).lfsr_stages == best_register_order(kernel).lfsr_stages == 8


def test_minimal_beats_unpermuted_mc_tpg_on_example7():
    kernel = example7_kernel()
    assert minimal_tpg(kernel).lfsr_stages < mc_tpg(kernel).lfsr_stages


def test_minimal_design_is_exhaustive():
    for factory in (example5_kernel, example6_kernel, example7_kernel):
        design = minimal_tpg(factory(width=3))
        if design.lfsr_stages <= 12:
            assert is_functionally_exhaustive(design)


def test_minimal_can_beat_permutation_search():
    """A kernel where no register *order* reaches the optimum but free
    offsets do (found by random sweep; pinned as a regression case)."""
    kernel = KernelSpec(
        (InputRegister("R0", 1), InputRegister("R1", 2), InputRegister("R2", 2)),
        (
            Cone("O0", {"R1": 2, "R0": 1}),
            Cone("O1", {"R2": 0, "R0": 2, "R1": 0}),
            Cone("O2", {"R1": 1}),
        ),
    )
    permuted = best_register_order(kernel).lfsr_stages
    optimal = minimal_tpg(kernel)
    assert optimal.lfsr_stages <= permuted
    assert is_functionally_exhaustive(optimal)


def test_design_from_offsets_explicit():
    kernel = KernelSpec.single_cone([("A", 2, 1), ("B", 2, 0)])
    design = design_from_offsets(kernel, (0, 3), lfsr_stages=5)
    assert design.lfsr_stages == 5
    assert design.register_label_span("A") == (1, 2)
    assert design.register_label_span("B") == (4, 5)
    assert is_functionally_exhaustive(design)


def test_too_many_registers_rejected():
    kernel = KernelSpec.single_cone(
        [(f"R{i}", 1, 0) for i in range(7)]
    )
    with pytest.raises(TPGError):
        minimal_tpg(kernel)


@st.composite
def small_kernel(draw):
    n = draw(st.integers(2, 3))
    registers = tuple(
        InputRegister(f"R{i}", draw(st.integers(1, 2))) for i in range(n)
    )
    cones = []
    for c in range(draw(st.integers(1, 3))):
        members = draw(
            st.lists(
                st.sampled_from([r.name for r in registers]),
                min_size=1, max_size=n, unique=True,
            )
        )
        cones.append(Cone(f"O{c}", {m: draw(st.integers(0, 2)) for m in members}))
    return KernelSpec(registers, tuple(cones))


@given(small_kernel())
@settings(max_examples=20, deadline=None)
def test_property_minimal_is_lower_bounded_and_exhaustive(kernel):
    """Property: the search result is at least the max cone width, at most
    the constructive MC_TPG size, and functionally exhaustive."""
    design = minimal_tpg(kernel)
    assert kernel.max_cone_width <= design.lfsr_stages <= mc_tpg(kernel).lfsr_stages
    if design.lfsr_stages <= 10:
        assert all(v.exhaustive for v in verify_design(design))

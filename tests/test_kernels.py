"""Kernel extraction and Definition-1 checks."""

import pytest

from repro.core.kernels import extract_kernels
from repro.errors import SelectionError
from repro.graph.build import build_circuit_graph
from repro.library.figures import figure4
from repro.library.ka_example import figure9
from repro.datapath.filters import c5a2m


def test_extract_on_figure4_paper_solution():
    graph = build_circuit_graph(figure4())
    kernels = extract_kernels(graph, ["R1", "R3", "R6", "R7", "R8", "R9"])
    logic = [k for k in kernels if k.logic_blocks]
    assert len(logic) == 2
    k1 = next(k for k in logic if "C1" in k.logic_blocks)
    k2 = next(k for k in logic if "C3" in k.logic_blocks)
    assert k1.logic_blocks == ["C1", "C2", "C4"]
    assert sorted(k1.tpg_registers) == ["R1"]
    assert sorted(k1.sa_registers) == ["R3", "R7", "R8", "R9"]
    assert sorted(k2.tpg_registers) == ["R3", "R7", "R8", "R9"]
    assert sorted(k2.sa_registers) == ["R6"]
    assert k1.is_balanced_bistable()
    assert k2.is_balanced_bistable()


def test_kernel_widths_and_depth():
    graph = build_circuit_graph(figure4())
    kernels = extract_kernels(graph, ["R1", "R3", "R6", "R7", "R8", "R9"])
    k2 = next(k for k in kernels if "C3" in k.logic_blocks)
    # TPGs: R3(4) + R9(4) + R7(5) + R8(5) = 18 bits.
    assert k2.input_width == 18
    assert k2.sequential_depth == 0
    assert k2.functionally_exhaustive_test_time() == (1 << 18) - 1
    k1 = next(k for k in kernels if "C1" in k.logic_blocks)
    assert k1.input_width == 8
    assert k1.sequential_depth == 2
    assert k1.functionally_exhaustive_test_time() == (1 << 8) - 1 + 2


def test_invalid_selection_detected_by_kernel_check():
    """Cutting only the short-path registers leaves condition-3 violations."""
    graph = build_circuit_graph(figure4())
    kernels = extract_kernels(graph, ["R1", "R3", "R6", "R9"])
    assert any(not k.is_balanced_bistable() for k in kernels)
    bad = next(k for k in kernels if not k.is_balanced_bistable())
    assert bad.internal_bilbo_edges  # R3/R9 stay inside the big kernel


def test_cyclic_kernel_rejected():
    graph = build_circuit_graph(figure9())
    # Cut everything except the cycle registers: the B5/B6 loop survives.
    kernels = extract_kernels(
        graph, ["R1", "R2", "R3", "R4", "R5", "R6", "R9", "R10"]
    )
    cyclic = next(k for k in kernels if "B6" in k.logic_blocks)
    assert not cyclic.is_balanced_bistable()


def test_unknown_register_rejected():
    graph = build_circuit_graph(figure4())
    with pytest.raises(SelectionError):
        extract_kernels(graph, ["R1", "Rmissing"])


def test_transport_kernels_have_no_logic():
    from repro.datapath.filters import c3a2m
    from repro.core.ka85 import make_ka_testable

    graph = build_circuit_graph(c3a2m().circuit)
    design = make_ka_testable(graph).design
    transports = [k for k in design.kernels if not k.logic_blocks]
    assert len(transports) == 4  # the c/d/e/f delay chains
    for kernel in transports:
        assert kernel.is_balanced_bistable()


def test_kernel_names_deterministic():
    graph = build_circuit_graph(c5a2m().circuit)
    from repro.core.ka85 import make_ka_testable

    k1 = make_ka_testable(graph).design.kernels
    k2 = make_ka_testable(graph).design.kernels
    assert [k.name for k in k1] == [k.name for k in k2]
    assert [k.vertices for k in k1] == [k.vertices for k in k2]

"""Paper figure circuits reproduce the stated properties."""

import pytest

from repro.analysis.testability import classify
from repro.core.ballast import make_balanced_by_scan
from repro.core.bibs import make_bibs_testable
from repro.core.ka85 import make_ka_testable
from repro.graph.build import build_circuit_graph
from repro.graph.model import VertexKind
from repro.graph.structures import find_urfs_witnesses, simple_cycles
from repro.library import (
    example2_kernel,
    example3_kernel,
    example4_kernel,
    example5_kernel,
    example6_kernel,
    example7_kernel,
    figure1,
    figure2,
    figure3,
    figure4,
    figure9,
    figure12a,
    figure17a,
    figure21a,
)


def test_figure1_claims():
    graph = build_circuit_graph(figure1())
    report = classify(graph)
    assert not report.balanced
    assert report.k_step == 2


def test_figure2_claims():
    report = classify(build_circuit_graph(figure2()))
    assert report.balanced and report.k_step == 1


def test_figure3_claims():
    graph = build_circuit_graph(figure3())
    assert [sorted(c) for c in simple_cycles(graph)] == [["F", "H"]]
    fanouts = graph.vertices_of_kind(VertexKind.FANOUT)
    vacuous = graph.vertices_of_kind(VertexKind.VACUOUS)
    assert len(fanouts) == 1 and len(vacuous) == 1
    # The URFS: FO1 -> H paths of sequential lengths 1 (via C, E, G) and
    # 2 (via A, D) once the cycle is set aside.
    acyclic = graph.without_edges(
        e.index for e in graph.register_edges() if e.register in ("R7", "R8")
    )
    witnesses = {
        (w.source, w.target): (w.min_length, w.max_length)
        for w in find_urfs_witnesses(acyclic)
    }
    assert witnesses[(fanouts[0].name, "H")] == (1, 2)


def test_figure4_partial_scan_and_bibs():
    graph = build_circuit_graph(figure4())
    assert make_balanced_by_scan(graph).scan_registers == ["R3", "R9"]
    design = make_bibs_testable(graph)
    assert design.bilbo_registers == ["R1", "R3", "R6", "R7", "R8", "R9"]
    assert design.n_kernels == 2


def test_figure9_hardware_comparison():
    graph = build_circuit_graph(figure9())
    bibs = make_bibs_testable(graph)
    ka = make_ka_testable(graph).design
    assert (bibs.n_bilbo_registers, bibs.n_bilbo_flipflops) == (8, 43)
    assert (ka.n_bilbo_registers, ka.n_bilbo_flipflops) == (10, 52)
    assert sum(1 for k in bibs.kernels if k.logic_blocks) == 2


@pytest.mark.parametrize(
    "factory,n_regs,n_cones",
    [
        (example2_kernel, 3, 1),
        (example3_kernel, 3, 1),
        (example4_kernel, 2, 1),
        (example5_kernel, 2, 2),
        (example6_kernel, 2, 2),
        (example7_kernel, 3, 3),
    ],
)
def test_example_kernels_shape(factory, n_regs, n_cones):
    kernel = factory()
    assert len(kernel.registers) == n_regs
    assert len(kernel.cones) == n_cones
    assert all(r.width == 4 for r in kernel.registers)
    small = factory(width=3)
    assert all(r.width == 3 for r in small.registers)


@pytest.mark.parametrize("factory", [figure12a, figure17a, figure21a])
def test_rtl_kernels_are_balanced(factory):
    from repro.analysis.balance import is_balanced

    graph = build_circuit_graph(factory())
    assert is_balanced(graph)

"""Wire-format suite: the remote executor's frame codec round-trips.

The distributed backend's bit-identity claim rests on the wire being
transparent: a :class:`~repro.exec.base.WorkUnit` that crosses a socket
must come back *equal*, and anything less than a whole, intact frame must
be rejected loudly (:class:`~repro.exec.wire.FrameError`) rather than
decoded approximately.  Hypothesis drives both directions: arbitrary
payloads and real work units round-trip; every truncation cut and every
corrupted byte is refused.
"""

from __future__ import annotations

import socket

import pytest
from hypothesis import given, strategies as st

from repro.exec.base import WorkUnit
from repro.exec.wire import (
    HEADER_BYTES,
    MAGIC,
    ConnectionClosed,
    FrameError,
    decode_frame,
    encode_frame,
    read_frame,
    send_frame,
)
from repro.faultsim.collapse import collapse_faults
from tests.conftest import make_random_netlist

# One fault universe shared by every example (building netlists per
# example would dominate the suite's runtime).
_NETLIST = make_random_netlist(6, 18, seed=31)
_FAULTS, _ = collapse_faults(_NETLIST)

# JSON-shaped payloads: what the control messages (init/ping/...) carry.
_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(), st.text(max_size=20),
    st.binary(max_size=32),
)
_messages = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


@st.composite
def work_units(draw):
    """Real work units over real faults and arbitrary pattern geometry."""
    n_faults = draw(st.integers(min_value=1, max_value=len(_FAULTS)))
    faults = tuple(_FAULTS[:n_faults])
    widths = draw(st.lists(
        st.integers(min_value=1, max_value=64), min_size=1, max_size=4,
    ))
    batches = []
    for width in widths:
        mask = (1 << width) - 1
        golden = {
            net: draw(st.integers(min_value=0, max_value=mask))
            for net in draw(st.lists(
                st.integers(min_value=0, max_value=40), max_size=3,
                unique=True,
            ))
        }
        batches.append((mask, golden))
    return WorkUnit(
        shard_id=draw(st.integers(min_value=0, max_value=7)),
        faults=faults,
        golden_batches=tuple(batches),
        pattern_base=draw(st.integers(min_value=0, max_value=1 << 20)),
        round_index=draw(st.integers(min_value=0, max_value=9)),
        drop_detected=draw(st.booleans()),
        attempt=draw(st.integers(min_value=0, max_value=3)),
    )


# ---------------------------------------------------------------- round trip


@given(_messages)
def test_arbitrary_messages_roundtrip(message):
    frame = encode_frame(message)
    decoded, consumed = decode_frame(frame)
    assert decoded == message
    assert consumed == len(frame)


@given(work_units())
def test_work_units_roundtrip_bit_identically(unit):
    decoded, consumed = decode_frame(encode_frame(unit))
    # Frozen dataclasses all the way down (WorkUnit, Fault), so equality
    # really is bit-identity of every field.
    assert decoded == unit
    assert decoded.faults == unit.faults
    assert decoded.golden_batches == unit.golden_batches


@given(work_units(), _messages)
def test_back_to_back_frames_decode_independently(unit, message):
    buffer = encode_frame(unit) + encode_frame(message)
    first, consumed = decode_frame(buffer)
    second, _ = decode_frame(buffer[consumed:])
    assert first == unit
    assert second == message


# ---------------------------------------------------------------- rejection


@given(work_units(), st.data())
def test_truncated_frames_are_rejected_at_every_cut(unit, data):
    frame = encode_frame(unit)
    cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
    with pytest.raises(FrameError):
        decode_frame(frame[:cut])


@given(_messages, st.data())
def test_corrupted_bytes_are_rejected(message, data):
    frame = bytearray(encode_frame(message))
    index = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    frame[index] ^= flip
    # A flipped byte lands in the magic, the length, the digest or the
    # payload; every location must be caught (digest mismatch at worst).
    # The only uncatchable case would be a length flip that still leaves a
    # self-consistent frame — excluded by construction, since the digest
    # covers the exact payload the length delimits.
    try:
        decoded, _ = decode_frame(bytes(frame))
    except FrameError:
        return
    # Vanishingly unlikely (2^-64 digest collision) — treat as failure.
    raise AssertionError(f"corrupt frame decoded to {decoded!r}")


def test_bad_magic_is_rejected():
    frame = bytearray(encode_frame({"type": "ping"}))
    frame[:4] = b"XXXX"
    with pytest.raises(FrameError, match="magic"):
        decode_frame(bytes(frame))


def test_oversize_length_is_rejected():
    frame = bytearray(encode_frame({"type": "ping"}))
    frame[4:8] = (0xFFFFFFFF).to_bytes(4, "big")
    with pytest.raises(FrameError):
        decode_frame(bytes(frame))


def test_header_layout_is_pinned():
    # The wire format is a compatibility surface between coordinator and
    # agent versions; pin the constants so a change is a conscious one.
    assert MAGIC == b"RBW1"
    assert HEADER_BYTES == 16


# ------------------------------------------------------------------ sockets


def test_read_frame_over_a_real_socket():
    left, right = socket.socketpair()
    try:
        send_frame(left, {"type": "ping"})
        send_frame(left, {"type": "pong", "n": 2})
        assert read_frame(right) == {"type": "ping"}
        assert read_frame(right) == {"type": "pong", "n": 2}
    finally:
        left.close()
        right.close()


def test_clean_close_raises_connection_closed():
    left, right = socket.socketpair()
    left.close()
    try:
        with pytest.raises(ConnectionClosed):
            read_frame(right)
    finally:
        right.close()


def test_mid_frame_close_is_a_frame_error_not_a_clean_close():
    left, right = socket.socketpair()
    try:
        frame = encode_frame({"type": "ping"})
        left.sendall(frame[: len(frame) // 2])
        left.close()
        with pytest.raises(FrameError) as excinfo:
            read_frame(right)
        assert not isinstance(excinfo.value, ConnectionClosed)
    finally:
        right.close()

"""Netlist container structure and invariants."""

import pytest

from repro.errors import NetlistError
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist

from tests.conftest import tiny_and_or


def test_add_net_names_and_lookup():
    netlist = Netlist()
    a = netlist.add_net("alpha")
    anon = netlist.add_net()
    assert netlist.net_name(a) == "alpha"
    assert netlist.net_name(anon) == f"n{anon}"
    assert netlist.find_net("alpha") == a
    with pytest.raises(NetlistError):
        netlist.find_net("missing")


def test_duplicate_net_name_rejected():
    netlist = Netlist()
    netlist.add_net("x")
    with pytest.raises(NetlistError):
        netlist.add_net("x")


def test_add_nets_with_prefix():
    netlist = Netlist()
    nets = netlist.add_nets(3, prefix="q")
    assert [netlist.net_name(n) for n in nets] == ["q0", "q1", "q2"]


def test_single_driver_enforced():
    netlist = Netlist()
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    out = netlist.add_net("out")
    netlist.add_gate(GateType.AND, [a, b], out)
    with pytest.raises(NetlistError):
        netlist.add_gate(GateType.OR, [a, b], out)


def test_primary_input_cannot_be_driven():
    netlist = Netlist()
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    with pytest.raises(NetlistError):
        netlist.add_gate(GateType.AND, [a, b], a)


def test_gate_with_unknown_nets_rejected():
    netlist = Netlist()
    a = netlist.new_input("a")
    with pytest.raises(NetlistError):
        netlist.add_gate(GateType.NOT, [99], None)


def test_driver_of():
    netlist = tiny_and_or()
    t = netlist.find_net("t")
    assert netlist.gates[netlist.driver_of(t)].name == "t"
    assert netlist.driver_of(netlist.find_net("a")) is None


def test_fanout_map_and_count():
    netlist = tiny_and_or()
    a = netlist.find_net("a")
    t = netlist.find_net("t")
    fanout = netlist.fanout_map()
    assert fanout[a] == [0]
    assert fanout[t] == [1]
    assert netlist.fanout_count(a) == 1


def test_transitive_fanout():
    netlist = tiny_and_or()
    a = netlist.find_net("a")
    c = netlist.find_net("c")
    assert netlist.transitive_fanout_gates(a) == [0, 1]
    assert netlist.transitive_fanout_gates(c) == [1]


def test_support_of():
    netlist = tiny_and_or()
    y = netlist.find_net("y")
    t = netlist.find_net("t")
    assert netlist.support_of([y]) == {
        netlist.find_net("a"), netlist.find_net("b"), netlist.find_net("c")
    }
    assert netlist.support_of([t]) == {
        netlist.find_net("a"), netlist.find_net("b")
    }


def test_prune_to_outputs_drops_dead_logic():
    netlist = Netlist()
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    live = netlist.add_gate(GateType.AND, [a, b], name="live")
    netlist.add_gate(GateType.OR, [a, b], name="dead")
    netlist.mark_output(live)
    pruned = netlist.prune_to_outputs()
    assert len(pruned.gates) == 1
    assert pruned.gates[0].name == "live"
    # Inputs survive pruning even if unused by kept logic.
    assert len(pruned.primary_inputs) == 2
    pruned.validate()


def test_validate_floating_input():
    netlist = Netlist()
    a = netlist.new_input("a")
    floating = netlist.add_net("floating")
    netlist.add_gate(GateType.AND, [a, floating], name="g")
    with pytest.raises(NetlistError):
        netlist.validate()


def test_validate_floating_output():
    netlist = Netlist()
    netlist.new_input("a")
    dangling = netlist.add_net("dangling")
    netlist.mark_output(dangling)
    with pytest.raises(NetlistError):
        netlist.validate()


def test_counts_by_type_and_stats():
    netlist = tiny_and_or()
    counts = netlist.counts_by_type()
    assert counts[GateType.AND] == 1
    assert counts[GateType.OR] == 1
    stats = netlist.stats()
    assert stats.n_gates == 2
    assert stats.n_inputs == 3
    assert stats.n_outputs == 1
    assert stats.logic_depth == 2


def test_iteration_and_len():
    netlist = tiny_and_or()
    assert len(netlist) == 2
    assert [g.name for g in netlist] == ["t", "y"]


def test_po_on_pi_net_is_legal():
    netlist = Netlist()
    a = netlist.new_input("a")
    netlist.mark_output(a)
    netlist.validate()
    assert netlist.primary_outputs == [a]

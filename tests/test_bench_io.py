""".bench reader/writer."""

import pytest

from repro.errors import NetlistError
from repro.netlist import bench_io
from repro.netlist.evaluate import evaluate_single
from repro.netlist.gates import GateType

from tests.conftest import make_random_netlist, tiny_and_or

SAMPLE = """
# a comment
INPUT(a)
INPUT(b)
OUTPUT(s)
OUTPUT(c)
s = XOR(a, b)
c = AND(a, b)
"""


def test_loads_sample():
    netlist = bench_io.loads(SAMPLE, name="half_adder")
    assert len(netlist.primary_inputs) == 2
    assert len(netlist.primary_outputs) == 2
    assert len(netlist.gates) == 2
    s = netlist.find_net("s")
    a = netlist.find_net("a")
    b = netlist.find_net("b")
    values = evaluate_single(netlist, {a: 1, b: 1})
    assert values[s] == 0
    assert values[netlist.find_net("c")] == 1


def test_forward_references_allowed():
    text = "INPUT(a)\nOUTPUT(y)\ny = NOT(t)\nt = BUF(a)\n"
    netlist = bench_io.loads(text)
    a = netlist.find_net("a")
    values = evaluate_single(netlist, {a: 0})
    assert values[netlist.find_net("y")] == 1


def test_roundtrip_preserves_function():
    original = make_random_netlist(4, 20, seed=11)
    text = bench_io.dumps(original)
    parsed = bench_io.loads(text)
    assert len(parsed.gates) == len(original.gates)
    for trial in range(8):
        assign_o = {
            net: (trial >> i) & 1 for i, net in enumerate(original.primary_inputs)
        }
        assign_p = {
            net: (trial >> i) & 1 for i, net in enumerate(parsed.primary_inputs)
        }
        out_o = [evaluate_single(original, assign_o)[n] for n in original.primary_outputs]
        out_p = [evaluate_single(parsed, assign_p)[n] for n in parsed.primary_outputs]
        assert out_o == out_p


def test_unknown_function_rejected():
    with pytest.raises(NetlistError):
        bench_io.loads("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")


def test_unparseable_line_rejected():
    with pytest.raises(NetlistError):
        bench_io.loads("INPUT(a)\nthis is not bench\n")


def test_undefined_output_rejected():
    with pytest.raises(NetlistError):
        bench_io.loads("INPUT(a)\nOUTPUT(zz)\n")


def test_file_roundtrip(tmp_path):
    netlist = tiny_and_or()
    path = tmp_path / "tiny.bench"
    bench_io.dump(netlist, path)
    loaded = bench_io.load(path)
    assert len(loaded.gates) == 2
    assert loaded.name.endswith("tiny.bench")


def test_inv_and_buff_aliases():
    netlist = bench_io.loads("INPUT(a)\nOUTPUT(y)\nt = BUFF(a)\ny = INV(t)\n")
    assert netlist.gates[0].gtype is GateType.BUF
    assert netlist.gates[1].gtype is GateType.NOT

"""The run-all experiments entry point (with a stubbed Table 2)."""

import json

import repro.experiments.__main__ as runner
from repro.experiments.table2 import Table2Column


def test_runner_writes_all_artifacts(tmp_path, monkeypatch):
    stub_column = Table2Column(
        circuit="c5a2m",
        kernels=(1, 7), sessions=(1, 2), bilbo_registers=(9, 15),
        maximal_delay=(2, 4), patterns_995=(10, 20), time_995=(10, 15),
        patterns_100=(30, 40), time_100=(30, 25),
    )
    monkeypatch.setattr(
        runner, "table2_columns", lambda **kwargs: [stub_column]
    )
    assert runner.main([str(tmp_path)]) == 0
    names = {p.name for p in tmp_path.iterdir()}
    assert {
        "table1.txt", "table2_full.txt", "figures_1_2.txt", "figure3.txt",
        "example1.txt", "figure9.txt", "tpg_examples.txt",
        "pseudo_exhaustive.txt",
    } <= names
    data = json.loads((tmp_path / "figure9.txt").read_text())
    assert data["bibs"]["flipflops"] == 43

"""Property-based differential suite for the vectorised kernel.

Three implementations of fault propagation must agree bit for bit on any
netlist: the event-driven packed bigint loop
(:class:`repro.faultsim.simulator.FaultSimulator`), the numpy-vectorised
kernel (:class:`repro.engine.vec.VecFaultSimulator`) and the deliberately
naive scalar reference from ``tests/test_differential_props.py`` (its own
gate truth tables, its own fixpoint traversal — no shared code).
Hypothesis drives random levelised netlists × random fault samples ×
random pattern blocks through all three and asserts identical detection
tables, first-detection indices and batch-merge results (survivor lists,
``pattern_base`` offsets, ``drop_detected`` in both positions).

The end-to-end property closes the loop through the engine:
``simulate(..., kernel="vec")`` must reproduce the packed run's coverage
curve exactly.  Profiles live in ``tests/conftest.py``: CI runs the
``ci`` profile derandomized, the nightly job searches harder (see
``docs/TESTING.md``).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
np = pytest.importorskip("numpy")

from hypothesis import given, strategies as st  # noqa: E402

from repro.engine import RunConfig, simulate  # noqa: E402
from repro.engine.vec import VecFaultSimulator, vec_support_reason  # noqa: E402
from repro.exec.config import ExecutionPolicy  # noqa: E402
from repro.faultsim.coverage import coverage_curve  # noqa: E402
from repro.faultsim.faults import full_fault_universe  # noqa: E402
from repro.faultsim.patterns import SequencePatternSource  # noqa: E402
from repro.faultsim.simulator import FaultSimulator  # noqa: E402
from repro.netlist.evaluate import Evaluator  # noqa: E402
from tests.test_differential_props import (  # noqa: E402
    _input_assignments,
    _pack,
    _reference_evaluate,
    netlist_and_patterns,
)


def _good_values(netlist, patterns):
    """Packed golden values for a pattern block, via the packed evaluator."""
    _, packed_inputs = _input_assignments(netlist, patterns)
    mask = (1 << len(patterns)) - 1
    return Evaluator(netlist).run(packed_inputs, mask), mask


@given(netlist_and_patterns(), st.data())
def test_vec_batch_matches_packed_and_scalar_reference(case, data):
    """One batch, three implementations: the vec kernel's detections and
    survivors equal the packed loop's, and both equal the brute-force
    scalar reference's first differing pattern index per fault."""
    netlist, patterns = case
    universe = full_fault_universe(netlist)
    faults = data.draw(
        st.lists(st.sampled_from(universe), min_size=1, max_size=8,
                 unique=True)
    )
    assert vec_support_reason(netlist) is None

    good, mask = _good_values(netlist, patterns)
    scalar_inputs, _ = _input_assignments(netlist, patterns)

    packed_sim = FaultSimulator(netlist, batch_width=len(patterns))
    vec_sim = VecFaultSimulator(netlist, batch_width=len(patterns))
    packed_det, vec_det = {}, {}
    packed_live = packed_sim.simulate_batch(faults, good, mask, 0, packed_det)
    vec_live = vec_sim.simulate_batch(faults, good, mask, 0, vec_det)

    assert vec_det == packed_det
    assert vec_live == packed_live

    golden_rows = [_reference_evaluate(netlist, row) for row in scalar_inputs]
    for fault in faults:
        expected = None
        for index, row in enumerate(scalar_inputs):
            faulty = _reference_evaluate(netlist, row, fault)
            if any(golden_rows[index][po] != faulty[po]
                   for po in netlist.primary_outputs):
                expected = index
                break
        assert vec_det.get(fault) == expected


@given(netlist_and_patterns(), st.data())
def test_vec_merge_semantics_match_packed_across_batches(case, data):
    """The merge contract under multi-batch runs: pattern_base offsets,
    live-list carry-over, pre-seeded detections (a fault detected in an
    earlier batch must keep its original index) and drop_detected=False
    all behave identically in both kernels."""
    netlist, patterns = case
    universe = full_fault_universe(netlist)
    faults = data.draw(
        st.lists(st.sampled_from(universe), min_size=1, max_size=8,
                 unique=True)
    )
    drop = data.draw(st.booleans())
    split = data.draw(st.integers(min_value=1, max_value=len(patterns)))
    blocks = [patterns[:split], patterns[split:]]

    packed_sim = FaultSimulator(netlist, batch_width=len(patterns))
    vec_sim = VecFaultSimulator(netlist, batch_width=len(patterns))
    packed_det, vec_det = {}, {}
    packed_live, vec_live = list(faults), list(faults)
    base = 0
    for block in blocks:
        if not block:
            continue
        good, mask = _good_values(netlist, block)
        packed_live = packed_sim.simulate_batch(
            packed_live, good, mask, base, packed_det, drop_detected=drop)
        vec_live = vec_sim.simulate_batch(
            vec_live, good, mask, base, vec_det, drop_detected=drop)
        assert vec_det == packed_det
        assert vec_live == packed_live
        base += len(block)
    if not drop:
        # Without dropping every fault survives every batch.
        assert vec_live == list(faults)


@given(netlist_and_patterns())
def test_vec_engine_run_reproduces_packed_coverage_curve(case):
    """End to end through the engine: kernel="vec" must reproduce the
    packed run's first-detection table, pattern count and entire
    coverage curve on the full fault universe."""
    netlist, patterns = case
    n_inputs = len(netlist.primary_inputs)
    rows = [
        tuple((word >> position) & 1 for position in range(n_inputs))
        for word in patterns
    ]
    runs = {}
    for kernel in ("packed", "vec"):
        runs[kernel] = simulate(
            netlist, None, SequencePatternSource(rows),
            config=RunConfig(
                execution=ExecutionPolicy(kernel=kernel, batch_width=4),
                max_patterns=len(patterns),
            ),
        )
    assert runs["vec"].kernel == "vec"
    assert runs["vec"].kernel_fallback is None
    assert runs["packed"].kernel == "packed"
    assert runs["vec"].first_detection == runs["packed"].first_detection
    assert runs["vec"].n_patterns == runs["packed"].n_patterns
    assert coverage_curve(runs["vec"]) == coverage_curve(runs["packed"])

"""Remote-executor suite: distributed runs that survive node death.

The acceptance story, end to end: a run sharded over localhost worker
agents is bit-identical to the serial baseline — when everything works,
when a peer is killed by deterministic chaos (``node_down`` /
``node_hang`` / ``net_drop``), when a peer is killed for real with
``os.kill`` mid-run, and when *every* peer dies and the run degrades
through the local process fallback.  Re-dispatch is visible in
:class:`~repro.exec.base.NodeStats`; exhausted peer sets never raise; a
coordinator stopped mid-run leaves a journal a later run resumes from.

The suites below use two kinds of peers: in-process
:class:`~repro.exec.agent.WorkerAgent` threads for protocol-level tests,
and real ``python -m repro worker`` subprocesses wherever an agent must
be killable (``node_down`` sends ``os._exit`` to the agent process).
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import telemetry
from repro.engine import FaultInjector, simulate
from repro.exec import (
    CheckpointPolicy,
    ExecutionPolicy,
    ExecutorStartError,
    RetryPolicy,
    RunConfig,
    set_default_peers,
)
from repro.exec.agent import WorkerAgent
from repro.exec.remote import (
    HEARTBEAT_ENV_VAR,
    PEERS_ENV_VAR,
    START_GRACE_ENV_VAR,
    TIMEOUT_ENV_VAR,
    parse_peers,
)
from repro.exec.wire import ConnectionClosed, read_frame, send_frame
from repro.exec.worker import make_simulator, run_work_unit
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.coverage import coverage_curve
from repro.faultsim.patterns import RandomPatternSource
from repro.guard.budget import STOP_PATTERNS, Budget
from repro.guard.cancel import CancelToken
from repro.library.scenarios import c3a2m_kernel, figure4_kernel
from tests.conftest import make_random_netlist

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# ------------------------------------------------------------------ fixtures


def _spawn_worker(*extra: str) -> "subprocess.Popen[str]":
    env = dict(os.environ, PYTHONPATH="src")
    env.pop("REPRO_CHAOS", None)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--listen", "127.0.0.1:0", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        cwd=REPO_ROOT, env=env,
    )
    assert process.stdout is not None
    line = process.stdout.readline().strip()
    assert line.startswith("worker listening on "), line
    process.address = line.rsplit(" ", 1)[-1]  # type: ignore[attr-defined]
    return process


@pytest.fixture
def two_workers(monkeypatch):
    """Two real worker-agent subprocesses, registered as the peer set."""
    monkeypatch.setenv(HEARTBEAT_ENV_VAR, "0.2")
    workers = [_spawn_worker() for _ in range(2)]
    set_default_peers(",".join(w.address for w in workers))
    try:
        yield workers
    finally:
        set_default_peers(None)
        for worker in workers:
            if worker.poll() is None:
                worker.terminate()
            worker.wait(timeout=10)
            worker.stdout.close()
            worker.stderr.close()


@pytest.fixture
def agent_peer(monkeypatch):
    """One in-process agent (cannot host hard-kill chaos) as the peer set."""
    monkeypatch.setenv(HEARTBEAT_ENV_VAR, "0.2")
    agent = WorkerAgent("127.0.0.1", 0)
    host, port = agent.start()
    thread = threading.Thread(target=agent.serve_forever, daemon=True)
    thread.start()
    set_default_peers(f"{host}:{port}")
    try:
        yield agent
    finally:
        set_default_peers(None)
        agent.shutdown()
        thread.join(timeout=5)


def _run(netlist, faults, *, executor=None, jobs=None, chaos=None,
         max_retries=2, budget=None, cancel=None, checkpoint=None,
         max_patterns=512, batch_width=64):
    source = RandomPatternSource(len(netlist.primary_inputs), seed=23)
    config = RunConfig(
        execution=ExecutionPolicy(
            executor=executor, jobs=jobs, batch_width=batch_width,
            chunk_batches=1,
        ),
        retry=RetryPolicy(max_retries=max_retries, backoff=0.0),
        chaos=chaos,
        budget=budget,
        cancel=cancel,
        checkpoint=checkpoint or CheckpointPolicy(),
        max_patterns=max_patterns,
        stop_when_complete=False,
    )
    return simulate(netlist, faults, source, config=config)


def assert_identical(baseline, result):
    assert result.first_detection == baseline.first_detection
    assert result.n_patterns == baseline.n_patterns
    assert coverage_curve(result) == coverage_curve(baseline)


def _scenario_faults(netlist):
    faults, _ = collapse_faults(netlist)
    if len(faults) > 120:
        faults = faults[::7]
    return faults


# -------------------------------------------------------------- equivalence


def test_remote_matches_serial_baseline(two_workers):
    netlist = make_random_netlist(8, 30, seed=5)
    faults, _ = collapse_faults(netlist)
    baseline = _run(netlist, faults)
    result = _run(netlist, faults, executor="remote", jobs=3)
    assert_identical(baseline, result)
    assert result.executor == "remote"
    nodes = result.nodes
    assert [n.node for n in nodes] == [0, 1]
    assert all(n.alive for n in nodes)
    assert sum(n.dispatched for n in nodes) > 0
    assert result.to_json()["engine"]["nodes"][0]["address"] == nodes[0].address


@pytest.mark.parametrize(
    "build", [figure4_kernel, c3a2m_kernel], ids=["figure4", "c3a2m"]
)
@pytest.mark.parametrize("mode", ["node_down", "net_drop"])
def test_node_chaos_is_bit_identical_to_serial(two_workers, build, mode):
    """Acceptance: node death / partition chaos on the bundled circuits
    leaves results bit-identical to an uninterrupted serial run."""
    netlist = build()
    faults = _scenario_faults(netlist)
    baseline = _run(netlist, faults)
    chaos = FaultInjector(mode, shard=0, round_index=0)
    result = _run(netlist, faults, executor="remote", jobs=3, chaos=chaos)
    assert_identical(baseline, result)
    nodes = {n.node: n for n in result.nodes}
    if mode == "node_down":
        assert not nodes[0].alive
        assert "not re-established" in nodes[0].degraded_reason
    else:  # net_drop: transient — the node is reconnected and survives
        assert nodes[0].alive
    # The sabotaged dispatch was re-dispatched somewhere that worked.
    assert sum(n.redispatched for n in result.nodes) >= 1


def test_node_hang_times_out_and_redispatches(two_workers, monkeypatch):
    """A wedged peer trips the coordinator's internal dispatch timeout
    (the driver arms none: supports_timeout=False, detects_hangs=True)."""
    monkeypatch.setenv(TIMEOUT_ENV_VAR, "0.6")
    netlist = figure4_kernel()
    faults = _scenario_faults(netlist)
    baseline = _run(netlist, faults)
    chaos = FaultInjector("node_hang", shard=0, round_index=0, seconds=30.0)
    result = _run(netlist, faults, executor="remote", jobs=3, chaos=chaos)
    assert_identical(baseline, result)
    assert sum(n.redispatched for n in result.nodes) >= 1
    # No driver-level timeout accounting: the hang never reached it.
    assert all(s.timeouts == 0 for s in result.shards)


def test_worker_chaos_modes_still_equal_serial(two_workers):
    """Worker-level chaos (raise/corrupt) rides the driver's retry ladder
    unchanged when the worker happens to be remote."""
    netlist = make_random_netlist(8, 30, seed=6)
    faults, _ = collapse_faults(netlist)
    baseline = _run(netlist, faults)
    for mode in ("raise", "corrupt"):
        chaos = FaultInjector(mode, shard=0, round_index=0)
        result = _run(netlist, faults, executor="remote", jobs=2, chaos=chaos)
        assert_identical(baseline, result)
        assert result.retries >= 1


# ------------------------------------------------------------ real node kill


def _kill_after_dispatches(victims, threshold):
    """SIGKILL ``victims`` once ``exec.remote.dispatched`` reaches
    ``threshold`` — a progress-keyed trigger (a wall-clock timer would
    race a fast run and fire after it already finished)."""
    metrics = telemetry.get_telemetry().metrics

    def watch() -> None:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            counters = metrics.snapshot()["counters"]
            if counters.get("exec.remote.dispatched", 0) >= threshold:
                break
            time.sleep(0.005)
        for victim in victims:
            if victim.poll() is None:
                os.kill(victim.pid, signal.SIGKILL)

    thread = threading.Thread(target=watch, daemon=True)
    thread.start()
    return thread


def test_real_kill_one_worker_mid_run(two_workers):
    """Acceptance: one of two workers SIGKILLed mid-run; the run completes
    bit-identical to serial with the re-dispatch visible in NodeStats."""
    netlist = c3a2m_kernel()
    faults = _scenario_faults(netlist)
    baseline = _run(netlist, faults, max_patterns=2048, batch_width=16)
    telemetry.enable()
    telemetry.get_telemetry().reset()
    victim = two_workers[0]
    watcher = _kill_after_dispatches([victim], threshold=4)
    try:
        result = _run(
            netlist, faults, executor="remote", jobs=4,
            max_patterns=2048, batch_width=16,
        )
    finally:
        watcher.join(timeout=35)
        telemetry.disable()
    assert victim.poll() is not None, "victim survived the kill"
    assert_identical(baseline, result)
    nodes = {n.node: n for n in result.nodes}
    assert not nodes[0].alive
    assert sum(n.redispatched for n in result.nodes) >= 1


def test_killing_every_worker_degrades_to_local_process(two_workers):
    """Acceptance: exhausting the whole peer set degrades to the local
    process backend (synthetic node -1) without an exception."""
    netlist = c3a2m_kernel()
    faults = _scenario_faults(netlist)
    baseline = _run(netlist, faults, max_patterns=2048, batch_width=16)
    telemetry.enable()
    telemetry.get_telemetry().reset()
    watcher = _kill_after_dispatches(list(two_workers), threshold=4)
    try:
        result = _run(
            netlist, faults, executor="remote", jobs=4,
            max_patterns=2048, batch_width=16,
        )
    finally:
        watcher.join(timeout=35)
        telemetry.disable()
    assert_identical(baseline, result)
    nodes = {n.node: n for n in result.nodes}
    assert not nodes[0].alive and not nodes[1].alive
    assert -1 in nodes, "local process fallback never engaged"
    assert nodes[-1].dispatched >= 1
    assert "exhausted" in nodes[-1].degraded_reason


def test_unrelenting_crash_chaos_walks_the_whole_ladder(two_workers):
    """crash chaos past every budget: remote peers die (os._exit in the
    agent), the process fallback's workers die, and the driver's final
    in-parent rung still completes bit-identically."""
    netlist = make_random_netlist(8, 30, seed=8)
    faults, _ = collapse_faults(netlist)
    baseline = _run(netlist, faults, max_patterns=256)
    chaos = FaultInjector("crash", shard=0, round_index=0, times=100)
    result = _run(
        netlist, faults, executor="remote", jobs=2, chaos=chaos,
        max_retries=1, max_patterns=256,
    )
    assert_identical(baseline, result)
    assert 0 in result.degraded_shards
    nodes = {n.node: n for n in result.nodes}
    assert -1 in nodes, "ladder skipped the process fallback rung"


# --------------------------------------------------------- start-time errors


def test_no_reachable_peers_is_a_start_error(monkeypatch):
    monkeypatch.setenv(START_GRACE_ENV_VAR, "0")
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()  # a port that was free a moment ago: nobody listens
    set_default_peers(f"127.0.0.1:{port}")
    try:
        netlist = make_random_netlist(8, 30, seed=5)
        faults, _ = collapse_faults(netlist)
        with pytest.raises(ExecutorStartError, match="could not reach"):
            _run(netlist, faults, executor="remote", jobs=2)
    finally:
        set_default_peers(None)


def test_no_peers_configured_is_a_start_error(monkeypatch):
    monkeypatch.delenv(PEERS_ENV_VAR, raising=False)
    set_default_peers(None)
    netlist = make_random_netlist(8, 30, seed=5)
    faults, _ = collapse_faults(netlist)
    with pytest.raises(ExecutorStartError, match="no peers"):
        _run(netlist, faults, executor="remote", jobs=2)


def test_parse_peers_rejects_garbage():
    from repro.errors import SimulationError

    assert parse_peers("a:1, b:2,") == (("a", 1), ("b", 2))
    with pytest.raises(SimulationError):
        parse_peers("nocolon")
    with pytest.raises(SimulationError):
        parse_peers("host:notaport")


# ------------------------------------------------- checkpoint resume + cancel


def test_partial_remote_run_resumes_from_journal(two_workers, tmp_path):
    """Acceptance: a remote run stopped mid-way (after surviving a node
    death) leaves a journal; the resumed run replays it and finishes
    bit-identical to the uninterrupted serial reference."""
    netlist = figure4_kernel()
    faults = _scenario_faults(netlist)
    reference = _run(netlist, faults, max_patterns=512, batch_width=32)
    checkpoint = CheckpointPolicy(directory=tmp_path, resume=True)
    chaos = FaultInjector("node_down", shard=0, round_index=0)
    partial = _run(
        netlist, faults, executor="remote", jobs=3, chaos=chaos,
        budget=Budget(max_patterns=128), checkpoint=checkpoint,
        max_patterns=512, batch_width=32,
    )
    assert partial.partial and partial.stop_reason == STOP_PATTERNS
    assert sum(n.redispatched for n in partial.nodes) >= 1
    resumed = _run(
        netlist, faults, executor="remote", jobs=3, checkpoint=checkpoint,
        max_patterns=512, batch_width=32,
    )
    assert_identical(reference, resumed)
    assert resumed.rounds_resumed > 0


def test_cancel_token_is_forwarded_to_peers(agent_peer):
    """A tripped CancelToken stops the run partial-safe AND reaches the
    peers as cancel frames (the SIGTERM drain contract)."""
    telemetry.enable()
    telemetry.get_telemetry().reset()
    netlist = make_random_netlist(8, 30, seed=5)
    faults, _ = collapse_faults(netlist)
    cancel = CancelToken()
    cancel.trip("cancelled")
    result = _run(
        netlist, faults, executor="remote", jobs=2, cancel=cancel,
    )
    assert result.partial
    metrics = telemetry.get_telemetry().metrics

    def forwarded() -> int:
        return metrics.snapshot()["counters"].get(
            "exec.remote.cancel_forwarded", 0
        )

    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline and not forwarded():
        time.sleep(0.05)
    assert forwarded() >= 1
    telemetry.disable()


# ------------------------------------------------------------ agent protocol


def _connect(agent: WorkerAgent) -> socket.socket:
    host, port = agent.address
    sock = socket.create_connection((host, port), timeout=5)
    sock.settimeout(5)
    return sock


def _init_payload(netlist, batch_width=64):
    import pickle

    return pickle.dumps((netlist, batch_width, False, "packed"))


def test_agent_answers_ping_and_bye(agent_peer):
    sock = _connect(agent_peer)
    try:
        send_frame(sock, {"type": "ping"})
        assert read_frame(sock) == {"type": "pong"}
        send_frame(sock, {"type": "cancel"})
        assert read_frame(sock) == {"type": "cancel-ack"}
        send_frame(sock, {"type": "bye"})
    finally:
        sock.close()


def test_agent_runs_units_identically_to_local(agent_peer):
    from repro.engine.cache import GoldenBatches
    from repro.exec.base import WorkUnit
    from repro.netlist.evaluate import Evaluator

    netlist = make_random_netlist(6, 20, seed=11)
    faults, _ = collapse_faults(netlist)
    source = RandomPatternSource(len(netlist.primary_inputs), seed=23)
    golden = GoldenBatches(Evaluator(netlist), source, 16)
    mask = (1 << 16) - 1
    unit = WorkUnit(
        shard_id=0, faults=tuple(faults),
        golden_batches=((mask, golden.golden_batch(0)),),
        pattern_base=0, round_index=0, drop_detected=True,
    )
    local = run_work_unit(
        make_simulator(netlist, 16, "packed"), unit, in_process=True
    )
    sock = _connect(agent_peer)
    try:
        send_frame(sock, {"type": "init",
                          "payload": _init_payload(netlist, 16)})
        assert read_frame(sock) == {"type": "ready"}
        send_frame(sock, {"type": "run", "unit": unit})
        reply = read_frame(sock)
    finally:
        sock.close()
    assert reply["type"] == "result"
    remote = reply["result"]
    assert remote.checksum == local.checksum
    assert remote.detections == local.detections
    assert remote.survivors == local.survivors


def test_agent_rejects_run_before_init(agent_peer):
    sock = _connect(agent_peer)
    try:
        send_frame(sock, {"type": "run", "unit": None})
        reply = read_frame(sock)
        assert reply["type"] == "error"
        assert "init" in reply["message"]
    finally:
        sock.close()


def test_agent_drops_unknown_messages(agent_peer):
    sock = _connect(agent_peer)
    try:
        send_frame(sock, {"type": "frobnicate"})
        with pytest.raises(ConnectionClosed):
            read_frame(sock)
    finally:
        sock.close()


# ------------------------------------------------------------- worker CLI


def test_worker_cli_announces_and_exits_143_on_sigterm():
    worker = _spawn_worker()
    try:
        host, port_text = worker.address.rsplit(":", 1)
        with socket.create_connection((host, int(port_text)), timeout=5) as s:
            s.settimeout(5)
            send_frame(s, {"type": "ping"})
            assert read_frame(s) == {"type": "pong"}
    finally:
        worker.terminate()
        assert worker.wait(timeout=10) == 143
        worker.stdout.close()
        worker.stderr.close()


def _pingable(address: str, timeout: float = 1.0) -> bool:
    host, port_text = address.rsplit(":", 1)
    try:
        with socket.create_connection((host, int(port_text)),
                                      timeout=timeout) as sock:
            sock.settimeout(timeout)
            send_frame(sock, {"type": "ping"})
            return read_frame(sock) == {"type": "pong"}
    except OSError:
        return False


def test_worker_respawn_supervises_across_hard_death():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    address = f"127.0.0.1:{port}"
    env = dict(os.environ, PYTHONPATH="src")
    supervisor = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--listen", address, "--respawn", "--quiet"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        cwd=REPO_ROOT, env=env,
    )
    try:
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline and not _pingable(address):
            time.sleep(0.1)
        assert _pingable(address), "supervised worker never came up"
        # Kill the child the hard way (the node_down chaos vector) ...
        with socket.create_connection(("127.0.0.1", port), timeout=5) as s:
            send_frame(s, {"type": "exit"})
            time.sleep(0.1)
        # ... and the supervisor must bring a fresh one back on the port.
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline and not _pingable(address):
            time.sleep(0.1)
        assert _pingable(address), "worker was not respawned after death"
    finally:
        supervisor.terminate()
        assert supervisor.wait(timeout=10) == 143
        supervisor.stdout.close()
        supervisor.stderr.close()

"""Balance analysis: levels, conflicts, the pairwise definition."""

import pytest

from repro.analysis.balance import (
    balance_levels,
    is_balanced,
    is_balanced_bistable,
    path_length_between,
    require_levels,
)
from repro.errors import BalanceError
from repro.graph.build import build_circuit_graph
from repro.graph.model import CircuitGraph, EdgeKind, VertexKind
from repro.library.figures import figure1, figure2


def test_figure2_balanced_with_levels():
    graph = build_circuit_graph(figure2())
    assert is_balanced(graph)
    levels = require_levels(graph)
    assert levels["C2"] - levels["C1"] == 1


def test_figure1_unbalanced_with_conflict():
    graph = build_circuit_graph(figure1())
    assert not is_balanced(graph)
    result = balance_levels(graph)
    assert result.conflict is not None
    assert result.conflict.imbalance == 1
    with pytest.raises(BalanceError):
        require_levels(graph)


def test_cycle_is_not_balanced():
    graph = CircuitGraph()
    graph.add_vertex("a", VertexKind.LOGIC)
    graph.add_vertex("b", VertexKind.LOGIC)
    graph.add_edge("a", "b", EdgeKind.REGISTER, 4, "R1")
    graph.add_edge("b", "a", EdgeKind.REGISTER, 4, "R2")
    assert not is_balanced(graph)
    assert not balance_levels(graph).balanced


def test_pairwise_balanced_without_potential():
    """The crisscross: every pair has a single path (pairwise balanced) but
    no consistent level potential exists.  is_balanced follows the paper's
    pairwise definition and accepts it."""
    graph = CircuitGraph()
    for name in ("a", "b", "c", "d"):
        graph.add_vertex(name, VertexKind.LOGIC)
    graph.add_edge("a", "c", EdgeKind.REGISTER, 4, "R1")
    graph.add_edge("b", "c", EdgeKind.WIRE)
    graph.add_edge("a", "d", EdgeKind.WIRE)
    graph.add_edge("b", "d", EdgeKind.REGISTER, 4, "R2")
    assert is_balanced(graph)
    assert balance_levels(graph).conflict is not None  # potential impossible


def test_path_length_between():
    graph = build_circuit_graph(figure2())
    assert path_length_between(graph, "C1", "C2") == 1
    assert path_length_between(graph, "C2", "C1") is None


def test_path_length_between_unbalanced_raises():
    graph = CircuitGraph()
    for name in ("s", "m", "t"):
        graph.add_vertex(name, VertexKind.LOGIC)
    graph.add_edge("s", "t", EdgeKind.WIRE)
    graph.add_edge("s", "m", EdgeKind.REGISTER, 4, "R1")
    graph.add_edge("m", "t", EdgeKind.WIRE)
    with pytest.raises(BalanceError):
        path_length_between(graph, "s", "t")


def test_is_balanced_bistable_condition3():
    """A cut register edge with both endpoints inside the kernel violates
    Definition 1's third condition."""
    kernel = CircuitGraph()
    kernel.add_vertex("u", VertexKind.LOGIC)
    kernel.add_vertex("v", VertexKind.LOGIC)
    kernel.add_edge("u", "v", EdgeKind.WIRE)
    full = CircuitGraph()
    full.add_vertex("u", VertexKind.LOGIC)
    full.add_vertex("v", VertexKind.LOGIC)
    internal_cut = full.add_edge("v", "u", EdgeKind.REGISTER, 4, "R")
    assert not is_balanced_bistable(kernel, [internal_cut])
    # An edge crossing the boundary is fine.
    other = CircuitGraph()
    other.add_vertex("v", VertexKind.LOGIC)
    other.add_vertex("w", VertexKind.LOGIC)
    crossing = other.add_edge("v", "w", EdgeKind.REGISTER, 4, "R2")
    assert is_balanced_bistable(kernel, [crossing])


def test_levels_normalised_per_component():
    graph = CircuitGraph()
    for name in ("a", "b", "x", "y"):
        graph.add_vertex(name, VertexKind.LOGIC)
    graph.add_edge("a", "b", EdgeKind.REGISTER, 4, "R1")
    graph.add_edge("x", "y", EdgeKind.REGISTER, 4, "R2")
    levels = require_levels(graph)
    assert levels["a"] == 0 and levels["b"] == 1
    assert levels["x"] == 0 and levels["y"] == 1

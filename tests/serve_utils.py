"""Shared plumbing for the ``repro.serve`` test suites and load bench.

Two ways to get a live server:

* :func:`thread_server` — a :class:`repro.serve.ServerThread` inside the
  test process (fast; shares the process telemetry registry, so tests
  reset it).
* :func:`spawn_server` — a real ``python -m repro serve`` subprocess
  (isolated telemetry, real signals); the announced port is parsed from
  its stdout.

:class:`ServeClient` is a deliberately small keep-alive HTTP client over
``http.client`` — the stdlib-only counterpart of the stdlib-only server.
"""

from __future__ import annotations

import http.client
import json
import os
import pathlib
import re
import subprocess
import sys
import time
from contextlib import contextmanager
from typing import Any, Dict, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_ANNOUNCE_RE = re.compile(r"serving on http://[^:]+:(\d+)")


class ServeClient:
    """A keep-alive JSON client for one server."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def close(self) -> None:
        self.conn.close()

    def raw(self, method: str, path: str,
            body: Optional[bytes] = None) -> Tuple[int, bytes]:
        self.conn.request(method, path, body=body)
        response = self.conn.getresponse()
        return response.status, response.read()

    def request(self, method: str, path: str,
                payload: Any = None) -> Tuple[int, Any]:
        """One request; JSON bodies in, parsed JSON (or text) out."""
        body = None
        if payload is not None:
            body = json.dumps(payload).encode()
        status, data = self.raw(method, path, body)
        text = data.decode()
        try:
            return status, json.loads(text)
        except ValueError:
            return status, text

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        status, doc = self.request("POST", "/v1/jobs", payload)
        assert status == 202, (status, doc)
        return doc

    def wait(self, job_id: str, timeout: float = 60.0) -> Dict[str, Any]:
        """Poll job status until it reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, doc = self.request("GET", f"/v1/jobs/{job_id}")
            assert status == 200, (status, doc)
            if doc["state"] in ("done", "failed", "cancelled"):
                return doc
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} did not finish within {timeout}s")

    def result(self, job_id: str,
               include_faults: bool = False) -> Tuple[int, Any]:
        query = "?include_faults=1" if include_faults else ""
        return self.request("GET", f"/v1/jobs/{job_id}/result{query}")


@contextmanager
def thread_server(state_dir, **service_kwargs):
    """A ``(ServerThread, ServeClient)`` pair, drained on exit."""
    from repro.serve import BistService, ServerThread

    service_kwargs.setdefault("drain_grace", 0.0)
    server = ServerThread(BistService(state_dir, **service_kwargs)).start()
    client = ServeClient("127.0.0.1", server.port)
    try:
        yield server, client
    finally:
        client.close()
        server.drain()
        server.join()


def spawn_server(state_dir, *extra_args: str,
                 timeout: float = 60.0) -> Tuple[subprocess.Popen, int]:
    """Start ``python -m repro serve`` and parse the announced port."""
    env = dict(os.environ, PYTHONPATH="src")
    env.pop("REPRO_CHAOS", None)  # ambient chaos would pollute the contract
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--state-dir", str(state_dir), *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        cwd=str(REPO_ROOT), env=env,
    )
    deadline = time.monotonic() + timeout
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = _ANNOUNCE_RE.search(line)
        if match:
            return process, int(match.group(1))
    process.kill()
    out, err = process.communicate()
    raise AssertionError(f"server never announced a port:\n{out}\n{err}")

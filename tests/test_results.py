"""The unified results surface: protocol conformance, JSON schema, O(n)
``undetected``, and the deprecation shims."""

from __future__ import annotations

import time


from repro.faultsim.collapse import collapse_faults
from repro.faultsim.faults import Fault
from repro.faultsim.patterns import RandomPatternSource
from repro.faultsim.simulator import FaultSimulator
from repro.results import (
    CoverageResult,
    CoverageValue,
    FaultSimResult,
    SessionResult,
    fault_to_json,
)
from tests.conftest import make_random_netlist, tiny_and_or


def run_tiny():
    netlist = tiny_and_or()
    simulator = FaultSimulator(netlist, batch_width=8)
    return simulator.run(RandomPatternSource(3, seed=1), 64)


def make_session_result():
    faults = [Fault(net=0, stuck_at=0), Fault(net=1, stuck_at=1)]
    return SessionResult(
        cycles=10,
        golden_signatures={"R": 0xBEEF},
        fault_signatures={faults[0]: {"R": 1}, faults[1]: {"R": 0xBEEF}},
        detected=[faults[0]],
        undetected=[faults[1]],
    )


# ------------------------------------------------------------- the protocol


def test_faultsim_result_satisfies_protocol():
    result = run_tiny()
    assert isinstance(result, CoverageResult)
    assert isinstance(result.detected, list)
    assert isinstance(result.undetected, list)
    assert 0.0 <= result.coverage() <= 1.0
    assert isinstance(result.to_json(), dict)


def test_session_result_satisfies_protocol():
    result = make_session_result()
    assert isinstance(result, CoverageResult)
    # Both historical spellings of coverage work.
    assert result.coverage == 0.5
    assert result.coverage() == 0.5
    assert isinstance(result.to_json(), dict)


def test_coverage_value_is_float_and_callable():
    value = CoverageValue(0.75)
    assert value == 0.75
    assert value + 0.25 == 1.0
    assert value() == 0.75
    assert isinstance(value(), float)


# ------------------------------------------------------------- JSON schemas


BASE_FAULTSIM_KEYS = {
    "kind", "name", "n_faults", "n_detected", "n_undetected",
    "n_undetectable", "n_patterns", "coverage", "coverage_of_detectable",
    "partial", "stop_reason",
}


def test_faultsim_to_json_schema():
    result = run_tiny()
    payload = result.to_json()
    assert payload["kind"] == "faultsim"
    # The engine subclass adds exactly one block on top of the base schema.
    assert set(payload) == BASE_FAULTSIM_KEYS | {"engine"}
    assert set(payload["engine"]) >= {"jobs", "wall_time", "shards"}
    plain = FaultSimResult(result.netlist, result.faults,
                           dict(result.first_detection), result.n_patterns)
    assert set(plain.to_json()) == BASE_FAULTSIM_KEYS
    assert payload["n_detected"] + payload["n_undetected"] == payload["n_faults"]

    detailed = result.to_json(include_faults=True)
    assert len(detailed["first_detection"]) == payload["n_detected"]
    for entry in detailed["first_detection"]:
        assert set(entry) == {"net", "stuck_at", "gate_index", "pin", "pattern"}


def test_session_to_json_schema():
    result = make_session_result()
    payload = result.to_json()
    assert payload["kind"] == "session"
    assert payload["golden_signatures"] == {"R": hex(0xBEEF)}
    assert payload["coverage"] == 0.5
    detailed = result.to_json(include_faults=True)
    assert len(detailed["detected"]) == 1
    assert detailed["detected"][0] == fault_to_json(result.detected[0])


# -------------------------------------------------- undetected: O(n), exact


def test_undetected_preserves_universe_order_and_partitions():
    netlist = make_random_netlist(5, 25, seed=6)
    simulator = FaultSimulator(netlist, batch_width=16)
    faults, _ = collapse_faults(netlist)
    result = simulator.run(RandomPatternSource(5, seed=2), 48, faults=faults)
    undetected = result.undetected
    detected = set(result.first_detection)
    assert undetected == [f for f in faults if f not in detected]
    assert len(undetected) + len(detected) == len(faults)


def test_undetected_is_linear_time():
    """Regression: a large half-detected universe must resolve in O(n).

    The historical accessor scanned per fault; at 60k faults with 30k
    detected a quadratic implementation takes minutes, the set-based one
    milliseconds.  The bound is deliberately generous for slow CI boxes.
    """
    netlist = tiny_and_or()
    n = 60_000
    faults = [Fault(net=i, stuck_at=i % 2) for i in range(n)]
    first_detection = {f: i for i, f in enumerate(faults[: n // 2])}
    result = FaultSimResult(netlist, faults, first_detection, n_patterns=n)
    start = time.perf_counter()
    undetected = result.undetected
    elapsed = time.perf_counter() - start
    assert len(undetected) == n // 2
    assert undetected[0] == faults[n // 2]
    assert elapsed < 2.0


# -------------------------------------------------------- deprecation shims


def test_simulator_shim_reexports_faultsim_result():
    from repro.faultsim.simulator import FaultSimResult as Shimmed

    assert Shimmed is FaultSimResult


def test_session_shim_reexports_session_result():
    from repro.bist.session import SessionResult as Shimmed

    assert Shimmed is SessionResult


def test_top_level_exports():
    import repro

    assert repro.FaultSimResult is FaultSimResult
    assert repro.SessionResult is SessionResult
    assert repro.CoverageResult is CoverageResult


# ---------------------------------------------------- ShardStats round-trip


def test_shard_stats_round_trip_through_engine_json():
    """Failure-handling fields survive to_json()/from_json() exactly."""
    from repro.engine.instrumentation import ShardStats

    stats = ShardStats(
        shard=3, n_faults=100, faults_dropped=40, events_propagated=1234,
        patterns_simulated=512, wall_time=0.25, retries=2, timeouts=1,
        failures=3, rounds_resumed=4,
        degraded_reason="retry budget exhausted after 3 attempts",
    )
    restored = ShardStats.from_json(stats.to_json())
    assert restored == stats
    # Derived fields recompute rather than persist.
    assert restored.patterns_per_second == stats.patterns_per_second
    assert restored.degraded


def test_shard_stats_round_trip_from_live_engine_result():
    from repro.engine import simulate
    from repro.engine.instrumentation import ShardStats
    from tests.conftest import make_random_netlist

    netlist = make_random_netlist(5, 25, seed=6)
    result = simulate(
        netlist, None, RandomPatternSource(5, seed=4),
        max_patterns=64, jobs=2, batch_width=16,
    )
    payload = result.to_json()["engine"]["shards"]
    restored = [ShardStats.from_json(entry) for entry in payload]
    assert restored == result.shards

"""KernelSpec and TPGDesign model."""

import pytest

from repro.errors import TPGError
from repro.tpg.design import (
    Cone,
    InputRegister,
    KernelSpec,
    Slot,
    TPGDesign,
    normalize_labels,
)
from repro.tpg.lfsr import Type1LFSR
from repro.tpg.sc_tpg import sc_tpg


def simple_spec():
    return KernelSpec.single_cone([("A", 3, 1), ("B", 3, 0)], name="simple")


def test_kernel_spec_basics():
    spec = simple_spec()
    assert spec.total_width == 6
    assert spec.sequential_depth == 1
    assert spec.width_of("A") == 3
    assert spec.cone_width(spec.cones[0]) == 6
    assert spec.max_cone_width == 6


def test_kernel_spec_validation():
    with pytest.raises(TPGError):
        KernelSpec.single_cone([("A", 0, 0)])
    with pytest.raises(TPGError):
        KernelSpec.single_cone([("A", 2, 0), ("A", 2, 1)])
    with pytest.raises(TPGError):
        KernelSpec(
            (InputRegister("A", 2),),
            (Cone("O", {"Z": 0}),),
        )
    with pytest.raises(TPGError):
        Cone("O", {"A": -1})


def test_permuted():
    spec = simple_spec()
    flipped = spec.permuted(["B", "A"])
    assert [r.name for r in flipped.registers] == ["B", "A"]
    with pytest.raises(TPGError):
        spec.permuted(["A"])
    with pytest.raises(TPGError):
        spec.permuted(["A", "A"])


def test_design_accounting():
    design = sc_tpg(simple_spec())
    assert design.lfsr_stages == 6
    assert design.n_flipflops == 7  # one separation FF for the depth gap
    assert design.n_extra_flipflops == 1
    assert design.test_time() == (1 << 6) - 1 + 1


def test_register_label_span_and_displacement():
    design = sc_tpg(simple_spec())
    assert design.register_label_span("A") == (1, 3)
    assert design.register_label_span("B") == (5, 7)
    assert design.displacement("A", "B") == 4


def test_unassigned_cell_rejected():
    spec = simple_spec()
    slots = [Slot(i + 1, ("A", i + 1)) for i in range(3)]  # B missing
    with pytest.raises(TPGError):
        TPGDesign(spec, slots, 6)


def test_double_assignment_rejected():
    spec = KernelSpec.single_cone([("A", 1, 0)])
    slots = [Slot(1, ("A", 1)), Slot(2, ("A", 1))]
    with pytest.raises(TPGError):
        TPGDesign(spec, slots, 1)


def test_normalize_labels_shifts_to_one():
    slots = [Slot(0), Slot(-1), Slot(3)]
    normalized, offset = normalize_labels(slots)
    assert offset == 2
    assert sorted(s.label for s in normalized) == [1, 2, 5]


def test_zero_seed_rejected():
    design = sc_tpg(simple_spec())
    with pytest.raises(TPGError):
        next(design.bit_stream(seed=0))


def test_register_stream_matches_lfsr_states():
    """A depth-0 single register TPG is just the LFSR itself.

    Register cell j carries label j, so the register word at time t equals
    the LFSR state (stage i at bit i-1) at time t.
    """
    spec = KernelSpec.single_cone([("R", 4, 0)])
    design = sc_tpg(spec)
    streams = design.register_streams(10, seed=1)
    lfsr = Type1LFSR(4, design.polynomial)
    expected = lfsr.sequence(seed=1, count=10)
    assert streams["R"] == expected


def test_register_stream_time_shift():
    """Cells further down the chain lag the head of the LFSR."""
    spec = KernelSpec.single_cone([("A", 2, 1), ("B", 2, 0)])
    design = sc_tpg(spec)
    steps = 20
    streams = design.register_streams(steps, seed=1)
    # B occupies labels 4..5 (after one separation FF): B at time t equals
    # A's cells shifted by the label distance.
    label_a1 = design.cell_labels[("A", 1)]
    label_b1 = design.cell_labels[("B", 1)]
    lag = label_b1 - label_a1
    for t in range(lag, steps):
        assert streams["B"][t] & 1 == streams["A"][t - lag] & 1


def test_layout_mentions_cells():
    design = sc_tpg(simple_spec())
    text = design.layout()
    assert "A.1" in text and "B.3" in text and "L1" in text


def test_repr():
    design = sc_tpg(simple_spec())
    assert "simple" in repr(design)

"""SCOAP measures and COP random-pattern testability profiles."""

import math

import pytest

from repro.analysis.random_testability import (
    DEFAULT_WINDOW,
    FaultTestability,
    TestabilityProfile,
    analyze_netlist,
    pin_observabilities,
)
from repro.analysis.scoap import UNACHIEVABLE, _xor_fold, scoap
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.cop import estimate_detection_probabilities
from repro.faultsim.faults import Fault
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist

from tests.conftest import make_random_netlist, tiny_and_or


# ---------------------------------------------------------------- SCOAP


def test_scoap_primary_inputs_cost_one(tiny):
    m = scoap(tiny)
    for net in tiny.primary_inputs:
        assert m.cc0[net] == 1.0
        assert m.cc1[net] == 1.0


def test_scoap_textbook_values_on_tiny_and_or(tiny):
    m = scoap(tiny)
    t = tiny.find_net("t")
    y = tiny.find_net("y")
    c = tiny.find_net("c")
    a = tiny.find_net("a")
    # t = a AND b: CC1 = 1+1+1, CC0 = min(1,1)+1.
    assert m.cc1[t] == 3.0 and m.cc0[t] == 2.0
    # y = t OR c: CC1 = min(3,1)+1, CC0 = 2+1+1.
    assert m.cc1[y] == 2.0 and m.cc0[y] == 4.0
    # Observabilities: PO costs 0; through OR hold the other input at 0;
    # through AND hold the other input at 1.
    assert m.co[y] == 0.0
    assert m.co[t] == 0.0 + m.cc0[c] + 1.0  # = 2
    assert m.co[c] == 0.0 + m.cc0[t] + 1.0  # = 3
    assert m.co[a] == m.co[t] + 1.0 + 1.0  # CC1(b)=1 -> 4


def test_scoap_inverting_gate_swaps_measures():
    netlist = Netlist()
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    y = netlist.add_gate(GateType.NAND, [a, b])
    netlist.mark_output(y)
    m = scoap(netlist)
    # NAND: 0 needs both inputs 1; 1 needs any input 0.
    assert m.cc0[y] == 3.0
    assert m.cc1[y] == 2.0


def test_scoap_xor_parity_fold():
    netlist = Netlist()
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    y = netlist.add_gate(GateType.XOR, [a, b])
    netlist.mark_output(y)
    m = scoap(netlist)
    assert m.cc0[y] == 3.0  # cheapest even parity (0,0 or 1,1) + 1
    assert m.cc1[y] == 3.0
    # Observing an XOR input costs holding the other at its cheaper value.
    assert m.co[a] == 0.0 + 1.0 + 1.0


def test_xor_fold_identity():
    assert _xor_fold([]) == (0.0, UNACHIEVABLE)
    assert _xor_fold([(1.0, 2.0)]) == (1.0, 2.0)


def test_scoap_const_side_is_unachievable():
    netlist = Netlist()
    a = netlist.new_input("a")
    zero = netlist.add_gate(GateType.CONST0, [])
    y = netlist.add_gate(GateType.AND, [a, zero])
    netlist.mark_output(y)
    m = scoap(netlist)
    assert m.cc1[zero] == UNACHIEVABLE
    assert m.cc0[zero] == 0.0  # already 0, no input fixing needed
    # The AND output can never be 1 either, and a is unobservable —
    # sensitizing it needs the constant side held at 1.
    assert m.cc1[y] == UNACHIEVABLE
    assert m.co[a] == UNACHIEVABLE
    assert m.testability(a) == UNACHIEVABLE


def test_scoap_dead_net_is_unobservable(tiny):
    dead = tiny.add_net("dead")
    tiny.add_gate(
        GateType.AND,
        [tiny.find_net("a"), tiny.find_net("b")],
        dead,
        name="dead",
    )
    m = scoap(tiny)
    assert m.co[dead] == UNACHIEVABLE
    # The live logic is unaffected.
    assert m.co[tiny.find_net("y")] == 0.0


def test_scoap_stem_takes_cheapest_branch():
    netlist = Netlist()
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    c = netlist.new_input("c")
    d = netlist.new_input("d")
    # a fans out to a cheap branch (BUF to PO) and a costly one.
    cheap = netlist.add_gate(GateType.BUF, [a])
    costly = netlist.add_gate(GateType.AND, [a, b, c, d])
    netlist.mark_output(cheap)
    netlist.mark_output(costly)
    m = scoap(netlist)
    # Through BUF: 0 + 0 + 1; through AND: 0 + 3 + 1.
    assert m.pin_co[(0, 0)] == 1.0
    assert m.pin_co[(1, 0)] == 4.0
    assert m.co[a] == 1.0


def test_scoap_complete_over_random_netlists():
    for seed in (3, 11, 29):
        netlist = make_random_netlist(5, 30, seed=seed)
        m = scoap(netlist)
        for net in range(netlist.n_nets):
            assert net in m.cc0 and net in m.cc1 and net in m.co
            assert m.cc0[net] >= 1.0 and m.cc1[net] >= 1.0
            assert m.co[net] >= 0.0


def test_hardest_nets_ranked_worst_first():
    netlist = make_random_netlist(5, 30, seed=7)
    m = scoap(netlist)
    ranked = m.hardest_nets(5)
    scores = [score for _, score in ranked]
    assert scores == sorted(scores, reverse=True)
    assert len(ranked) == 5


# ---------------------------------------- COP pin-level observabilities


def test_pin_observability_splits_fanout_branches():
    netlist = Netlist()
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    c = netlist.new_input("c")
    and_out = netlist.add_gate(GateType.AND, [a, b])
    or_out = netlist.add_gate(GateType.OR, [a, c])
    netlist.mark_output(and_out)
    netlist.mark_output(or_out)
    stem_obs, pin_obs = pin_observabilities(netlist)
    # Through AND needs b=1 (0.5); through OR needs c=0 (0.5).
    assert pin_obs[(0, 0)] == pytest.approx(0.5)
    assert pin_obs[(1, 0)] == pytest.approx(0.5)
    # Stem: union of the two branches under independence.
    assert stem_obs[a] == pytest.approx(0.75)


def test_pin_observability_matches_stem_without_fanout(tiny):
    stem_obs, pin_obs = pin_observabilities(tiny)
    t = tiny.find_net("t")
    # t has one sink (pin 0 of the OR gate) -> stem == pin.
    assert stem_obs[t] == pytest.approx(pin_obs[(1, 0)])


# ------------------------------------------------- testability profiles


def test_profile_matches_cop_estimates_on_stems(tiny):
    faults = [Fault(tiny.find_net("y"), 0), Fault(tiny.find_net("y"), 1)]
    profile = analyze_netlist(tiny, faults)
    estimates = estimate_detection_probabilities(tiny, faults)
    for entry, estimate in zip(profile.faults, estimates):
        assert entry.detection_probability == pytest.approx(
            estimate.detection_probability
        )
    assert profile.faults[0].detection_probability == pytest.approx(0.625)


def test_branch_fault_observed_through_its_own_pin_only():
    netlist = Netlist()
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    c = netlist.new_input("c")
    and_out = netlist.add_gate(GateType.AND, [a, b])
    or_out = netlist.add_gate(GateType.OR, [a, c])
    netlist.mark_output(and_out)
    netlist.mark_output(or_out)
    stem = Fault(a, 0)
    branch = Fault(a, 0, gate_index=0, pin=0)
    profile = analyze_netlist(netlist, [stem, branch])
    by_key = {e.key(): e for e in profile.faults}
    assert by_key[f"{a}:0"].observability == pytest.approx(0.75)
    assert by_key[f"{a}:0:0:0"].observability == pytest.approx(0.5)


def test_profile_defaults_to_collapsed_universe(tiny):
    profile = analyze_netlist(tiny)
    faults, _ = collapse_faults(tiny)
    assert profile.n_faults == len(faults)


def test_predicted_coverage_monotone_and_bounded(tiny):
    profile = analyze_netlist(tiny)
    previous = 0.0
    for n in (1, 4, 16, 64, 256):
        coverage = profile.predicted_coverage(n)
        assert previous <= coverage <= 1.0
        previous = coverage
    assert TestabilityProfile(tiny, []).predicted_coverage(1) == 1.0


def test_coverage_curve_ends_at_window(tiny):
    profile = analyze_netlist(tiny)
    curve = profile.coverage_curve(max_patterns=256, points=6)
    assert curve[0]["patterns"] == 1.0
    assert curve[-1]["patterns"] == 256.0
    coverages = [point["coverage"] for point in curve]
    assert coverages == sorted(coverages)


def test_random_resistant_ranked_hardest_first():
    netlist = make_random_netlist(6, 40, seed=13)
    profile = analyze_netlist(netlist)
    resistant = profile.random_resistant(0.05)
    probabilities = [e.detection_probability for e in resistant]
    assert probabilities == sorted(probabilities)
    assert all(p < 0.05 for p in probabilities)
    # Undetectable faults always rank first in any positive threshold.
    undetectable = profile.undetectable()
    assert set(e.key() for e in undetectable) <= set(
        e.key() for e in resistant
    )


def test_undetectable_behind_constant():
    netlist = Netlist()
    a = netlist.new_input("a")
    zero = netlist.add_gate(GateType.CONST0, [])
    y = netlist.add_gate(GateType.AND, [a, zero])
    netlist.mark_output(y)
    profile = analyze_netlist(netlist, [Fault(y, 0)])
    entry = profile.faults[0]
    # Exciting y s-a-0 needs y=1, which never happens.
    assert entry.detection_probability == 0.0
    assert math.isinf(entry.expected_patterns())
    assert entry.escape_probability(10_000) == 1.0
    assert profile.undetectable() == [entry]
    assert profile.expected_patterns_for(1.0) is None


def test_expected_patterns_for_reaches_target(tiny):
    profile = analyze_netlist(tiny)
    n = profile.expected_patterns_for(0.99)
    assert n is not None
    assert profile.predicted_coverage(n) >= 0.99
    if n > 1:
        assert profile.predicted_coverage(n - 1) < 0.99


def test_fault_keys_round_trip_stem_and_branch():
    stem = FaultTestability(Fault(7, 1), 0.5, 0.5)
    branch = FaultTestability(Fault(7, 1, gate_index=3, pin=2), 0.5, 0.5)
    assert stem.key() == "7:1"
    assert branch.key() == "7:1:3:2"


def test_profile_json_is_bounded(tiny):
    profile = analyze_netlist(tiny)
    payload = profile.to_json(window=64, top=2, threshold=2.0)
    assert payload["kind"] == "testability-profile"
    assert payload["window"] == 64
    assert payload["n_faults"] == profile.n_faults
    # threshold=2.0 makes every fault "resistant"; top bounds the dump.
    assert payload["n_resistant"] == profile.n_faults
    assert len(payload["resistant"]) == 2
    assert 0.0 <= payload["predicted_coverage"] <= 1.0
    entry = payload["resistant"][0]
    assert set(entry) >= {
        "fault", "excitation", "observability",
        "detection_probability", "expected_patterns", "describe",
    }


def test_profile_json_default_threshold_is_window_inverse(tiny):
    profile = analyze_netlist(tiny)
    payload = profile.to_json()
    assert payload["threshold"] == pytest.approx(1.0 / DEFAULT_WINDOW)


def test_profile_counters_recorded(tiny):
    from repro import telemetry

    telemetry.reset()
    telemetry.enable()
    try:
        analyze_netlist(tiny)
        snapshot = telemetry.get_telemetry().metrics.snapshot()["counters"]
        spans = [s.name for s in telemetry.get_telemetry().tracer.snapshot()]
    finally:
        telemetry.disable()
        telemetry.reset()
    assert snapshot.get("analysis.profiles") == 1
    assert snapshot.get("analysis.faults_profiled", 0) > 0
    assert "analysis.profile" in spans

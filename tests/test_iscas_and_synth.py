"""c17 reference facts and the random-datapath end-to-end property."""

from hypothesis import given, settings, strategies as st

from repro.analysis.balance import is_balanced
from repro.atpg.podem import PodemStatus, podem
from repro.core.bibs import make_bibs_testable, mandatory_bilbo_registers
from repro.core.flow import lower_kernel_to_netlist
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.patterns import ExhaustivePatternSource
from repro.faultsim.simulator import FaultSimulator
from repro.graph.build import build_circuit_graph
from repro.library.iscas import c17
from repro.library.synth import random_datapath
from repro.tpg.mc_tpg import mc_tpg
from repro.tpg.verify import verify_design


# ---------------------------------------------------------------- c17

def test_c17_structure():
    netlist = c17()
    assert len(netlist.primary_inputs) == 5
    assert len(netlist.primary_outputs) == 2
    assert len(netlist.gates) == 6


def test_c17_collapsed_fault_count():
    """The literature's figure: c17 collapses to 22 faults."""
    representatives, mapping = collapse_faults(c17())
    assert len(representatives) == 22
    assert len(mapping) > len(representatives)


def test_c17_all_faults_detectable_exhaustively():
    netlist = c17()
    simulator = FaultSimulator(netlist)
    result = simulator.run(ExhaustivePatternSource(5), 32, stop_when_complete=False)
    assert result.coverage() == 1.0


def test_c17_podem_finds_all():
    netlist = c17()
    representatives, _ = collapse_faults(netlist)
    simulator = FaultSimulator(netlist)
    for fault in representatives:
        result = podem(netlist, fault)
        assert result.status is PodemStatus.DETECTED
        pattern = [result.test[n] for n in netlist.primary_inputs]
        assert simulator.detects(fault, pattern)


def test_c17_known_function():
    """G22 = NAND(G1&G3', wait — just check two reference vectors."""
    from repro.netlist.evaluate import evaluate_single

    netlist = c17()
    nets = {name: netlist.find_net(name) for name in
            ("G1", "G2", "G3", "G6", "G7", "G22", "G23")}
    # All-zero inputs: G10=G11=1, G16=NAND(0,1)=1, G19=NAND(1,0)=1,
    # G22=NAND(1,1)=0, G23=NAND(1,1)=0.
    values = evaluate_single(netlist, {
        nets["G1"]: 0, nets["G2"]: 0, nets["G3"]: 0,
        nets["G6"]: 0, nets["G7"]: 0,
    })
    assert values[nets["G22"]] == 0 and values[nets["G23"]] == 0
    # G3=1, G6=1 -> G11=0 -> G16=1, G19=1 -> G23=0; G1=1 -> G10=0 -> G22=1.
    values = evaluate_single(netlist, {
        nets["G1"]: 1, nets["G2"]: 0, nets["G3"]: 1,
        nets["G6"]: 1, nets["G7"]: 0,
    })
    assert values[nets["G22"]] == 1 and values[nets["G23"]] == 0


# -------------------------------------------------- random datapath sweep

@given(st.integers(0, 200))
@settings(max_examples=15, deadline=None)
def test_random_datapaths_are_balanced_and_bibs_minimal(seed):
    """Property: every compiler-produced datapath is balanced, so BIBS
    converts exactly the PI/PO registers and yields a single kernel."""
    compiled = random_datapath(seed, width=2)
    graph = build_circuit_graph(compiled.circuit)
    assert is_balanced(graph)
    design = make_bibs_testable(graph)
    assert set(design.bilbo_registers) == set(mandatory_bilbo_registers(graph))
    assert sum(1 for k in design.kernels if k.logic_blocks) == 1


@given(st.integers(0, 200))
@settings(max_examples=10, deadline=None)
def test_random_datapath_tpg_is_functionally_exhaustive(seed):
    """Property (the whole pipeline): graph -> kernel -> spec -> MC_TPG ->
    exhaustiveness, on randomly synthesized balanced circuits."""
    compiled = random_datapath(seed, width=2)
    graph = build_circuit_graph(compiled.circuit)
    design = make_bibs_testable(graph)
    kernel = next(k for k in design.kernels if k.logic_blocks)
    spec = kernel.to_kernel_spec()
    tpg = mc_tpg(spec)
    if tpg.lfsr_stages <= 10:
        assert all(v.exhaustive for v in verify_design(tpg))


@given(st.integers(0, 100))
@settings(max_examples=8, deadline=None)
def test_random_datapath_kernel_lowering_is_consistent(seed):
    """Property: the flattened kernel netlist validates and its PI count is
    the kernel's TPG width."""
    compiled = random_datapath(seed, width=2)
    graph = build_circuit_graph(compiled.circuit)
    design = make_bibs_testable(graph)
    kernel = next(k for k in design.kernels if k.logic_blocks)
    netlist = lower_kernel_to_netlist(compiled.circuit, kernel)
    netlist.validate()
    assert len(netlist.primary_inputs) == kernel.input_width

"""The primitive polynomial table."""

import pytest

from repro.errors import TPGError
from repro.tpg.gf2 import degree, is_primitive
from repro.tpg.polynomials import (
    PAPER_POLY_12,
    primitive_polynomial,
    tabulated_degrees,
)


def test_every_table_entry_is_primitive():
    """The whole curated table is algebraically certified."""
    for n in tabulated_degrees():
        poly = primitive_polynomial(n)
        assert degree(poly) == n
        assert is_primitive(poly), f"table entry for degree {n} not primitive"


def test_paper_polynomial_is_degree_12_entry():
    assert primitive_polynomial(12) == PAPER_POLY_12
    assert is_primitive(PAPER_POLY_12)


def test_table_covers_1_through_32():
    assert tabulated_degrees() == list(range(1, 33))


def test_untabulated_degree_searches_and_caches():
    poly1 = primitive_polynomial(33)
    poly2 = primitive_polynomial(33)
    assert poly1 == poly2
    assert is_primitive(poly1)


def test_invalid_degree():
    with pytest.raises(TPGError):
        primitive_polynomial(0)

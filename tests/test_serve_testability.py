"""The static-testability route and the journal LRU sweep.

``GET /v1/designs/{name}/testability`` answers from a per-design profile
memo (window-free analysis paid once per process; ``?patterns=`` windows
are query-time), reusing the design registry's 404 contract.  The sweep
bounds ``<state dir>/journal`` to the newest ``--max-journal-entries``
completed run-key directories — unbounded by default.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from tests.serve_utils import thread_server


@pytest.fixture
def enabled_telemetry():
    telemetry.reset()
    telemetry.enable()
    try:
        yield telemetry.get_telemetry()
    finally:
        telemetry.get_telemetry().disable()
        telemetry.reset()


def counters():
    return telemetry.get_telemetry().metrics.snapshot()["counters"]


# -------------------------------------------------------------- route


def test_testability_route_profiles_a_design(tmp_path, enabled_telemetry):
    with thread_server(tmp_path / "state") as (_, client):
        status, doc = client.request(
            "GET", "/v1/designs/figure9/testability?patterns=512")
        assert status == 200
        assert doc["kind"] == "testability-profile"
        assert doc["design"] == "figure9"
        assert doc["window"] == 512
        assert doc["n_faults"] == 296
        assert 0.9 < doc["predicted_coverage"] < 1.0
        assert doc["n_undetectable"] > 0
        assert doc["resistant"]
        # A different window re-answers from the same memoized profile;
        # fewer patterns can only predict less coverage.
        status, shorter = client.request(
            "GET", "/v1/designs/figure9/testability?patterns=64")
        assert status == 200
        assert shorter["window"] == 64
        assert shorter["predicted_coverage"] <= doc["predicted_coverage"]
    snapshot = counters()
    assert snapshot["analysis.cache_miss"] == 1
    assert snapshot["analysis.cache_hit"] == 1


def test_testability_unknown_design_is_404(tmp_path):
    with thread_server(tmp_path / "state") as (_, client):
        status, doc = client.request("GET", "/v1/designs/nope/testability")
        assert status == 404
        assert doc["error"] == "unknown-design"
        assert "figure9" in doc["available"]


def test_testability_rejects_bad_query_and_method(tmp_path):
    with thread_server(tmp_path / "state") as (_, client):
        status, doc = client.request(
            "GET", "/v1/designs/figure9/testability?patterns=lots")
        assert status == 400
        assert doc["error"] == "bad-query"
        status, doc = client.request(
            "POST", "/v1/designs/figure9/testability", {})
        assert status == 405


# -------------------------------------------------------- journal sweep


def _journal_entries(state_dir):
    journal = state_dir / "journal"
    return sorted(p.name for p in journal.iterdir() if p.is_dir())


def test_journal_sweep_bounds_completed_entries(tmp_path, enabled_telemetry):
    state = tmp_path / "state"
    with thread_server(state, workers=1,
                       max_journal_entries=1) as (_, client):
        for seed in (1, 2, 3):  # distinct seeds -> distinct run keys
            job = client.submit({"design": "mac4", "max_patterns": 128,
                                 "seed": seed})
            client.wait(job["id"])
        assert len(_journal_entries(state)) <= 1
    assert counters()["serve.journal_evictions"] >= 2


def test_journal_unbounded_by_default(tmp_path):
    state = tmp_path / "state"
    with thread_server(state, workers=1) as (_, client):
        for seed in (1, 2):
            job = client.submit({"design": "mac4", "max_patterns": 128,
                                 "seed": seed})
            client.wait(job["id"])
        assert len(_journal_entries(state)) == 2

"""Lint-rule fixtures: one positive and one clean target per rule.

``POSITIVE[rule_id]`` builds an object the rule must flag; ``CLEAN[rule_id]``
builds a near-identical object it must not.  Builders return what the rule's
family lints — a :class:`~repro.netlist.Netlist` for ``NL*`` rules, keyword
arguments for :func:`repro.lint.lint_structure` for ``ST*`` rules, and a
:class:`~repro.tpg.TPGDesign` for ``TP*`` rules.

Several positives are *unconstructable through the public builder API*
(multiple drivers, illegal fan-in) — exactly the hand-edited/deserialized
shapes lint exists for — so they append :class:`~repro.netlist.gates.Gate`
records directly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.core.bibs import make_bibs_testable
from repro.core.kernels import extract_kernels
from repro.core.schedule import Schedule, ScheduledKernel
from repro.graph.build import build_circuit_graph
from repro.library.figures import figure3, figure4
from repro.netlist.gates import GateType
from repro.netlist.netlist import Gate, Netlist
from repro.tpg.design import Cone, InputRegister, KernelSpec, Slot, TPGDesign
from repro.tpg.mc_tpg import mc_tpg

from tests.conftest import tiny_and_or

# --------------------------------------------------------------- NL* targets


def cyclic_netlist() -> Netlist:
    """x = AND(a, loop); loop = BUF(x) — a two-gate combinational cycle."""
    netlist = Netlist("cyclic")
    a = netlist.new_input("a")
    x = netlist.add_net("x")
    loop = netlist.add_net("loop")
    netlist.add_gate(GateType.AND, [a, loop], x, name="gx")
    netlist.add_gate(GateType.BUF, [x], loop, name="gloop")
    netlist.mark_output(x)
    return netlist


def floating_net_netlist() -> Netlist:
    netlist = Netlist("floating")
    a = netlist.new_input("a")
    ghost = netlist.add_net("ghost")  # read below, never driven
    y = netlist.add_net("y")
    netlist.add_gate(GateType.AND, [a, ghost], y, name="gy")
    netlist.mark_output(y)
    return netlist


def multi_driver_netlist() -> Netlist:
    netlist = Netlist("multidriver")
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    y = netlist.add_net("y")
    netlist.add_gate(GateType.BUF, [a], y, name="g0")
    # add_gate refuses a second driver; hand-append like a bad deserializer.
    netlist.gates.append(Gate(GateType.BUF, (b,), y, "g1"))
    netlist.mark_output(y)
    return netlist


def dangling_output_netlist() -> Netlist:
    netlist = tiny_and_or()
    a = netlist.find_net("a")
    dead = netlist.add_net("dead")
    netlist.add_gate(GateType.NOT, [a], dead, name="gdead")
    return netlist


def bad_fanin_netlist() -> Netlist:
    netlist = Netlist("badfanin")
    a = netlist.new_input("a")
    y = netlist.add_net("y")
    # AND needs >= 2 inputs; validate_fanin in add_gate would refuse.
    netlist.gates.append(Gate(GateType.AND, (a,), y, "gy"))
    netlist.mark_output(y)
    return netlist


# --------------------------------------------------------------- ST* targets


def _structure(circuit, bilbo=None, schedule=None) -> Dict[str, Any]:
    graph = build_circuit_graph(circuit)
    if bilbo is not None:
        kernels = extract_kernels(graph, bilbo)
    else:
        kernels = list(make_bibs_testable(graph).kernels)
    return {"graph": graph, "kernels": kernels, "schedule": schedule,
            "name": circuit.name}


def cyclic_kernel_structure() -> Dict[str, Any]:
    """figure3 cut at R1/R9 only: the F<->H cycle stays inside a kernel."""
    return _structure(figure3(), bilbo=["R1", "R9"])


def unbalanced_kernel_structure() -> Dict[str, Any]:
    """figure4 cut at R1/R6: C1->C3 keeps paths of lengths 1 and 3."""
    return _structure(figure4(), bilbo=["R1", "R6"])


def port_conflict_structure() -> Dict[str, Any]:
    """figure3 cut at R7 alone: R7 must both generate and compress."""
    return _structure(figure3(), bilbo=["R7"])


def conflicting_schedule_structure() -> Dict[str, Any]:
    """Two resource-sharing figure4 BIBS kernels forced into one session."""
    structure = _structure(figure4())
    kernels = structure["kernels"]
    structure["schedule"] = Schedule([
        [ScheduledKernel(k, 100) for k in kernels]
    ])
    return structure


def cyclic_graph_structure() -> Dict[str, Any]:
    """figure3's raw graph (F -> H -> F) before any BILBO cut."""
    graph = build_circuit_graph(figure3())
    return {"graph": graph, "kernels": (), "schedule": None,
            "name": graph.name}


def clean_structure() -> Dict[str, Any]:
    """figure4 with its proper BIBS selection and a conflict-free schedule."""
    structure = _structure(figure4())
    structure["schedule"] = Schedule([
        [ScheduledKernel(k, 100)] for k in structure["kernels"]
    ])
    return structure


# --------------------------------------------------------------- TP* targets


def _spec(name: str = "k") -> KernelSpec:
    return KernelSpec.single_cone([("R1", 4, 0)], name=name)


def reducible_polynomial_tpg() -> TPGDesign:
    """x^4 + x^2 + 1 = (x^2 + x + 1)^2 — reducible feedback."""
    return mc_tpg(_spec(), polynomial=0b10101)


def degree_mismatch_tpg() -> TPGDesign:
    """Primitive degree-2 feedback on a 4-stage LFSR."""
    good = mc_tpg(_spec())
    return TPGDesign(good.kernel, good.slots, good.lfsr_stages,
                     polynomial=0b111)


def wide_window_tpg() -> TPGDesign:
    """A depth-5 register pushes its cone window far past the 4 stages."""
    spec = KernelSpec.single_cone([("A", 2, 0), ("B", 2, 5)], name="wide")
    slots = [
        Slot(1, ("A", 1)), Slot(2, ("A", 2)),
        Slot(3, ("B", 1)), Slot(4, ("B", 2)),
    ]
    return TPGDesign(spec, slots, lfsr_stages=4)


def shared_stem_tpg() -> TPGDesign:
    """Two cells of one cone land on stream position 1: R1[1] at depth 1
    and S1[1] labelled 2 at depth 0 both observe b(t - 1)."""
    spec = KernelSpec(
        registers=(InputRegister("R1", 1), InputRegister("S1", 1)),
        cones=(Cone("cone", {"R1": 1, "S1": 0}),),
        name="stem",
    )
    slots = [Slot(1, ("R1", 1)), Slot(2, ("S1", 1))]
    return TPGDesign(spec, slots, lfsr_stages=2)


def short_period_tpg() -> TPGDesign:
    """A 3-wide cone fed from a 2-stage LFSR: period 3 < the 7 required."""
    spec = KernelSpec.single_cone([("R1", 3, 0)], name="short")
    slots = [Slot(1, ("R1", 1)), Slot(2, ("R1", 2)), Slot(3, ("R1", 3))]
    return TPGDesign(spec, slots, lfsr_stages=2)


def clean_tpg() -> TPGDesign:
    return mc_tpg(_spec())


# --------------------------------------------------------------- TB* targets


def resistant_and_tree_netlist() -> Netlist:
    """A 20-input AND: its output s-a-0 needs all inputs 1 (p = 2^-20),
    far below the default 2^16-pattern window — and the predicted
    coverage at that window misses the 99.5% target."""
    netlist = Netlist("andtree")
    inputs = netlist.new_inputs(20, prefix="i")
    y = netlist.add_gate(GateType.AND, inputs, name="gy")
    netlist.mark_output(y)
    return netlist


def deep_chain_netlist() -> Netlist:
    """A 30-stage AND chain: observing the first input costs holding one
    side input at 1 per stage — SCOAP CO(i0) = 60, past the threshold."""
    netlist = Netlist("deepchain")
    current = netlist.new_input("i0")
    for stage in range(30):
        side = netlist.new_input(f"s{stage}")
        current = netlist.add_gate(
            GateType.AND, [current, side], name=f"g{stage}"
        )
    netlist.mark_output(current)
    return netlist


def const_blocked_netlist() -> Netlist:
    """y = AND(a, CONST0): y s-a-0 can never be excited (y is always 0),
    so its detection probability is exactly zero."""
    netlist = Netlist("constblocked")
    a = netlist.new_input("a")
    zero = netlist.add_gate(GateType.CONST0, [], name="gzero")
    y = netlist.add_gate(GateType.AND, [a, zero], name="gy")
    netlist.mark_output(y)
    return netlist


# ------------------------------------------------------------------ catalogs

POSITIVE: Dict[str, Callable[[], Any]] = {
    "NL001": cyclic_netlist,
    "NL002": floating_net_netlist,
    "NL003": multi_driver_netlist,
    "NL004": dangling_output_netlist,
    "NL005": bad_fanin_netlist,
    "ST001": cyclic_kernel_structure,
    "ST002": unbalanced_kernel_structure,
    "ST003": port_conflict_structure,
    "ST004": conflicting_schedule_structure,
    "ST005": cyclic_graph_structure,
    "TP001": reducible_polynomial_tpg,
    "TP002": degree_mismatch_tpg,
    "TP003": wide_window_tpg,
    "TP004": shared_stem_tpg,
    "TP005": short_period_tpg,
    "TB001": resistant_and_tree_netlist,
    "TB002": deep_chain_netlist,
    "TB003": resistant_and_tree_netlist,
    "TB004": const_blocked_netlist,
}

CLEAN: Dict[str, Callable[[], Any]] = {
    "NL001": tiny_and_or,
    "NL002": tiny_and_or,
    "NL003": tiny_and_or,
    "NL004": tiny_and_or,
    "NL005": tiny_and_or,
    "ST001": clean_structure,
    "ST002": clean_structure,
    "ST003": clean_structure,
    "ST004": clean_structure,
    "ST005": clean_structure,
    "TP001": clean_tpg,
    "TP002": clean_tpg,
    "TP003": clean_tpg,
    "TP004": clean_tpg,
    "TP005": clean_tpg,
    "TB001": tiny_and_or,
    "TB002": tiny_and_or,
    "TB003": tiny_and_or,
    "TB004": tiny_and_or,
}

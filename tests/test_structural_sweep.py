"""Selection robustness on random unbalanced structural circuits."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.balance import is_balanced
from repro.core.ballast import make_balanced_by_scan
from repro.core.bibs import is_valid_selection, make_bibs_testable
from repro.core.cbilbo import find_single_register_cycles
from repro.errors import SelectionError
from repro.graph.build import build_circuit_graph
from repro.graph.structures import is_acyclic
from repro.library.synth import random_structural_circuit


@given(st.integers(0, 300))
@settings(max_examples=25, deadline=None)
def test_random_structural_circuits_validate(seed):
    circuit = random_structural_circuit(seed)
    graph = build_circuit_graph(circuit)
    assert is_acyclic(graph)  # the generator builds DAGs
    assert len(graph.register_edges()) >= 2


@given(st.integers(0, 300))
@settings(max_examples=20, deadline=None)
def test_ballast_methods_agree_on_validity(seed):
    """Property: both scan-selection methods produce balancing sets, and
    the exact set is never larger."""
    circuit = random_structural_circuit(seed)
    graph = build_circuit_graph(circuit)
    greedy = make_balanced_by_scan(graph, method="greedy")
    cut = {
        e.index for e in graph.register_edges()
        if e.register in set(greedy.scan_registers)
    }
    assert is_balanced(graph.without_edges(cut))
    if len(graph.register_edges()) <= 14:
        exact = make_balanced_by_scan(graph, method="exact")
        assert exact.n_scan_registers <= greedy.n_scan_registers


@given(st.integers(0, 300))
@settings(max_examples=15, deadline=None)
def test_bibs_greedy_always_valid_on_structural_circuits(seed):
    """Property: greedy BIBS selection is valid whenever any selection is
    (single-register cycles are the only legitimate failure)."""
    circuit = random_structural_circuit(seed)
    graph = build_circuit_graph(circuit)
    try:
        design = make_bibs_testable(graph, method="greedy")
    except SelectionError:
        assert find_single_register_cycles(graph) or not is_valid_selection(
            graph, {e.register for e in graph.register_edges() if e.register}
        )
        return
    assert design.is_valid()
    assert is_valid_selection(graph, set(design.bilbo_registers))


def test_greedy_scan_matches_exact_on_figure4():
    from repro.library.figures import figure4

    graph = build_circuit_graph(figure4())
    exact = make_balanced_by_scan(graph, method="exact")
    greedy = make_balanced_by_scan(graph, method="greedy")
    assert set(exact.scan_registers) <= {"R3", "R9"} or exact.scan_registers
    assert exact.scan_registers == ["R3", "R9"]
    # Greedy finds a (possibly different) valid balancing set.
    cut = {
        e.index for e in graph.register_edges()
        if e.register in set(greedy.scan_registers)
    }
    assert is_balanced(graph.without_edges(cut))


def test_unknown_scan_method():
    from repro.library.figures import figure4

    graph = build_circuit_graph(figure4())
    with pytest.raises(SelectionError):
        make_balanced_by_scan(graph, method="sideways")

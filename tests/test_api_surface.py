"""Smaller API corners across packages."""


from repro.bist.session import SessionResult
from repro.experiments.table1 import full_gate_count
from repro.library.kernels import example3_kernel
from repro.tpg.polynomials import PAPER_POLY_12
from repro.tpg.sc_tpg import sc_tpg


def test_version_and_top_level_exports():
    import repro

    assert repro.__version__
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_feedback_taps_match_paper_polynomial():
    design = sc_tpg(example3_kernel(), polynomial=PAPER_POLY_12)
    assert design.feedback_taps() == [3, 4, 7, 12]
    text = design.layout()
    assert "feedback: x^12 + x^7 + x^4 + x^3 + 1" in text
    assert "sr" in text  # L13 is a shift-register stage


def test_full_gate_count_counts_every_block():
    from repro.datapath.filters import c5a2m

    circuit = c5a2m().circuit
    total = full_gate_count(circuit)
    # 5 adders + 2 full multipliers, unpruned.
    assert total > 700


def test_session_result_empty_coverage():
    result = SessionResult(cycles=10, golden_signatures={}, fault_signatures={})
    assert result.coverage == 1.0


def test_rtl_stats_equality():
    from repro.datapath.filters import c3a2m

    a = c3a2m().circuit.stats()
    b = c3a2m().circuit.stats()
    assert a == b
    assert a.n_registers == 21


def test_cli_export_every_builtin(tmp_path):
    from repro.cli import main

    for name in ("c5a2m", "c3a2m", "c4a4m", "figure4", "figure9", "mac4"):
        path = tmp_path / f"{name}.json"
        assert main(["export", name, str(path)]) == 0
        assert path.stat().st_size > 100


def test_lint_surface_exports():
    import repro
    import repro.lint as lint

    # The convenience names are importable from both levels.
    for name in ("Finding", "LintError", "LintReport", "lint_circuit",
                 "lint_netlist", "lint_structure", "lint_testability",
                 "lint_tpg"):
        assert getattr(repro, name) is getattr(lint, name)
    for name in lint.__all__:
        assert getattr(lint, name) is not None
    # The registry holds the documented rule catalog (docs/LINT.md).
    by_family = {"netlist": 0, "structure": 0, "tpg": 0, "testability": 0}
    for r in lint.all_rules():
        by_family[r.target] += 1
    assert by_family == {"netlist": 5, "structure": 5, "tpg": 5,
                         "testability": 4}


def test_lint_report_merge_keeps_target_name():
    from repro.lint import LintReport

    merged = LintReport.merge(
        [LintReport("a"), LintReport("b")], target="combined"
    )
    assert merged.target == "combined"
    assert not merged.has_errors


def test_kernel_spec_from_session_roundtrips_registers():
    from repro.core.bibs import make_bibs_testable
    from repro.datapath.filters import c3a2m
    from repro.graph.build import build_circuit_graph

    circuit = c3a2m().circuit
    design = make_bibs_testable(build_circuit_graph(circuit))
    kernel = design.kernels[0]
    spec = kernel.to_kernel_spec()
    assert {r.name for r in spec.registers} == set(kernel.tpg_registers)
    assert {c.name for c in spec.cones} == set(kernel.sa_registers)
    # c3a2m is balanced: every PI register sits at the same sequential
    # length from the output (the delay chains exist precisely for this),
    # so the TPG needs no compensation FFs at all.
    depths = spec.cones[0].depths
    assert set(depths.values()) == {4}
    from repro.tpg.mc_tpg import mc_tpg

    assert mc_tpg(spec).n_extra_flipflops == 0

"""Procedure SC_TPG against the paper's Examples 2-4 plus properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TPGError
from repro.library.kernels import (
    example2_kernel,
    example3_kernel,
    example4_kernel,
)
from repro.tpg.design import Cone, InputRegister, KernelSpec
from repro.tpg.polynomials import PAPER_POLY_12
from repro.tpg.sc_tpg import extra_flipflops_needed, sc_tpg
from repro.tpg.verify import is_functionally_exhaustive, verify_design


def test_example2_exact_numbers():
    """Figure 13: 12-stage LFSR, 2 extra D-FFs, test time 2^12 - 1 + 2."""
    design = sc_tpg(example2_kernel(), polynomial=PAPER_POLY_12)
    assert design.lfsr_stages == 12
    assert design.n_extra_flipflops == 2
    assert design.n_flipflops == 14
    assert design.test_time() == (1 << 12) - 1 + 2
    assert design.polynomial == PAPER_POLY_12


def test_example2_sorted_depth_closed_form():
    """For descending depths, extra FFs = d_1 - d_n."""
    assert extra_flipflops_needed(example2_kernel()) == 2


def test_example3_sharing_and_separation():
    """Figure 15: R1.4 and R2.1 share L4; R2 and R3 separated by two FFs."""
    design = sc_tpg(example3_kernel(), polynomial=PAPER_POLY_12)
    assert design.lfsr_stages == 12
    assert design.cell_labels[("R1", 4)] == design.cell_labels[("R2", 1)] == 4
    assert design.register_label_span("R2") == (4, 7)
    assert design.register_label_span("R3") == (10, 13)
    assert design.max_label == 13  # L13 is a shift-register stage beyond M
    assert design.n_flipflops == 14


def test_example4_limited_sharing():
    """Figure 16: |delta|=5 > r=4, so only 3 stages are actually shared."""
    design = sc_tpg(example4_kernel())
    assert design.lfsr_stages == 8
    span1 = design.register_label_span("R1")
    span2 = design.register_label_span("R2")
    shared = min(span1[1], span2[1]) - max(span1[0], span2[0]) + 1
    assert shared == 3
    # The string is extended so M=8 consecutive labels exist (step 5).
    assert design.max_label - min(s.label for s in design.slots) + 1 >= 8


@pytest.mark.parametrize(
    "factory", [example2_kernel, example3_kernel, example4_kernel]
)
def test_paper_examples_functionally_exhaustive_at_width3(factory):
    """Theorem 5 verified by exact enumeration at reduced width."""
    design = sc_tpg(factory(width=3))
    assert is_functionally_exhaustive(design)


def test_rejects_multi_cone():
    spec = KernelSpec(
        (InputRegister("A", 2), InputRegister("B", 2)),
        (Cone("O1", {"A": 0}), Cone("O2", {"B": 0})),
    )
    with pytest.raises(TPGError):
        sc_tpg(spec)


def test_rejects_partial_cone():
    spec = KernelSpec(
        (InputRegister("A", 2), InputRegister("B", 2)),
        (Cone("O1", {"A": 0}),),
    )
    with pytest.raises(TPGError):
        sc_tpg(spec)


def test_equal_depths_plain_lfsr():
    """All depths equal: no extra FFs, registers concatenated directly."""
    spec = KernelSpec.single_cone([("A", 3, 1), ("B", 3, 1), ("C", 2, 1)])
    design = sc_tpg(spec)
    assert design.n_extra_flipflops == 0
    assert design.lfsr_stages == 8
    assert design.register_label_span("C") == (7, 8)


@given(
    st.lists(
        st.tuples(st.integers(1, 3), st.integers(0, 3)),
        min_size=1,
        max_size=4,
    ),
    st.integers(1, 100),
)
@settings(max_examples=25, deadline=None)
def test_property_random_single_cone_exhaustive(widths_depths, seed):
    """Property (Theorem 5): SC_TPG is functionally exhaustive for any
    single-cone kernel, whatever the register order and depth profile."""
    total = sum(w for w, _ in widths_depths)
    if total > 10:  # keep the 2^M enumeration cheap
        widths_depths = widths_depths[:2]
    spec = KernelSpec.single_cone(
        [(f"R{i}", w, d) for i, (w, d) in enumerate(widths_depths)]
    )
    design = sc_tpg(spec)
    assert design.lfsr_stages == spec.total_width
    verdicts = verify_design(design, seed=(seed % ((1 << design.lfsr_stages) - 1)) or 1)
    assert all(v.exhaustive for v in verdicts)

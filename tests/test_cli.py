"""The ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def mac4_json(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "mac4.json"
    assert main(["export", "mac4", str(path)]) == 0
    return str(path)


@pytest.fixture(scope="module")
def figure4_json(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "figure4.json"
    assert main(["export", "figure4", str(path)]) == 0
    return str(path)


def test_analyze(capsys, mac4_json):
    assert main(["analyze", mac4_json]) == 0
    out = capsys.readouterr().out
    assert "balanced" in out and "True" in out
    assert "k-step functionally testable" in out


def test_analyze_unbalanced_reports_witness(capsys, figure4_json):
    assert main(["analyze", figure4_json]) == 0
    out = capsys.readouterr().out
    assert "worst imbalance" in out


def test_bibs(capsys, mac4_json):
    assert main(["bibs", mac4_json, "--compare-ka"]) == 0
    out = capsys.readouterr().out
    assert "BILBO registers" in out
    assert "KA-85 for contrast" in out


def test_bibs_exact_method(capsys, figure4_json):
    assert main(["bibs", figure4_json, "--method", "exact"]) == 0
    out = capsys.readouterr().out
    assert "R3" in out and "R9" in out


def test_tpg(capsys, mac4_json):
    assert main(["tpg", mac4_json]) == 0
    out = capsys.readouterr().out
    assert "M = 12" in out
    assert "[OK]" in out or "skipping" in out


def test_tpg_kernel_out_of_range(capsys, mac4_json):
    assert main(["tpg", mac4_json, "--kernel", "9"]) == 2


def test_selftest(capsys, mac4_json):
    assert main(["selftest", mac4_json, "--cycles", "300",
                 "--max-faults", "30"]) == 0
    out = capsys.readouterr().out
    assert "golden signature" in out


def test_selftest_without_gate_behaviour(capsys, figure4_json):
    assert main(["selftest", figure4_json]) == 2
    err = capsys.readouterr().err
    assert "gate expander" in err


def test_module_entry_point(tmp_path):
    path = tmp_path / "c.json"
    process = subprocess.run(
        [sys.executable, "-m", "repro", "export", "mac4", str(path)],
        capture_output=True, text=True,
    )
    assert process.returncode == 0
    assert path.exists()


# ------------------------------------------------------- telemetry surface


def _reset_global_telemetry():
    from repro import telemetry

    instance = telemetry.get_telemetry()
    instance.reset()
    instance.disable()


def test_selftest_writes_validatable_telemetry_artifacts(
    capsys, tmp_path, mac4_json
):
    import json

    trace_path = tmp_path / "t.json"
    metrics_path = tmp_path / "m.prom"
    try:
        assert main(["selftest", mac4_json, "--cycles", "300",
                     "--max-faults", "30", "--jobs", "2",
                     "--trace-out", str(trace_path),
                     "--metrics-out", str(metrics_path)]) == 0
    finally:
        _reset_global_telemetry()
    out = capsys.readouterr().out
    assert "wrote trace" in out and "wrote metrics" in out

    # Both artifacts validate through the same path CI uses.
    assert main(["telemetry", "view", str(trace_path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == "chrome-trace"
    assert payload["valid"] and not payload["errors"]
    assert payload["manifest"] is True
    assert "engine.simulate" in payload["span_names"]

    assert main(["telemetry", "view", str(metrics_path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == "prometheus"
    assert payload["valid"]
    assert payload["samples"]["engine_runs"] >= 1


def test_selftest_quiet_suppresses_progress(capsys, mac4_json):
    assert main(["selftest", mac4_json, "--cycles", "300",
                 "--max-faults", "30", "--quiet"]) == 0
    assert capsys.readouterr().out == ""


def test_telemetry_view_manifest(capsys, tmp_path):
    import json

    from repro.telemetry.manifest import RunManifest

    path = tmp_path / "manifest.json"
    RunManifest.collect(config={"k": 1}).write(path)
    assert main(["telemetry", "view", str(path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == "run-manifest"
    assert payload["valid"]


def test_telemetry_view_rejects_malformed(capsys, tmp_path):
    bad = tmp_path / "bad.prom"
    bad.write_text("this is not } a metric\n")
    assert main(["telemetry", "view", str(bad)]) == 1
    import json

    payload = json.loads(capsys.readouterr().out)
    assert not payload["valid"] and payload["errors"]

    missing = tmp_path / "missing.json"
    assert main(["telemetry", "view", str(missing)]) == 2

    quiet_bad = tmp_path / "bad2.json"
    quiet_bad.write_text('{"neither": "trace nor manifest"}')
    assert main(["telemetry", "view", str(quiet_bad), "--quiet"]) == 1
    assert capsys.readouterr().out == ""

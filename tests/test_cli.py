"""The ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def mac4_json(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "mac4.json"
    assert main(["export", "mac4", str(path)]) == 0
    return str(path)


@pytest.fixture(scope="module")
def figure4_json(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "figure4.json"
    assert main(["export", "figure4", str(path)]) == 0
    return str(path)


def test_analyze(capsys, mac4_json):
    assert main(["analyze", mac4_json]) == 0
    out = capsys.readouterr().out
    assert "balanced" in out and "True" in out
    assert "k-step functionally testable" in out


def test_analyze_unbalanced_reports_witness(capsys, figure4_json):
    assert main(["analyze", figure4_json]) == 0
    out = capsys.readouterr().out
    assert "worst imbalance" in out


def test_bibs(capsys, mac4_json):
    assert main(["bibs", mac4_json, "--compare-ka"]) == 0
    out = capsys.readouterr().out
    assert "BILBO registers" in out
    assert "KA-85 for contrast" in out


def test_bibs_exact_method(capsys, figure4_json):
    assert main(["bibs", figure4_json, "--method", "exact"]) == 0
    out = capsys.readouterr().out
    assert "R3" in out and "R9" in out


def test_tpg(capsys, mac4_json):
    assert main(["tpg", mac4_json]) == 0
    out = capsys.readouterr().out
    assert "M = 12" in out
    assert "[OK]" in out or "skipping" in out


def test_tpg_kernel_out_of_range(capsys, mac4_json):
    assert main(["tpg", mac4_json, "--kernel", "9"]) == 2


def test_selftest(capsys, mac4_json):
    assert main(["selftest", mac4_json, "--cycles", "300",
                 "--max-faults", "30"]) == 0
    out = capsys.readouterr().out
    assert "golden signature" in out


def test_selftest_without_gate_behaviour(capsys, figure4_json):
    assert main(["selftest", figure4_json]) == 2
    err = capsys.readouterr().err
    assert "gate expander" in err


def test_module_entry_point(tmp_path):
    path = tmp_path / "c.json"
    process = subprocess.run(
        [sys.executable, "-m", "repro", "export", "mac4", str(path)],
        capture_output=True, text=True,
    )
    assert process.returncode == 0
    assert path.exists()


# ------------------------------------------------------------ lint surface


def test_lint_builtin_targets_clean(capsys):
    assert main(["lint", "figure4", "c17"]) == 0
    out = capsys.readouterr().out
    assert "lint figure4" in out and "clean" in out


def test_lint_forced_bad_cut_fails_with_witness(capsys):
    import json

    assert main(["lint", "figure4", "--bilbo", "R1,R6", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "lint" and payload["n_errors"] > 0
    findings = [f for r in payload["reports"] for f in r["findings"]]
    assert {f["rule"] for f in findings} == {"ST002"}
    assert all(f["witness"] for f in findings)


def test_lint_forced_bad_polynomial_fails(capsys):
    assert main(["lint", "mac4", "--polynomial", "0b10101"]) == 1
    out = capsys.readouterr().out
    assert "TP001" in out and "reducible" in out


def test_lint_baseline_workflow(capsys, tmp_path):
    baseline = tmp_path / "bl.json"
    assert main(["lint", "figure4", "--bilbo", "R1,R6",
                 "--baseline", str(baseline), "--update-baseline"]) == 0
    capsys.readouterr()
    assert main(["lint", "figure4", "--bilbo", "R1,R6",
                 "--baseline", str(baseline)]) == 0
    assert "baselined" in capsys.readouterr().out


def test_lint_bench_file(capsys, tmp_path):
    bench = tmp_path / "broken.bench"
    bench.write_text("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")
    assert main(["lint", str(bench)]) == 1
    assert "NL002" in capsys.readouterr().out


def test_lint_rejects_unknown_target(capsys):
    assert main(["lint", "nonsense"]) == 2
    assert "unknown lint target" in capsys.readouterr().err


def test_lint_listed_in_module_help():
    process = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True, text=True,
    )
    assert process.returncode == 0
    assert "lint" in process.stdout


# ------------------------------------------------------- telemetry surface


def _reset_global_telemetry():
    from repro import telemetry

    instance = telemetry.get_telemetry()
    instance.reset()
    instance.disable()


def test_selftest_writes_validatable_telemetry_artifacts(
    capsys, tmp_path, mac4_json
):
    import json

    trace_path = tmp_path / "t.json"
    metrics_path = tmp_path / "m.prom"
    try:
        assert main(["selftest", mac4_json, "--cycles", "300",
                     "--max-faults", "30", "--jobs", "2",
                     "--trace-out", str(trace_path),
                     "--metrics-out", str(metrics_path)]) == 0
    finally:
        _reset_global_telemetry()
    out = capsys.readouterr().out
    assert "wrote trace" in out and "wrote metrics" in out

    # Both artifacts validate through the same path CI uses.
    assert main(["telemetry", "view", str(trace_path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == "chrome-trace"
    assert payload["valid"] and not payload["errors"]
    assert payload["manifest"] is True
    assert "engine.simulate" in payload["span_names"]

    assert main(["telemetry", "view", str(metrics_path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == "prometheus"
    assert payload["valid"]
    assert payload["samples"]["engine_runs"] >= 1


def test_selftest_quiet_suppresses_progress(capsys, mac4_json):
    assert main(["selftest", mac4_json, "--cycles", "300",
                 "--max-faults", "30", "--quiet"]) == 0
    assert capsys.readouterr().out == ""


def test_telemetry_view_manifest(capsys, tmp_path):
    import json

    from repro.telemetry.manifest import RunManifest

    path = tmp_path / "manifest.json"
    RunManifest.collect(config={"k": 1}).write(path)
    assert main(["telemetry", "view", str(path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == "run-manifest"
    assert payload["valid"]


def test_telemetry_view_rejects_malformed(capsys, tmp_path):
    bad = tmp_path / "bad.prom"
    bad.write_text("this is not } a metric\n")
    assert main(["telemetry", "view", str(bad)]) == 1
    import json

    payload = json.loads(capsys.readouterr().out)
    assert not payload["valid"] and payload["errors"]

    missing = tmp_path / "missing.json"
    assert main(["telemetry", "view", str(missing)]) == 2

    quiet_bad = tmp_path / "bad2.json"
    quiet_bad.write_text('{"neither": "trace nor manifest"}')
    assert main(["telemetry", "view", str(quiet_bad), "--quiet"]) == 1
    assert capsys.readouterr().out == ""

"""The ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def mac4_json(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "mac4.json"
    assert main(["export", "mac4", str(path)]) == 0
    return str(path)


@pytest.fixture(scope="module")
def figure4_json(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "figure4.json"
    assert main(["export", "figure4", str(path)]) == 0
    return str(path)


def test_analyze(capsys, mac4_json):
    assert main(["analyze", mac4_json]) == 0
    out = capsys.readouterr().out
    assert "balanced" in out and "True" in out
    assert "k-step functionally testable" in out


def test_analyze_unbalanced_reports_witness(capsys, figure4_json):
    assert main(["analyze", figure4_json]) == 0
    out = capsys.readouterr().out
    assert "worst imbalance" in out


def test_analyze_scenario_testability(capsys):
    import json

    assert main(["analyze", "figure9", "--patterns", "512", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "analyze-testability"
    assert payload["profile"]["window"] == 512
    assert 0.9 < payload["profile"]["predicted_coverage"] < 1.0
    assert payload["profile"]["n_undetectable"] > 0
    assert payload["hardest_nets"]
    assert payload["lint"]["kind"] == "lint-report"
    assert any(f["rule"] == "TB004"
               for f in payload["lint"]["findings"])


def test_analyze_bench_testability(capsys, tmp_path):
    import json

    bench = tmp_path / "tree.bench"
    inputs = [f"i{k}" for k in range(4)]
    bench.write_text("\n".join([
        *(f"INPUT({name})" for name in inputs),
        "OUTPUT(y)",
        f"y = AND({', '.join(inputs)})",
        "",
    ]))
    # y s-a-0 needs all four inputs high: p = 1/16 < 1/8, so the fault
    # lands in the resistant ranking for an 8-pattern window.
    assert main(["analyze", str(bench), "--patterns", "8", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "analyze-testability"
    assert payload["profile"]["n_resistant"] >= 1
    hardest = payload["profile"]["resistant"][0]
    assert hardest["detection_probability"] <= 1 / 16


def test_analyze_rejects_unknown_target(capsys):
    assert main(["analyze", "nonsense"]) == 2
    assert "unknown analyze target" in capsys.readouterr().err


def test_bibs(capsys, mac4_json):
    assert main(["bibs", mac4_json, "--compare-ka"]) == 0
    out = capsys.readouterr().out
    assert "BILBO registers" in out
    assert "KA-85 for contrast" in out


def test_bibs_exact_method(capsys, figure4_json):
    assert main(["bibs", figure4_json, "--method", "exact"]) == 0
    out = capsys.readouterr().out
    assert "R3" in out and "R9" in out


def test_tpg(capsys, mac4_json):
    assert main(["tpg", mac4_json]) == 0
    out = capsys.readouterr().out
    assert "M = 12" in out
    assert "[OK]" in out or "skipping" in out


def test_tpg_kernel_out_of_range(capsys, mac4_json):
    assert main(["tpg", mac4_json, "--kernel", "9"]) == 2


def test_selftest(capsys, mac4_json):
    assert main(["selftest", mac4_json, "--cycles", "300",
                 "--max-faults", "30"]) == 0
    out = capsys.readouterr().out
    assert "golden signature" in out


def test_selftest_analyze_preflight(capsys, mac4_json):
    import json

    assert main(["selftest", mac4_json, "--cycles", "300",
                 "--max-faults", "30", "--jobs", "1", "--analyze",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    block = payload["pattern_coverage"]["testability"]
    assert block["window"] == 300
    assert 0.0 <= block["measured_coverage"] <= 1.0
    assert block["delta"] == pytest.approx(
        block["predicted_coverage"] - block["measured_coverage"])


def test_selftest_analyze_progress_line(capsys, mac4_json):
    assert main(["selftest", mac4_json, "--cycles", "300",
                 "--max-faults", "30", "--jobs", "1", "--analyze"]) == 0
    assert "static prediction" in capsys.readouterr().out


def test_selftest_without_gate_behaviour(capsys, figure4_json):
    assert main(["selftest", figure4_json]) == 2
    err = capsys.readouterr().err
    assert "gate expander" in err


def test_module_entry_point(tmp_path):
    path = tmp_path / "c.json"
    process = subprocess.run(
        [sys.executable, "-m", "repro", "export", "mac4", str(path)],
        capture_output=True, text=True,
    )
    assert process.returncode == 0
    assert path.exists()


# ------------------------------------------------------------ lint surface


def test_lint_builtin_targets_clean(capsys):
    assert main(["lint", "figure4", "c17"]) == 0
    out = capsys.readouterr().out
    assert "lint figure4" in out and "clean" in out


def test_lint_forced_bad_cut_fails_with_witness(capsys):
    import json

    assert main(["lint", "figure4", "--bilbo", "R1,R6", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "lint" and payload["n_errors"] > 0
    findings = [f for r in payload["reports"] for f in r["findings"]]
    assert {f["rule"] for f in findings} == {"ST002"}
    assert all(f["witness"] for f in findings)


def test_lint_forced_bad_polynomial_fails(capsys):
    assert main(["lint", "mac4", "--polynomial", "0b10101"]) == 1
    out = capsys.readouterr().out
    assert "TP001" in out and "reducible" in out


def test_lint_baseline_workflow(capsys, tmp_path):
    baseline = tmp_path / "bl.json"
    assert main(["lint", "figure4", "--bilbo", "R1,R6",
                 "--baseline", str(baseline), "--update-baseline"]) == 0
    capsys.readouterr()
    assert main(["lint", "figure4", "--bilbo", "R1,R6",
                 "--baseline", str(baseline)]) == 0
    assert "baselined" in capsys.readouterr().out


def test_lint_bench_file(capsys, tmp_path):
    bench = tmp_path / "broken.bench"
    bench.write_text("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")
    assert main(["lint", str(bench)]) == 1
    assert "NL002" in capsys.readouterr().out


def test_lint_bench_update_baseline_roundtrip(capsys, tmp_path):
    """The .bench upload path supports the same baseline workflow as the
    built-in targets: record, suppress, and stay target-scoped."""
    bench = tmp_path / "broken.bench"
    bench.write_text("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")
    baseline = tmp_path / "bl.json"
    assert main(["lint", str(bench), "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    capsys.readouterr()
    assert main(["lint", str(bench), "--baseline", str(baseline)]) == 0
    assert "baselined" in capsys.readouterr().out
    # A different netlist does not inherit the suppression.
    other = tmp_path / "other.bench"
    other.write_text("INPUT(a)\nOUTPUT(z)\nz = AND(a, ghost)\n")
    assert main(["lint", str(other), "--baseline", str(baseline)]) == 1


def test_lint_rejects_unknown_target(capsys):
    assert main(["lint", "nonsense"]) == 2
    assert "unknown lint target" in capsys.readouterr().err


def test_lint_listed_in_module_help():
    process = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True, text=True,
    )
    assert process.returncode == 0
    assert "lint" in process.stdout


# ------------------------------------------------------- telemetry surface


def _reset_global_telemetry():
    from repro import telemetry

    instance = telemetry.get_telemetry()
    instance.reset()
    instance.disable()


def test_selftest_writes_validatable_telemetry_artifacts(
    capsys, tmp_path, mac4_json
):
    import json

    trace_path = tmp_path / "t.json"
    metrics_path = tmp_path / "m.prom"
    try:
        assert main(["selftest", mac4_json, "--cycles", "300",
                     "--max-faults", "30", "--jobs", "2",
                     "--trace-out", str(trace_path),
                     "--metrics-out", str(metrics_path)]) == 0
    finally:
        _reset_global_telemetry()
    out = capsys.readouterr().out
    assert "wrote trace" in out and "wrote metrics" in out

    # Both artifacts validate through the same path CI uses.
    assert main(["telemetry", "view", str(trace_path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == "chrome-trace"
    assert payload["valid"] and not payload["errors"]
    assert payload["manifest"] is True
    assert "engine.simulate" in payload["span_names"]

    assert main(["telemetry", "view", str(metrics_path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == "prometheus"
    assert payload["valid"]
    assert payload["samples"]["engine_runs"] >= 1


def test_selftest_quiet_suppresses_progress(capsys, mac4_json):
    assert main(["selftest", mac4_json, "--cycles", "300",
                 "--max-faults", "30", "--quiet"]) == 0
    assert capsys.readouterr().out == ""


def test_telemetry_view_manifest(capsys, tmp_path):
    import json

    from repro.telemetry.manifest import RunManifest

    path = tmp_path / "manifest.json"
    RunManifest.collect(config={"k": 1}).write(path)
    assert main(["telemetry", "view", str(path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == "run-manifest"
    assert payload["valid"]


def test_telemetry_view_rejects_malformed(capsys, tmp_path):
    bad = tmp_path / "bad.prom"
    bad.write_text("this is not } a metric\n")
    assert main(["telemetry", "view", str(bad)]) == 1
    import json

    payload = json.loads(capsys.readouterr().out)
    assert not payload["valid"] and payload["errors"]

    missing = tmp_path / "missing.json"
    assert main(["telemetry", "view", str(missing)]) == 2

    quiet_bad = tmp_path / "bad2.json"
    quiet_bad.write_text('{"neither": "trace nor manifest"}')
    assert main(["telemetry", "view", str(quiet_bad), "--quiet"]) == 1
    assert capsys.readouterr().out == ""

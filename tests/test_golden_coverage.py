"""Golden coverage-regression corpus: exact first-detection tables, pinned.

For each corpus scenario (the paper's figure4/figure9 example circuits,
the c3a2m multiplier kernel and the mac4 MAC kernel from
:mod:`repro.library.scenarios`), a fixture under
``tests/fixtures/golden_coverage/`` pins the *exact* per-fault
first-detection pattern index of a fixed-seed random-pattern run — not a
summary statistic.  Any change to pattern generation, fault collapsing,
gate semantics or either evaluation kernel that shifts even one detection
index fails here with a readable diff, which is the regression net the
differential property suites (random circuits) cannot provide: these are
the paper's actual circuits.

Both kernels must reproduce the corpus: the packed bigint loop is the
historical behaviour, and the vectorised kernel is contractually
bit-identical to it (``docs/ENGINE.md``).

Regenerate after an *intentional* semantic change with::

    python tests/test_golden_coverage.py --regenerate

and review the fixture diff like code (see ``docs/TESTING.md``).
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Any, Dict

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if __name__ == "__main__":  # regeneration entry point, not pytest
    sys.path.insert(0, str(REPO_ROOT / "src"))

import pytest

from repro.engine import RunConfig, simulate
from repro.exec.config import ExecutionPolicy
from repro.faultsim.patterns import RandomPatternSource
from repro.library.scenarios import SCENARIOS

FIXTURE_DIR = REPO_ROOT / "tests" / "fixtures" / "golden_coverage"

#: The corpus: scenario name -> fixed run geometry.  The seed and pattern
#: budget are part of the pinned contract; changing them is regenerating
#: the corpus.
CORPUS: Dict[str, Dict[str, int]] = {
    "figure4_kernel": {"seed": 7, "max_patterns": 512, "batch_width": 64},
    "figure9_kernel": {"seed": 7, "max_patterns": 512, "batch_width": 64},
    "c3a2m_kernel": {"seed": 7, "max_patterns": 1024, "batch_width": 64},
    "mac4_kernel": {"seed": 7, "max_patterns": 512, "batch_width": 64},
}


def _fault_key(fault) -> str:
    """Stable fixture key: ``net:stuck_at`` or ``net:stuck_at:gate:pin``."""
    if fault.is_stem:
        return f"{fault.net}:{fault.stuck_at}"
    return f"{fault.net}:{fault.stuck_at}:{fault.gate_index}:{fault.pin}"


def compute_golden(scenario: str, kernel: str = "packed") -> Dict[str, Any]:
    """Run one corpus scenario and shape the result as fixture JSON."""
    spec = CORPUS[scenario]
    netlist = SCENARIOS[scenario]()
    source = RandomPatternSource(
        len(netlist.primary_inputs), seed=spec["seed"])
    result = simulate(
        netlist, None, source,
        config=RunConfig(
            execution=ExecutionPolicy(
                kernel=kernel, batch_width=spec["batch_width"]),
            max_patterns=spec["max_patterns"],
        ),
    )
    first = {
        _fault_key(fault): index
        for fault, index in result.first_detection.items()
    }
    assert len(first) == len(result.first_detection), \
        f"{scenario}: fault keys collide"
    return {
        "scenario": scenario,
        "seed": spec["seed"],
        "max_patterns": spec["max_patterns"],
        "batch_width": spec["batch_width"],
        "n_faults": result.n_faults,
        "n_patterns": result.n_patterns,
        "detected": len(first),
        "first_detection": first,
    }


def _fixture_path(scenario: str) -> pathlib.Path:
    return FIXTURE_DIR / f"{scenario}.json"


def _load_fixture(scenario: str) -> Dict[str, Any]:
    path = _fixture_path(scenario)
    if not path.exists():
        pytest.fail(
            f"missing golden fixture {path} — run "
            "'python tests/test_golden_coverage.py --regenerate'"
        )
    with open(path) as handle:
        return json.load(handle)


@pytest.mark.parametrize("scenario", sorted(CORPUS))
def test_packed_kernel_reproduces_golden_corpus(scenario):
    assert compute_golden(scenario, kernel="packed") == _load_fixture(scenario)


@pytest.mark.parametrize("scenario", sorted(CORPUS))
def test_vec_kernel_reproduces_golden_corpus(scenario):
    pytest.importorskip("numpy")
    assert compute_golden(scenario, kernel="vec") == _load_fixture(scenario)


def regenerate() -> None:
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for scenario in sorted(CORPUS):
        payload = compute_golden(scenario, kernel="packed")
        path = _fixture_path(scenario)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path} ({payload['detected']}/{payload['n_faults']} "
              f"faults detected in {payload['n_patterns']} patterns)")


if __name__ == "__main__":
    if "--regenerate" not in sys.argv[1:]:
        raise SystemExit(
            "usage: python tests/test_golden_coverage.py --regenerate")
    regenerate()

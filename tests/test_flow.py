"""End-to-end flow: kernel lowering and TDM evaluation."""


from repro.core.bibs import make_bibs_testable
from repro.core.flow import (
    compare_tdms,
    evaluate_design,
    lower_kernel_to_netlist,
)
from repro.core.ka85 import make_ka_testable
from repro.datapath.compiler import Add, Mul, Var, compile_datapath
from repro.graph.build import build_circuit_graph


def small_filter(width=4):
    a, b, c, d = Var("a"), Var("b"), Var("c"), Var("d")
    return compile_datapath(
        [("o", Add(Mul(Add(a, b), c), d))], "minifilter", width=width
    )


def test_lowering_small_kernel():
    compiled = small_filter()
    circuit = compiled.circuit
    design = make_bibs_testable(build_circuit_graph(circuit))
    netlist = lower_kernel_to_netlist(circuit, design.kernels[0])
    assert len(netlist.primary_inputs) == 16  # four 4-bit PI registers
    assert len(netlist.primary_outputs) == 4
    netlist.validate()


def test_lowering_prunes_unobservable_product_bits():
    """The multiplier's upper product bits die at the truncating adder."""
    compiled = small_filter()
    circuit = compiled.circuit
    design = make_bibs_testable(build_circuit_graph(circuit))
    netlist = lower_kernel_to_netlist(circuit, design.kernels[0])
    ka = make_ka_testable(build_circuit_graph(circuit)).design
    mult_kernel = next(
        k for k in ka.kernels
        if any(b.startswith("M") for b in k.logic_blocks)
    )
    mult_netlist = lower_kernel_to_netlist(circuit, mult_kernel)
    # KA observes the full product register (8 bits at width 4).
    assert len(mult_netlist.primary_outputs) == 8


def test_transport_kernel_lowering():
    from repro.datapath.filters import c3a2m

    compiled = c3a2m()
    design = make_ka_testable(build_circuit_graph(compiled.circuit)).design
    transport = next(k for k in design.kernels if not k.logic_blocks)
    netlist = lower_kernel_to_netlist(compiled.circuit, transport)
    assert len(netlist.primary_inputs) == len(netlist.primary_outputs) == 8
    netlist.validate()


def test_evaluate_design_reaches_full_coverage():
    compiled = small_filter()
    circuit = compiled.circuit
    design = make_bibs_testable(build_circuit_graph(circuit))
    evaluation = evaluate_design(
        circuit, design, targets=(0.9, 1.0), max_patterns=1 << 14
    )
    assert evaluation.n_logic_kernels == 1
    kernel_eval = evaluation.kernel_evaluations[0]
    assert kernel_eval.final_coverage == 1.0
    p90 = evaluation.total_patterns(0.9)
    p100 = evaluation.total_patterns(1.0)
    assert p90 is not None and p100 is not None and p90 <= p100


def test_multi_seed_median_is_stable():
    compiled = small_filter()
    circuit = compiled.circuit
    design = make_bibs_testable(build_circuit_graph(circuit))
    one = evaluate_design(circuit, design, targets=(1.0,), max_patterns=1 << 14,
                          n_seeds=3, seed=1)
    two = evaluate_design(circuit, design, targets=(1.0,), max_patterns=1 << 14,
                          n_seeds=3, seed=1)
    assert one.total_patterns(1.0) == two.total_patterns(1.0)


def test_compare_tdms_structure():
    compiled = small_filter()
    comparison = compare_tdms(
        compiled.circuit, targets=(1.0,), max_patterns=1 << 14
    )
    bibs, ka = comparison.bibs, comparison.ka
    assert bibs.n_logic_kernels == 1
    assert ka.n_logic_kernels == 3  # two adders + one multiplier
    assert bibs.n_sessions == 1
    assert ka.n_sessions == 2
    assert ka.design.n_bilbo_registers > bibs.design.n_bilbo_registers
    # Scheduled time never exceeds the raw pattern sum.
    assert ka.scheduled_time(1.0) <= ka.total_patterns(1.0)


def test_schedule_at_unreached_target():
    compiled = small_filter()
    circuit = compiled.circuit
    design = make_bibs_testable(build_circuit_graph(circuit))
    evaluation = evaluate_design(
        circuit, design, targets=(1.0,), max_patterns=4,
        classify_undetected=False,
    )
    assert evaluation.scheduled_time(1.0) is None

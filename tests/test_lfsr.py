"""LFSR behaviour, including the paper's type-1 shift property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TPGError
from repro.tpg.lfsr import CompleteLFSR, Type1LFSR, Type2LFSR
from repro.tpg.polynomials import PAPER_POLY_12


@pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 8, 10])
def test_type1_maximal_length(n):
    assert Type1LFSR(n).is_maximal()


def test_paper_polynomial_is_maximal():
    assert Type1LFSR(12, PAPER_POLY_12).is_maximal()


@given(st.integers(2, 9), st.integers(1, 500))
@settings(max_examples=40, deadline=None)
def test_type1_shift_property(n, seed):
    """Section 4: stage i at time t equals stage i-1 at time t-1 (i > 1)."""
    lfsr = Type1LFSR(n)
    seed = (seed % lfsr.mask) or 1
    state = seed
    for _ in range(10):
        nxt = lfsr.step(state)
        for stage in range(2, n + 1):
            assert lfsr.stage(nxt, stage) == lfsr.stage(state, stage - 1)
        state = nxt


def test_type1_never_reaches_zero_from_nonzero():
    lfsr = Type1LFSR(5)
    state = 1
    for _ in range(64):
        state = lfsr.step(state)
        assert state != 0


def test_zero_state_is_fixed_point():
    lfsr = Type1LFSR(6)
    assert lfsr.step(0) == 0


def test_sequence_and_states():
    lfsr = Type1LFSR(4)
    seq = lfsr.sequence(seed=1, count=5)
    assert seq[0] == 1
    assert len(seq) == 5
    stream = lfsr.states(seed=1)
    assert [next(stream) for _ in range(5)] == seq


def test_stage_bounds():
    lfsr = Type1LFSR(4)
    with pytest.raises(TPGError):
        lfsr.stage(1, 0)
    with pytest.raises(TPGError):
        lfsr.stage(1, 5)


def test_polynomial_degree_mismatch():
    with pytest.raises(TPGError):
        Type1LFSR(5, PAPER_POLY_12)


@pytest.mark.parametrize("n", [2, 3, 4, 6, 8])
def test_type2_maximal(n):
    assert Type2LFSR(n).is_maximal()


def test_type2_lacks_shift_property():
    """Galois LFSRs do NOT shift stages unchanged — the paper needs type 1."""
    lfsr = Type2LFSR(4)
    violations = 0
    state = 1
    for _ in range(15):
        nxt = lfsr.step(state)
        for stage in range(2, 5):
            if (nxt >> (stage - 1)) & 1 != (state >> (stage - 2)) & 1:
                violations += 1
        state = nxt
    assert violations > 0


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8])
def test_complete_lfsr_visits_all_states(n):
    """Wang-McCluskey complete FSR: period 2^n including all-zero."""
    lfsr = CompleteLFSR(n)
    assert lfsr.is_maximal()
    seen = set()
    state = 0
    for _ in range(1 << n):
        seen.add(state)
        state = lfsr.step(state)
    assert seen == set(range(1 << n))

"""RTL circuit container rules."""

import pytest

from repro.errors import RTLError
from repro.rtl.circuit import RTLCircuit


def small_circuit():
    circuit = RTLCircuit("small")
    pi = circuit.new_input("pi", 8)
    r_out = circuit.add_net("r_out", 8)
    circuit.add_register("R", pi, r_out)
    c_out = circuit.add_net("c_out", 8)
    circuit.add_block("C", [r_out], [c_out])
    circuit.mark_output(c_out)
    return circuit


def test_valid_circuit_passes():
    small_circuit().validate()


def test_net_lookup_by_name_and_index():
    circuit = small_circuit()
    assert circuit.net("pi").name == "pi"
    assert circuit.net(0).name == "pi"
    with pytest.raises(RTLError):
        circuit.net("nope")


def test_duplicate_net_name():
    circuit = RTLCircuit()
    circuit.add_net("x", 4)
    with pytest.raises(RTLError):
        circuit.add_net("x", 4)


def test_zero_width_net():
    circuit = RTLCircuit()
    with pytest.raises(RTLError):
        circuit.add_net("x", 0)


def test_duplicate_component_name():
    circuit = small_circuit()
    n1 = circuit.add_net("n1", 8)
    n2 = circuit.add_net("n2", 8)
    with pytest.raises(RTLError):
        circuit.add_block("C", [n1], [n2])
    with pytest.raises(RTLError):
        circuit.add_register("R", n1, n2)


def test_register_width_mismatch():
    circuit = RTLCircuit()
    a = circuit.add_net("a", 8)
    b = circuit.add_net("b", 4)
    with pytest.raises(RTLError):
        circuit.add_register("R", a, b)


def test_two_drivers_rejected():
    circuit = RTLCircuit()
    pi = circuit.new_input("pi", 8)
    shared = circuit.add_net("shared", 8)
    circuit.add_register("R1", pi, shared)
    circuit.add_register("R2", pi, shared)
    with pytest.raises(RTLError):
        circuit.validate()


def test_undriven_net_rejected():
    circuit = RTLCircuit()
    floating = circuit.add_net("floating", 8)
    out = circuit.add_net("out", 8)
    circuit.add_block("C", [floating], [out])
    circuit.mark_output(out)
    with pytest.raises(RTLError):
        circuit.validate()


def test_unsunk_net_rejected():
    circuit = RTLCircuit()
    pi = circuit.new_input("pi", 8)
    with pytest.raises(RTLError):
        circuit.validate()


def test_block_needs_ports():
    circuit = RTLCircuit()
    n = circuit.add_net("n", 8)
    with pytest.raises(RTLError):
        circuit.add_block("B", [], [n])
    with pytest.raises(RTLError):
        circuit.add_block("B", [n], [])


def test_drivers_and_sinks_maps():
    circuit = small_circuit()
    drivers = circuit.drivers()
    sinks = circuit.sinks()
    pi = circuit.net_index("pi")
    r_out = circuit.net_index("r_out")
    c_out = circuit.net_index("c_out")
    assert drivers[pi].kind == "pi"
    assert drivers[r_out].kind == "register"
    assert drivers[c_out].kind == "block"
    assert [s.kind for s in sinks[pi]] == ["register"]
    assert [s.kind for s in sinks[c_out]] == ["po"]


def test_stats():
    stats = small_circuit().stats()
    assert stats.n_blocks == 1
    assert stats.n_registers == 1
    assert stats.n_register_bits == 8
    assert stats.n_primary_inputs == 1
    assert stats.n_primary_outputs == 1


def test_register_widths_helper():
    circuit = small_circuit()
    assert circuit.register_widths() == {"R": 8}
    assert circuit.total_register_bits() == 8

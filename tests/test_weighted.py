"""COP-guided weighted random patterns."""

import pytest

from repro.faultsim.patterns import RandomPatternSource
from repro.faultsim.simulator import FaultSimulator
from repro.faultsim.weighted import (
    MultiWeightedPatternSource,
    WeightedPatternSource,
    cop_weight_sets,
    cop_weights,
)
from repro.netlist.evaluate import unpack_patterns
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist


def wide_and_tree(width: int = 12) -> Netlist:
    """The classic random-resistant circuit: y = AND of many inputs."""
    netlist = Netlist("wide_and")
    inputs = netlist.new_inputs(width, prefix="i")
    y = netlist.add_gate(GateType.AND, inputs, name="y")
    netlist.mark_output(y)
    # A parallel OR keeps 0-heavy behaviour observable too.
    z = netlist.add_gate(GateType.OR, inputs, name="z")
    netlist.mark_output(z)
    return netlist


def test_weight_validation():
    with pytest.raises(ValueError):
        WeightedPatternSource([])
    with pytest.raises(ValueError):
        WeightedPatternSource([0.5, 1.5])


def test_source_respects_weights_statistically():
    source = WeightedPatternSource([0.9, 0.1], seed=3)
    ones = [0, 0]
    total = 4096
    batches = source.batches(256)
    seen = 0
    while seen < total:
        packed = next(batches)
        for pattern in unpack_patterns(packed, 256):
            ones[0] += pattern[0]
            ones[1] += pattern[1]
        seen += 256
    assert ones[0] / seen == pytest.approx(0.9, abs=0.03)
    assert ones[1] / seen == pytest.approx(0.1, abs=0.03)


def test_cop_weight_sets_split_conflicting_demands():
    """The AND cone wants ones, the OR cone wants zeros: two clusters."""
    netlist = wide_and_tree()
    sets = cop_weight_sets(netlist, n_sets=2)
    assert len(sets) == 2
    means = sorted(sum(ws) / len(ws) for ws in sets)
    assert means[0] < 0.45 and means[1] > 0.55


def test_single_set_cop_weights_cancel_on_symmetric_faults():
    """A single distribution cannot serve both cones: votes cancel and the
    weights stay near fair — the documented limitation that motivates the
    multi-set API."""
    netlist = wide_and_tree()
    weights = cop_weights(netlist, hardest_fraction=0.3, strength=0.4)
    assert all(abs(w - 0.5) < 0.2 for w in weights)


def test_multiweighted_beats_uniform_on_and_tree():
    """The motivating effect: >2x fewer patterns to full coverage."""
    netlist = wide_and_tree()
    simulator = FaultSimulator(netlist)
    sets = cop_weight_sets(netlist, n_sets=2)

    def median_patterns(make_source):
        counts = []
        for seed in (3, 11, 29):
            result = simulator.run(make_source(seed), 1 << 17)
            count = result.patterns_for_coverage(1.0)
            assert count is not None
            counts.append(count)
        return sorted(counts)[1]

    uniform = median_patterns(lambda s: RandomPatternSource(12, seed=s))
    weighted = median_patterns(
        lambda s: MultiWeightedPatternSource(sets, seed=s)
    )
    assert weighted * 2 < uniform


def test_multi_source_validation():
    with pytest.raises(ValueError):
        MultiWeightedPatternSource([])
    with pytest.raises(ValueError):
        MultiWeightedPatternSource([[0.5, 0.5], [0.5]])


def test_neutral_weights_on_xor_logic():
    """XOR-dominant logic has no useful bias: weights stay near 0.5."""
    netlist = Netlist("xor_chain")
    inputs = netlist.new_inputs(6, prefix="i")
    y = inputs[0]
    for net in inputs[1:]:
        y = netlist.add_gate(GateType.XOR, [y, net])
    netlist.mark_output(y)
    weights = cop_weights(netlist)
    assert all(abs(w - 0.5) < 0.1 for w in weights)

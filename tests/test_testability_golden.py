"""Static-vs-simulated testability cross-validation, pinned per scenario.

The COP/SCOAP analyzer (:mod:`repro.analysis`) is only useful if its
forecasts track the fault simulator on the paper's actual circuits, so
this suite commits the comparison itself as a golden artifact: for every
corpus scenario (:mod:`repro.library.scenarios`), a fixture under
``tests/fixtures/testability/`` pins the predicted coverage at the
scenario's measured pattern count, the measured coverage of the same
fixed-seed run, and the simulator-undetected fault keys.

Two contracts are enforced on top of the exact pin:

* **tolerance** — ``|predicted - measured|`` stays within the committed
  per-scenario :data:`TOLERANCE` (the independence model's reconvergent-
  fanout error, calibrated once and frozen; a regression past it means
  the analyzer or the engine moved);
* **containment** — every fault the simulator failed to detect appears
  in the static ``random_resistant`` ranking at the fixture's committed
  threshold, i.e. static analysis never calls a measured escape "easy".

Regenerate after an *intentional* change with::

    python tests/test_testability_golden.py --regenerate

and review the fixture diff like code (see ``docs/TESTABILITY.md``).
"""

from __future__ import annotations

import functools
import json
import pathlib
import sys
from typing import Any, Dict

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if __name__ == "__main__":  # regeneration entry point, not pytest
    sys.path.insert(0, str(REPO_ROOT / "src"))

import pytest

from repro.analysis import analyze_netlist
from repro.engine import RunConfig, simulate
from repro.exec.config import ExecutionPolicy
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.patterns import RandomPatternSource
from repro.library.scenarios import SCENARIOS

FIXTURE_DIR = REPO_ROOT / "tests" / "fixtures" / "testability"

#: The corpus: scenario -> fixed run geometry.  ``fault_stride`` samples
#: the collapsed universe (synth20k's 84k faults would dominate the suite
#: for no extra signal); predicted and measured coverage share whatever
#: denominator the stride leaves, so the comparison stays apples-to-apples.
CORPUS: Dict[str, Dict[str, int]] = {
    "figure4_kernel": {"seed": 7, "max_patterns": 512, "batch_width": 64,
                       "fault_stride": 1},
    "figure9_kernel": {"seed": 7, "max_patterns": 512, "batch_width": 64,
                       "fault_stride": 1},
    "c3a2m_kernel": {"seed": 7, "max_patterns": 1024, "batch_width": 64,
                     "fault_stride": 1},
    "mac4_kernel": {"seed": 7, "max_patterns": 512, "batch_width": 64,
                    "fault_stride": 1},
    "synth20k_kernel": {"seed": 7, "max_patterns": 256, "batch_width": 64,
                        "fault_stride": 50},
}

#: The committed tolerance contract: the largest |predicted - measured|
#: coverage gap each scenario is allowed.  Calibrated from the seeded
#: corpus runs (observed deltas: figure4 +0.030, figure9 +0.034, mac4
#: +0.006, c3a2m +0.001, synth20k 0.000) with headroom for the geometric
#: model's variance, then frozen — widening a bound is a reviewed change.
TOLERANCE: Dict[str, float] = {
    "figure4_kernel": 0.05,
    "figure9_kernel": 0.05,
    "c3a2m_kernel": 0.01,
    "mac4_kernel": 0.02,
    "synth20k_kernel": 0.01,
}


@functools.lru_cache(maxsize=None)
def compute_crossval(scenario: str) -> Dict[str, Any]:
    """Run one scenario both ways and shape the comparison as fixture JSON."""
    spec = CORPUS[scenario]
    netlist = SCENARIOS[scenario]()
    faults = collapse_faults(netlist)[0][:: spec["fault_stride"]]
    profile = analyze_netlist(netlist, faults)
    source = RandomPatternSource(
        len(netlist.primary_inputs), seed=spec["seed"])
    result = simulate(
        netlist, list(faults), source,
        config=RunConfig(
            execution=ExecutionPolicy(batch_width=spec["batch_width"]),
            max_patterns=spec["max_patterns"],
        ),
    )
    window = result.n_patterns
    predicted = profile.predicted_coverage(window)
    measured = result.coverage()
    undetected = sorted(
        entry.key() for entry in profile.faults
        if entry.fault not in result.detected
    )
    # The committed containment threshold: every measured escape must fall
    # below it statically.  1.25x the hardest escape's predicted detection
    # probability (headroom against model drift), floored at the window's
    # own resolution when nothing escaped.
    escape_probabilities = [
        entry.detection_probability for entry in profile.faults
        if entry.fault not in result.detected
    ]
    threshold = (1.25 * max(escape_probabilities) if escape_probabilities
                 else 1.0 / window)
    if threshold <= 0.0:  # every escape is statically undetectable
        threshold = 1.0 / window
    return {
        "scenario": scenario,
        "seed": spec["seed"],
        "max_patterns": spec["max_patterns"],
        "batch_width": spec["batch_width"],
        "fault_stride": spec["fault_stride"],
        "n_faults": profile.n_faults,
        "window": window,
        "predicted_coverage": round(predicted, 12),
        "measured_coverage": round(measured, 12),
        "delta": round(predicted - measured, 12),
        "tolerance": TOLERANCE[scenario],
        "resistant_threshold": round(threshold, 15),
        "n_undetected": len(undetected),
        "undetected": undetected,
    }


def _fixture_path(scenario: str) -> pathlib.Path:
    return FIXTURE_DIR / f"{scenario}.json"


def _load_fixture(scenario: str) -> Dict[str, Any]:
    path = _fixture_path(scenario)
    if not path.exists():
        pytest.fail(
            f"missing golden fixture {path} — run "
            "'python tests/test_testability_golden.py --regenerate'"
        )
    with open(path) as handle:
        return json.load(handle)


@pytest.mark.parametrize("scenario", sorted(CORPUS))
def test_crossval_reproduces_golden_fixture(scenario):
    assert compute_crossval(scenario) == _load_fixture(scenario)


@pytest.mark.parametrize("scenario", sorted(CORPUS))
def test_predicted_coverage_within_tolerance(scenario):
    doc = compute_crossval(scenario)
    assert abs(doc["delta"]) <= doc["tolerance"], (
        f"{scenario}: predicted {doc['predicted_coverage']:.4f} vs "
        f"measured {doc['measured_coverage']:.4f} exceeds the "
        f"±{doc['tolerance']} contract"
    )


@pytest.mark.parametrize("scenario", sorted(CORPUS))
def test_measured_escapes_are_statically_resistant(scenario):
    """Containment: no measured escape may look easy to the analyzer."""
    spec = CORPUS[scenario]
    fixture = _load_fixture(scenario)
    netlist = SCENARIOS[scenario]()
    faults = collapse_faults(netlist)[0][:: spec["fault_stride"]]
    profile = analyze_netlist(netlist, faults)
    resistant = {
        entry.key()
        for entry in profile.random_resistant(fixture["resistant_threshold"])
    }
    escaped = set(fixture["undetected"])
    assert escaped <= resistant, (
        f"{scenario}: measured-undetected faults the static ranking "
        f"missed: {sorted(escaped - resistant)[:10]}"
    )


def regenerate() -> None:
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for scenario in sorted(CORPUS):
        payload = compute_crossval(scenario)
        path = _fixture_path(scenario)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path} (predicted {payload['predicted_coverage']:.4f} "
              f"vs measured {payload['measured_coverage']:.4f}, "
              f"{payload['n_undetected']} undetected)")


if __name__ == "__main__":
    if "--regenerate" not in sys.argv[1:]:
        raise SystemExit(
            "usage: python tests/test_testability_golden.py --regenerate")
    regenerate()

"""SIGTERM drain contract for the service, over real HTTP.

A real ``python -m repro serve`` subprocess runs a deliberately long job
(geometry borrowed from ``tests/test_guard_signals.py``: enough rounds
that a signal lands mid-run).  The assertions are the service analogue of
the engine's guard contract: SIGTERM makes new submissions 503, the
in-flight job stops at a shard-round boundary and serves a
``partial=True`` result during the grace window, the process exits 143
without a traceback — and a restarted service on the same state directory
resumes the interrupted measurement from the journal, bit-identically to
a run that was never interrupted.
"""

from __future__ import annotations

import json
import pathlib
import signal
import time

import pytest

from repro.cli_args import render_json, result_payload
from repro.serve import JobRequest
from tests.serve_utils import ServeClient, spawn_server

# Run geometry: ~2s of simulation on this machine — a wide window for the
# signal, a short wait for the suite.  Shared by the submission and the
# in-process reference run (every run-key ingredient must agree).
N_INPUTS = 12
N_GATES = 170
NET_SEED = 33
SRC_SEED = 17
MAX_PATTERNS = 1 << 14
BATCH_WIDTH = 64
JOBS = 2
CHUNK_BATCHES = 1


def _bench_text() -> str:
    from repro.netlist import bench_io
    from tests.conftest import make_random_netlist

    return bench_io.dumps(make_random_netlist(N_INPUTS, N_GATES,
                                              seed=NET_SEED))


def _submission(text: str) -> dict:
    return {
        "bench": text,
        "seed": SRC_SEED,
        "max_patterns": MAX_PATTERNS,
        "batch_width": BATCH_WIDTH,
        "chunk_batches": CHUNK_BATCHES,
        "jobs": JOBS,
        "stop_when_complete": False,
        "drop_detected": False,
        "include_faults": True,
    }


def _wait_for_journal(journal_root, process, timeout: float = 60.0) -> None:
    """Block until the job has journaled at least one shard round."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if list(pathlib.Path(journal_root).glob("*/shard*_round*.rec")):
            return
        if process.poll() is not None:
            out, err = process.communicate()
            pytest.fail(f"server died before the signal could be delivered "
                        f"(rc={process.returncode}):\n{out}\n{err}")
        time.sleep(0.02)
    pytest.fail("no checkpoint record appeared within the timeout")


def _reference_payload(text: str, target: str) -> dict:
    """The uninterrupted in-process run, shaped like the API response.

    The reference parses the *same bench text* the service received —
    ``dumps``/``loads`` does not round-trip the structural fingerprint,
    so rebuilding the netlist from the generator would compute a
    different run key and prove nothing.
    """
    from repro.engine import simulate
    from repro.exec.config import ExecutionPolicy, RunConfig
    from repro.faultsim.collapse import collapse_faults
    from repro.faultsim.patterns import RandomPatternSource
    from repro.netlist import bench_io

    netlist = bench_io.loads(text, name=target, validate=False)
    faults, _ = collapse_faults(netlist)
    result = simulate(
        netlist, faults,
        RandomPatternSource(N_INPUTS, seed=SRC_SEED),
        config=RunConfig(
            execution=ExecutionPolicy(jobs=JOBS, batch_width=BATCH_WIDTH,
                                      chunk_batches=CHUNK_BATCHES),
            max_patterns=MAX_PATTERNS,
            stop_when_complete=False,
            drop_detected=False,
            check=False,
        ),
    )
    payload = result_payload(result, include_faults=True)
    # Normalise through the canonical serializer exactly like the wire
    # does (JSON object keys become strings, tuples become lists).
    return json.loads(render_json(payload))


VOLATILE_KEYS = ("engine", "guard", "circuit", "seed", "run_key")


def _semantic(payload: dict) -> dict:
    return {key: value for key, value in payload.items()
            if key not in VOLATILE_KEYS}


def test_sigterm_drains_and_restart_resumes_bit_identically(tmp_path):
    state = tmp_path / "state"
    text = _bench_text()
    submission = _submission(text)
    target = JobRequest.from_json(submission).target

    # --- phase 1: interrupt a live job with a real SIGTERM ---------------
    process, port = spawn_server(state, "--workers", "1",
                                 "--drain-grace", "5")
    client = ServeClient("127.0.0.1", port)
    try:
        job = client.submit(submission)
        assert job["cached"] is False
        _wait_for_journal(state / "journal", process)
        process.send_signal(signal.SIGTERM)

        # Wait for the event loop to take the signal (health flips to
        # draining), then assert new submissions are refused.
        deadline = time.monotonic() + 10
        while True:
            status, health = client.request("GET", "/healthz")
            if status == 503 and health["status"] == "draining":
                break
            assert time.monotonic() < deadline, (status, health)
            time.sleep(0.02)
        status, doc = client.request("POST", "/v1/jobs", submission)
        assert status == 503, doc
        assert doc["error"] == "draining"

        # The in-flight job stops at a round boundary and its partial
        # result is collectable during the grace window.
        done = client.wait(job["id"], timeout=30)
        assert done["state"] == "done"
        status, partial = client.result(job["id"], include_faults=True)
        assert status == 200
        assert partial["partial"] is True
        assert partial["stop_reason"] == "sigterm"
        assert 0 < partial["n_patterns"] < MAX_PATTERNS
        # The journal is the resume contract; the status endpoint's
        # progress curve is read straight from it.
        status, mid = client.request("GET", f"/v1/jobs/{job['id']}")
        assert status == 200 and len(mid["progress"]) > 0
    finally:
        client.close()
        if process.poll() is None:
            out, err = process.communicate(timeout=30)
        else:  # pragma: no cover - cleanup on failure
            out, err = process.communicate()
    assert process.returncode == 143, (out, err)
    assert "Traceback" not in err, err
    assert "draining: sigterm" in out
    assert "drained" in out

    # --- phase 2: a restarted service resumes from the same journal ------
    process2, port2 = spawn_server(state, "--workers", "1",
                                   "--drain-grace", "0")
    client2 = ServeClient("127.0.0.1", port2)
    try:
        job2 = client2.submit(submission)
        assert job2["cached"] is False        # fresh process, empty cache
        assert job2["run_key"] == job["run_key"]
        client2.wait(job2["id"], timeout=120)
        status, resumed = client2.result(job2["id"], include_faults=True)
        assert status == 200
        assert resumed["partial"] is False
        assert resumed["engine"]["rounds_resumed"] > 0
        assert resumed["n_patterns"] > partial["n_patterns"]
    finally:
        client2.close()
        process2.terminate()
        out2, err2 = process2.communicate(timeout=30)
    assert process2.returncode == 143, (out2, err2)

    # Bit-identical to a run that was never interrupted: same detections,
    # same survivors, same coverage — only run metadata may differ.
    reference = _reference_payload(text, target)
    assert _semantic(resumed) == _semantic(reference)
    assert resumed["first_detection"] == reference["first_detection"]

"""Experiment harness: tables and per-figure reports."""

import pytest

from repro.experiments.figures import (
    example1_report,
    figure3_report,
    figure9_report,
    figures_1_2_report,
    pseudo_exhaustive_report,
    tpg_examples_report,
)
from repro.experiments.render import fmt, render_table
from repro.experiments.table1 import render_table1, table1_rows
from repro.experiments.table2 import PAPER_TABLE2, measure_circuit, render_table2


def test_render_table_alignment():
    text = render_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "bb" in lines[2]
    assert len({len(l) for l in lines[2:]}) <= 2  # header/sep/rows aligned


def test_fmt():
    assert fmt(None) == "-"
    assert fmt(3) == "3"
    assert fmt(0.12345) == "0.123"


def test_table1_rows():
    rows = table1_rows()
    by_name = {r.name: r for r in rows}
    assert set(by_name) == {"c5a2m", "c3a2m", "c4a4m"}
    assert by_name["c5a2m"].n_adders == 5
    assert by_name["c4a4m"].n_multipliers == 4
    # c4a4m is the biggest circuit, as in the paper (4096 gates there).
    assert by_name["c4a4m"].n_gates > by_name["c5a2m"].n_gates
    assert by_name["c4a4m"].n_gates > by_name["c3a2m"].n_gates
    for row in rows:
        assert row.n_observable_gates <= row.n_gates
        assert row.n_gates > 500
    text = render_table1(rows)
    assert "c3a2m" in text


def test_figures_1_2_report():
    report = figures_1_2_report()
    assert report["figure1"] == {"balanced": False, "k_step": 2}
    assert report["figure2"] == {"balanced": True, "k_step": 1}


def test_figure3_report():
    report = figure3_report()
    assert report["cycles"] == [["F", "H"]] or report["cycles"] == [["H", "F"]]
    assert len(report["fanout_vertices"]) == 1
    assert len(report["vacuous_vertices"]) == 1
    assert report["n_register_edges"] == 9
    assert report["fo1_to_h_witness"] is not None


def test_example1_report():
    report = example1_report()
    assert report["scan_registers"] == ["R3", "R9"]
    assert report["n_bibs_registers"] == 6
    assert report["n_kernels"] == 2
    assert report["n_sessions"] == 2


def test_figure9_report():
    report = figure9_report()
    assert report["bibs"]["registers"] == 8
    assert report["bibs"]["flipflops"] == 43
    assert report["ka"]["registers"] == 10
    assert report["ka"]["flipflops"] == 52
    assert report["bibs"]["sessions"] == 2
    assert report["ka"]["sessions"] == 2


def test_tpg_examples_report():
    rows = {r["example"]: r for r in tpg_examples_report()}
    assert rows[2]["lfsr_stages"] == 12
    assert rows[2]["extra_ffs"] == 2
    assert rows[2]["area_fraction"] == pytest.approx(0.072, abs=1e-6)
    assert rows[3]["r3_span"] == (10, 13)
    assert rows[4]["shared_stages"] == 3
    assert rows[5]["lfsr_stages"] == 9
    assert rows[6]["lfsr_stages"] == 11
    assert rows[6]["reconfigurable_time"] < rows[6]["monolithic_time"] / 3


def test_pseudo_exhaustive_report():
    report = pseudo_exhaustive_report()
    assert report["default_order_stages"] == 16
    assert report["best_order_stages"] == 8
    assert report["optimal"]
    assert report["mccluskey_stages"] == 12


def test_measure_circuit_small_budget():
    """A cheap Table 2 measurement run (structure rows must be exact)."""
    column = measure_circuit("c5a2m", max_patterns=1 << 13, n_seeds=1)
    assert column.kernels == (1, 7)
    assert column.sessions == (1, 2)
    assert column.bilbo_registers == (9, 15)
    assert column.maximal_delay == (2, 4)
    text = render_table2([column])
    assert "c5a2m BIBS" in text and "Table 2 (paper)" in text


def test_paper_table_constants():
    assert PAPER_TABLE2["c3a2m"]["maximal_delay"] == (2, 6)
    assert PAPER_TABLE2["c4a4m"]["time_100"] == (19120, 2172)

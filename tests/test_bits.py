"""The BITS layer: design space, controller, JSON I/O, CBILBO advice."""

import pytest

from repro.bilbo.register import BILBOMode
from repro.bits import io_json
from repro.bits.controller import Phase, BISTController
from repro.bits.design_space import explore_design_space
from repro.core.bibs import make_bibs_testable
from repro.core.cbilbo import find_single_register_cycles, recommend
from repro.core.schedule import ScheduledKernel, schedule_kernels
from repro.datapath.filters import c5a2m
from repro.errors import RTLError, ScheduleError
from repro.graph.build import build_circuit_graph
from repro.library.figures import figure4
from repro.library.ka_example import figure9
from repro.rtl.circuit import RTLCircuit
from repro.rtl.simulate import RTLSimulator


# ------------------------------------------------------------ design space

def test_design_space_contains_minimal_design():
    graph = build_circuit_graph(figure4())
    front = explore_design_space(graph, max_extra=6, limit=3000)
    minimal = make_bibs_testable(graph)
    assert any(
        set(p.bilbo_registers) == set(minimal.bilbo_registers) for p in front
    )


def test_design_space_points_are_valid_and_nondominated():
    from repro.core.bibs import is_valid_selection

    graph = build_circuit_graph(figure9())
    front = explore_design_space(graph, max_extra=3, limit=2000)
    for point in front:
        assert is_valid_selection(graph, set(point.bilbo_registers))
    for p in front:
        assert not any(q.dominates(p) for q in front if q is not p)


def test_pareto_front_filters_dominated():
    graph = build_circuit_graph(figure4())
    front = explore_design_space(graph, max_extra=6, limit=3000)
    # figure4's minimal design dominates every refinement.
    assert len(front) == 1
    assert front[0].n_registers == 6


# -------------------------------------------------------------- controller

def _controller():
    graph = build_circuit_graph(figure4())
    design = make_bibs_testable(graph)
    schedule = schedule_kernels(
        [ScheduledKernel(k, 50) for k in design.kernels]
    )
    widths = {e.register: e.weight for e in graph.register_edges()}
    return BISTController(
        schedule, {r: widths[r] for r in design.bilbo_registers}
    ), schedule


def test_controller_phases_in_order():
    controller, schedule = _controller()
    phases = [state.phase for state in controller.states]
    assert phases[0] is Phase.RESET
    assert phases[-1] is Phase.DONE
    assert phases.count(Phase.RUN) == schedule.n_sessions


def test_controller_run_cycles_match_schedule():
    controller, schedule = _controller()
    run_cycles = [
        state.cycles for state in controller.states if state.phase is Phase.RUN
    ]
    assert sorted(run_cycles) == sorted(schedule.session_times)


def test_controller_mode_consistency():
    """No register is ever TPG and SA in the same state; every session's
    TPG/SA assignment matches its kernels."""
    controller, schedule = _controller()
    for state in controller.states:
        if state.phase is not Phase.RUN:
            continue
        session = schedule.sessions[state.session]
        for scheduled in session:
            for name in scheduled.kernel.tpg_registers:
                assert state.modes[name] is BILBOMode.TPG
            for name in scheduled.kernel.sa_registers:
                assert state.modes[name] is BILBOMode.SA


def test_controller_trace_and_modes_at():
    controller, _ = _controller()
    trace = list(controller.trace())
    assert len(trace) == controller.total_cycles
    assert controller.modes_at(0)["R1"] is BILBOMode.RESET
    with pytest.raises(ScheduleError):
        controller.modes_at(controller.total_cycles + 5)


def test_controller_describe():
    controller, _ = _controller()
    text = controller.describe()
    assert "run session 0" in text and "done" in text


# ------------------------------------------------------------------- JSON

def test_json_roundtrip_structure_and_behaviour():
    circuit = c5a2m().circuit
    text = io_json.dumps(circuit)
    rebuilt = io_json.loads(text)
    assert rebuilt.name == circuit.name
    assert set(rebuilt.blocks) == set(circuit.blocks)
    assert set(rebuilt.registers) == set(circuit.registers)
    sim_a, sim_b = RTLSimulator(circuit), RTLSimulator(rebuilt)
    vector = {name: 9 for name in "abcdefgh"}
    for _ in range(5):
        out_a, out_b = sim_a.step(vector), sim_b.step(vector)
    assert out_a == out_b


def test_json_file_roundtrip(tmp_path):
    circuit = c5a2m().circuit
    path = tmp_path / "c5a2m.json"
    io_json.dump(circuit, path)
    assert io_json.load(path).stats() == circuit.stats()


def test_json_bad_schema():
    with pytest.raises(RTLError):
        io_json.circuit_from_dict({"schema": 99, "name": "x"})


def test_json_custom_kind_registry():
    from repro.datapath.modules import passthrough_spec

    io_json.register_block_kind("mypass", lambda: passthrough_spec(4))
    circuit = RTLCircuit("custom")
    pi = circuit.new_input("pi", 4)
    out = circuit.add_net("out", 4)
    circuit.add_block("B", [pi], [out], kind="mypass")
    circuit.mark_output(out)
    rebuilt = io_json.loads(io_json.dumps(circuit))
    assert rebuilt.blocks["B"].word_func([6]) == [6]


# ----------------------------------------------------------------- CBILBO

def test_single_register_cycle_detected():
    circuit = RTLCircuit("selfloop")
    pi = circuit.new_input("pi", 4)
    fb = circuit.add_net("fb", 4)
    out = circuit.add_net("out", 4)
    circuit.add_block("B", [pi, fb], [out])
    circuit.add_register("R", out, fb)
    circuit.mark_output(out)
    graph = build_circuit_graph(circuit)
    cycles = find_single_register_cycles(graph)
    assert len(cycles) == 1
    assert cycles[0].register == "R"
    assert recommend(cycles[0]) == "cbilbo"
    assert cycles[0].cbilbo_cost() < cycles[0].extra_register_cost()


def test_two_register_cycle_not_flagged():
    graph = build_circuit_graph(figure9())
    assert find_single_register_cycles(graph) == []


def test_bibs_rejects_single_register_cycle_with_hint():
    from repro.errors import SelectionError

    circuit = RTLCircuit("selfloop")
    pi = circuit.new_input("pi", 4)
    fb = circuit.add_net("fb", 4)
    out = circuit.add_net("out", 4)
    circuit.add_block("B", [pi, fb], [out])
    circuit.add_register("R", out, fb)
    circuit.mark_output(out)
    graph = build_circuit_graph(circuit)
    with pytest.raises(SelectionError):
        make_bibs_testable(graph, method="greedy")

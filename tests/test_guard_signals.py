"""Real-signal contract tests: SIGTERM/SIGINT against a live engine run.

These spawn an actual subprocess running :func:`repro.engine.simulate`
under :func:`repro.guard.signal_scope`, wait until its checkpoint journal
proves it is mid-run, deliver a real signal with ``os.kill``, and assert
the guard contract from the outside: prompt exit (seconds, not a hung
pool), the conventional exit code (143/130), a ``partial=True`` JSON
result on stdout, a surviving journal — and an in-process ``resume=True``
run that completes the measurement bit-identically to a run that was
never interrupted.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.engine import simulate
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.patterns import RandomPatternSource
from tests.conftest import make_random_netlist
from tests.test_engine import assert_identical

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Shared run geometry: the subprocess and the in-process resume run must
# agree on every run_key ingredient or the journal will not be replayed.
N_INPUTS = 12
N_GATES = 170
NET_SEED = 33
SRC_SEED = 17
FAULT_STRIDE = 2
MAX_PATTERNS = 1 << 13
BATCH_WIDTH = 64
JOBS = 2
CHUNK_BATCHES = 1

CHILD_SCRIPT = f"""
import json, sys
from repro.engine import simulate
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.patterns import RandomPatternSource
from repro.guard import CancelToken, exit_code, signal_scope
from tests.conftest import make_random_netlist

netlist = make_random_netlist({N_INPUTS}, {N_GATES}, seed={NET_SEED})
faults, _ = collapse_faults(netlist)
faults = faults[::{FAULT_STRIDE}]
source = RandomPatternSource({N_INPUTS}, seed={SRC_SEED})
token = CancelToken()
with signal_scope(token):
    result = simulate(
        netlist, faults, source,
        max_patterns={MAX_PATTERNS}, jobs={JOBS},
        batch_width={BATCH_WIDTH}, chunk_batches={CHUNK_BATCHES},
        stop_when_complete=False, drop_detected=False,
        checkpoint_dir=sys.argv[1], cancel=token,
    )
print(json.dumps({{
    "partial": result.partial,
    "stop_reason": result.stop_reason,
    "n_patterns": result.n_patterns,
    "n_detected": len(result.first_detection),
}}))
sys.stdout.flush()
raise SystemExit(exit_code(token))
"""


def _spawn(checkpoint_dir) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH="src")
    env.pop("REPRO_CHAOS", None)  # ambient chaos would pollute the contract
    return subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT, str(checkpoint_dir)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        cwd=str(REPO_ROOT), env=env,
    )


def _wait_for_journal(checkpoint_dir, process, timeout: float = 60.0) -> None:
    """Block until the run has journaled at least one shard round."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if list(pathlib.Path(checkpoint_dir).glob("*/shard*_round*.rec")):
            return
        if process.poll() is not None:
            out, err = process.communicate()
            pytest.fail(
                f"run finished before the signal could be delivered "
                f"(rc={process.returncode}):\n{out}\n{err}"
            )
        time.sleep(0.02)
    pytest.fail("no checkpoint record appeared within the timeout")


def _reference():
    netlist = make_random_netlist(N_INPUTS, N_GATES, seed=NET_SEED)
    faults, _ = collapse_faults(netlist)
    return netlist, faults[::FAULT_STRIDE]


def _simulate_inprocess(netlist, faults, **options):
    return simulate(
        netlist, faults, RandomPatternSource(N_INPUTS, seed=SRC_SEED),
        max_patterns=MAX_PATTERNS, jobs=JOBS, batch_width=BATCH_WIDTH,
        chunk_batches=CHUNK_BATCHES, stop_when_complete=False,
        drop_detected=False, **options,
    )


def _signal_run(tmp_path, signum: int, expected_code: int):
    checkpoint_dir = tmp_path / "ckpt"
    checkpoint_dir.mkdir()
    process = _spawn(checkpoint_dir)
    try:
        _wait_for_journal(checkpoint_dir, process)
        killed_at = time.monotonic()
        process.send_signal(signum)
        out, err = process.communicate(timeout=30)
        drained_in = time.monotonic() - killed_at
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup on failure
            process.kill()
            process.communicate()
    assert process.returncode == expected_code, (out, err)
    # The drain is one in-flight round, not a hung pool teardown.
    assert drained_in <= 5.0
    assert "Traceback" not in err
    payload = json.loads(out)
    assert payload["partial"] is True
    assert payload["stop_reason"] == {
        signal.SIGTERM: "sigterm", signal.SIGINT: "sigint",
    }[signum]
    assert 0 < payload["n_patterns"] < MAX_PATTERNS
    records = list(checkpoint_dir.glob("*/shard*_round*.rec"))
    assert records, "the interrupted run left no journal"
    return payload


def test_sigterm_exits_143_with_partial_json_and_valid_checkpoint(tmp_path):
    payload = _signal_run(tmp_path, signal.SIGTERM, expected_code=143)

    # The journal the killed process left behind resumes bit-identically.
    netlist, faults = _reference()
    uninterrupted = _simulate_inprocess(netlist, faults)
    resumed = _simulate_inprocess(
        netlist, faults, checkpoint_dir=tmp_path / "ckpt", resume=True,
    )
    assert not resumed.partial
    assert resumed.rounds_resumed > 0
    assert resumed.n_patterns > payload["n_patterns"]
    assert_identical(uninterrupted, resumed)


def test_sigint_exits_130_with_partial_json(tmp_path):
    _signal_run(tmp_path, signal.SIGINT, expected_code=130)

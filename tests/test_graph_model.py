"""Circuit graph container."""

import pytest

from repro.errors import GraphError
from repro.graph.model import (
    CircuitGraph,
    EdgeKind,
    VertexKind,
    WIRE_WEIGHT,
)


def diamond() -> CircuitGraph:
    graph = CircuitGraph("diamond")
    for name, kind in [
        ("in", VertexKind.INPUT),
        ("a", VertexKind.LOGIC),
        ("b", VertexKind.LOGIC),
        ("out", VertexKind.OUTPUT),
    ]:
        graph.add_vertex(name, kind)
    graph.add_edge("in", "a", EdgeKind.REGISTER, 8, "R1")
    graph.add_edge("in", "b", EdgeKind.REGISTER, 8, "R2")
    graph.add_edge("a", "out", EdgeKind.WIRE)
    graph.add_edge("b", "out", EdgeKind.WIRE)
    return graph


def test_vertex_and_edge_queries():
    graph = diamond()
    assert len(graph) == 4
    assert graph.vertex("a").is_logic
    assert [e.register for e in graph.register_edges()] == ["R1", "R2"]
    assert len(graph.wire_edges()) == 2
    assert graph.successors("in") == ["a", "b"]
    assert graph.predecessors("out") == ["a", "b"]
    assert graph.edge_for_register("R1").head == "a"


def test_wire_weight_is_large():
    graph = diamond()
    wire = graph.wire_edges()[0]
    assert wire.weight == WIRE_WEIGHT
    assert wire.sequential_length == 0
    register = graph.register_edges()[0]
    assert register.weight == 8
    assert register.sequential_length == 1


def test_duplicate_vertex_rejected():
    graph = diamond()
    with pytest.raises(GraphError):
        graph.add_vertex("a", VertexKind.LOGIC)


def test_edge_to_unknown_vertex_rejected():
    graph = diamond()
    with pytest.raises(GraphError):
        graph.add_edge("a", "zzz", EdgeKind.WIRE)
    with pytest.raises(GraphError):
        graph.add_edge("zzz", "a", EdgeKind.WIRE)


def test_register_edge_needs_name_and_weight():
    graph = diamond()
    with pytest.raises(GraphError):
        graph.add_edge("a", "b", EdgeKind.REGISTER, 4)
    with pytest.raises(GraphError):
        graph.add_edge("a", "b", EdgeKind.REGISTER, None, "R9")


def test_missing_register_lookup():
    with pytest.raises(GraphError):
        diamond().edge_for_register("R99")


def test_subgraph_induced():
    graph = diamond()
    sub = graph.subgraph(["in", "a", "out"])
    assert set(sub.vertices) == {"in", "a", "out"}
    assert len(sub.edges) == 2  # in->a register, a->out wire


def test_without_edges():
    graph = diamond()
    r1 = graph.edge_for_register("R1")
    cut = graph.without_edges([r1.index])
    assert len(cut.edges) == 3
    assert all(e.register != "R1" for e in cut.edges)


def test_weakly_connected_components():
    graph = diamond()
    graph.add_vertex("island", VertexKind.LOGIC)
    components = graph.weakly_connected_components()
    assert sorted(map(len, components)) == [1, 4]


def test_vertices_of_kind():
    graph = diamond()
    assert [v.name for v in graph.input_vertices()] == ["in"]
    assert [v.name for v in graph.output_vertices()] == ["out"]
    assert {v.name for v in graph.logic_vertices()} == {"a", "b"}

"""BIBS selection: mandatory sets, exactness, validity, Theorem 2."""

import pytest

from repro.core.bibs import (
    is_valid_selection,
    make_bibs_testable,
    mandatory_bilbo_registers,
    pi_register_edges,
    po_register_edges,
    selection_violations,
)
from repro.datapath.filters import all_filters
from repro.errors import SelectionError
from repro.graph.build import build_circuit_graph
from repro.library.figures import figure4
from repro.library.ka_example import figure9


def test_mandatory_set_is_pi_po_registers():
    graph = build_circuit_graph(figure4())
    assert mandatory_bilbo_registers(graph) == ["R1", "R6"]
    assert [e.register for e in pi_register_edges(graph)] == ["R1"]
    assert [e.register for e in po_register_edges(graph)] == ["R6"]


def test_figure4_exact_selection_matches_paper():
    """Example 1: six BILBO registers, two balanced BISTable kernels."""
    design = make_bibs_testable(build_circuit_graph(figure4()), method="exact")
    assert design.bilbo_registers == ["R1", "R3", "R6", "R7", "R8", "R9"]
    assert design.n_kernels == 2
    assert design.is_valid()


def test_figure4_greedy_also_finds_valid_design():
    design = make_bibs_testable(build_circuit_graph(figure4()), method="greedy")
    assert design.is_valid()
    # Greedy may convert more registers, never fewer than exact.
    assert design.n_bilbo_registers >= 6


def test_figure9_selection():
    design = make_bibs_testable(build_circuit_graph(figure9()))
    assert design.n_bilbo_registers == 8
    assert design.n_bilbo_flipflops == 43
    assert design.is_valid()


def test_theorem2_cycle_needs_two_bilbo_edges():
    """Any valid selection includes both registers of the B5/B6 cycle."""
    graph = build_circuit_graph(figure9())
    mandatory = set(mandatory_bilbo_registers(graph))
    assert not is_valid_selection(graph, mandatory)
    assert not is_valid_selection(graph, mandatory | {"R7"})
    assert not is_valid_selection(graph, mandatory | {"R8"})
    assert is_valid_selection(graph, mandatory | {"R7", "R8"})


def test_datapaths_need_only_pi_po():
    """Table 2 row 3: the balanced filters convert 9 / 7 / 10 registers."""
    expected = {"c5a2m": 9, "c3a2m": 7, "c4a4m": 10}
    for name, compiled in all_filters().items():
        design = make_bibs_testable(build_circuit_graph(compiled.circuit))
        assert design.n_bilbo_registers == expected[name]
        assert design.n_kernels == 1
        assert design.maximal_delay() == 2


def test_violations_decrease_to_zero():
    graph = build_circuit_graph(figure4())
    mandatory = set(mandatory_bilbo_registers(graph))
    start = selection_violations(graph, mandatory)
    assert start > 0
    full = mandatory | {"R3", "R7", "R8", "R9"}
    assert selection_violations(graph, full) == 0


def test_unknown_method_rejected():
    with pytest.raises(SelectionError):
        make_bibs_testable(build_circuit_graph(figure4()), method="zigzag")


def test_extra_mandatory_respected():
    graph = build_circuit_graph(figure4())
    design = make_bibs_testable(graph, extra_mandatory=["R5"])
    assert "R5" in design.bilbo_registers
    assert design.is_valid()


def test_added_area_positive():
    design = make_bibs_testable(build_circuit_graph(figure4()))
    assert design.added_area() > 0
    assert design.n_bilbo_flipflops == 8 + 4 + 4 + 5 + 5 + 8

"""Fault simulator: detection correctness, dropping, first-detection indices."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.faults import Fault, full_fault_universe
from repro.faultsim.patterns import (
    ExhaustivePatternSource,
    RandomPatternSource,
    SequencePatternSource,
)
from repro.faultsim.simulator import FaultSimulator
from repro.netlist.evaluate import evaluate_single
from repro.netlist.gates import GateType, evaluate_gate
from repro.netlist.netlist import Netlist

from tests.conftest import make_random_netlist, tiny_and_or


def naive_detects(netlist, fault, pattern):
    """Reference: full dual simulation without events or packing."""
    assign = {net: pattern[i] for i, net in enumerate(netlist.primary_inputs)}
    good = evaluate_single(netlist, assign)
    # faulty machine
    from repro.netlist.levelize import levelize

    bad = dict(assign)
    if fault.is_stem and fault.net in bad:
        bad[fault.net] = fault.stuck_at
    for gate_index in levelize(netlist):
        gate = netlist.gates[gate_index]
        inputs = [bad[n] for n in gate.inputs]
        if not fault.is_stem and fault.gate_index == gate_index:
            inputs[fault.pin] = fault.stuck_at
        value = evaluate_gate(gate.gtype, inputs, 1)
        if fault.is_stem and gate.output == fault.net:
            value = fault.stuck_at
        bad[gate.output] = value
    return any(good[po] != bad[po] for po in netlist.primary_outputs)


def test_known_detections_on_tiny(tiny):
    simulator = FaultSimulator(tiny)
    y = tiny.find_net("y")
    # y stuck-at-0 is detected by any pattern with output 1, e.g. c=1.
    assert simulator.detects(Fault(y, 0), (0, 0, 1))
    assert not simulator.detects(Fault(y, 0), (0, 0, 0))
    # a stuck-at-1 needs a=0, b=1, c=0.
    a = tiny.find_net("a")
    assert simulator.detects(Fault(a, 1), (0, 1, 0))
    assert not simulator.detects(Fault(a, 1), (1, 1, 0))
    assert not simulator.detects(Fault(a, 1), (0, 0, 0))


@given(st.integers(0, 60))
@settings(max_examples=15, deadline=None)
def test_simulator_matches_naive_reference(seed):
    """Property: event-driven packed simulation == naive dual simulation."""
    netlist = make_random_netlist(4, 15, seed=seed)
    simulator = FaultSimulator(netlist)
    faults = full_fault_universe(netlist)
    for pattern in itertools.product((0, 1), repeat=4):
        for fault in faults[::3]:  # subsample for speed
            assert simulator.detects(fault, pattern) == naive_detects(
                netlist, fault, pattern
            )


def test_run_detects_everything_on_adder():
    from repro.netlist.builders import ripple_adder

    netlist = Netlist()
    a = netlist.new_inputs(4, prefix="a")
    b = netlist.new_inputs(4, prefix="b")
    for net in ripple_adder(netlist, a, b):
        netlist.mark_output(net)
    simulator = FaultSimulator(netlist, batch_width=64)
    result = simulator.run(ExhaustivePatternSource(8), max_patterns=256)
    assert result.coverage() == 1.0
    assert result.n_patterns <= 256


def test_first_detection_indices_are_earliest():
    """The recorded index must be the first detecting pattern in the stream."""
    netlist = tiny_and_or()
    patterns = [(0, 0, 0), (1, 1, 0), (0, 1, 0), (0, 0, 1)]
    source = SequencePatternSource(patterns)
    simulator = FaultSimulator(netlist, batch_width=3)  # force batch splits
    faults, _ = collapse_faults(netlist)
    result = simulator.run(source, max_patterns=4, stop_when_complete=False)
    for fault, index in result.first_detection.items():
        assert simulator.detects(fault, patterns[index])
        for earlier in range(index):
            assert not simulator.detects(fault, patterns[earlier])


def test_batch_width_does_not_change_results():
    netlist = make_random_netlist(5, 30, seed=4)
    results = []
    for width in (1, 7, 64):
        simulator = FaultSimulator(netlist, batch_width=width)
        source = RandomPatternSource(5, seed=77)
        result = simulator.run(source, max_patterns=64, stop_when_complete=False)
        results.append(dict(result.first_detection))
    assert results[0] == results[1] == results[2]


def test_stop_when_complete_short_circuits():
    netlist = tiny_and_or()
    simulator = FaultSimulator(netlist, batch_width=8)
    result = simulator.run(ExhaustivePatternSource(3), max_patterns=10_000)
    assert result.coverage() == 1.0
    assert result.n_patterns <= 16


def test_coverage_accounting():
    netlist = tiny_and_or()
    simulator = FaultSimulator(netlist, batch_width=8)
    result = simulator.run(ExhaustivePatternSource(3), max_patterns=8)
    assert result.coverage() == 1.0
    assert result.coverage(after_patterns=0) == 0.0
    # patterns_for_coverage of the full run equals max index + 1.
    full = result.patterns_for_coverage(1.0)
    assert full == max(result.first_detection.values()) + 1
    half = result.patterns_for_coverage(0.5)
    assert half is not None and half <= full


def test_patterns_for_coverage_unreachable():
    netlist = tiny_and_or()
    simulator = FaultSimulator(netlist)
    result = simulator.run(
        SequencePatternSource([(0, 0, 0)]), max_patterns=4, stop_when_complete=False
    )
    assert result.patterns_for_coverage(1.0) is None


def test_source_width_mismatch():
    netlist = tiny_and_or()
    simulator = FaultSimulator(netlist)
    with pytest.raises(SimulationError):
        simulator.run(RandomPatternSource(5), max_patterns=10)


def test_invalid_batch_width():
    with pytest.raises(SimulationError):
        FaultSimulator(tiny_and_or(), batch_width=0)


def test_undetectable_fault_never_detected():
    # y = a OR (a AND b): the AND output stuck-at-0 is undetectable
    # (a OR 0 == a == a OR (a AND b) whenever a=1 dominates).
    netlist = Netlist()
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    t = netlist.add_gate(GateType.AND, [a, b], name="t")
    y = netlist.add_gate(GateType.OR, [a, t], name="y")
    netlist.mark_output(y)
    simulator = FaultSimulator(netlist)
    result = simulator.run(
        ExhaustivePatternSource(2),
        max_patterns=4,
        faults=[Fault(t, 0), Fault(t, 1)],
        stop_when_complete=False,
    )
    undetected = result.undetected
    assert Fault(t, 0) in undetected
    assert Fault(t, 1) in result.first_detection
    result.merge_undetectable(undetected)
    assert result.coverage(of_detectable=True) == 1.0

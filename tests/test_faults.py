"""Stuck-at fault universe construction."""

from repro.faultsim.faults import Fault, full_fault_universe
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist

from tests.conftest import tiny_and_or


def test_universe_counts_tiny():
    netlist = tiny_and_or()
    faults = full_fault_universe(netlist)
    # 3 PIs + 2 gate outputs = 5 stems, each with 2 polarities; no net fans
    # out to more than one pin, so no branch faults.
    assert len(faults) == 10
    assert all(f.is_stem for f in faults)


def test_branch_faults_only_on_fanout():
    netlist = Netlist()
    a = netlist.new_input("a")
    b = netlist.new_input("b")
    netlist.add_gate(GateType.AND, [a, b], name="g1")
    netlist.add_gate(GateType.OR, [a, b], name="g2")
    netlist.mark_output(netlist.gates[0].output)
    netlist.mark_output(netlist.gates[1].output)
    faults = full_fault_universe(netlist)
    branch = [f for f in faults if not f.is_stem]
    # a and b each feed two pins -> 2 polarities x 2 pins x 2 nets.
    assert len(branch) == 8
    assert {(f.net, f.gate_index) for f in branch} == {
        (a, 0), (a, 1), (b, 0), (b, 1)
    }


def test_po_sink_counts_toward_fanout():
    netlist = Netlist()
    a = netlist.new_input("a")
    out = netlist.add_gate(GateType.NOT, [a])
    netlist.mark_output(a)  # a is read by the gate AND observed as a PO
    netlist.mark_output(out)
    faults = full_fault_universe(netlist)
    branch = [f for f in faults if not f.is_stem]
    assert len(branch) == 2  # the gate-input pin of net a, both polarities


def test_describe_readable():
    netlist = tiny_and_or()
    stem = Fault(netlist.find_net("t"), 0)
    assert "s_a_0" in stem.describe(netlist)
    assert "t" in stem.describe(netlist)
    pin = Fault(netlist.find_net("a"), 1, gate_index=0, pin=0)
    text = pin.describe(netlist)
    assert "->" in text and "s_a_1" in text


def test_fault_equality_and_hash():
    f1 = Fault(3, 0)
    f2 = Fault(3, 0)
    f3 = Fault(3, 1)
    assert f1 == f2 and hash(f1) == hash(f2)
    assert f1 != f3
    assert len({f1, f2, f3}) == 2

"""Pattern sources."""


from repro.faultsim.patterns import (
    ExhaustivePatternSource,
    LFSRPatternSource,
    RandomPatternSource,
    SequencePatternSource,
)
from repro.netlist.evaluate import unpack_patterns


def _take_patterns(source, count, batch_width=16):
    batches = source.batches(batch_width)
    collected = []
    while len(collected) < count:
        packed = next(batches)
        collected.extend(unpack_patterns(packed, batch_width))
    return collected[:count]


def test_random_source_reproducible():
    s1 = _take_patterns(RandomPatternSource(5, seed=9), 40)
    s2 = _take_patterns(RandomPatternSource(5, seed=9), 40)
    s3 = _take_patterns(RandomPatternSource(5, seed=10), 40)
    assert s1 == s2
    assert s1 != s3


def test_random_source_width():
    patterns = _take_patterns(RandomPatternSource(7, seed=1), 10)
    assert all(len(p) == 7 for p in patterns)


def test_exhaustive_source_covers_everything():
    source = ExhaustivePatternSource(3)
    patterns = _take_patterns(source, 8)
    as_ints = {sum(b << i for i, b in enumerate(p)) for p in patterns}
    assert as_ints == set(range(8))


def test_exhaustive_source_wraps():
    source = ExhaustivePatternSource(2)
    patterns = _take_patterns(source, 10)
    values = [sum(b << i for i, b in enumerate(p)) for p in patterns]
    assert values == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]


def test_sequence_source_cycles():
    base = [(0, 1), (1, 1), (1, 0)]
    source = SequencePatternSource(base)
    patterns = _take_patterns(source, 7)
    assert [tuple(p) for p in patterns] == [
        (0, 1), (1, 1), (1, 0), (0, 1), (1, 1), (1, 0), (0, 1)
    ]


def test_lfsr_source_nonzero_and_periodic():
    source = LFSRPatternSource(4, seed=1)
    patterns = _take_patterns(source, 15)
    values = [sum(b << i for i, b in enumerate(p)) for p in patterns]
    # Maximal-length: 15 distinct non-zero states.
    assert sorted(values) == list(range(1, 16))


def test_lfsr_source_batch_boundary_consistency():
    """The same stream regardless of batch width."""
    a = _take_patterns(LFSRPatternSource(6, seed=3), 30, batch_width=7)
    b = _take_patterns(LFSRPatternSource(6, seed=3), 30, batch_width=32)
    assert a == b

"""Deprecation-shim suite: every pre-RunConfig call shape keeps working.

PR 6 redesigned the run API around :class:`repro.exec.RunConfig`; this
suite is the contract that the redesign broke nobody.  Every historical
``simulate(...)`` keyword call-shape must produce bit-identical results
to its ``RunConfig`` spelling, warn exactly once per process, and reject
ambiguous (config + keywords) or unknown-keyword calls with a structured
error.  The pinned golden run key proves checkpoint journals written by
the pre-refactor engine still resume.
"""

from __future__ import annotations

import warnings

import pytest

from repro.engine import simulate
from repro.engine.checkpoint import run_key
from repro.errors import SimulationError
from repro.exec import ExecutionPolicy, RunConfig
from repro.exec.config import (
    LEGACY_KEYWORDS,
    reset_legacy_warning,
    runconfig_from_legacy,
)
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.coverage import coverage_curve
from repro.faultsim.patterns import RandomPatternSource
from repro.faultsim.simulator import FaultSimulator
from tests.conftest import make_random_netlist, tiny_and_or


@pytest.fixture(autouse=True)
def _rearm_warning():
    """Each test sees a fresh once-per-process deprecation latch."""
    reset_legacy_warning()
    yield
    reset_legacy_warning()


def _fixture(seed=17):
    netlist = make_random_netlist(8, 30, seed=seed)
    faults, _ = collapse_faults(netlist)
    return netlist, faults


def _source(netlist, seed=29):
    return RandomPatternSource(len(netlist.primary_inputs), seed=seed)


def assert_identical(expected, actual):
    assert actual.first_detection == expected.first_detection
    assert actual.n_patterns == expected.n_patterns
    assert coverage_curve(actual) == coverage_curve(expected)


#: Representative pre-refactor keyword call shapes (PR 1-5 surface).
LEGACY_SHAPES = [
    {"max_patterns": 256},
    {"max_patterns": 256, "batch_width": 32},
    {"max_patterns": 256, "jobs": 2},
    {"max_patterns": 256, "jobs": 3, "chunk_batches": 1},
    {"max_patterns": 256, "jobs": 2, "stop_when_complete": False},
    {"max_patterns": 256, "drop_detected": False},
    {"max_patterns": 256, "jobs": 2, "max_retries": 0},
    {"max_patterns": 256, "jobs": 2, "shard_timeout": 30.0,
     "retry_backoff": 0.01},
    {"max_patterns": 256, "check": False},
]


@pytest.mark.parametrize(
    "shape", LEGACY_SHAPES,
    ids=["+".join(sorted(s)) for s in LEGACY_SHAPES],
)
def test_legacy_keywords_match_runconfig_spelling(shape):
    netlist, faults = _fixture()
    expected = simulate(netlist, faults, _source(netlist),
                        config=runconfig_from_legacy(dict(shape), warn=False))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        actual = simulate(netlist, faults, _source(netlist), **shape)
    assert_identical(expected, actual)


def test_legacy_keywords_warn_exactly_once_per_process():
    netlist, faults = _fixture()
    with pytest.warns(DeprecationWarning, match="RunConfig"):
        simulate(netlist, faults, _source(netlist), max_patterns=128, jobs=2)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        simulate(netlist, faults, _source(netlist), max_patterns=128, jobs=2)
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]


def test_runconfig_spelling_never_warns():
    netlist, faults = _fixture()
    config = RunConfig(execution=ExecutionPolicy(jobs=2), max_patterns=128)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        simulate(netlist, faults, _source(netlist), config=config)
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]


def test_config_plus_legacy_keywords_is_rejected():
    netlist, faults = _fixture()
    config = RunConfig(max_patterns=128)
    with pytest.raises(SimulationError, match="not both"):
        simulate(netlist, faults, _source(netlist), config=config, jobs=2)


def test_unknown_keyword_is_a_structured_error():
    netlist, faults = _fixture()
    with pytest.raises(SimulationError, match="unknown engine option"):
        simulate(netlist, faults, _source(netlist), max_paterns=128)


def test_every_documented_legacy_keyword_is_accepted():
    """The shim's keyword table covers the full historical surface."""
    assert set(LEGACY_KEYWORDS) == {
        "max_patterns", "jobs", "batch_width", "chunk_batches", "executor",
        "shard_timeout", "max_retries", "retry_backoff", "checkpoint_dir",
        "resume", "stop_when_complete", "drop_detected", "check",
        "budget", "cancel", "chaos",
    }
    config = runconfig_from_legacy(
        {key: None for key in ("budget", "cancel", "chaos", "executor",
                               "jobs", "shard_timeout", "checkpoint_dir")},
        warn=False,
    )
    assert config == RunConfig()


def test_faultsim_run_legacy_shape():
    netlist, faults = _fixture(seed=18)
    simulator = FaultSimulator(netlist, batch_width=64)
    expected = simulator.run(
        _source(netlist), 256, faults,
        config=RunConfig(execution=ExecutionPolicy(jobs=2)),
    )
    with pytest.warns(DeprecationWarning):
        actual = simulator.run(_source(netlist), 256, faults, jobs=2)
    assert_identical(expected, actual)


def test_faultsim_run_rejects_config_plus_keywords():
    netlist, faults = _fixture(seed=18)
    simulator = FaultSimulator(netlist, batch_width=64)
    with pytest.raises(SimulationError, match="not both"):
        simulator.run(_source(netlist), 256, faults,
                      config=RunConfig(), jobs=2)


def test_legacy_checkpoint_keywords_still_resume(tmp_path):
    netlist, faults = _fixture(seed=19)
    source_seed = 31
    kwargs = {
        "max_patterns": 512, "jobs": 2, "chunk_batches": 1,
        "batch_width": 32, "checkpoint_dir": str(tmp_path),
    }
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        first = simulate(netlist, faults,
                         RandomPatternSource(8, seed=source_seed), **kwargs)
        resumed = simulate(netlist, faults,
                           RandomPatternSource(8, seed=source_seed),
                           resume=True, **kwargs)
    assert_identical(first, resumed)
    assert resumed.rounds_resumed > 0


def test_golden_run_key_is_stable_across_the_refactor():
    """Pinned against the pre-RunConfig engine: old journals must resume.

    The hex digest below was produced by the PR 5 ``run_key(netlist,
    source, faults, batch_width=64, max_patterns=256, jobs=2,
    chunk_batches=1, stop_when_complete=False, drop_detected=False)``.
    If this test fails, every existing checkpoint journal is orphaned —
    change :func:`repro.exec.config.canonical_fields` only with a
    ``JOURNAL_VERSION`` bump.
    """
    netlist = tiny_and_or()
    faults, _ = collapse_faults(netlist)
    source = RandomPatternSource(3, seed=11)
    config = RunConfig(
        execution=ExecutionPolicy(jobs=2, batch_width=64, chunk_batches=1),
        max_patterns=256, stop_when_complete=False, drop_detected=False,
    )
    assert run_key(netlist, source, faults, config, 2) == (
        "2beae786a8db11013f3aeb2a317ccc0b7b8e1d13509b32ccb15113a3b029caca"
    )


def test_run_key_ignores_execution_strategy():
    """Executor, retry, budget and chaos never fork the journal key."""
    netlist = tiny_and_or()
    faults, _ = collapse_faults(netlist)
    source = RandomPatternSource(3, seed=11)
    base = RunConfig(execution=ExecutionPolicy(jobs=2), max_patterns=256)
    key = run_key(netlist, source, faults, base, 2)
    for variant in (
        base.with_execution(executor="thread"),
        base.with_execution(kernel="vec"),
        base.replace(retry=base.retry.__class__(max_retries=9)),
        base.replace(check=False),
    ):
        assert run_key(netlist, source, faults, variant, 2) == key
    assert run_key(netlist, source, faults,
                   base.replace(max_patterns=512), 2) != key

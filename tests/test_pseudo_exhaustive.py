"""Functionally pseudo-exhaustive testing (Examples 7-8)."""

from hypothesis import given, settings, strategies as st

from repro.library.kernels import example7_kernel
from repro.tpg.design import Cone, InputRegister, KernelSpec
from repro.tpg.pseudo_exhaustive import (
    best_register_order,
    conflict_pairs,
    dependency_matrix,
    mcclauskey_extension_stages,
    minimal_test_signals,
)


def test_dependency_matrix_example8():
    """The paper prints D = [[1,1,0],[1,0,1],[0,1,1]]."""
    assert dependency_matrix(example7_kernel()) == [
        [1, 1, 0],
        [1, 0, 1],
        [0, 1, 1],
    ]


def test_conflict_pairs_complete_triangle():
    pairs = conflict_pairs(example7_kernel())
    assert sorted(pairs) == [("R1", "R2"), ("R1", "R3"), ("R2", "R3")]


def test_minimal_test_signals_example8():
    """Example 8: 3 signals of 4 wires -> a 12-stage LFSR."""
    plan = minimal_test_signals(example7_kernel())
    assert plan.n_signals == 3
    assert plan.lfsr_stages == 12
    assert mcclauskey_extension_stages(example7_kernel()) == 12


def test_signals_can_share_when_independent():
    kernel = KernelSpec(
        (InputRegister("A", 4), InputRegister("B", 3), InputRegister("C", 4)),
        (Cone("O1", {"A": 0, "B": 0}), Cone("O2", {"B": 0, "C": 0})),
    )
    plan = minimal_test_signals(kernel)
    # A and C share (no cone joins them): 2 signals; widths max(4,4)=4 and 3.
    assert plan.n_signals == 2
    assert plan.lfsr_stages == 7


def test_permutation_search_finds_paper_optimum():
    result = best_register_order(example7_kernel())
    assert result.lfsr_stages == 8
    assert result.lower_bound == 8
    assert result.optimal
    assert result.orders_tried <= 6


def test_search_beats_mccluskey_on_example():
    """The paper's punchline: MC_TPG + permutation (2^8) beats the signal
    extension (2^12)."""
    kernel = example7_kernel()
    assert best_register_order(kernel).lfsr_stages < mcclauskey_extension_stages(kernel)


def test_search_respects_permutation_budget():
    result = best_register_order(example7_kernel(), max_permutations=1)
    assert result.orders_tried == 1


@st.composite
def coloring_kernel(draw):
    n = draw(st.integers(2, 6))
    registers = tuple(InputRegister(f"R{i}", draw(st.integers(1, 4))) for i in range(n))
    cones = []
    for c in range(draw(st.integers(1, 4))):
        members = draw(
            st.lists(
                st.sampled_from([r.name for r in registers]),
                min_size=1, max_size=n, unique=True,
            )
        )
        cones.append(Cone(f"O{c}", {m: 0 for m in members}))
    return KernelSpec(registers, tuple(cones))


@given(coloring_kernel())
@settings(max_examples=40, deadline=None)
def test_property_test_signal_grouping_is_valid(kernel):
    """Property: no group contains two registers a cone jointly depends on,
    every register is grouped exactly once, and exact <= greedy."""
    plan = minimal_test_signals(kernel)
    conflicts = set(conflict_pairs(kernel))
    all_names = []
    for group in plan.groups:
        members = sorted(group)
        all_names.extend(members)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                assert (a, b) not in conflicts and (b, a) not in conflicts
    assert sorted(all_names) == sorted(r.name for r in kernel.registers)

    greedy_plan = minimal_test_signals(kernel, exact_limit=0)
    assert plan.n_signals <= greedy_plan.n_signals

"""Coverage curve utilities."""

from repro.faultsim.coverage import (
    coverage_at,
    coverage_curve,
    patterns_to_targets,
    sample_curve,
)
from repro.faultsim.patterns import ExhaustivePatternSource
from repro.faultsim.simulator import FaultSimulator

from tests.conftest import tiny_and_or


def _result():
    netlist = tiny_and_or()
    simulator = FaultSimulator(netlist, batch_width=8)
    return simulator.run(
        ExhaustivePatternSource(3), max_patterns=8, stop_when_complete=False
    )


def test_curve_monotone_and_complete():
    result = _result()
    curve = coverage_curve(result)
    assert curve[-1].coverage == 1.0
    for earlier, later in zip(curve, curve[1:]):
        assert later.patterns >= earlier.patterns
        assert later.coverage >= earlier.coverage


def test_coverage_at_checkpoints():
    result = _result()
    assert coverage_at(result, 0) == 0.0
    assert coverage_at(result, 8) == 1.0
    mid = coverage_at(result, 2)
    assert 0.0 <= mid <= 1.0


def test_sample_curve_matches_coverage_at():
    result = _result()
    points = sample_curve(result, [0, 1, 4, 8])
    for point in points:
        assert point.coverage == coverage_at(result, point.patterns)


def test_patterns_to_targets():
    result = _result()
    rows = patterns_to_targets(result, [0.5, 1.0])
    assert rows[0][0] == 0.5
    assert rows[0][1] is not None and rows[0][1] <= rows[1][1]
    assert rows[1][1] == result.patterns_for_coverage(1.0)


def test_empty_denominator_curve():
    result = _result()
    result.undetectable.extend(result.faults)
    curve = coverage_curve(result, of_detectable=True)
    assert curve == [type(curve[0])(0, 1.0)] or curve[0].coverage == 1.0

"""Load-benchmark the BIST service and record ``BENCH_serve.json``.

``python benchmarks/serve_load.py`` starts a real ``python -m repro
serve`` subprocess, drives it over HTTP through three phases, and writes
the snapshot at the repository root (committed, like
``BENCH_engine.json``, so throughput claims are diffable):

* **cold** — N submissions with distinct run keys (the seed varies), so
  every job simulates.  Reported as jobs completed per second plus the
  submit-call latency distribution.
* **warm** — the same N submissions again, all served from the run-key
  result cache: the full submit→result round-trip is one cache lookup,
  and its p50/p99 is the service's floor latency.
* **invalid** — rejected traffic (unknown design, lint-failing netlist,
  malformed JSON): the error path must stay as cheap as the cache path,
  since it is the path abuse hits.

The final ``/metrics`` scrape is parsed with the telemetry validator and
folded into the snapshot, so the recorded cache hit rate is the server's
own counters, not the client's bookkeeping.  Absolute numbers are
machine-dependent — compare entries recorded on one machine, or ratios
between phases.  ``--smoke`` shrinks every phase for the CI harness
check, which uploads (but does not commit) the resulting JSON.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time
from typing import Any, Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from repro import telemetry  # noqa: E402
from repro.telemetry.export import parse_prometheus_text  # noqa: E402
from tests.serve_utils import ServeClient, spawn_server  # noqa: E402

BENCH_KIND = "bench-serve"
BENCH_VERSION = 1

#: A netlist that fails the lint pre-flight (combinational cycle) — the
#: 422 path under load.
CYCLE_BENCH = "INPUT(a)\nOUTPUT(y)\ny = AND(a, y)\n"


def _percentiles(samples: List[float]) -> Dict[str, float]:
    ordered = sorted(samples)

    def at(fraction: float) -> float:
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    return {
        "p50_ms": at(0.50) * 1000.0,
        "p99_ms": at(0.99) * 1000.0,
        "mean_ms": statistics.fmean(ordered) * 1000.0,
        "max_ms": ordered[-1] * 1000.0,
    }


def _phase_entry(phase: str, latencies: List[float],
                 wall: float, **extra: Any) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "phase": phase,
        "requests": len(latencies),
        "wall_time": wall,
        "requests_per_second": len(latencies) / wall if wall else None,
    }
    entry.update(_percentiles(latencies))
    entry.update(extra)
    return entry


def run_cold(client: ServeClient, design: str, n_jobs: int,
             max_patterns: int) -> Dict[str, Any]:
    """Submit ``n_jobs`` distinct-key jobs and drain them all."""
    latencies: List[float] = []
    job_ids: List[str] = []
    start = time.perf_counter()
    for index in range(n_jobs):
        submission = {"design": design, "max_patterns": max_patterns,
                      "seed": 1994 + index}
        t0 = time.perf_counter()
        doc = client.submit(submission)
        latencies.append(time.perf_counter() - t0)
        job_ids.append(doc["id"])
    for job_id in job_ids:
        done = client.wait(job_id, timeout=600)
        assert done["state"] == "done", done
    wall = time.perf_counter() - start
    return _phase_entry("cold", latencies, wall,
                        jobs_per_second=n_jobs / wall if wall else None)


def run_warm(client: ServeClient, design: str, n_jobs: int,
             max_patterns: int, rounds: int) -> Dict[str, Any]:
    """Re-submit the cold set ``rounds`` times; every answer is cached."""
    latencies: List[float] = []
    start = time.perf_counter()
    for _ in range(rounds):
        for index in range(n_jobs):
            submission = {"design": design, "max_patterns": max_patterns,
                          "seed": 1994 + index}
            t0 = time.perf_counter()
            doc = client.submit(submission)
            status, _body = client.result(doc["id"])
            latencies.append(time.perf_counter() - t0)
            assert status == 200 and doc["cached"], doc
    wall = time.perf_counter() - start
    return _phase_entry("warm", latencies, wall)


def run_invalid(client: ServeClient, n_requests: int) -> Dict[str, Any]:
    """Hammer the rejection paths: 404, 422 and 400 in rotation."""
    cases = [
        ("POST", "/v1/jobs", {"design": "no-such-design"}, 404),
        ("POST", "/v1/jobs", {"bench": CYCLE_BENCH}, 422),
        ("POST", "/v1/jobs", {"design": "mac4", "bogus": 1}, 400),
    ]
    latencies: List[float] = []
    start = time.perf_counter()
    for index in range(n_requests):
        method, path, payload, expected = cases[index % len(cases)]
        t0 = time.perf_counter()
        status, _body = client.request(method, path, payload)
        latencies.append(time.perf_counter() - t0)
        assert status == expected, (status, expected, _body)
    wall = time.perf_counter() - start
    return _phase_entry("invalid", latencies, wall)


def scrape_metrics(client: ServeClient) -> Dict[str, float]:
    """The server's own counters, validated through the telemetry parser."""
    status, text = client.request("GET", "/metrics")
    assert status == 200, text
    samples = parse_prometheus_text(text)
    hits = samples.get("cache_hit", 0.0)
    misses = samples.get("cache_miss", 0.0)
    return {
        "cache_hit": hits,
        "cache_miss": misses,
        "cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "jobs_submitted": samples.get("serve_jobs_submitted", 0.0),
        "jobs_completed": samples.get("serve_jobs_completed", 0.0),
        "lint_rejections": samples.get("serve_lint_rejections", 0.0),
    }


def run_load(state_dir: pathlib.Path, design: str, n_jobs: int,
             max_patterns: int, warm_rounds: int, n_invalid: int,
             workers: int, quiet: bool) -> Dict[str, Any]:
    process, port = spawn_server(state_dir, "--workers", str(workers))
    client = ServeClient("127.0.0.1", port, timeout=120.0)
    try:
        phases = []
        for phase in (
            lambda: run_cold(client, design, n_jobs, max_patterns),
            lambda: run_warm(client, design, n_jobs, max_patterns,
                             warm_rounds),
            lambda: run_invalid(client, n_invalid),
        ):
            entry = phase()
            phases.append(entry)
            if not quiet:
                print(f"{entry['phase']}: {entry['requests']} requests in "
                      f"{entry['wall_time']:.3f}s "
                      f"({entry['requests_per_second']:,.1f} req/s, "
                      f"p50 {entry['p50_ms']:.2f}ms, "
                      f"p99 {entry['p99_ms']:.2f}ms)", flush=True)
        metrics = scrape_metrics(client)
    finally:
        client.close()
        process.terminate()
        process.wait(timeout=30)
    return {
        "kind": BENCH_KIND,
        "version": BENCH_VERSION,
        "git": telemetry.git_describe(cwd=str(REPO_ROOT)),
        "recorded": time.time(),
        "config": {
            "design": design,
            "n_jobs": n_jobs,
            "max_patterns": max_patterns,
            "warm_rounds": warm_rounds,
            "n_invalid": n_invalid,
            "workers": workers,
        },
        "phases": phases,
        "metrics": metrics,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks/serve_load.py",
        description="load-benchmark repro serve, record BENCH_serve.json",
    )
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_serve.json"),
                        help="snapshot path (default: repo root)")
    parser.add_argument("--design", default="c3a2m",
                        help="library design every job simulates")
    parser.add_argument("--jobs", type=int, default=16, metavar="N",
                        help="distinct cold jobs (each also replayed warm)")
    parser.add_argument("--max-patterns", type=int, default=2048)
    parser.add_argument("--warm-rounds", type=int, default=8,
                        help="how many times the warm phase replays the "
                             "cold set from cache")
    parser.add_argument("--invalid", type=int, default=120, metavar="N",
                        help="rejected requests in the invalid phase")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--state-dir", default=None,
                        help="server state directory (default: a fresh "
                             "temporary directory)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI harness check: 3 jobs, 256 patterns, one "
                             "warm round — verifies every phase end-to-end "
                             "without recording meaningful timings")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.smoke:
        args.jobs = 3
        args.max_patterns = 256
        args.warm_rounds = 1
        args.invalid = 9
    if args.state_dir is None:
        import tempfile

        args.state_dir = tempfile.mkdtemp(prefix="repro-serve-load-")

    payload = run_load(
        pathlib.Path(args.state_dir), args.design, args.jobs,
        args.max_patterns, args.warm_rounds, args.invalid,
        args.workers, args.quiet,
    )
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if not args.quiet:
        rate = payload["metrics"]["cache_hit_rate"]
        print(f"cache hit rate: {rate:.3f}")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 9: the Krasniewski-Albicki example circuit under both TDMs.

Paper: KA-85 converts 10 BILBO registers / 52 flip-flops; BIBS converts 8 /
43 — reproduced exactly on the reconstructed circuit.  Both designs need
two test sessions.  (The paper draws two kernels per design; our KA cut
yields four logic kernels because cluster wiring inside the original
figure is not recoverable — see EXPERIMENTS.md.)
"""

import json

from repro.experiments.figures import figure9_report


def test_figure9(benchmark, report):
    data = benchmark.pedantic(figure9_report, rounds=1, iterations=1)
    assert data["bibs"]["registers"] == 8
    assert data["bibs"]["flipflops"] == 43
    assert data["ka"]["registers"] == 10
    assert data["ka"]["flipflops"] == 52
    assert data["bibs"]["kernels"] == 2
    assert data["bibs"]["sessions"] == 2
    assert data["ka"]["sessions"] == 2
    # The BIBS saving the paper highlights: 2 registers, 9 flip-flops.
    assert data["ka"]["registers"] - data["bibs"]["registers"] == 2
    assert data["ka"]["flipflops"] - data["bibs"]["flipflops"] == 9
    report("figure9.txt", json.dumps(data, indent=2))

"""Table 1: the data path circuit summary.

Paper: c5a2m / c3a2m / c4a4m with 2,542 / 2,218 / 4,096 gates (MABAL
macros).  Ours rebuilds the same structures with its own adder/multiplier
macros, so absolute gate counts differ; the asserted shape is the block
inventory (5a+2m, 3a+2m, 4a+4m), the 8-bit width, and c4a4m being the
largest circuit.
"""

from repro.experiments.table1 import render_table1, table1_rows


def test_table1(benchmark, report):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    by_name = {r.name: r for r in rows}

    assert (by_name["c5a2m"].n_adders, by_name["c5a2m"].n_multipliers) == (5, 2)
    assert (by_name["c3a2m"].n_adders, by_name["c3a2m"].n_multipliers) == (3, 2)
    assert (by_name["c4a4m"].n_adders, by_name["c4a4m"].n_multipliers) == (4, 4)
    assert all(r.width == 8 for r in rows)
    # Shape: c4a4m is the largest, as in the paper (4,096 gates there).
    assert by_name["c4a4m"].n_gates == max(r.n_gates for r in rows)
    # Our macros are leaner than MABAL's but the same order of magnitude.
    for row in rows:
        assert 500 <= row.n_gates <= 5000

    report("table1.txt", render_table1(rows))

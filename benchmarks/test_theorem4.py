"""Ablation A3: exhaustive verification of Theorems 4, 5 and 7.

Sweeps randomized balanced kernels (single- and multi-cone) and certifies
by exact enumeration that every SC_TPG/MC_TPG design applies a functionally
exhaustive test set, while a naive concatenated-LFSR TPG (no displacement
compensation — the paper's Figure 10(a) strawman) fails whenever depths
are unequal.
"""

import random

from repro.experiments.render import render_table
from repro.tpg.design import Cone, InputRegister, KernelSpec, Slot, TPGDesign
from repro.tpg.mc_tpg import mc_tpg
from repro.tpg.sc_tpg import sc_tpg
from repro.tpg.verify import verify_design


def _random_single_cone(rng):
    n = rng.randrange(2, 4)
    return KernelSpec.single_cone(
        [(f"R{i}", rng.randrange(1, 4), rng.randrange(0, 4)) for i in range(n)],
        name="sweep",
    )


def _random_multi_cone(rng):
    n = rng.randrange(2, 4)
    registers = tuple(
        InputRegister(f"R{i}", rng.randrange(1, 3)) for i in range(n)
    )
    cones = []
    for c in range(rng.randrange(1, 4)):
        names = [r.name for r in registers]
        rng.shuffle(names)
        members = names[: rng.randrange(1, n + 1)]
        cones.append(Cone(f"O{c}", {m: rng.randrange(0, 3) for m in members}))
    return KernelSpec(registers, tuple(cones), name="sweep")


def _naive_concatenation(kernel):
    """The Figure 10(a) strawman: registers chained with no compensation."""
    slots = []
    label = 0
    for register in kernel.registers:
        for cell in range(1, register.width + 1):
            label += 1
            slots.append(Slot(label, (register.name, cell)))
    return TPGDesign(kernel, slots, label)


def _sweep(trials=60, seed=1994):
    rng = random.Random(seed)
    stats = {"sc_ok": 0, "mc_ok": 0, "naive_fail": 0, "naive_total": 0, "skipped": 0}
    for trial in range(trials):
        single = _random_single_cone(rng)
        design = sc_tpg(single)
        if design.lfsr_stages <= 11:
            assert all(v.exhaustive for v in verify_design(design))
            stats["sc_ok"] += 1
            # Strawman comparison on unequal-depth kernels.
            depths = set(single.cones[0].depths.values())
            if len(depths) > 1:
                stats["naive_total"] += 1
                naive = _naive_concatenation(single)
                if not all(v.exhaustive for v in verify_design(naive)):
                    stats["naive_fail"] += 1
        else:
            stats["skipped"] += 1

        multi = _random_multi_cone(rng)
        design = mc_tpg(multi)
        if design.lfsr_stages <= 11:
            assert all(v.exhaustive for v in verify_design(design))
            stats["mc_ok"] += 1
        else:
            stats["skipped"] += 1
    return stats


def test_theorem4_sweep(benchmark, report):
    stats = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    assert stats["sc_ok"] >= 40
    assert stats["mc_ok"] >= 40
    # The strawman fails on a clear majority of unequal-depth kernels.
    assert stats["naive_total"] > 10
    assert stats["naive_fail"] > stats["naive_total"] * 0.6
    report(
        "theorem4_sweep.txt",
        render_table(
            ["metric", "count"],
            sorted(stats.items()),
            title="Theorem 4/5/7 verification sweep",
        ),
    )

"""Table 2 rows 1-4: kernels, sessions, BILBO registers, maximal delay.

These rows are structural, so exact agreement with the paper is asserted:

                         c5a2m       c3a2m       c4a4m
                       BIBS  [3]   BIBS  [3]   BIBS  [3]
  1 # kernels            1    7      1    5      1    7*
  2 # test sessions      1    2      1    2      1    2
  3 # BILBO registers    9   15      7   15     10   20
  4 maximal delay        2    4      2    6      2    4

(*) Our KA-85 partition of c4a4m yields 6 logic kernels because the shared
adders (b+c) and (f+g) fan out *after* their output register, merging the
multiplier pairs {M1,M4} and {M2,M3} into common kernels; the paper prints
7.  EXPERIMENTS.md discusses the discrepancy.
"""

import pytest

from repro.core.bibs import make_bibs_testable
from repro.core.ka85 import make_ka_testable
from repro.core.schedule import ScheduledKernel, schedule_kernels
from repro.datapath.filters import all_filters
from repro.experiments.render import render_table
from repro.graph.build import build_circuit_graph

EXPECTED = {
    #          kernels   sessions  registers  delay
    "c5a2m": ((1, 7),   (1, 2),   (9, 15),   (2, 4)),
    "c3a2m": ((1, 5),   (1, 2),   (7, 15),   (2, 6)),
    "c4a4m": ((1, 6),   (1, 2),   (10, 20),  (2, 4)),  # paper prints 7 kernels
}


def _measure():
    measured = {}
    for name, compiled in all_filters().items():
        graph = build_circuit_graph(compiled.circuit)
        bibs = make_bibs_testable(graph)
        ka = make_ka_testable(graph).design

        def sessions(design):
            items = [
                ScheduledKernel(k, max(1, k.input_width)) for k in design.kernels
            ]
            return schedule_kernels(items).n_sessions

        measured[name] = (
            (
                sum(1 for k in bibs.kernels if k.logic_blocks),
                sum(1 for k in ka.kernels if k.logic_blocks),
            ),
            (sessions(bibs), sessions(ka)),
            (bibs.n_bilbo_registers, ka.n_bilbo_registers),
            (bibs.maximal_delay(), ka.maximal_delay()),
        )
    return measured


def test_table2_structure_rows(benchmark, report):
    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)
    assert measured == EXPECTED

    headers = ["Row"] + [
        f"{c} {t}" for c in ("c5a2m", "c3a2m", "c4a4m") for t in ("BIBS", "[3]")
    ]
    labels = ["1 # kernels", "2 # sessions", "3 # BILBO regs", "4 max delay"]
    rows = []
    for index, label in enumerate(labels):
        row = [label]
        for name in ("c5a2m", "c3a2m", "c4a4m"):
            row += list(map(str, measured[name][index]))
        rows.append(row)
    report(
        "table2_rows1_4.txt",
        render_table(headers, rows, title="Table 2 rows 1-4 (structural, exact)"),
    )

"""Engine scaling smoke benchmark: serial vs sharded on a real kernel.

Measures :func:`repro.engine.simulate` at ``jobs in (1, 2, 4)`` on the
c3a2m multiplier kernel, asserts the runs are bit-identical (the hard
contract) and emits a JSON artifact with per-shard instrumentation.  It is
deliberately *non-failing on speed*: process fan-out only pays off beyond
some circuit size and core count, and CI boxes routinely pin the suite to
one core — the artifact records the observed scaling either way.
"""

import json
import time

import pytest

from repro.core.flow import lower_kernel_to_netlist
from repro.core.ka85 import make_ka_testable
from repro.datapath.filters import c3a2m
from repro.engine import GoldenCache, simulate
from repro.faultsim.patterns import RandomPatternSource
from repro.graph.build import build_circuit_graph

JOB_LEVELS = (1, 2, 4)
MAX_PATTERNS = 2048


@pytest.fixture(scope="module")
def kernel_netlist():
    compiled = c3a2m()
    design = make_ka_testable(build_circuit_graph(compiled.circuit)).design
    kernel = next(
        k for k in design.kernels
        if any(b.startswith("M") for b in k.logic_blocks)
    )
    return lower_kernel_to_netlist(compiled.circuit, kernel)


def test_engine_scaling_smoke(benchmark, kernel_netlist, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cache = GoldenCache()
    n_inputs = len(kernel_netlist.primary_inputs)
    runs = {}
    for jobs in JOB_LEVELS:
        source = RandomPatternSource(n_inputs, seed=3)
        start = time.perf_counter()
        result = simulate(
            kernel_netlist, None, source,
            max_patterns=MAX_PATTERNS, jobs=jobs, cache=cache,
        )
        runs[jobs] = (time.perf_counter() - start, result)

    baseline = runs[1][1]
    for jobs, (_, result) in runs.items():
        # The contract under benchmark: sharding never changes the answer.
        assert result.first_detection == baseline.first_detection, jobs
        assert result.n_patterns == baseline.n_patterns, jobs

    payload = {
        "benchmark": "engine_scaling",
        "circuit": kernel_netlist.name,
        "n_gates": len(kernel_netlist.gates),
        "n_faults": baseline.n_faults,
        "max_patterns": MAX_PATTERNS,
        "coverage": baseline.coverage(),
        "cache": cache.counters(),
        "runs": {
            str(jobs): {
                "elapsed": elapsed,
                "speedup_vs_serial": runs[1][0] / elapsed if elapsed else None,
                **result.to_json()["engine"],
            }
            for jobs, (elapsed, result) in runs.items()
        },
    }
    report("engine_scaling.json", json.dumps(payload, indent=2))

"""Coverage-vs-patterns series (the data behind Table 2 rows 5-8).

The paper reports only the 99.5% and 100% crossing points; this bench
emits the full fault-coverage curves for c5a2m under both TDMs as CSV
series (``results/coverage_series_c5a2m.csv``) plus the curve shape
checks: monotone, concave-ish (fast head, long tail), BIBS's single kernel
vs KA-85's two sessions.
"""

import pytest

from repro.core.bibs import make_bibs_testable
from repro.core.flow import lower_kernel_to_netlist
from repro.core.ka85 import make_ka_testable
from repro.datapath.filters import c5a2m
from repro.faultsim.coverage import sample_curve
from repro.faultsim.patterns import RandomPatternSource
from repro.faultsim.simulator import FaultSimulator
from repro.graph.build import build_circuit_graph

CHECKPOINTS = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048]


def _series():
    compiled = c5a2m()
    circuit = compiled.circuit
    graph = build_circuit_graph(circuit)
    series = {}

    bibs = make_bibs_testable(graph)
    netlist = lower_kernel_to_netlist(circuit, bibs.kernels[0])
    simulator = FaultSimulator(netlist)
    result = simulator.run(
        RandomPatternSource(len(netlist.primary_inputs), seed=21), 4096,
        stop_when_complete=False,
    )
    series["bibs_whole_circuit"] = sample_curve(result, CHECKPOINTS, of_detectable=False)

    ka = make_ka_testable(graph).design
    for label, blocks in (("ka_adder_A1", ["A1"]), ("ka_multiplier_M1", ["M1"])):
        kernel = next(k for k in ka.kernels if k.logic_blocks == blocks)
        sub = lower_kernel_to_netlist(circuit, kernel)
        sub_sim = FaultSimulator(sub)
        sub_result = sub_sim.run(
            RandomPatternSource(16, seed=21), 4096, stop_when_complete=False
        )
        series[label] = sample_curve(sub_result, CHECKPOINTS, of_detectable=False)
    return series


def test_coverage_series(benchmark, report):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    lines = ["patterns," + ",".join(series)]
    for index, checkpoint in enumerate(CHECKPOINTS):
        row = [str(checkpoint)]
        for name in series:
            row.append(f"{series[name][index].coverage:.4f}")
        lines.append(",".join(row))
    report("coverage_series_c5a2m.csv", "\n".join(lines))

    for name, points in series.items():
        coverages = [p.coverage for p in points]
        # Monotone nondecreasing.
        assert all(b >= a for a, b in zip(coverages, coverages[1:])), name
        # Fast head: >60% of the final coverage within 32 patterns.
        assert coverages[5] > 0.6 * coverages[-1], name
        # Near-complete by the end of the sweep.
        assert coverages[-1] > 0.98, name
    # The adder saturates faster than the multiplier (the paper's 32 vs
    # 2,140 pattern asymmetry, in our macros' proportions).
    adder = [p.coverage for p in series["ka_adder_A1"]]
    multiplier = [p.coverage for p in series["ka_multiplier_M1"]]
    assert adder[4] > multiplier[4]

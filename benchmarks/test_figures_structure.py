"""Figures 1-3: testability classes and the circuit graph model."""

import json

from repro.experiments.figures import figure3_report, figures_1_2_report


def test_figures_1_2(benchmark, report):
    data = benchmark.pedantic(figures_1_2_report, rounds=3, iterations=1)
    assert data["figure1"] == {"balanced": False, "k_step": 2}
    assert data["figure2"] == {"balanced": True, "k_step": 1}
    report("figures_1_2.txt", json.dumps(data, indent=2, default=str))


def test_figure3(benchmark, report):
    data = benchmark.pedantic(figure3_report, rounds=3, iterations=1)
    assert len(data["fanout_vertices"]) == 1   # FO1
    assert len(data["vacuous_vertices"]) == 1  # V1 between R2 and R3
    assert data["n_register_edges"] == 9       # R1..R9
    assert [sorted(c) for c in data["cycles"]] == [["F", "H"]]
    witness = data["fo1_to_h_witness"]
    assert witness is not None and witness.imbalance == 1
    report("figure3.txt", json.dumps(data, indent=2, default=str))

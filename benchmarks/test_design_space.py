"""Ablation A5: BITS-style design-space exploration.

The BITS system of Section 5 "systematically explores the BISTable design
space to provide a family of solutions".  This bench explores the space
for the figure circuits and validates the family: every point is a valid
balanced-BISTable design, the Pareto front is mutually non-dominated, and
it contains the minimal (BIBS) design.
"""

from repro.bits.design_space import explore_design_space
from repro.core.bibs import is_valid_selection, make_bibs_testable
from repro.experiments.render import render_table
from repro.graph.build import build_circuit_graph
from repro.library.figures import figure4
from repro.library.ka_example import figure9


def _explore():
    results = {}
    for name, circuit in (("figure4", figure4()), ("figure9", figure9())):
        graph = build_circuit_graph(circuit)
        front = explore_design_space(graph, max_extra=4, limit=2500)
        results[name] = (graph, front)
    return results


def test_design_space(benchmark, report):
    results = benchmark.pedantic(_explore, rounds=1, iterations=1)
    rows = []
    for name, (graph, front) in results.items():
        minimal = make_bibs_testable(graph)
        assert any(
            set(p.bilbo_registers) == set(minimal.bilbo_registers)
            for p in front
        ), name
        for point in front:
            assert is_valid_selection(graph, set(point.bilbo_registers)), name
            assert not any(q.dominates(point) for q in front if q is not point)
            rows.append(
                (
                    name,
                    point.n_registers,
                    f"{point.added_area:.1f}",
                    point.maximal_delay,
                    point.test_time_proxy,
                    point.n_sessions,
                )
            )
    report(
        "design_space.txt",
        render_table(
            ["circuit", "regs", "added area", "max delay", "time proxy", "sessions"],
            rows,
            title="BISTable design-space Pareto fronts",
        ),
    )

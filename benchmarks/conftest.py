"""Benchmark support: a results directory and a report sink."""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir, request):
    """Write a named text artifact under results/ and echo it."""

    def _write(name: str, text: str) -> None:
        path = results_dir / name
        path.write_text(text + "\n")
        print(f"\n[{request.node.name}] -> {path}\n{text}")

    return _write

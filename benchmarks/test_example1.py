"""Figures 4-6 / Example 1: partial scan vs BIBS on the unbalanced circuit.

Paper claims reproduced exactly: minimal partial scan = {R3, R9}; BIBS
needs six BILBO registers {R1, R3, R6, R7, R8, R9}, giving two balanced
BISTable kernels tested in two sessions.
"""

import json

from repro.experiments.figures import example1_report


def test_example1(benchmark, report):
    data = benchmark.pedantic(example1_report, rounds=1, iterations=1)
    assert data["scan_registers"] == ["R3", "R9"]
    assert data["bibs_registers"] == ["R1", "R3", "R6", "R7", "R8", "R9"]
    assert data["n_bibs_registers"] == 6
    assert data["n_kernels"] == 2
    assert data["n_sessions"] == 2
    kernel1, kernel2 = data["kernels"]
    assert kernel1["tpg"] == ["R1"]
    assert kernel1["sa"] == ["R3", "R7", "R8", "R9"]
    assert kernel2["tpg"] == ["R3", "R7", "R8", "R9"]
    assert kernel2["sa"] == ["R6"]
    report("example1.txt", json.dumps(data, indent=2, default=str))

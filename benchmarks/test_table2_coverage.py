"""Table 2 rows 5-8: random-pattern test length and scheduled test time.

Absolute pattern counts depend on the gate-level macros (the paper's MABAL
multipliers needed ~2,140 patterns standalone; our array multipliers are
leaner), so the assertions target the row *relationships* the paper's
analysis rests on:

* both TDMs reach 100% coverage of detectable faults (paper Section 3.4);
* the required patterns are a tiny fraction of functionally exhaustive
  testing (2^16 per kernel and far more for the whole circuit);
* 99.5% coverage needs far fewer patterns than 100% (rows 5 vs 7);
* optimal scheduling compresses the KA-85 test time well below its raw
  pattern sum (rows 7 vs 8: the paper's 4,440 -> 2,172 effect);
* on the cascaded-multiplier filter c3a2m, the whole-circuit BIBS kernel
  needs more patterns than any single KA kernel — the paper's "larger and
  more complex structures are tested as kernels" effect.
"""

import pytest

from repro.experiments.table2 import measure_circuit, render_table2, table2_columns

MAX_PATTERNS = 1 << 16
SEEDS = 3


@pytest.fixture(scope="module")
def columns():
    return table2_columns(max_patterns=MAX_PATTERNS, n_seeds=SEEDS)


def test_table2_coverage_rows(benchmark, columns, report):
    benchmark.pedantic(
        lambda: measure_circuit("c5a2m", max_patterns=1 << 13, n_seeds=1),
        rounds=1,
        iterations=1,
    )
    report("table2_full.txt", render_table2(columns))

    for column in columns:
        # Both TDMs reach 100% of detectable faults within budget.
        for pair_name in ("patterns_995", "patterns_100", "time_995", "time_100"):
            bibs_value, ka_value = getattr(column, pair_name)
            assert bibs_value is not None, (column.circuit, pair_name)
            assert ka_value is not None, (column.circuit, pair_name)
        # Functionally exhaustive would be >= 2^16 per kernel; random
        # patterns achieve full coverage orders of magnitude sooner.
        assert column.patterns_100[0] < (1 << 16) / 4
        assert column.patterns_100[1] < (1 << 16) / 4
        # 99.5% is much cheaper than 100% for the BIBS kernel.
        assert column.patterns_995[0] <= column.patterns_100[0]
        # Scheduling compresses KA-85 test time below the raw pattern sum.
        assert column.time_100[1] < column.patterns_100[1]
        assert column.time_995[1] <= column.patterns_995[1]
        # BIBS runs a single session: its time equals its pattern count.
        assert column.time_100[0] == column.patterns_100[0]


def test_bibs_vs_ka_time_ratio(benchmark, columns, report):
    """Row 8's BIBS-vs-KA relationship, measured honestly.

    The paper reports BIBS taking 3.4-8.8x the scheduled KA-85 time at 100%
    coverage; that factor came from its MABAL multiplier macros being very
    random-pattern-resistant (2,140 patterns standalone).  Our leaner array
    multipliers saturate far sooner, so with this substrate the two TDMs
    end up within a small factor of each other — BIBS's hardware saving
    costs little test time here.  The assertion pins that measured
    relationship (ratio within [1/3, 3] on every circuit) so regressions
    in either engine are caught; EXPERIMENTS.md discusses the deviation
    from the paper's absolute factors.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = []
    for column in columns:
        ratio = column.time_100[0] / column.time_100[1]
        lines.append(f"{column.circuit}: BIBS/KA test-time ratio @100% = {ratio:.2f}")
        assert 1 / 3 < ratio < 3, (column.circuit, ratio)
    report("table2_time_ratio.txt", "\n".join(lines))

"""Record engine benchmark numbers as a committed ``BENCH_engine.json``.

``python benchmarks/record.py`` re-measures the engine's standing
scenarios over a ``kernel × jobs × executor`` matrix, verifies every cell
is bit-identical to the scenario's serial packed baseline, and rewrites
the snapshot at the repository root.  The file is committed so benchmark
history travels with the code: every entry carries the ``git describe``
of the tree that produced it, and a reviewer can diff throughput claims
the same way they diff code.

The standing scenarios come from :mod:`repro.library.scenarios` and
bracket the engine's operating range: the c3a2m multiplier kernel (large
fault universe, where vectorisation and process sharding pay), the mac4
multiply-accumulate kernel (small, where the process pool's spawn/pickle
tax loses to the thread and serial backends) and the ~20k-gate synthetic
array multiplier (an order of magnitude beyond the paper's kernels; its
fault universe is stride-sampled so a cell completes in seconds).  The
``kernel`` axis measures the packed bigint loop against the numpy
vectorised kernel on identical work — both must produce bit-identical
detection tables, so the ratio between the two cells is pure kernel
speed.

Each entry is flat and stable by design::

    {"scenario": "c3a2m_kernel", "kernel": "vec", "jobs": 2,
     "executor": "thread", "wall_time": 0.123,
     "patterns_per_second": 16600.0, "n_patterns": 2048,
     "n_faults": 1328, "coverage": 0.994, "git": "c4cfedf"}

Absolute numbers are machine-dependent — compare entries recorded on one
machine, or ratios between cells, not snapshots across hosts.  Run with
``--smoke`` in CI to verify the harness end-to-end (256 patterns, reduced
matrix) without committing timings.  Run with ``REPRO_TELEMETRY=1`` (or
pass ``--trace-out``) to also get a Chrome trace of the measured runs
(see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import telemetry  # noqa: E402
from repro.engine import GoldenCache, simulate  # noqa: E402
from repro.exec import ExecutionPolicy, RunConfig  # noqa: E402
from repro.faultsim.collapse import collapse_faults  # noqa: E402
from repro.faultsim.patterns import RandomPatternSource  # noqa: E402
from repro.library import scenarios as scenario_lib  # noqa: E402

BENCH_KIND = "bench-engine"
BENCH_VERSION = 3

#: Backends measured at every sharded job level (jobs=1 is always the
#: historical serial loop, recorded once per kernel as executor "serial").
EXECUTORS = ("serial", "thread", "process")

#: Evaluation kernels measured for every cell of the matrix.
KERNELS = ("packed", "vec")

#: Per-scenario measurement knobs.  ``fault_stride`` subsamples the
#: collapsed fault universe (throughput ratios are preserved; the full
#: universe on the synthetic scenario would take minutes per packed
#: cell), ``max_patterns`` overrides the CLI default where a scenario
#: needs a shorter run to stay in budget.
SCENARIO_SPECS: Dict[str, Dict[str, Any]] = {
    "c3a2m_kernel": {"fault_stride": 1, "max_patterns": None},
    "mac4_kernel": {"fault_stride": 1, "max_patterns": None},
    "synth20k_kernel": {"fault_stride": 40, "max_patterns": 1024},
}


def measure(
    scenario: str,
    netlist,
    faults,
    kernel: str,
    jobs: int,
    executor: Optional[str],
    max_patterns: int,
    seed: int,
    cache: Optional[GoldenCache] = None,
) -> Dict[str, Any]:
    """One benchmark entry: a (scenario, kernel, jobs, executor) cell, timed."""
    source = RandomPatternSource(len(netlist.primary_inputs), seed=seed)
    config = RunConfig(
        execution=ExecutionPolicy(executor=executor, jobs=jobs, kernel=kernel),
        max_patterns=max_patterns,
    )
    start = time.perf_counter()
    result = simulate(netlist, faults, source, config=config, cache=cache)
    wall = time.perf_counter() - start
    return {
        "scenario": scenario,
        "kernel": result.kernel,
        "jobs": jobs,
        "executor": result.executor,
        "wall_time": wall,
        "patterns_per_second": result.n_patterns / wall if wall else None,
        "n_patterns": result.n_patterns,
        "n_faults": result.n_faults,
        "coverage": result.coverage(),
        "git": telemetry.git_describe(cwd=str(REPO_ROOT)),
        "_result": result,  # stripped before writing; used for equivalence
    }


def record(
    scenario_names: List[str],
    job_levels: List[int],
    executors: List[str],
    kernels: List[str],
    max_patterns: int,
    seed: int,
    quiet: bool = False,
) -> Dict[str, Any]:
    """Measure every scenario over the kernel × jobs × executor matrix.

    Every cell's result is checked bit-identical to the scenario's serial
    packed baseline before anything is written — a snapshot of a broken
    engine (or a divergent kernel) must be impossible to record.
    """
    entries: List[Dict[str, Any]] = []
    for scenario in scenario_names:
        spec = SCENARIO_SPECS.get(
            scenario, {"fault_stride": 1, "max_patterns": None})
        netlist = scenario_lib.SCENARIOS[scenario]()
        faults, _ = collapse_faults(netlist)
        stride = spec["fault_stride"]
        if stride > 1:
            faults = faults[::stride]
        patterns = spec["max_patterns"] or max_patterns
        cache = GoldenCache()
        baseline = None
        cells = [(kernel, jobs, executor)
                 for kernel in kernels
                 for jobs in job_levels
                 for executor in (executors if jobs > 1 else [None])]
        for kernel, jobs, executor in cells:
            entry = measure(
                scenario, netlist, faults, kernel, jobs, executor,
                patterns, seed, cache=cache,
            )
            result = entry.pop("_result")
            if baseline is None:
                baseline = result
            elif (result.first_detection != baseline.first_detection
                  or result.n_patterns != baseline.n_patterns):
                raise AssertionError(
                    f"{scenario}: kernel={kernel} jobs={jobs} "
                    f"executor={executor} diverged from the baseline — "
                    "refusing to record a broken engine"
                )
            entries.append(entry)
            if not quiet:
                pps = entry["patterns_per_second"]
                rate = f" ({pps:,.0f} patterns/s)" if pps else ""
                print(f"{entry['scenario']} kernel={entry['kernel']} "
                      f"jobs={entry['jobs']} executor={entry['executor']}: "
                      f"{entry['wall_time']:.3f}s{rate}", flush=True)
    return {
        "kind": BENCH_KIND,
        "version": BENCH_VERSION,
        "git": telemetry.git_describe(cwd=str(REPO_ROOT)),
        "recorded": time.time(),
        "config": {
            "max_patterns": max_patterns,
            "seed": seed,
            "scenarios": list(scenario_names),
            "job_levels": job_levels,
            "executors": list(executors),
            "kernels": list(kernels),
            "scenario_specs": {
                name: {k: v for k, v in spec.items()}
                for name, spec in SCENARIO_SPECS.items()
                if name in scenario_names
            },
        },
        "entries": entries,
    }


def spawn_remote_workers(count: int) -> List["subprocess.Popen[str]"]:
    """Launch ``count`` localhost worker agents and pin them as the peer
    set, so ``remote`` can appear on the executor axis.  The measured
    tax is the honest one — real sockets, real pickling — just without
    the network between the hosts."""
    from repro.exec import set_default_peers

    workers = []
    for _ in range(count):
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
            cwd=str(REPO_ROOT),
            env=dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src")),
        )
        assert process.stdout is not None
        line = process.stdout.readline().strip()
        if not line.startswith("worker listening on "):
            raise RuntimeError(f"worker did not announce: {line!r}")
        process.address = line.rsplit(" ", 1)[-1]  # type: ignore[attr-defined]
        workers.append(process)
    set_default_peers(",".join(w.address for w in workers))
    return workers


def stop_remote_workers(workers: List["subprocess.Popen[str]"]) -> None:
    from repro.exec import set_default_peers

    set_default_peers(None)
    for worker in workers:
        if worker.poll() is None:
            worker.terminate()
        worker.wait(timeout=10)
        if worker.stdout is not None:
            worker.stdout.close()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks/record.py",
        description="record engine benchmark numbers as BENCH_engine.json",
    )
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_engine.json"),
                        help="snapshot path (default: repo root)")
    parser.add_argument("--scenarios",
                        default=",".join(SCENARIO_SPECS),
                        help="comma-separated scenario names from "
                             "repro.library.scenarios (default: "
                             f"{','.join(SCENARIO_SPECS)})")
    parser.add_argument("--jobs", default="1,2",
                        help="comma-separated job levels (default: 1,2)")
    parser.add_argument("--executors", default=",".join(EXECUTORS),
                        help="comma-separated backends measured at each "
                             "sharded job level (default: all)")
    parser.add_argument("--kernels", default=",".join(KERNELS),
                        help="comma-separated evaluation kernels "
                             "(default: packed,vec)")
    parser.add_argument("--max-patterns", type=int, default=2048)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="CI harness check: 256 patterns, thread "
                             "backend only — verifies the matrix runs and "
                             "stays bit-identical without recording "
                             "meaningful timings")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="enable telemetry and write a Chrome trace of "
                             "the measured runs")
    parser.add_argument("--remote-workers", type=int, default=0, metavar="N",
                        help="launch N localhost worker agents and add the "
                             "remote backend to the executor axis "
                             "(docs/DISTRIBUTED.md)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress text")
    args = parser.parse_args(argv)

    if args.trace_out:
        telemetry.enable()
    if args.smoke:
        args.max_patterns = 256
        args.executors = "thread"
        # Keep the synthetic scenario's sampled universe but cut the
        # pattern override so the smoke run stays fast.
        SCENARIO_SPECS["synth20k_kernel"]["max_patterns"] = 256
    scenario_names = [name.strip() for name in args.scenarios.split(",")
                      if name.strip()]
    unknown = [n for n in scenario_names if n not in scenario_lib.SCENARIOS]
    if unknown:
        parser.error(f"unknown scenario(s): {', '.join(unknown)} "
                     f"(known: {', '.join(scenario_lib.SCENARIOS)})")
    job_levels = sorted({int(level) for level in args.jobs.split(",")})
    executors = [name.strip() for name in args.executors.split(",")
                 if name.strip()]
    kernels = [name.strip() for name in args.kernels.split(",")
               if name.strip()]
    workers: List["subprocess.Popen[str]"] = []
    if args.remote_workers > 0:
        workers = spawn_remote_workers(args.remote_workers)
        if "remote" not in executors:
            executors.append("remote")
    try:
        payload = record(scenario_names, job_levels, executors, kernels,
                         args.max_patterns, args.seed, quiet=args.quiet)
    finally:
        if workers:
            stop_remote_workers(workers)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if args.trace_out:
        manifest = telemetry.RunManifest.collect(config=payload["config"])
        telemetry.export.write_trace(args.trace_out, manifest=manifest)
    if not args.quiet:
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Record engine benchmark numbers as a committed ``BENCH_engine.json``.

``python benchmarks/record.py`` re-measures the engine's standing
scenarios over a ``jobs × executor`` matrix, verifies every cell is
bit-identical to the serial baseline, and rewrites the snapshot at the
repository root.  The file is committed so benchmark history travels with
the code: every entry carries the ``git describe`` of the tree that
produced it, and a reviewer can diff throughput claims the same way they
diff code.

Two standing scenarios bracket the engine's operating range: the c3a2m
multiplier kernel (large fault universe, where process sharding pays)
and the mac4 multiply-accumulate kernel (small, where the process pool's
spawn/pickle tax loses to the thread and serial backends — the reason
:mod:`repro.exec` has more than one backend).  ``jobs=1`` is recorded
once per scenario as the serial baseline; each further job level is
measured under every backend.

Each entry is flat and stable by design::

    {"scenario": "c3a2m_kernel", "jobs": 2, "executor": "process",
     "wall_time": 1.23, "patterns_per_second": 1660.0,
     "n_patterns": 2048, "n_faults": 174, "coverage": 0.994,
     "git": "c4cfedf"}

Absolute numbers are machine-dependent — compare entries recorded on one
machine, or ratios between cells, not snapshots across hosts.  Run with
``REPRO_TELEMETRY=1`` (or pass ``--trace-out``) to also get a Chrome
trace of the measured runs (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Any, Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import telemetry  # noqa: E402
from repro.core.bibs import make_bibs_testable  # noqa: E402
from repro.core.flow import lower_kernel_to_netlist  # noqa: E402
from repro.core.ka85 import make_ka_testable  # noqa: E402
from repro.datapath.compiler import Add, Mul, Var, compile_datapath  # noqa: E402
from repro.datapath.filters import c3a2m  # noqa: E402
from repro.engine import GoldenCache, simulate  # noqa: E402
from repro.exec import ExecutionPolicy, RunConfig  # noqa: E402
from repro.faultsim.patterns import RandomPatternSource  # noqa: E402
from repro.graph.build import build_circuit_graph  # noqa: E402

BENCH_KIND = "bench-engine"
BENCH_VERSION = 2

#: Backends measured at every sharded job level (jobs=1 is always the
#: historical serial loop, recorded once as executor "serial").
EXECUTORS = ("serial", "thread", "process")


def c3a2m_kernel_netlist():
    """The c3a2m multiplier kernel, lowered — the large standing scenario."""
    compiled = c3a2m()
    design = make_ka_testable(build_circuit_graph(compiled.circuit)).design
    kernel = next(
        k for k in design.kernels
        if any(b.startswith("M") for b in k.logic_blocks)
    )
    return lower_kernel_to_netlist(compiled.circuit, kernel)


def mac4_kernel_netlist():
    """A 4-bit multiply-accumulate kernel — the small-kernel scenario.

    Small enough that per-round work is dominated by dispatch overhead:
    the cell where the thread and serial backends should beat the
    process pool.
    """
    compiled = compile_datapath(
        [("o", Add(Mul(Var("a"), Var("b")), Var("c")))], "mac4", width=4
    )
    design = make_bibs_testable(build_circuit_graph(compiled.circuit))
    kernel = next(k for k in design.kernels if k.logic_blocks)
    return lower_kernel_to_netlist(compiled.circuit, kernel)


SCENARIOS = {
    "c3a2m_kernel": c3a2m_kernel_netlist,
    "mac4_kernel": mac4_kernel_netlist,
}


def measure(
    scenario: str,
    netlist,
    jobs: int,
    executor: Optional[str],
    max_patterns: int,
    seed: int,
    cache: Optional[GoldenCache] = None,
) -> Dict[str, Any]:
    """One benchmark entry: run a (scenario, jobs, executor) cell, timed."""
    source = RandomPatternSource(len(netlist.primary_inputs), seed=seed)
    config = RunConfig(
        execution=ExecutionPolicy(executor=executor, jobs=jobs),
        max_patterns=max_patterns,
    )
    start = time.perf_counter()
    result = simulate(netlist, None, source, config=config, cache=cache)
    wall = time.perf_counter() - start
    return {
        "scenario": scenario,
        "jobs": jobs,
        "executor": result.executor,
        "wall_time": wall,
        "patterns_per_second": result.n_patterns / wall if wall else None,
        "n_patterns": result.n_patterns,
        "n_faults": result.n_faults,
        "coverage": result.coverage(),
        "git": telemetry.git_describe(cwd=str(REPO_ROOT)),
        "_result": result,  # stripped before writing; used for equivalence
    }


def record(
    job_levels: List[int],
    executors: List[str],
    max_patterns: int,
    seed: int,
) -> Dict[str, Any]:
    """Measure every scenario over the jobs × executor matrix.

    Every cell's result is checked bit-identical to the scenario's serial
    baseline before anything is written — a snapshot of a broken engine
    must be impossible to record.
    """
    entries: List[Dict[str, Any]] = []
    for scenario, build in sorted(SCENARIOS.items()):
        netlist = build()
        cache = GoldenCache()
        baseline = None
        cells = [(jobs, executor)
                 for jobs in job_levels
                 for executor in (executors if jobs > 1 else [None])]
        for jobs, executor in cells:
            entry = measure(
                scenario, netlist, jobs, executor, max_patterns, seed,
                cache=cache,
            )
            result = entry.pop("_result")
            if baseline is None:
                baseline = result
            elif (result.first_detection != baseline.first_detection
                  or result.n_patterns != baseline.n_patterns):
                raise AssertionError(
                    f"{scenario}: jobs={jobs} executor={executor} diverged "
                    "from the baseline — refusing to record a broken engine"
                )
            entries.append(entry)
    return {
        "kind": BENCH_KIND,
        "version": BENCH_VERSION,
        "git": telemetry.git_describe(cwd=str(REPO_ROOT)),
        "recorded": time.time(),
        "config": {
            "max_patterns": max_patterns,
            "seed": seed,
            "job_levels": job_levels,
            "executors": list(executors),
        },
        "entries": entries,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks/record.py",
        description="record engine benchmark numbers as BENCH_engine.json",
    )
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_engine.json"),
                        help="snapshot path (default: repo root)")
    parser.add_argument("--jobs", default="1,2",
                        help="comma-separated job levels (default: 1,2)")
    parser.add_argument("--executors", default=",".join(EXECUTORS),
                        help="comma-separated backends measured at each "
                             "sharded job level (default: all)")
    parser.add_argument("--max-patterns", type=int, default=2048)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="enable telemetry and write a Chrome trace of "
                             "the measured runs")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress text")
    args = parser.parse_args(argv)

    if args.trace_out:
        telemetry.enable()
    job_levels = sorted({int(level) for level in args.jobs.split(",")})
    executors = [name.strip() for name in args.executors.split(",")
                 if name.strip()]
    payload = record(job_levels, executors, args.max_patterns, args.seed)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if args.trace_out:
        manifest = telemetry.RunManifest.collect(config=payload["config"])
        telemetry.export.write_trace(args.trace_out, manifest=manifest)
    if not args.quiet:
        for entry in payload["entries"]:
            pps = entry["patterns_per_second"]
            rate = f" ({pps:,.0f} patterns/s)" if pps else ""
            print(f"{entry['scenario']} jobs={entry['jobs']} "
                  f"executor={entry['executor']}: "
                  f"{entry['wall_time']:.3f}s{rate}")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Record engine benchmark numbers as a committed ``BENCH_engine.json``.

``python benchmarks/record.py`` re-measures the engine's standing
scenarios (currently the c3a2m multiplier kernel, serial and sharded),
verifies the runs are bit-identical, and rewrites the snapshot at the
repository root.  The file is committed so benchmark history travels with
the code: every entry carries the ``git describe`` of the tree that
produced it, and a reviewer can diff throughput claims the same way they
diff code.

Each entry is flat and stable by design::

    {"scenario": "c3a2m_kernel", "jobs": 2, "wall_time": 1.23,
     "patterns_per_second": 1660.0, "n_patterns": 2048,
     "n_faults": 174, "coverage": 0.994, "git": "c4cfedf"}

Absolute numbers are machine-dependent — compare entries recorded on one
machine, or the serial/sharded ratio, not snapshots across hosts.  Run
with ``REPRO_TELEMETRY=1`` (or pass ``--trace-out``) to also get a Chrome
trace of the measured runs (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Any, Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import telemetry  # noqa: E402
from repro.core.flow import lower_kernel_to_netlist  # noqa: E402
from repro.core.ka85 import make_ka_testable  # noqa: E402
from repro.datapath.filters import c3a2m  # noqa: E402
from repro.engine import GoldenCache, simulate  # noqa: E402
from repro.faultsim.patterns import RandomPatternSource  # noqa: E402
from repro.graph.build import build_circuit_graph  # noqa: E402

BENCH_KIND = "bench-engine"
BENCH_VERSION = 1


def c3a2m_kernel_netlist():
    """The c3a2m multiplier kernel, lowered — the standing scenario."""
    compiled = c3a2m()
    design = make_ka_testable(build_circuit_graph(compiled.circuit)).design
    kernel = next(
        k for k in design.kernels
        if any(b.startswith("M") for b in k.logic_blocks)
    )
    return lower_kernel_to_netlist(compiled.circuit, kernel)


SCENARIOS = {
    "c3a2m_kernel": c3a2m_kernel_netlist,
}


def measure(
    scenario: str,
    netlist,
    jobs: int,
    max_patterns: int,
    seed: int,
    cache: Optional[GoldenCache] = None,
) -> Dict[str, Any]:
    """One benchmark entry: run the scenario at a job level and time it."""
    source = RandomPatternSource(len(netlist.primary_inputs), seed=seed)
    start = time.perf_counter()
    result = simulate(
        netlist, None, source,
        max_patterns=max_patterns, jobs=jobs, cache=cache,
    )
    wall = time.perf_counter() - start
    return {
        "scenario": scenario,
        "jobs": jobs,
        "wall_time": wall,
        "patterns_per_second": result.n_patterns / wall if wall else None,
        "n_patterns": result.n_patterns,
        "n_faults": result.n_faults,
        "coverage": result.coverage(),
        "git": telemetry.git_describe(cwd=str(REPO_ROOT)),
        "_result": result,  # stripped before writing; used for equivalence
    }


def record(
    job_levels: List[int],
    max_patterns: int,
    seed: int,
) -> Dict[str, Any]:
    """Measure every scenario at every job level; assert bit-identity."""
    entries: List[Dict[str, Any]] = []
    for scenario, build in sorted(SCENARIOS.items()):
        netlist = build()
        cache = GoldenCache()
        baseline = None
        for jobs in job_levels:
            entry = measure(
                scenario, netlist, jobs, max_patterns, seed, cache=cache
            )
            result = entry.pop("_result")
            if baseline is None:
                baseline = result
            elif (result.first_detection != baseline.first_detection
                  or result.n_patterns != baseline.n_patterns):
                raise AssertionError(
                    f"{scenario}: jobs={jobs} diverged from serial — "
                    "refusing to record a broken engine"
                )
            entries.append(entry)
    return {
        "kind": BENCH_KIND,
        "version": BENCH_VERSION,
        "git": telemetry.git_describe(cwd=str(REPO_ROOT)),
        "recorded": time.time(),
        "config": {
            "max_patterns": max_patterns,
            "seed": seed,
            "job_levels": job_levels,
        },
        "entries": entries,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks/record.py",
        description="record engine benchmark numbers as BENCH_engine.json",
    )
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_engine.json"),
                        help="snapshot path (default: repo root)")
    parser.add_argument("--jobs", default="1,2",
                        help="comma-separated job levels (default: 1,2)")
    parser.add_argument("--max-patterns", type=int, default=2048)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="enable telemetry and write a Chrome trace of "
                             "the measured runs")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress text")
    args = parser.parse_args(argv)

    if args.trace_out:
        telemetry.enable()
    job_levels = sorted({int(level) for level in args.jobs.split(",")})
    payload = record(job_levels, args.max_patterns, args.seed)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if args.trace_out:
        manifest = telemetry.RunManifest.collect(config=payload["config"])
        telemetry.export.write_trace(args.trace_out, manifest=manifest)
    if not args.quiet:
        for entry in payload["entries"]:
            pps = entry["patterns_per_second"]
            rate = f" ({pps:,.0f} patterns/s)" if pps else ""
            print(f"{entry['scenario']} jobs={entry['jobs']}: "
                  f"{entry['wall_time']:.3f}s{rate}")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

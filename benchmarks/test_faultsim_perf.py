"""Ablation A2: fault-simulator throughput and design choices.

Benchmarks the packed event-driven engine on the c5a2m multiplier kernel
and checks two design claims: wider packing batches raise throughput, and
fault dropping pays off massively on random-resistant tails.
"""

import time

import pytest

from repro.core.flow import lower_kernel_to_netlist
from repro.core.ka85 import make_ka_testable
from repro.datapath.filters import c5a2m
from repro.experiments.render import render_table
from repro.faultsim.patterns import RandomPatternSource
from repro.faultsim.simulator import FaultSimulator
from repro.graph.build import build_circuit_graph


@pytest.fixture(scope="module")
def multiplier_netlist():
    compiled = c5a2m()
    design = make_ka_testable(build_circuit_graph(compiled.circuit)).design
    kernel = next(
        k for k in design.kernels
        if any(b.startswith("M") for b in k.logic_blocks)
    )
    return lower_kernel_to_netlist(compiled.circuit, kernel)


def test_fault_sim_throughput(benchmark, multiplier_netlist):
    """Timed: one full run to 100% coverage on the 8x8 multiplier kernel."""
    def run():
        simulator = FaultSimulator(multiplier_netlist, batch_width=256)
        source = RandomPatternSource(16, seed=3)
        return simulator.run(source, max_patterns=1 << 14)

    result = benchmark(run)
    assert result.coverage() > 0.999


def test_batch_width_scaling(benchmark, multiplier_netlist, report):
    """With fault dropping disabled the per-batch overheads dominate and
    wider packing wins clearly (the ablation isolates the packing gain)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    timings = {}
    for width in (4, 16, 64, 256):
        simulator = FaultSimulator(multiplier_netlist, batch_width=width)
        source = RandomPatternSource(16, seed=3)
        start = time.perf_counter()
        result = simulator.run(
            source, max_patterns=1024,
            stop_when_complete=False, drop_detected=False,
        )
        elapsed = time.perf_counter() - start
        timings[width] = elapsed
        rows.append((width, f"{elapsed:.3f}s", f"{result.coverage():.4f}"))
    report(
        "ablation_batch_width.txt",
        render_table(
            ["batch width", "time (1024 patterns, no dropping)", "coverage"],
            rows,
            title="Ablation: packing batch width",
        ),
    )
    # Wide batches must beat narrow packing decisively.
    assert timings[256] < timings[4] / 2


def test_fault_dropping_effect(benchmark, multiplier_netlist, report):
    """Dropping detected faults shrinks later batches' work."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    simulator = FaultSimulator(multiplier_netlist, batch_width=256)

    start = time.perf_counter()
    dropped = simulator.run(
        RandomPatternSource(16, seed=3), max_patterns=2048,
        stop_when_complete=False,
    )
    dropped_time = time.perf_counter() - start

    start = time.perf_counter()
    kept = simulator.run(
        RandomPatternSource(16, seed=3), max_patterns=2048,
        stop_when_complete=False, drop_detected=False,
    )
    no_drop_time = time.perf_counter() - start

    report(
        "ablation_fault_dropping.txt",
        render_table(
            ["mode", "time (2048 patterns)"],
            [
                ("with dropping", f"{dropped_time:.3f}s"),
                ("without dropping", f"{no_drop_time:.3f}s"),
            ],
            title="Ablation: fault dropping",
        ),
    )
    # Identical detections either way, but dropping is much faster.
    assert dict(dropped.first_detection) == dict(kept.first_detection)
    assert dropped_time < no_drop_time

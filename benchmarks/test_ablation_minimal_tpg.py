"""Ablation A6: the open problem — provably minimal TPGs vs the paper's
constructive procedures.

Sweeps randomized multi-cone kernels and compares three TPG sizings:
MC_TPG in the given register order, MC_TPG over all register permutations
(the paper's Section 4.3 search), and the offset-search optimum built on
the stream-position window condition (the paper's stated-but-open minimal
procedure).  The permutation search turns out to be near-optimal: the free
offset assignment only rarely finds a strictly smaller LFSR.
"""

import random

from repro.experiments.render import render_table
from repro.tpg.design import Cone, InputRegister, KernelSpec
from repro.tpg.mc_tpg import mc_tpg
from repro.tpg.minimal import minimal_tpg
from repro.tpg.pseudo_exhaustive import best_register_order
from repro.tpg.verify import verify_design


def _random_kernel(rng):
    n = rng.randrange(2, 4)
    registers = tuple(
        InputRegister(f"R{i}", rng.randrange(1, 3)) for i in range(n)
    )
    cones = []
    for c in range(rng.randrange(1, 4)):
        names = [r.name for r in registers]
        rng.shuffle(names)
        members = names[: rng.randrange(1, n + 1)]
        cones.append(Cone(f"O{c}", {m: rng.randrange(0, 3) for m in members}))
    return KernelSpec(registers, tuple(cones))


def _sweep(trials=60, seed=4):
    rng = random.Random(seed)
    stats = {
        "trials": 0,
        "perm_improves_on_given_order": 0,
        "minimal_beats_permutation": 0,
        "total_stage_saving": 0,
    }
    for _ in range(trials):
        kernel = _random_kernel(rng)
        given_order = mc_tpg(kernel).lfsr_stages
        permuted = best_register_order(kernel).lfsr_stages
        optimum = minimal_tpg(kernel)
        assert optimum.lfsr_stages <= permuted <= given_order
        if optimum.lfsr_stages <= 11:
            assert all(v.exhaustive for v in verify_design(optimum))
        stats["trials"] += 1
        if permuted < given_order:
            stats["perm_improves_on_given_order"] += 1
        if optimum.lfsr_stages < permuted:
            stats["minimal_beats_permutation"] += 1
            stats["total_stage_saving"] += permuted - optimum.lfsr_stages
    return stats


def test_minimal_tpg_sweep(benchmark, report):
    stats = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    assert stats["trials"] == 60
    # Permutation helps often; the free-offset optimum helps occasionally.
    assert stats["perm_improves_on_given_order"] >= 2
    report(
        "ablation_minimal_tpg.txt",
        render_table(
            ["metric", "count"],
            sorted(stats.items()),
            title="Ablation: constructive vs provably minimal TPGs",
        ),
    )

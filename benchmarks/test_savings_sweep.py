"""Ablation A9: BIBS hardware savings beyond the paper's three circuits.

The paper's headline claim — BIBS converts far fewer registers and adds
far less delay than KA-85 — evaluated over a sweep of randomly synthesized
balanced datapaths (the population its three filters were drawn from).
Structural metrics only, so the sweep is wide and fast.
"""

from repro.core.bibs import make_bibs_testable
from repro.core.ka85 import make_ka_testable
from repro.experiments.render import render_table
from repro.graph.build import build_circuit_graph
from repro.library.synth import random_datapath


def _sweep(n_circuits=20):
    rows = []
    totals = {"bibs_regs": 0, "ka_regs": 0, "bibs_delay": 0, "ka_delay": 0}
    for seed in range(n_circuits):
        compiled = random_datapath(seed, width=8, max_depth=3, n_outputs=2)
        graph = build_circuit_graph(compiled.circuit)
        bibs = make_bibs_testable(graph)
        ka = make_ka_testable(graph).design
        assert set(bibs.bilbo_registers) <= set(ka.bilbo_registers)
        rows.append((
            compiled.circuit.name,
            len(compiled.circuit.blocks),
            len(compiled.circuit.registers),
            bibs.n_bilbo_registers,
            ka.n_bilbo_registers,
            bibs.maximal_delay(),
            ka.maximal_delay(),
        ))
        totals["bibs_regs"] += bibs.n_bilbo_registers
        totals["ka_regs"] += ka.n_bilbo_registers
        totals["bibs_delay"] += bibs.maximal_delay()
        totals["ka_delay"] += ka.maximal_delay()
    return rows, totals


def test_savings_sweep(benchmark, report):
    rows, totals = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = [
        (name, blocks, registers, b_regs, k_regs, b_delay, k_delay)
        for name, blocks, registers, b_regs, k_regs, b_delay, k_delay in rows
    ]
    register_saving = 1 - totals["bibs_regs"] / totals["ka_regs"]
    delay_saving = 1 - totals["bibs_delay"] / totals["ka_delay"]
    table.append((
        "TOTAL", "", "", totals["bibs_regs"], totals["ka_regs"],
        totals["bibs_delay"], totals["ka_delay"],
    ))
    report(
        "savings_sweep.txt",
        render_table(
            ["circuit", "blocks", "regs", "BIBS regs", "KA regs",
             "BIBS delay", "KA delay"],
            table,
            title=(
                f"BIBS vs KA-85 over 20 random datapaths: "
                f"{100 * register_saving:.0f}% fewer BILBO registers, "
                f"{100 * delay_saving:.0f}% less delay"
            ),
        ),
    )
    # The paper's claim must hold in aggregate and per circuit.
    for _, _, _, b_regs, k_regs, b_delay, k_delay in rows:
        assert b_regs <= k_regs
        assert b_delay <= k_delay
    assert register_saving > 0.15
    assert delay_saving > 0.25
    # BIBS delay on a balanced datapath is always exactly 2 (PI + PO).
    assert all(row[5] == 2 for row in rows)

"""Ablation A7: CSTP vs the BIBS TPG (the paper's Section 4 contrast).

Paper: "This scheme can be contrasted with the circular self-test path
(CSTP) TDM ... It is estimated that to apply an exhaustive test set
requires about T * 2^M test patterns, where T varies from 4 to 8.  Since
kernels need not be balanced, they may not be tested functionally
exhaustively."

Measured here cycle-accurately: the CSTP ring needs several times 2^M
cycles to apply every kernel-input pattern, while the SC_TPG/MC_TPG design
is functionally exhaustive in exactly 2^M - 1 (+d) by Theorem 5.
"""

from repro.bist.session import BISTSession
from repro.core.bibs import make_bibs_testable
from repro.datapath.compiler import Add, Mul, Var, compile_datapath
from repro.experiments.render import render_table
from repro.graph.build import build_circuit_graph
from repro.tpg.cstp import CSTPSession
from repro.tpg.verify import verify_design


def _setup():
    a, b = Var("a"), Var("b")
    compiled = compile_datapath([("o", Add(Mul(a, b), a))], "mac3", width=3)
    return compiled.circuit


def test_cstp_t_factor(benchmark, report):
    circuit = benchmark.pedantic(_setup, rounds=1, iterations=1)
    session = CSTPSession(circuit)
    space = 1 << 6  # the kernel input width M = 6
    coverage = session.input_pattern_coverage(
        ["R_a", "R_b"],
        max_cycles=16 * space,
        checkpoints=[space * k for k in (1, 2, 4, 8)],
    )
    exhausted = [c for c, frac in coverage.items() if frac == 1.0]
    assert exhausted, "CSTP never covered the kernel input space"
    t_factor = min(exhausted) / space

    # The BIBS side of the contrast.
    design = make_bibs_testable(build_circuit_graph(circuit))
    bist = BISTSession(circuit, design.kernels[0])
    assert all(v.exhaustive for v in verify_design(bist.tpg))

    rows = [
        (f"{cycles} ({cycles / space:.1f} x 2^M)", f"{frac:.3f}")
        for cycles, frac in sorted(coverage.items())
    ]
    rows.append(("CSTP exhaustive at", f"T = {t_factor:.1f} x 2^M"))
    rows.append(("BIBS TPG exhaustive at", "1.0 x 2^M - 1  (Theorem 5)"))
    report(
        "cstp_contrast.txt",
        render_table(
            ["cycles", "kernel-input coverage"],
            rows,
            title="CSTP vs BIBS TPG: applying all 2^M kernel input patterns",
        ),
    )
    # The paper's T in [4, 8]; grant slack for the small example ring.
    assert 1.5 < t_factor <= 10


def test_cstp_fault_coverage_vs_bist(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    circuit = _setup()
    design = make_bibs_testable(build_circuit_graph(circuit))
    bist = BISTSession(circuit, design.kernels[0])
    faults = bist.kernel_fault_universe()
    cstp = CSTPSession(circuit)

    budget = bist.recommended_cycles()
    bist_result = bist.run(budget, faults=faults)
    cstp_result = cstp.run(budget, faults=faults)
    report(
        "cstp_fault_coverage.txt",
        render_table(
            ["scheme", "cycles", "signature coverage"],
            [
                ("BIBS session (MC_TPG + MISR)", budget,
                 f"{bist_result.coverage:.3f}"),
                ("CSTP ring", budget, f"{cstp_result.coverage:.3f}"),
            ],
            title="Equal-budget fault coverage, kernel fault cone",
        ),
    )
    # The 3-bit BILBO MISR aliases noticeably; CSTP's signature is the
    # whole 12-cell ring, so it aliases almost never.  That width
    # difference, not pattern quality, dominates this tiny example — the
    # pattern-application contrast is the T-factor bench above.
    assert bist_result.coverage > 0.75
    assert cstp_result.coverage > 0.9

"""Ablation A8: COP-predicted vs fault-simulated random test length.

The analytic counterpart of Table 2 rows 5-7: COP testability measures
predict each fault's detection probability, hence the random-pattern count
to a coverage target.  The bench compares prediction and measurement on
the paper's adder and multiplier kernels — COP is exact on fanout-free
logic and degrades gracefully under the multiplier's reconvergence.
"""

from repro.core.flow import lower_kernel_to_netlist
from repro.core.ka85 import make_ka_testable
from repro.datapath.filters import c5a2m
from repro.experiments.render import render_table
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.cop import (
    estimate_detection_probabilities,
    predicted_patterns_for_coverage,
)
from repro.faultsim.patterns import RandomPatternSource
from repro.faultsim.simulator import FaultSimulator
from repro.graph.build import build_circuit_graph


def _kernels():
    compiled = c5a2m()
    design = make_ka_testable(build_circuit_graph(compiled.circuit)).design
    picks = {}
    for kernel in design.kernels:
        if kernel.logic_blocks == ["A1"]:
            picks["adder"] = lower_kernel_to_netlist(compiled.circuit, kernel)
        if kernel.logic_blocks == ["M1"]:
            picks["multiplier"] = lower_kernel_to_netlist(compiled.circuit, kernel)
    return picks


def _compare(target=0.95):
    rows = []
    for name, netlist in _kernels().items():
        faults, _ = collapse_faults(netlist)
        estimates = estimate_detection_probabilities(netlist, faults)
        predicted = predicted_patterns_for_coverage(estimates, target)
        simulator = FaultSimulator(netlist)
        result = simulator.run(RandomPatternSource(16, seed=17), 1 << 15)
        measured = result.patterns_for_coverage(target)
        rows.append((name, len(faults), predicted, measured))
    return rows


def test_cop_prediction(benchmark, report):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)
    table = []
    for name, n_faults, predicted, measured in rows:
        assert predicted is not None and measured is not None, name
        ratio = predicted / measured
        table.append((name, n_faults, predicted, measured, f"{ratio:.2f}"))
        # Within an order of magnitude — COP's classic accuracy band.
        assert 0.1 < ratio < 10, (name, predicted, measured)
    report(
        "cop_prediction.txt",
        render_table(
            ["kernel", "faults", "COP predicted @95%", "measured @95%", "ratio"],
            table,
            title="COP prediction vs fault simulation (c5a2m kernels)",
        ),
    )

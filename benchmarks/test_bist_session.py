"""Ablation A4: full gate-level BIST session and MISR aliasing.

Runs the complete self-test machinery (TPG drives the kernel's input
registers, internal registers clock normally, MISRs compress the SA
inputs) on a 3-bit multiply-accumulate kernel, and quantifies signature
aliasing — including the engineering finding that a MISR sharing the TPG's
default feedback polynomial aliases catastrophically over near-period
windows, which is why :class:`BISTSession` decouples the polynomials.
"""

import pytest

from repro.bilbo.misr import MISR
from repro.bist.session import BISTSession
from repro.core.bibs import make_bibs_testable
from repro.datapath.compiler import Add, Mul, Var, compile_datapath
from repro.experiments.render import render_table
from repro.graph.build import build_circuit_graph
from repro.tpg.polynomials import primitive_polynomial


@pytest.fixture(scope="module")
def session_setup():
    """A 4-bit multiply-accumulate kernel (M=12, period 4095): wide enough
    for the alignment phenomenon to be unambiguous, small enough to run."""
    a, b, c = Var("a"), Var("b"), Var("c")
    compiled = compile_datapath([("o", Add(Mul(a, b), c))], "mac4", width=4)
    circuit = compiled.circuit
    design = make_bibs_testable(build_circuit_graph(circuit))
    session = BISTSession(circuit, design.kernels[0])
    return circuit, session


def test_period_alignment_aliasing(benchmark, session_setup, report):
    """Signature windows aligned to the TPG period cancel linearly-coupled
    error streams; half-period misalignment restores near-ideal aliasing."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    circuit, session = session_setup
    faults = session.kernel_fault_universe()
    period = (1 << session.tpg.lfsr_stages) - 1
    faults = faults[::2]  # sample for speed; deterministic
    rows = []
    rates = {}
    for factor, cycles in (
        (1.0, period + 1),
        (1.5, period + period // 2),
    ):
        aliased, observable = session.aliasing_study(cycles, faults)
        rate = aliased / observable
        rates[factor] = rate
        rows.append((f"{factor:.1f} periods", cycles, aliased, observable, f"{rate:.3f}"))
    report(
        "bist_window_alignment.txt",
        render_table(
            ["window", "cycles", "aliased", "observable", "rate"],
            rows,
            title="MISR aliasing vs signature-window alignment",
        ),
    )
    assert rates[1.5] < rates[1.0] / 2


def test_session_coverage(benchmark, session_setup, report):
    circuit, session = session_setup
    faults = session.kernel_fault_universe()
    cycles = session.recommended_cycles()

    result = benchmark.pedantic(
        lambda: session.run(cycles, faults=faults), rounds=1, iterations=1
    )
    aliased, observable = session.aliasing_study(cycles, faults)
    assert result.coverage > 0.85
    assert observable >= len(result.detected)
    report(
        "bist_session.txt",
        render_table(
            ["metric", "value"],
            [
                ("kernel faults", len(faults)),
                ("session cycles", cycles),
                ("signature-detected", len(result.detected)),
                ("signature coverage", f"{result.coverage:.3f}"),
                ("per-cycle observable", observable),
                ("MISR-aliased", aliased),
                ("aliasing rate", f"{aliased / observable:.3f}"),
            ],
            title="Gate-level BIST session (4-bit MAC kernel)",
        ),
    )


def test_misr_polynomial_decoupling(benchmark, report):
    """Same session, two MISR polynomials: the shared default polynomial
    aliases several times more often than the decoupled (reciprocal) one
    over a near-period window.  (3-bit kernel: the effect is polynomial-
    pair specific and strongest at small widths.)"""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    a, b = Var("a"), Var("b")
    compiled = compile_datapath([("o", Add(Mul(a, b), a))], "tiny3", width=3)
    circuit = compiled.circuit
    design = make_bibs_testable(build_circuit_graph(circuit))
    session = BISTSession(circuit, design.kernels[0])
    faults = session.kernel_fault_universe()
    cycles = (1 << session.tpg.lfsr_stages) - 1 + 1  # near-period window

    rates = {}
    for label, polynomial in (
        ("shared table polynomial", primitive_polynomial(3)),
        ("decoupled (session default)", None),
    ):
        if polynomial is not None:
            for name in session._misrs:
                session._misrs[name] = MISR(3, polynomial)  # 3-bit SA register
        else:
            # restore the decoupled defaults
            from repro.tpg.polynomials import alternate_primitive_polynomial

            for name, width in session.kernel.sa_registers.items():
                session._misrs[name] = MISR(
                    width,
                    alternate_primitive_polynomial(
                        width, primitive_polynomial(width)
                    ),
                )
        aliased, observable = session.aliasing_study(cycles, faults)
        rates[label] = aliased / observable

    report(
        "bist_misr_aliasing.txt",
        render_table(
            ["MISR polynomial", "aliasing rate"],
            [(k, f"{v:.3f}") for k, v in rates.items()],
            title=f"MISR aliasing over a near-period window ({cycles} cycles)",
        ),
    )
    assert rates["decoupled (session default)"] < 0.2
    assert rates["shared table polynomial"] > 2 * rates["decoupled (session default)"]

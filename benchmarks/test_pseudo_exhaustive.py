"""Figure 21 / Examples 7-8: functionally pseudo-exhaustive testing.

Paper numbers asserted exactly: the given register order needs a 16-stage
LFSR; the (R1, R3, R2) permutation reaches the 2^8 lower bound; the
McCluskey minimal-test-signal extension needs 3 signals -> 12 stages and is
therefore beaten by MC_TPG + permutation (2^12 vs 2^8 test time).
"""

import json

from repro.experiments.figures import pseudo_exhaustive_report


def test_pseudo_exhaustive(benchmark, report):
    data = benchmark.pedantic(pseudo_exhaustive_report, rounds=1, iterations=1)
    assert data["dependency_matrix"] == [[1, 1, 0], [1, 0, 1], [0, 1, 1]]
    assert data["default_order_stages"] == 16
    assert data["best_order"] == ["R1", "R3", "R2"]
    assert data["best_order_stages"] == 8
    assert data["lower_bound"] == 8
    assert data["optimal"]
    assert data["mccluskey_signals"] == 3
    assert data["mccluskey_stages"] == 12
    # The paper's punchline: 2^8 beats 2^12 by a factor of 16.
    speedup = 2 ** data["mccluskey_stages"] / 2 ** data["best_order_stages"]
    assert speedup == 16
    report("pseudo_exhaustive.txt", json.dumps(data, indent=2))

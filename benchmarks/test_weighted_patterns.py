"""Ablation A12: weighted random patterns for random-resistant logic.

A BIST refinement in the spirit of the paper's reference [18]: COP-derived
multi-distribution weighted patterns versus fair coins on (a) the classic
random-resistant wide-AND circuit and (b) the paper's multiplier kernel
(XOR-balanced, where weighting correctly does nothing).
"""

from repro.core.flow import lower_kernel_to_netlist
from repro.core.ka85 import make_ka_testable
from repro.datapath.filters import c5a2m
from repro.experiments.render import render_table
from repro.faultsim.patterns import RandomPatternSource
from repro.faultsim.simulator import FaultSimulator
from repro.faultsim.weighted import MultiWeightedPatternSource, cop_weight_sets
from repro.graph.build import build_circuit_graph
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist


def _wide_and(width=12):
    netlist = Netlist("wide_and")
    inputs = netlist.new_inputs(width, prefix="i")
    netlist.mark_output(netlist.add_gate(GateType.AND, inputs, name="y"))
    netlist.mark_output(netlist.add_gate(GateType.OR, inputs, name="z"))
    return netlist


def _multiplier():
    compiled = c5a2m()
    design = make_ka_testable(build_circuit_graph(compiled.circuit)).design
    kernel = next(k for k in design.kernels if k.logic_blocks == ["M1"])
    return lower_kernel_to_netlist(compiled.circuit, kernel)


def _median_patterns(netlist, source_factory, target):
    simulator = FaultSimulator(netlist)
    counts = []
    for seed in (3, 11, 29):
        result = simulator.run(source_factory(seed), 1 << 17)
        count = result.patterns_for_coverage(target)
        assert count is not None
        counts.append(count)
    return sorted(counts)[1]


def _measure():
    rows = []
    for label, netlist, target in (
        ("wide-AND (random-resistant)", _wide_and(), 1.0),
        ("c5a2m multiplier (XOR-balanced)", _multiplier(), 0.995),
    ):
        sets = cop_weight_sets(netlist, n_sets=2)
        n = len(netlist.primary_inputs)
        uniform = _median_patterns(
            netlist, lambda s: RandomPatternSource(n, seed=s), target
        )
        weighted = _median_patterns(
            netlist, lambda s: MultiWeightedPatternSource(sets, seed=s), target
        )
        rows.append((label, uniform, weighted, uniform / weighted))
    return rows


def test_weighted_patterns(benchmark, report):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = [
        (label, uniform, weighted, f"{speedup:.2f}x")
        for label, uniform, weighted, speedup in rows
    ]
    report(
        "weighted_patterns.txt",
        render_table(
            ["circuit", "uniform patterns", "weighted patterns", "speedup"],
            table,
            title="Weighted vs uniform random patterns (median of 3 seeds)",
        ),
    )
    by_label = {label: speedup for label, _, _, speedup in rows}
    assert by_label["wide-AND (random-resistant)"] > 2.0
    # On the balanced multiplier weighting neither helps nor hurts much.
    assert 0.4 < by_label["c5a2m multiplier (XOR-balanced)"] < 2.5

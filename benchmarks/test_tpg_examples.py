"""Figures 10-20 / Examples 2-6: the SC_TPG / MC_TPG designs.

Every number the paper states is asserted exactly:

* Example 2 (Fig 13): 12-stage LFSR (the paper's x^12+x^7+x^4+x^3+1),
  2 extra D-FFs, ~7.2% area over a 12-bit BILBO, test time 2^12-1+2;
* Example 3 (Fig 15): R1.4/R2.1 share stage L4, R3 sits at L10-L13;
* Example 4 (Fig 16): displacement -5 on 4-bit registers -> 3 shared stages;
* Example 5 (Fig 17): 9-stage LFSR although the widest cone is 8;
* Example 6 (Figs 19/20): 11-stage LFSR; the reconfigurable TPG tests the
  two cones in ~2 x 2^8 cycles, >3x faster than 2^11.
"""

import json

import pytest

from repro.experiments.figures import tpg_examples_report
from repro.library.kernels import (
    example2_kernel,
    example3_kernel,
    example4_kernel,
    example5_kernel,
    example6_kernel,
)
from repro.tpg.mc_tpg import mc_tpg
from repro.tpg.polynomials import PAPER_POLY_12
from repro.tpg.sc_tpg import sc_tpg


@pytest.fixture(scope="module")
def rows():
    return {r["example"]: r for r in tpg_examples_report()}


def test_tpg_examples_bench(benchmark, rows, report):
    benchmark.pedantic(tpg_examples_report, rounds=1, iterations=1)
    report(
        "tpg_examples.txt",
        json.dumps(list(rows.values()), indent=2, default=str),
    )


def test_example2_numbers(benchmark, rows):
    benchmark.pedantic(lambda: sc_tpg(example2_kernel(), polynomial=PAPER_POLY_12), rounds=3, iterations=1)
    row = rows[2]
    assert row["lfsr_stages"] == 12
    assert row["extra_ffs"] == 2
    assert row["test_time"] == (1 << 12) - 1 + 2
    assert row["area_fraction"] == pytest.approx(0.072, abs=1e-6)


def test_example3_numbers(benchmark, rows):
    benchmark.pedantic(lambda: sc_tpg(example3_kernel(), polynomial=PAPER_POLY_12), rounds=3, iterations=1)
    row = rows[3]
    assert row["lfsr_stages"] == 12
    assert row["r1_span"] == (1, 4)
    assert row["r2_span"] == (4, 7)   # shares L4 with R1
    assert row["r3_span"] == (10, 13)
    assert row["max_label"] == 13     # L13 is an SR stage beyond the LFSR


def test_example4_numbers(benchmark, rows):
    benchmark.pedantic(lambda: sc_tpg(example4_kernel()), rounds=3, iterations=1)
    row = rows[4]
    assert row["lfsr_stages"] == 8
    assert row["shared_stages"] == 3


def test_example5_numbers(benchmark, rows):
    benchmark.pedantic(lambda: mc_tpg(example5_kernel()), rounds=3, iterations=1)
    row = rows[5]
    assert row["lfsr_stages"] == 9
    assert row["displacement"] == 2
    spans = dict((c, (p, l)) for c, p, l in row["spans"])
    assert spans["O1"] == (10, 8)
    assert spans["O2"] == (10, 9)


def test_example6_numbers(benchmark, rows):
    benchmark.pedantic(lambda: mc_tpg(example6_kernel()), rounds=3, iterations=1)
    row = rows[6]
    assert row["lfsr_stages"] == 11
    assert row["n_configurations"] == 2
    assert row["monolithic_time"] == (1 << 11) + 1
    assert row["reconfigurable_time"] < row["monolithic_time"] / 3

"""Ablation A1: exact vs greedy BIBS BILBO-register selection.

Both must produce valid balanced-BISTable designs; the exact branch &
bound never converts more registers than greedy removal.
"""

from repro.core.bibs import make_bibs_testable
from repro.datapath.filters import all_filters
from repro.experiments.render import render_table
from repro.graph.build import build_circuit_graph
from repro.library.figures import figure4
from repro.library.ka_example import figure9


def _circuits():
    yield "figure4", build_circuit_graph(figure4())
    yield "figure9", build_circuit_graph(figure9())
    for name, compiled in all_filters().items():
        yield name, build_circuit_graph(compiled.circuit)


def _compare():
    rows = []
    for name, graph in _circuits():
        exact = make_bibs_testable(graph, method="exact")
        greedy = make_bibs_testable(graph, method="greedy")
        assert exact.is_valid() and greedy.is_valid()
        assert exact.n_bilbo_registers <= greedy.n_bilbo_registers
        rows.append(
            (
                name,
                exact.n_bilbo_registers,
                exact.n_bilbo_flipflops,
                greedy.n_bilbo_registers,
                greedy.n_bilbo_flipflops,
            )
        )
    return rows


def test_selection_ablation(benchmark, report):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)
    report(
        "ablation_selection.txt",
        render_table(
            ["circuit", "exact regs", "exact FFs", "greedy regs", "greedy FFs"],
            rows,
            title="Ablation: exact vs greedy BIBS selection",
        ),
    )
    # Greedy matches the optimum on the balanced datapaths and on figure9's
    # cycle, but picks a one-register-larger local optimum on figure4 (it
    # cuts the two parallel R2/R4 registers instead of the narrow R3): the
    # ablation's finding is that greedy is near-optimal but not exact.
    for name, exact_regs, _, greedy_regs, _ in rows:
        if name == "figure4":
            assert greedy_regs == exact_regs + 1, name
        else:
            assert greedy_regs == exact_regs, name

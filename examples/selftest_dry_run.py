#!/usr/bin/env python3
"""End-to-end self-test dry run: the whole BIST machinery, cycle by cycle.

Takes a small multiply-accumulate datapath through everything the paper's
BITS system would produce:

1. BIBS selects the BILBO registers and extracts the kernel;
2. MC_TPG builds the kernel's pattern generator;
3. the test scheduler and controller synthesis produce the session FSM;
4. a gate-level simulation executes the session — TPG driving, internal
   registers clocking, MISRs compressing — against the kernel's collapsed
   fault universe, reporting signature-based coverage and MISR aliasing.

Run:  python examples/selftest_dry_run.py
"""

from repro.bist.session import BISTSession
from repro.bits.controller import BISTController
from repro.bits.design_space import explore_design_space
from repro.core.bibs import make_bibs_testable
from repro.core.schedule import ScheduledKernel, schedule_kernels
from repro.datapath.compiler import Add, Mul, Var, compile_datapath
from repro.graph.build import build_circuit_graph


def main() -> None:
    a, b, c = Var("a"), Var("b"), Var("c")
    compiled = compile_datapath(
        [("o", Add(Mul(a, b), c))], "mac4", width=4
    )
    circuit = compiled.circuit
    graph = build_circuit_graph(circuit)

    design = make_bibs_testable(graph)
    kernel = design.kernels[0]
    print(f"BIBS design: BILBO registers {design.bilbo_registers}")
    print(f"kernel: blocks {kernel.logic_blocks}, "
          f"TPG {sorted(kernel.tpg_registers)}, SA {sorted(kernel.sa_registers)}")

    session = BISTSession(circuit, kernel)
    cycles = session.recommended_cycles()
    print(f"TPG: {session.tpg.lfsr_stages}-stage LFSR "
          f"({session.tpg.n_extra_flipflops} extra FFs); "
          f"functionally exhaustive in {session.tpg.test_time()} cycles, "
          f"session runs {cycles} (misaligned window, see BISTSession)")

    # The controller program a silicon implementation would follow.
    schedule = schedule_kernels([ScheduledKernel(kernel, cycles)])
    widths = {e.register: e.weight for e in graph.register_edges()}
    controller = BISTController(
        schedule, {r: widths[r] for r in design.bilbo_registers}
    )
    print("\ncontroller program:")
    print(controller.describe())
    print(f"total self-test cycles (incl. seed/shift): {controller.total_cycles}")

    # Execute the session at gate level against the kernel fault universe.
    faults = session.kernel_fault_universe()
    result = session.run(cycles, faults=faults)
    aliased, observable = session.aliasing_study(cycles, faults)
    print(f"\ngate-level session: {len(faults)} kernel faults")
    print(f"  golden signatures: { {k: hex(v) for k, v in result.golden_signatures.items()} }")
    print(f"  signature-detected: {len(result.detected)} "
          f"({100 * result.coverage:.1f}%)")
    print(f"  per-cycle observable: {observable}, MISR-aliased: {aliased} "
          f"({100 * aliased / max(1, observable):.1f}%)")

    # The wider design-space family BITS would offer the designer.
    front = explore_design_space(graph, max_extra=3, limit=1000)
    print("\ndesign-space Pareto family:")
    for point in front:
        print(f"  {point.n_registers} BILBO regs | area +{point.added_area:.1f} "
              f"| delay {point.maximal_delay} | time ~{point.test_time_proxy} "
              f"| sessions {point.n_sessions}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Functionally pseudo-exhaustive testing (Section 4.3, Examples 7-8).

Shows how register ordering changes the LFSR degree of a multiple-cone
kernel's TPG — and hence the test time — and contrasts MC_TPG plus
permutation search against the McCluskey minimal-test-signal extension the
paper uses as a baseline.

Run:  python examples/pseudo_exhaustive_tour.py
"""

import itertools

from repro.library.kernels import example7_kernel
from repro.tpg.mc_tpg import mc_tpg
from repro.tpg.pseudo_exhaustive import (
    best_register_order,
    dependency_matrix,
    minimal_test_signals,
)
from repro.tpg.verify import verify_design


def main() -> None:
    kernel = example7_kernel()
    print("Example 7 kernel: three 4-bit registers, three cones")
    print("dependency matrix D (cones x registers):")
    for row in dependency_matrix(kernel):
        print("   ", row)

    print("\nLFSR degree per register ordering:")
    names = [r.name for r in kernel.registers]
    for order in itertools.permutations(names):
        design = mc_tpg(kernel.permuted(order))
        marker = "  <- paper's Figure 21(c)" if order == ("R1", "R3", "R2") else ""
        print(f"  {'-'.join(order)}: M = {design.lfsr_stages:>2} "
              f"(test time ~2^{design.lfsr_stages}){marker}")

    search = best_register_order(kernel)
    print(f"\nsearch result: order {'-'.join(search.order)} with "
          f"M = {search.lfsr_stages} "
          f"(lower bound 2^w with w = {search.lower_bound}; "
          f"optimal: {search.optimal}, tried {search.orders_tried} orders)")

    plan = minimal_test_signals(kernel)
    print(f"\nMcCluskey minimal-test-signal extension (Example 8): "
          f"{plan.n_signals} signals -> {plan.lfsr_stages}-stage LFSR")
    print(f"  => ~2^{plan.lfsr_stages} cycles vs ~2^{search.lfsr_stages} "
          "with MC_TPG + permutation: the signal model cannot exploit "
          "sequential-length time shifts.")

    # Certify the winning design at reduced width (Theorem 7 exactness).
    small = mc_tpg(example7_kernel(width=3).permuted(list(search.order)))
    print("\nexhaustiveness check at width 3 per cone:")
    for verdict in verify_design(small):
        status = "OK" if verdict.exhaustive else "FAIL"
        print(f"  {verdict.cone}: {verdict.distinct_patterns}/"
              f"{verdict.expected_patterns} [{status}]")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's Table 2 experiment on one digital filter (c5a2m).

Compares the BIBS methodology against Krasniewski-Albicki [3] on the
5-adder / 2-multiplier filter portion: BILBO register counts, maximal
delay, test sessions, and random-pattern test length for 99.5% / 100%
fault coverage.

Run:  python examples/filter_bist_comparison.py  [--circuit c3a2m|c4a4m]
"""

import argparse

from repro.core.flow import compare_tdms
from repro.datapath.filters import all_filters
from repro.experiments.render import fmt, render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuit", default="c5a2m",
                        choices=("c5a2m", "c3a2m", "c4a4m"))
    parser.add_argument("--max-patterns", type=int, default=1 << 16)
    parser.add_argument("--seeds", type=int, default=3,
                        help="independent pattern streams (median reported)")
    args = parser.parse_args()

    compiled = all_filters()[args.circuit]
    print(f"running both TDMs on {args.circuit} "
          f"({len(compiled.circuit.blocks)} blocks, "
          f"{len(compiled.circuit.registers)} registers)...")
    comparison = compare_tdms(
        compiled.circuit,
        targets=(0.995, 1.0),
        max_patterns=args.max_patterns,
        n_seeds=args.seeds,
    )
    bibs, ka = comparison.bibs, comparison.ka

    rows = [
        ("# of kernels", bibs.n_logic_kernels, ka.n_logic_kernels),
        ("# of test sessions", bibs.n_sessions, ka.n_sessions),
        ("# of BILBO registers",
         bibs.design.n_bilbo_registers, ka.design.n_bilbo_registers),
        ("Maximal delay (time units)",
         bibs.design.maximal_delay(), ka.design.maximal_delay()),
        ("# patterns @ 99.5% FC",
         fmt(bibs.total_patterns(0.995)), fmt(ka.total_patterns(0.995))),
        ("Test time  @ 99.5% FC",
         fmt(bibs.scheduled_time(0.995)), fmt(ka.scheduled_time(0.995))),
        ("# patterns @ 100% FC",
         fmt(bibs.total_patterns(1.0)), fmt(ka.total_patterns(1.0))),
        ("Test time  @ 100% FC",
         fmt(bibs.scheduled_time(1.0)), fmt(ka.scheduled_time(1.0))),
    ]
    print(render_table(["Metric", "BIBS", "[3] (KA-85)"], rows,
                       title=f"{args.circuit}: BIBS vs Krasniewski-Albicki"))

    print("\nPer-kernel detail (KA-85):")
    for evaluation in ka.kernel_evaluations:
        kernel = evaluation.kernel
        label = ",".join(kernel.logic_blocks) or "<register transport>"
        print(f"  {kernel.name:<10} [{label:<12}] "
              f"gates={len(evaluation.netlist.gates):<5} "
              f"faults={evaluation.result.n_faults:<5} "
              f"coverage={100 * evaluation.final_coverage:.2f}%  "
              f"patterns@100%={fmt(evaluation.patterns_at.get(1.0))}")


if __name__ == "__main__":
    main()

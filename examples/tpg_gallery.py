#!/usr/bin/env python3
"""Gallery of the paper's TPG design examples (Section 4, Examples 2-6).

Builds each example's TPG with SC_TPG/MC_TPG, prints the flip-flop string
layout (labels + register cell assignment), and — for reduced register
widths — verifies Theorem 4 by exhaustively replaying the LFSR period.

Run:  python examples/tpg_gallery.py
"""

from repro.bilbo.cost import tpg_extra_area_fraction
from repro.library.kernels import (
    example2_kernel,
    example3_kernel,
    example4_kernel,
    example5_kernel,
    example6_kernel,
)
from repro.tpg.mc_tpg import cone_spans, mc_tpg
from repro.tpg.polynomials import PAPER_POLY_12
from repro.tpg.reconfigurable import build_reconfigurable
from repro.tpg.sc_tpg import sc_tpg
from repro.tpg.verify import verify_design


def show(title: str, design, small_design=None) -> None:
    print(f"\n=== {title}")
    print(f"LFSR stages M = {design.lfsr_stages}, total FFs = "
          f"{design.n_flipflops} ({design.n_extra_flipflops} extra), "
          f"test time = {design.test_time()} cycles")
    print(design.layout())
    check = small_design if small_design is not None else design
    for verdict in verify_design(check):
        status = "OK" if verdict.exhaustive else "FAIL"
        print(f"  cone {verdict.cone}: {verdict.distinct_patterns}/"
              f"{verdict.expected_patterns} patterns [{status}]"
              + ("  (verified at reduced width)" if small_design else ""))


def main() -> None:
    # Example 2 — Figure 13: depths (2,1,0), the paper's degree-12 polynomial.
    design2 = sc_tpg(example2_kernel(), polynomial=PAPER_POLY_12)
    show("Example 2 (Figure 13): 2 extra D-FFs, x^12+x^7+x^4+x^3+1",
         design2, sc_tpg(example2_kernel(width=3)))
    print(f"  extra-FF area over a 12-bit BILBO register: "
          f"{100 * tpg_extra_area_fraction(2, 12):.1f}% (paper: 7.2%)")

    # Example 3 — Figure 15: sharing of L4, separation before R3.
    show("Example 3 (Figure 15): cell sharing + separation",
         sc_tpg(example3_kernel(), polynomial=PAPER_POLY_12),
         sc_tpg(example3_kernel(width=3)))

    # Example 4 — Figure 16: |displacement| exceeds the register width.
    show("Example 4 (Figure 16): displacement -5 on 4-bit registers",
         sc_tpg(example4_kernel()), sc_tpg(example4_kernel(width=3)))

    # Example 5 — Figure 17: multiple cones force a 9-stage LFSR.
    design5 = mc_tpg(example5_kernel())
    show("Example 5 (Figure 17): two cones, 9-stage LFSR",
         design5, mc_tpg(example5_kernel(width=3)))
    for span in cone_spans(design5):
        print(f"  cone {span.cone}: physical span {span.physical_span}, "
              f"logical span {span.logical_span}")

    # Example 6 — Figures 19/20: monolithic vs reconfigurable TPG.
    kernel6 = example6_kernel()
    design6 = mc_tpg(kernel6)
    show("Example 6 (Figure 19): 11-stage LFSR", design6,
         mc_tpg(example6_kernel(width=3)))
    reconfigurable = build_reconfigurable(kernel6)
    print(f"  reconfigurable TPG (Figure 20): "
          f"{len(reconfigurable.sessions)} configurations, total test time "
          f"{reconfigurable.total_test_time} vs monolithic "
          f"{design6.test_time()} "
          f"({design6.test_time() / reconfigurable.total_test_time:.1f}x faster)")


if __name__ == "__main__":
    main()

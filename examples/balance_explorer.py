#!/usr/bin/env python3
"""Balance analysis and BILBO selection on the paper's figure circuits.

Walks Figures 1-4 and 9: circuit-graph construction (fanout and vacuous
vertices), k-step functional testability, partial-scan balancing (BALLAST)
vs BIBS BILBO selection, and the BIBS-vs-KA-85 hardware comparison on the
Krasniewski-Albicki example circuit.

Run:  python examples/balance_explorer.py
"""

from repro.analysis.testability import classify
from repro.core.ballast import make_balanced_by_scan
from repro.core.bibs import make_bibs_testable
from repro.core.ka85 import make_ka_testable
from repro.graph.build import build_circuit_graph
from repro.graph.model import VertexKind
from repro.graph.structures import simple_cycles
from repro.library import figure1, figure2, figure3, figure4, figure9


def main() -> None:
    print("--- Figures 1-2: k-step functional testability")
    for circuit in (figure1(), figure2()):
        graph = build_circuit_graph(circuit)
        report = classify(graph)
        print(f"  {circuit.name}: balanced={report.balanced}  "
              f"k={report.k_step}"
              + (f"  (worst imbalance {report.worst_witness.source}->"
                 f"{report.worst_witness.target}: lengths "
                 f"{report.worst_witness.min_length}/"
                 f"{report.worst_witness.max_length})"
                 if report.worst_witness else ""))

    print("\n--- Figure 3: circuit graph model")
    graph3 = build_circuit_graph(figure3())
    fanouts = [v.name for v in graph3.vertices_of_kind(VertexKind.FANOUT)]
    vacuous = [v.name for v in graph3.vertices_of_kind(VertexKind.VACUOUS)]
    print(f"  {len(graph3)} vertices, {len(graph3.edges)} edges "
          f"({len(graph3.register_edges())} register edges)")
    print(f"  fanout vertices: {fanouts}")
    print(f"  vacuous vertices: {vacuous}")
    print(f"  cycles: {simple_cycles(graph3)}")

    print("\n--- Figure 4 / Example 1: partial scan vs BIBS")
    graph4 = build_circuit_graph(figure4())
    scan = make_balanced_by_scan(graph4)
    print(f"  minimal partial scan: {scan.scan_registers} "
          f"({scan.n_scan_flipflops} FFs)")
    bibs4 = make_bibs_testable(graph4)
    print(f"  BIBS needs {bibs4.n_bilbo_registers} BILBO registers: "
          f"{bibs4.bilbo_registers}")
    for kernel in bibs4.kernels:
        print(f"    {kernel.name}: blocks {kernel.logic_blocks}, "
              f"TPG {sorted(kernel.tpg_registers)}, "
              f"SA {sorted(kernel.sa_registers)}")

    print("\n--- Figure 9: the circuit from [3], both TDMs")
    graph9 = build_circuit_graph(figure9())
    bibs9 = make_bibs_testable(graph9)
    ka9 = make_ka_testable(graph9).design
    print(f"  KA-85: {ka9.n_bilbo_registers} BILBO registers, "
          f"{ka9.n_bilbo_flipflops} FFs converted")
    print(f"  BIBS : {bibs9.n_bilbo_registers} BILBO registers, "
          f"{bibs9.n_bilbo_flipflops} FFs converted")
    saved = ka9.n_bilbo_flipflops - bibs9.n_bilbo_flipflops
    print(f"  BIBS saves {ka9.n_bilbo_registers - bibs9.n_bilbo_registers} "
          f"registers / {saved} flip-flops (paper: 2 registers / 9 FFs)")


if __name__ == "__main__":
    main()

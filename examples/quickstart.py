#!/usr/bin/env python3
"""Quickstart: make a pipelined datapath self-testable with BIBS.

Walks the full flow on a small multiply-accumulate datapath:

1. describe the circuit at RTL;
2. build its circuit graph and check balance (Section 3.1 / Definition 1);
3. select BILBO registers with the BIBS methodology;
4. design the kernel's TPG with SC_TPG/MC_TPG (Section 4);
5. fault-simulate the BIST session and report coverage.

Run:  python examples/quickstart.py
"""

from repro.core.bibs import make_bibs_testable
from repro.core.flow import lower_kernel_to_netlist
from repro.datapath.compiler import Add, Mul, Var, compile_datapath
from repro.faultsim.patterns import RandomPatternSource
from repro.faultsim.simulator import FaultSimulator
from repro.graph.build import build_circuit_graph
from repro.analysis.balance import is_balanced
from repro.analysis.testability import classify
from repro.tpg.mc_tpg import mc_tpg


def main() -> None:
    # 1. An 8-bit multiply-accumulate: o = (a + b) * c + d
    a, b, c, d = Var("a"), Var("b"), Var("c"), Var("d")
    compiled = compile_datapath([("o", Add(Mul(Add(a, b), c), d))], "mac", width=8)
    circuit = compiled.circuit
    print(f"circuit {circuit.name}: {len(circuit.blocks)} blocks, "
          f"{len(circuit.registers)} registers")

    # 2. Circuit graph + balance analysis.
    graph = build_circuit_graph(circuit)
    report = classify(graph)
    print(f"balanced: {is_balanced(graph)}  "
          f"k-step functional testability: k = {report.k_step}")

    # 3. BIBS selection: only PI/PO registers need conversion here.
    design = make_bibs_testable(graph)
    print(f"BIBS converts {design.n_bilbo_registers} registers "
          f"({design.n_bilbo_flipflops} FFs): {design.bilbo_registers}")
    print(f"kernels: {design.n_kernels}, maximal delay: "
          f"{design.maximal_delay()} time units")

    # 4. TPG design for the (single) kernel.
    kernel = design.kernels[0]
    spec = kernel.to_kernel_spec()
    tpg = mc_tpg(spec)
    print(f"TPG: {tpg.lfsr_stages}-stage LFSR, {tpg.n_flipflops} FFs "
          f"({tpg.n_extra_flipflops} extra), functionally exhaustive "
          f"test time {tpg.test_time()} cycles")

    # 5. BIST session: random patterns, fault coverage; PODEM classifies
    #    any random-pattern-resistant leftovers as redundant or detectable.
    netlist = lower_kernel_to_netlist(circuit, kernel)
    simulator = FaultSimulator(netlist)
    source = RandomPatternSource(len(netlist.primary_inputs), seed=42)
    result = simulator.run(source, max_patterns=65536)
    if result.undetected:
        from repro.atpg.podem import classify_faults

        redundant, _tests, _aborted = classify_faults(netlist, result.undetected)
        result.merge_undetectable(redundant)
    print(f"fault simulation: {result.n_faults} collapsed faults, "
          f"{len(result.first_detection)} detected, "
          f"{len(result.undetectable)} proven redundant "
          f"({100 * result.coverage(of_detectable=True):.2f}% of detectable)")
    full = result.patterns_for_coverage(1.0, of_detectable=True)
    print(f"patterns to 100% coverage of detectable faults: {full}")


if __name__ == "__main__":
    main()

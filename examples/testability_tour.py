#!/usr/bin/env python3
"""Testability analysis tour: k-pattern faults, COP prediction, CSTP.

Three analyses around the paper's Section 2 motivation and Section 4
contrast:

1. **k-pattern detectability** — time-frame expansion shows the Figure-1
   circuit's fanout fault really needs a 2-vector sequence, while balanced
   logic is single-pattern testable;
2. **COP prediction** — testability measures predict random-pattern test
   lengths, cross-checked against the fault simulator;
3. **CSTP contrast** — the circular self-test path takes several times
   2^M cycles to apply all kernel input patterns; the BIBS TPG needs one
   period (Theorem 5).

Run:  python examples/testability_tour.py
"""

from repro.core.bibs import make_bibs_testable
from repro.core.flow import lower_kernel_to_netlist
from repro.datapath.compiler import Add, Mul, Var, compile_datapath
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.cop import (
    estimate_detection_probabilities,
    predicted_patterns_for_coverage,
)
from repro.faultsim.patterns import RandomPatternSource
from repro.faultsim.sequential import SequentialFault, minimum_detecting_length
from repro.faultsim.simulator import FaultSimulator
from repro.graph.build import build_circuit_graph
from repro.netlist.gates import GateType
from repro.rtl.circuit import RTLCircuit
from repro.tpg.cstp import CSTPSession
from repro.tpg.verify import verify_design


def figure1_gates() -> RTLCircuit:
    circuit = RTLCircuit("figure1_gates")
    pi = circuit.new_input("pi", 1)
    r_out = circuit.add_net("r_out", 1)
    circuit.add_register("R", pi, r_out)
    y = circuit.add_net("y", 1)

    def expand(netlist, inputs, prefix):
        a, b = inputs
        return [[netlist.add_gate(GateType.AND, [a[0], b[0]], name=f"{prefix}_g")]]

    circuit.add_block("C", [pi, r_out], [y],
                      word_func=lambda v: [v[0] & v[1]], gate_expander=expand)
    circuit.mark_output(y)
    return circuit


def main() -> None:
    print("--- 1. k-pattern detectability (Section 2, Figure 1)")
    circuit = figure1_gates()
    for site, stuck in (("pi", 0), ("r_out", 0), ("y", 1)):
        k = minimum_detecting_length(circuit, SequentialFault(site, 0, stuck), max_k=3)
        print(f"  {site} stuck-at-{stuck}: minimal detecting sequence length k = {k}")

    print("\n--- 2. COP prediction vs fault simulation")
    a, b = Var("a"), Var("b")
    compiled = compile_datapath([("o", Add(Mul(a, b), a))], "mac", width=4)
    design = make_bibs_testable(build_circuit_graph(compiled.circuit))
    netlist = lower_kernel_to_netlist(compiled.circuit, design.kernels[0])
    faults, _ = collapse_faults(netlist)
    estimates = estimate_detection_probabilities(netlist, faults)
    for target in (0.90, 0.95):
        predicted = predicted_patterns_for_coverage(estimates, target)
        simulator = FaultSimulator(netlist)
        result = simulator.run(
            RandomPatternSource(len(netlist.primary_inputs), seed=11), 1 << 14
        )
        measured = result.patterns_for_coverage(target)
        print(f"  target {target:.0%}: COP predicts {predicted} patterns, "
              f"fault simulation measures {measured}")

    print("\n--- 3. CSTP vs the BIBS TPG (Section 4's contrast)")
    small = compile_datapath([("o", Add(Mul(a, b), a))], "mac3", width=3)
    cstp = CSTPSession(small.circuit)
    space = 1 << 6
    coverage = cstp.input_pattern_coverage(
        ["R_a", "R_b"], max_cycles=16 * space,
        checkpoints=[space, 2 * space, 4 * space],
    )
    for cycles, fraction in sorted(coverage.items()):
        print(f"  CSTP after {cycles:4d} cycles ({cycles / space:.1f} x 2^M): "
              f"{100 * fraction:.1f}% of input patterns applied")
    design3 = make_bibs_testable(build_circuit_graph(small.circuit))
    from repro.bist.session import BISTSession

    tpg = BISTSession(small.circuit, design3.kernels[0]).tpg
    exhaustive = all(v.exhaustive for v in verify_design(tpg))
    print(f"  BIBS TPG (M={tpg.lfsr_stages}): functionally exhaustive in one "
          f"period of {(1 << tpg.lfsr_stages) - 1} cycles "
          f"(verified: {exhaustive})")


if __name__ == "__main__":
    main()

"""Reconfigurable TPGs (Figure 20).

When a multiple-cone kernel's single-LFSR TPG needs a much larger degree
than any individual cone (Example 6: an 11-stage LFSR although each cone is
only 8 wide), testing the cones in separate sessions with a *reconfigurable*
TPG cuts test time (about 2 x 2^8 versus 2^11) at the price of extra
configuration hardware.  This module builds one LFSR configuration per cone
and accounts for the time/area trade-off the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import TPGError
from repro.tpg.design import Cone, KernelSpec, TPGDesign
from repro.tpg.sc_tpg import sc_tpg


@dataclass
class TPGSession:
    """One configuration of a reconfigurable TPG: a cone and its sub-TPG."""

    cone: str
    design: TPGDesign

    @property
    def test_time(self) -> int:
        return self.design.test_time()


class ReconfigurableTPG:
    """A set of per-cone LFSR configurations selected by control lines.

    Attributes
    ----------
    sessions:
        One :class:`TPGSession` per cone, in kernel cone order.
    """

    def __init__(self, kernel: KernelSpec, sessions: List[TPGSession]):
        if not sessions:
            raise TPGError("reconfigurable TPG needs at least one session")
        self.kernel = kernel
        self.sessions = sessions

    @property
    def total_test_time(self) -> int:
        """Sum of per-session test times (sessions run one after another)."""
        return sum(s.test_time for s in self.sessions)

    @property
    def n_control_lines(self) -> int:
        """Control lines needed to select among the configurations."""
        count = len(self.sessions)
        lines = 0
        while (1 << lines) < count:
            lines += 1
        return lines

    @property
    def n_reconfigured_stages(self) -> int:
        """Stages whose feed differs between configurations (mux cost proxy).

        Counted as the cells whose label differs across sessions; each such
        cell needs a 2:1 mux (per extra configuration) in front of it.
        """
        differing = 0
        for register in self.kernel.registers:
            for cell in range(1, register.width + 1):
                labels = {
                    s.design.cell_labels.get((register.name, cell))
                    for s in self.sessions
                    if (register.name, cell) in s.design.cell_labels
                }
                if len(labels) > 1:
                    differing += 1
        return differing


def build_reconfigurable(kernel: KernelSpec, polynomial: Optional[int] = None) -> ReconfigurableTPG:
    """One LFSR configuration per cone, each built with SC_TPG.

    Each session restricts the kernel to the registers the cone depends on
    (the other registers may hold anything during that session) and treats
    the cone as a single-cone kernel.
    """
    sessions: List[TPGSession] = []
    for cone in kernel.cones:
        registers = tuple(r for r in kernel.registers if cone.depends_on(r.name))
        if not registers:
            raise TPGError(f"cone {cone.name} depends on no register")
        sub_kernel = KernelSpec(
            registers,
            (Cone(cone.name, {r.name: cone.depths[r.name] for r in registers}),),
            name=f"{kernel.name}:{cone.name}",
        )
        sessions.append(TPGSession(cone.name, sc_tpg(sub_kernel, polynomial)))
    return ReconfigurableTPG(kernel, sessions)


def compare_with_monolithic(
    kernel: KernelSpec,
    monolithic: TPGDesign,
) -> Tuple[int, int, float]:
    """(monolithic time, reconfigurable time, speedup) for the trade-off table."""
    reconfigurable = build_reconfigurable(kernel)
    mono_time = monolithic.test_time()
    reconf_time = reconfigurable.total_test_time
    return mono_time, reconf_time, mono_time / reconf_time if reconf_time else float("inf")

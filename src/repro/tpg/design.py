"""TPG design model: kernels, FF strings with labels, simulation.

Section 4 of the paper abstracts a balanced BISTable kernel into a
*generalized structure* (Figure 11a): input registers R_1..R_n and, per
output cone, the sequential length d_{i,x} from each register to that cone's
output port.  :class:`KernelSpec` captures exactly that.

A TPG built by SC_TPG/MC_TPG is a string of D flip-flops.  Each FF carries a
*label* L_k; FFs labelled L_1..L_M form a type-1 (external-XOR) LFSR and FFs
with labels beyond M continue the chain as a plain shift register.  Two FFs
may share a label, meaning they are fed by the same fanout stem and always
hold identical values.  Thanks to the type-1 shift property, the value of
any FF labelled L_k at time t equals b(t - k + 1), where b(.) is the
feedback bit stream — so the whole TPG is a sliding window over one
m-sequence, which is how :meth:`TPGDesign.register_streams` simulates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import TPGError
from repro.tpg.gf2 import exponents_of
from repro.tpg.polynomials import primitive_polynomial


@dataclass(frozen=True)
class InputRegister:
    """One kernel input register (name + bit width)."""

    name: str
    width: int

    def __post_init__(self):
        if self.width < 1:
            raise TPGError(f"register {self.name} must have positive width")


@dataclass(frozen=True)
class Cone:
    """An output cone: the registers it depends on and their sequential lengths.

    ``depths[r]`` is d_{r,x}: the number of (non-BILBO) register stages on
    every path from input register ``r`` to this cone's output port.  In a
    balanced kernel that number is path-independent, which is what makes the
    construction work (Theorem 4).
    """

    name: str
    depths: Mapping[str, int]

    def __post_init__(self):
        for register, depth in self.depths.items():
            if depth < 0:
                raise TPGError(f"cone {self.name}: negative depth for {register}")

    def depends_on(self, register: str) -> bool:
        return register in self.depths


@dataclass(frozen=True)
class KernelSpec:
    """Generalized structure of a balanced BISTable kernel.

    ``registers`` are in the order the TPG construction will process them
    (the paper permutes this order for functionally pseudo-exhaustive
    testing).
    """

    registers: Tuple[InputRegister, ...]
    cones: Tuple[Cone, ...]
    name: str = "kernel"

    @staticmethod
    def single_cone(
        widths_and_depths: Sequence[Tuple[str, int, int]],
        name: str = "kernel",
        cone_name: str = "cone",
    ) -> "KernelSpec":
        """Build a single-cone spec from (register, width, depth) triples."""
        registers = tuple(InputRegister(r, w) for r, w, _ in widths_and_depths)
        depths = {r: d for r, _, d in widths_and_depths}
        return KernelSpec(registers, (Cone(cone_name, depths),), name)

    def __post_init__(self):
        names = [r.name for r in self.registers]
        if len(set(names)) != len(names):
            raise TPGError("duplicate register names in kernel spec")
        known = set(names)
        for cone in self.cones:
            for register in cone.depths:
                if register not in known:
                    raise TPGError(
                        f"cone {cone.name} depends on unknown register {register}"
                    )

    @property
    def total_width(self) -> int:
        """M: the sum of all input register widths."""
        return sum(r.width for r in self.registers)

    @property
    def sequential_depth(self) -> int:
        """d: the largest sequential length in the kernel."""
        return max((d for cone in self.cones for d in cone.depths.values()), default=0)

    def width_of(self, register: str) -> int:
        for r in self.registers:
            if r.name == register:
                return r.width
        raise TPGError(f"unknown register {register}")

    def cone_width(self, cone: Cone) -> int:
        """Input width the cone depends on (w in the paper's 2^w bound)."""
        return sum(self.width_of(r) for r in cone.depths)

    @property
    def max_cone_width(self) -> int:
        """The maximal cone size of the kernel."""
        return max((self.cone_width(c) for c in self.cones), default=0)

    def permuted(self, order: Sequence[str]) -> "KernelSpec":
        """The same kernel with registers reordered (for MC_TPG search)."""
        by_name = {r.name: r for r in self.registers}
        if sorted(order) != sorted(by_name):
            raise TPGError("permutation must mention every register exactly once")
        return KernelSpec(tuple(by_name[n] for n in order), self.cones, self.name)


@dataclass
class Slot:
    """One physical D flip-flop in the TPG string."""

    label: int
    owner: Optional[Tuple[str, int]] = None  # (register name, 1-based cell index)

    @property
    def is_extra(self) -> bool:
        """True when this FF is not a register cell (pure delay/LFSR stage)."""
        return self.owner is None


class TPGDesign:
    """A concrete TPG: the FF string, the LFSR size, the feedback polynomial.

    Attributes
    ----------
    slots:
        Physical FFs in TPG order.  Labels are normalised to start at 1.
    lfsr_stages:
        M — labels 1..M form the type-1 LFSR; higher labels are SR stages.
    polynomial:
        Feedback polynomial (bitmask form).
    cell_labels:
        ``(register, cell_index)`` -> label, 1-based cells.
    """

    def __init__(
        self,
        kernel: KernelSpec,
        slots: List[Slot],
        lfsr_stages: int,
        polynomial: Optional[int] = None,
    ):
        if lfsr_stages < 1:
            raise TPGError("LFSR must have at least one stage")
        self.kernel = kernel
        self.slots = slots
        self.lfsr_stages = lfsr_stages
        self.polynomial = (
            polynomial if polynomial is not None else primitive_polynomial(lfsr_stages)
        )
        self.cell_labels: Dict[Tuple[str, int], int] = {}
        for slot in slots:
            if slot.owner is not None:
                if slot.owner in self.cell_labels:
                    raise TPGError(f"register cell {slot.owner} assigned twice")
                self.cell_labels[slot.owner] = slot.label
        for register in kernel.registers:
            for cell in range(1, register.width + 1):
                if (register.name, cell) not in self.cell_labels:
                    raise TPGError(
                        f"cell {cell} of register {register.name} unassigned"
                    )

    # ------------------------------------------------------------ accounting

    @property
    def n_flipflops(self) -> int:
        """Total physical FFs in the TPG."""
        return len(self.slots)

    @property
    def n_extra_flipflops(self) -> int:
        """FFs beyond the kernel's own register cells."""
        return sum(1 for slot in self.slots if slot.is_extra)

    @property
    def max_label(self) -> int:
        return max(slot.label for slot in self.slots)

    def register_label_span(self, register: str) -> Tuple[int, int]:
        """(first, last) labels of a register's cells."""
        width = self.kernel.width_of(register)
        labels = [self.cell_labels[(register, c)] for c in range(1, width + 1)]
        return min(labels), max(labels)

    def displacement(self, register_a: str, register_b: str) -> int:
        """Displacement of ``register_b`` with respect to ``register_a``.

        Measured between last cells, as in the paper's Theorem 6 argument.
        """
        _, ua = self.register_label_span(register_a)
        _, ub = self.register_label_span(register_b)
        return ub - ua

    def test_time(self) -> int:
        """Clock cycles to functionally exhaustively test the kernel.

        Corollary 1: 2^M - 1 pattern cycles plus d flush cycles.
        """
        return (1 << self.lfsr_stages) - 1 + self.kernel.sequential_depth

    # ------------------------------------------------------------ simulation

    def _tap_lags(self) -> List[int]:
        """Feedback taps expressed as lags into the bit-stream history."""
        return [e for e in exponents_of(self.polynomial) if e != 0]

    def bit_stream(self, seed: int = 1) -> Iterator[int]:
        """The feedback bit stream b(t), t = 0, 1, 2, ...

        ``seed`` initialises LFSR stages 1..M: bit i-1 of ``seed`` is the
        initial content of stage i, i.e. b(1-i) at t=0.  b(0) is stage 1's
        initial value.
        """
        m = self.lfsr_stages
        if seed & ((1 << m) - 1) == 0:
            raise TPGError("LFSR seed must be non-zero")
        # history[k] = b(t - k) for k = 0..window-1
        window = max(self.max_label, m)
        history = [(seed >> k) & 1 if k < m else 0 for k in range(window)]
        lags = self._tap_lags()
        while True:
            yield history[0]
            new_bit = 0
            for lag in lags:
                new_bit ^= history[lag - 1]
            history.insert(0, new_bit)
            history.pop()

    def register_streams(self, steps: int, seed: int = 1) -> Dict[str, List[int]]:
        """Register contents over ``steps`` clock cycles.

        Returns ``{register: [value at t=0, t=1, ...]}``.  Cell 1 of a
        register is its least-significant bit in the returned integers.
        The value of a cell labelled L_k at time t is b(t - k + 1).
        """
        max_label = self.max_label
        total = steps + max_label
        stream: List[int] = []
        bits = self.bit_stream(seed)
        for _ in range(total):
            stream.append(next(bits))
        # stream[t] = b(t).  Negative times are the *backward extension* of
        # the m-sequence: stages 1..M start from the seed and any shift-
        # register stages beyond M are scan-seeded consistently with it
        # (the recurrence is invertible because the polynomial's constant
        # term is 1), so b(-k) is well defined for every k.
        m = self.lfsr_stages
        history: List[int] = [(seed >> k) & 1 for k in range(m)]  # b(0..-(M-1))
        taps = self._tap_lags()
        for k in range(m, max_label + 1):
            # b(-k+M) = XOR_e b(-k+M-e); isolate the e = M term b(-k).
            value = history[k - m]
            for lag in taps:
                if lag != m:
                    value ^= history[k - m + lag]
            history.append(value)

        def value_of(t: int) -> int:
            if t >= 0:
                return stream[t]
            return history[-t]

        result: Dict[str, List[int]] = {}
        for register in self.kernel.registers:
            values: List[int] = []
            labels = [
                self.cell_labels[(register.name, c)]
                for c in range(1, register.width + 1)
            ]
            for t in range(steps):
                word = 0
                for bit_pos, label in enumerate(labels):
                    if value_of(t - label + 1):
                        word |= 1 << bit_pos
                values.append(word)
            result[register.name] = values
        return result

    def feedback_taps(self) -> List[int]:
        """LFSR stages feeding the external XOR (polynomial exponents != 0)."""
        return sorted(e for e in exponents_of(self.polynomial) if e != 0)

    def layout(self) -> str:
        """ASCII rendering: labels, cell assignment, feedback taps.

        A ``*`` row marks the LFSR stages whose outputs are XORed back into
        stage L1 (the type-1 feedback network); stages beyond M carry ``sr``
        to show they are plain shift-register continuations.
        """
        taps = set(self.feedback_taps())
        top, middle, bottom = [], [], []
        for slot in self.slots:
            tag = f"L{slot.label}"
            owner = "--" if slot.owner is None else f"{slot.owner[0]}.{slot.owner[1]}"
            if slot.label > self.lfsr_stages:
                mark = "sr"
            elif slot.label in taps:
                mark = "*"
            else:
                mark = ""
            width = max(len(tag), len(owner), len(mark))
            top.append(tag.ljust(width))
            middle.append(owner.ljust(width))
            bottom.append(mark.ljust(width))
        poly = " + ".join(
            ("1" if e == 0 else "x" if e == 1 else f"x^{e}")
            for e in exponents_of(self.polynomial)
        )
        return (
            " | ".join(top) + "\n" + " | ".join(middle) + "\n"
            + " | ".join(bottom) + f"\nfeedback: {poly}"
        )

    def __repr__(self) -> str:
        return (
            f"TPGDesign(kernel={self.kernel.name!r}, M={self.lfsr_stages}, "
            f"ffs={self.n_flipflops}, extra={self.n_extra_flipflops})"
        )


def normalize_labels(raw_slots: List[Slot]) -> Tuple[List[Slot], int]:
    """Shift labels so the smallest is 1 (Example 4 produces an L_0).

    Returns the adjusted slots and the applied offset.
    """
    if not raw_slots:
        raise TPGError("empty TPG")
    low = min(slot.label for slot in raw_slots)
    offset = 1 - low
    if offset:
        for slot in raw_slots:
            slot.label += offset
    return raw_slots, offset

"""Verification of TPG designs against Theorem 4 / Theorem 7.

A TPG *functionally exhaustively* tests a cone iff the time-shifted tuple of
register contents ``(R_i(t - d_i))`` ranges over every pattern the cone can
see in functional operation.  For a maximal-length LFSR of degree M driving
a cone of input width w, the expected number of distinct tuples over one
period is ``2^w`` when w < M (windows of an m-sequence include the all-zero
window) and ``2^M - 1`` when w == M (the LFSR never reaches all-zero).

These checks run an exact enumeration over the full LFSR period, so they are
meant for small M (tests use M <= 14); they are the ground truth the
property-based test suite drives SC_TPG/MC_TPG against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.errors import TPGError
from repro.tpg.design import Cone, TPGDesign


@dataclass(frozen=True)
class ConeVerdict:
    """Result of checking one cone."""

    cone: str
    width: int
    distinct_patterns: int
    expected_patterns: int

    @property
    def exhaustive(self) -> bool:
        return self.distinct_patterns >= self.expected_patterns


def cone_pattern_set(
    design: TPGDesign,
    cone: Cone,
    seed: int = 1,
    max_steps: int = 1 << 20,
) -> Set[Tuple[int, ...]]:
    """All distinct time-shifted register tuples the cone sees in one period."""
    period = (1 << design.lfsr_stages) - 1
    depth = max(cone.depths.values(), default=0)
    steps = period + depth
    if steps > max_steps:
        raise TPGError(
            f"verification over {steps} steps exceeds max_steps={max_steps}; "
            "use a smaller LFSR for exact checking"
        )
    streams = design.register_streams(steps, seed=seed)
    dependent = [r.name for r in design.kernel.registers if cone.depends_on(r.name)]
    patterns: Set[Tuple[int, ...]] = set()
    for t in range(depth, depth + period):
        patterns.add(
            tuple(streams[name][t - cone.depths[name]] for name in dependent)
        )
    return patterns


def expected_pattern_count(design: TPGDesign, cone: Cone) -> int:
    """2^w for w < M, else 2^M - 1 (the LFSR's non-zero state count)."""
    width = design.kernel.cone_width(cone)
    m = design.lfsr_stages
    if width >= m:
        return (1 << m) - 1
    return 1 << width


def verify_cone(design: TPGDesign, cone: Cone, seed: int = 1) -> ConeVerdict:
    """Check one cone of a design for functional exhaustiveness."""
    patterns = cone_pattern_set(design, cone, seed=seed)
    return ConeVerdict(
        cone=cone.name,
        width=design.kernel.cone_width(cone),
        distinct_patterns=len(patterns),
        expected_patterns=expected_pattern_count(design, cone),
    )


def verify_design(design: TPGDesign, seed: int = 1) -> List[ConeVerdict]:
    """Check every cone (the full Theorem 4 / Theorem 7 claim)."""
    return [verify_cone(design, cone, seed=seed) for cone in design.kernel.cones]


def is_functionally_exhaustive(design: TPGDesign, seed: int = 1) -> bool:
    """True iff every cone of the kernel is functionally exhaustively tested."""
    return all(v.exhaustive for v in verify_design(design, seed=seed))


def minimum_lfsr_degree_witness(design: TPGDesign) -> Dict[str, int]:
    """Per-cone distinct-pattern counts, for reports and ablation benches."""
    return {
        verdict.cone: verdict.distinct_patterns for verdict in verify_design(design)
    }

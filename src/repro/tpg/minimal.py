"""Minimal test-time TPG search — the paper's open problem (Section 5).

The conclusion states: "The necessary and sufficient condition for a
k-stage LFSR to functionally exhaustively test a balanced BISTable kernel
having n inputs, where k >= n, has been identified.  A procedure to
generate a TPG using the minimal number of F/Fs and LFSR stages ... can be
developed using this condition.  The development of such a procedure
remains an open problem."

This module supplies that procedure for small kernels, built on the
*stream-position window condition*:

    Assign register R_i the label offset o_i (its cells get labels
    o_i+1 .. o_i+r_i).  A cell labelled L_k of a register at sequential
    length d sees feedback bit b(t - (k-1) - d), i.e. stream position
    (k-1) + d.  A cone is functionally exhaustively tested iff the stream
    positions of all cells it depends on are pairwise distinct and span at
    most M consecutive positions (a w-of-M window of an m-sequence takes
    all 2^w values, all 2^M - 1 when w = M).

Minimising the LFSR degree M therefore reduces to an integer program over
the offsets: minimise the largest per-cone position-window width subject
to per-cone position disjointness.  :func:`minimal_tpg` solves it by
bounded exhaustive search (registers are few in practice, as the paper
notes), then ties are broken on total flip-flop count.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.errors import TPGError
from repro.tpg.design import KernelSpec, Slot, TPGDesign
from repro.tpg.mc_tpg import mc_tpg


@dataclass(frozen=True)
class OffsetAssignment:
    """Register label offsets and the cost they achieve."""

    offsets: Tuple[int, ...]      # per register, in kernel order
    lfsr_stages: int
    n_flipflops: int


def _cone_windows(
    kernel: KernelSpec, offsets: Sequence[int]
) -> Optional[List[Tuple[int, int]]]:
    """Per-cone (min, max) stream positions, or None on a collision."""
    index_of = {r.name: i for i, r in enumerate(kernel.registers)}
    windows: List[Tuple[int, int]] = []
    for cone in kernel.cones:
        seen: Set[int] = set()
        low: Optional[int] = None
        high: Optional[int] = None
        for register in kernel.registers:
            if not cone.depends_on(register.name):
                continue
            offset = offsets[index_of[register.name]]
            depth = cone.depths[register.name]
            start = offset + depth
            end = offset + register.width - 1 + depth
            for position in range(start, end + 1):
                if position in seen:
                    return None
                seen.add(position)
            low = start if low is None else min(low, start)
            high = end if high is None else max(high, end)
        windows.append((low or 0, high or 0))
    return windows


def _cost(kernel: KernelSpec, offsets: Sequence[int]) -> Optional[Tuple[int, int]]:
    """(LFSR degree, flip-flop count) of an offset assignment, or None."""
    windows = _cone_windows(kernel, offsets)
    if windows is None:
        return None
    stages = max(high - low + 1 for low, high in windows)
    # Physical FFs: every register cell, plus chain fill-ins for label
    # positions not covered by any cell, plus extension so the label span
    # reaches the LFSR degree.
    covered: Set[int] = set()
    for register, offset in zip(kernel.registers, offsets):
        covered.update(range(offset + 1, offset + register.width + 1))
    top = max(covered)
    bottom = min(covered)
    gap_fill = sum(
        1 for label in range(bottom, top + 1) if label not in covered
    )
    extension = max(0, stages - (top - bottom + 1))
    n_ffs = kernel.total_width + gap_fill + extension
    return stages, n_ffs


def minimal_tpg(
    kernel: KernelSpec,
    max_offset: Optional[int] = None,
    polynomial: Optional[int] = None,
) -> TPGDesign:
    """The provably minimal-LFSR (then minimal-FF) TPG for a small kernel.

    Searches all register offset vectors up to ``max_offset`` (default: the
    MC_TPG baseline's LFSR size, beyond which no assignment can help).
    Raises :class:`TPGError` for kernels with more than 6 registers — the
    search is exponential in the register count, which the paper observes
    is small in practice.
    """
    n = len(kernel.registers)
    if n == 0:
        raise TPGError("kernel has no registers")
    if n > 6:
        raise TPGError("minimal TPG search supports at most 6 registers")
    baseline = mc_tpg(kernel, polynomial)
    if max_offset is None:
        max_offset = baseline.lfsr_stages

    best: Optional[Tuple[Tuple[int, int], Tuple[int, ...]]] = None
    # The first register can be pinned at offset 0 (global shifts are free).
    for rest in itertools.product(range(max_offset + 1), repeat=n - 1):
        offsets = (0,) + rest
        cost = _cost(kernel, offsets)
        if cost is None:
            continue
        if best is None or cost < best[0]:
            best = (cost, offsets)
    if best is None:
        raise TPGError("no collision-free offset assignment found")

    (stages, _n_ffs), offsets = best
    if stages >= baseline.lfsr_stages:
        return baseline  # the constructive procedure was already optimal

    return design_from_offsets(kernel, offsets, stages, polynomial)


def design_from_offsets(
    kernel: KernelSpec,
    offsets: Sequence[int],
    lfsr_stages: int,
    polynomial: Optional[int] = None,
) -> TPGDesign:
    """Materialise a TPG from explicit register offsets."""
    slots: List[Slot] = []
    covered: Set[int] = set()
    order = sorted(range(len(kernel.registers)), key=lambda i: offsets[i])
    for index in order:
        register = kernel.registers[index]
        for cell in range(1, register.width + 1):
            label = offsets[index] + cell
            slots.append(Slot(label, (register.name, cell)))
            covered.add(label)
    top = max(covered)
    bottom = min(covered)
    for label in range(bottom, top + 1):
        if label not in covered:
            slots.append(Slot(label))
    while top - bottom + 1 < lfsr_stages:
        top += 1
        slots.append(Slot(top))
    from repro.tpg.design import normalize_labels

    normalize_labels(slots)
    return TPGDesign(kernel, slots, lfsr_stages, polynomial)


def optimality_gap(kernel: KernelSpec) -> Tuple[int, int]:
    """(MC_TPG stages, provably minimal stages) for ablation studies."""
    constructive = mc_tpg(kernel).lfsr_stages
    optimal = minimal_tpg(kernel).lfsr_stages
    return constructive, optimal

"""Functionally pseudo-exhaustive testing (Section 4.3).

Two tools from the paper:

* **Register-permutation search** (Example 7): run MC_TPG once per input
  register ordering and keep the smallest LFSR.  The search stops early when
  the lower bound — the maximal cone size w, since the test time of a
  multiple-cone kernel is bounded below by 2^w — is met.
* **McCluskey minimal-test-signal baseline** (Example 8): the register-level
  extension of verification testing [17].  Registers that no cone jointly
  depends on may share a test signal; the minimal signal count is the
  chromatic number of the register conflict graph.  As the paper shows, the
  resulting LFSR (12 stages in Example 8) can be much larger than what
  MC_TPG plus permutation achieves (8 stages), because the signal model
  cannot exploit sequential-length time shifts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import TPGError
from repro.tpg.design import KernelSpec, TPGDesign
from repro.tpg.mc_tpg import mc_tpg


# --------------------------------------------------------------------- matrix

def dependency_matrix(kernel: KernelSpec) -> List[List[int]]:
    """D[i][j] = 1 iff cone i depends on register j (Example 8's matrix)."""
    return [
        [1 if cone.depends_on(r.name) else 0 for r in kernel.registers]
        for cone in kernel.cones
    ]


def conflict_pairs(kernel: KernelSpec) -> List[Tuple[str, str]]:
    """Register pairs some cone jointly depends on (cannot share a signal)."""
    names = [r.name for r in kernel.registers]
    pairs: List[Tuple[str, str]] = []
    for a, b in itertools.combinations(names, 2):
        for cone in kernel.cones:
            if cone.depends_on(a) and cone.depends_on(b):
                pairs.append((a, b))
                break
    return pairs


# ------------------------------------------------------- minimal test signals

@dataclass(frozen=True)
class TestSignalPlan:
    """A grouping of registers into shared test signals."""

    groups: Tuple[FrozenSet[str], ...]
    widths: Tuple[int, ...]

    @property
    def n_signals(self) -> int:
        return len(self.groups)

    @property
    def lfsr_stages(self) -> int:
        """Stages needed when each signal gets its own LFSR segment."""
        return sum(self.widths)


def minimal_test_signals(kernel: KernelSpec, exact_limit: int = 12) -> TestSignalPlan:
    """Minimal register-level test-signal grouping.

    Exact (branch-and-bound graph colouring) for up to ``exact_limit``
    registers, greedy otherwise.  Width of a signal group is the widest
    register in it (all registers in a group are fed the same stem).
    """
    names = [r.name for r in kernel.registers]
    width_of = {r.name: r.width for r in kernel.registers}
    conflicts = {name: set() for name in names}
    for a, b in conflict_pairs(kernel):
        conflicts[a].add(b)
        conflicts[b].add(a)

    if len(names) <= exact_limit:
        grouping = _exact_coloring(names, conflicts)
    else:
        grouping = _greedy_coloring(names, conflicts)

    groups = tuple(frozenset(g) for g in grouping)
    widths = tuple(max(width_of[n] for n in g) for g in groups)
    return TestSignalPlan(groups, widths)


def _greedy_coloring(names: Sequence[str], conflicts: Dict[str, set]) -> List[List[str]]:
    """Largest-degree-first greedy colouring."""
    order = sorted(names, key=lambda n: -len(conflicts[n]))
    groups: List[List[str]] = []
    for name in order:
        for group in groups:
            if not conflicts[name] & set(group):
                group.append(name)
                break
        else:
            groups.append([name])
    return groups


def _exact_coloring(names: Sequence[str], conflicts: Dict[str, set]) -> List[List[str]]:
    """Smallest colouring by trying k = clique bound .. n."""
    greedy = _greedy_coloring(names, conflicts)
    lower = _clique_lower_bound(names, conflicts)
    for k in range(lower, len(greedy)):
        assignment = _try_color(names, conflicts, k)
        if assignment is not None:
            groups: List[List[str]] = [[] for _ in range(k)]
            for name, color in assignment.items():
                groups[color].append(name)
            return [g for g in groups if g]
    return greedy


def _clique_lower_bound(names: Sequence[str], conflicts: Dict[str, set]) -> int:
    """Greedy clique as a chromatic lower bound."""
    best = 1
    for start in names:
        clique = {start}
        for other in names:
            if other not in clique and all(other in conflicts[m] for m in clique):
                clique.add(other)
        best = max(best, len(clique))
    return best


def _try_color(
    names: Sequence[str], conflicts: Dict[str, set], k: int
) -> Optional[Dict[str, int]]:
    """Backtracking k-colouring; None if infeasible."""
    order = sorted(names, key=lambda n: -len(conflicts[n]))
    assignment: Dict[str, int] = {}

    def backtrack(index: int) -> bool:
        if index == len(order):
            return True
        name = order[index]
        used = {assignment[n] for n in conflicts[name] if n in assignment}
        # Symmetry breaking: never open more than one new colour.
        ceiling = min(k, (max(assignment.values()) + 2) if assignment else 1)
        for color in range(ceiling):
            if color not in used:
                assignment[name] = color
                if backtrack(index + 1):
                    return True
                del assignment[name]
        return False

    return assignment if backtrack(0) else None


# ------------------------------------------------------- permutation search

@dataclass
class PermutationSearchResult:
    """Outcome of the register-ordering search."""

    order: Tuple[str, ...]
    design: TPGDesign
    lfsr_stages: int
    lower_bound: int
    orders_tried: int

    @property
    def optimal(self) -> bool:
        """True when the 2^w lower bound was achieved."""
        return self.lfsr_stages == self.lower_bound


def best_register_order(
    kernel: KernelSpec,
    max_permutations: int = 50000,
) -> PermutationSearchResult:
    """Search register orderings for the minimal-degree MC_TPG.

    The paper argues this is practical because multiple-cone kernels rarely
    have more than ~5 input registers and MC_TPG is polynomial.  The search
    terminates as soon as an ordering achieves the 2^w lower bound (w =
    maximal cone size).
    """
    names = [r.name for r in kernel.registers]
    lower_bound = kernel.max_cone_width
    best_design: Optional[TPGDesign] = None
    best_order: Optional[Tuple[str, ...]] = None
    tried = 0
    for order in itertools.permutations(names):
        if tried >= max_permutations:
            break
        tried += 1
        design = mc_tpg(kernel.permuted(order))
        if best_design is None or design.lfsr_stages < best_design.lfsr_stages:
            best_design = design
            best_order = tuple(order)
            if design.lfsr_stages <= lower_bound:
                break
    if best_design is None or best_order is None:
        raise TPGError("permutation search found no design")
    return PermutationSearchResult(
        order=best_order,
        design=best_design,
        lfsr_stages=best_design.lfsr_stages,
        lower_bound=lower_bound,
        orders_tried=tried,
    )


def mcclauskey_extension_stages(kernel: KernelSpec) -> int:
    """LFSR stages required by the minimal-test-signal extension (Example 8)."""
    return minimal_test_signals(kernel).lfsr_stages

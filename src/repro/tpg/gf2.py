"""Polynomial arithmetic over GF(2) and primitivity testing.

Polynomials are Python integers: bit ``i`` is the coefficient of ``x^i``
(so ``x^12 + x^7 + x^4 + x^3 + 1`` is ``0b1000010011001``).  The paper's TPG
constructions require *primitive* feedback polynomials (maximal-length
LFSRs); :func:`is_primitive` certifies candidates and
:func:`find_primitive_polynomial` searches for one at any degree.
"""

from __future__ import annotations

import random
from typing import Iterable, List

from repro.errors import TPGError
from repro.tpg.numbertheory import prime_factors


def poly_from_exponents(exponents: Iterable[int]) -> int:
    """Build a polynomial from its non-zero exponents, e.g. [12,7,4,3,0]."""
    value = 0
    for e in exponents:
        value |= 1 << e
    return value


def exponents_of(poly: int) -> List[int]:
    """Non-zero exponents of a polynomial, descending."""
    return [i for i in range(poly.bit_length() - 1, -1, -1) if (poly >> i) & 1]


def degree(poly: int) -> int:
    """Degree of the polynomial (-1 for the zero polynomial)."""
    return poly.bit_length() - 1


def poly_mul_mod(a: int, b: int, mod: int) -> int:
    """(a * b) mod ``mod`` over GF(2)."""
    deg = degree(mod)
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if degree(a) >= deg:
            a ^= mod
    return result


def poly_pow_mod(base: int, exponent: int, mod: int) -> int:
    """base^exponent mod ``mod`` over GF(2), by square and multiply."""
    result = 1
    base = poly_mod(base, mod)
    while exponent:
        if exponent & 1:
            result = poly_mul_mod(result, base, mod)
        base = poly_mul_mod(base, base, mod)
        exponent >>= 1
    return result


def poly_mod(a: int, mod: int) -> int:
    """a mod ``mod`` over GF(2)."""
    deg = degree(mod)
    while degree(a) >= deg:
        a ^= mod << (degree(a) - deg)
    return a


def poly_gcd(a: int, b: int) -> int:
    """GCD of two GF(2) polynomials."""
    while b:
        a, b = b, poly_mod(a, b)
    return a


def is_irreducible(poly: int) -> bool:
    """Rabin irreducibility test over GF(2)."""
    n = degree(poly)
    if n <= 0:
        return False
    if not poly & 1:  # divisible by x
        return n == 1 and poly == 0b10
    x = 0b10
    # x^(2^n) == x (mod poly)
    t = x
    for _ in range(n):
        t = poly_mul_mod(t, t, poly)
    if t != poly_mod(x, poly):
        return False
    for q in prime_factors(n):
        t = x
        for _ in range(n // q):
            t = poly_mul_mod(t, t, poly)
        if poly_gcd(t ^ x, poly) != 1:
            return False
    return True


def is_primitive(poly: int) -> bool:
    """True iff ``poly`` is primitive over GF(2).

    A degree-n primitive polynomial is irreducible and the order of x modulo
    the polynomial is exactly 2^n - 1, which is what makes an LFSR with this
    feedback polynomial maximal-length.
    """
    n = degree(poly)
    if n <= 0:
        return False
    if n == 1:
        return poly == 0b11  # x + 1
    if not is_irreducible(poly):
        return False
    order = (1 << n) - 1
    x = 0b10
    if poly_pow_mod(x, order, poly) != 1:
        return False
    for q in prime_factors(order):
        if poly_pow_mod(x, order // q, poly) == 1:
            return False
    return True


def find_primitive_polynomial(n: int, seed: int = 0, max_tries: int = 200000) -> int:
    """Search for a degree-n primitive polynomial.

    Tries sparse candidates first (fewer taps means cheaper LFSR feedback
    hardware, which the paper's area arguments care about), then random ones.
    """
    if n < 1:
        raise TPGError("polynomial degree must be >= 1")
    if n == 1:
        return 0b11
    base = (1 << n) | 1
    # Trinomials x^n + x^k + 1.
    for k in range(1, n):
        candidate = base | (1 << k)
        if is_primitive(candidate):
            return candidate
    # Pentanomials x^n + x^a + x^b + x^c + 1.
    for a in range(3, n):
        for b in range(2, a):
            for c in range(1, b):
                candidate = base | (1 << a) | (1 << b) | (1 << c)
                if is_primitive(candidate):
                    return candidate
    rng = random.Random(seed)
    for _ in range(max_tries):
        candidate = base | (rng.getrandbits(n - 1) << 1)
        if is_primitive(candidate):
            return candidate
    raise TPGError(f"no primitive polynomial of degree {n} found")

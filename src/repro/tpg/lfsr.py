"""Linear feedback shift registers.

The paper's TPG construction leans on the *type 1* (external-XOR, Fibonacci)
LFSR property it states explicitly: "the data present in the i-th stage of L
at time t is the same as the data present in the (i-1)-st stage of L at time
t-1 for i > 1, where the most significant bit of the LFSR is the first
stage".  Stage 1 receives the feedback; every other stage just shifts.  That
pure-shift property is what lets extra D flip-flops appended to the LFSR act
as time-delayed copies of the sequence — the heart of SC_TPG/MC_TPG.

State encoding: bit ``i-1`` of the state integer is stage ``i``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import TPGError
from repro.tpg.gf2 import degree, exponents_of
from repro.tpg.polynomials import primitive_polynomial


class Type1LFSR:
    """External-XOR (Fibonacci) LFSR.

    ``polynomial`` is the feedback polynomial in bitmask form; the resulting
    bit recurrence is ``b(t) = XOR of b(t - e)`` over the polynomial's
    non-zero exponents, so a primitive polynomial yields a maximal-length
    (2^n - 1) sequence.
    """

    def __init__(self, n: int, polynomial: Optional[int] = None):
        if n < 1:
            raise TPGError("LFSR needs at least one stage")
        self.n = n
        self.polynomial = polynomial if polynomial is not None else primitive_polynomial(n)
        if degree(self.polynomial) != n:
            raise TPGError(
                f"polynomial degree {degree(self.polynomial)} != LFSR length {n}"
            )
        # Tap at stage e for every exponent e (excluding the constant term):
        # stage e holds the bit generated e-1 shifts ago, i.e. b(t-e) next step.
        self._tap_mask = 0
        for e in exponents_of(self.polynomial):
            if e != 0:
                self._tap_mask |= 1 << (e - 1)
        self.mask = (1 << n) - 1

    def feedback(self, state: int) -> int:
        """The bit shifted into stage 1 on the next clock."""
        return bin(state & self._tap_mask).count("1") & 1

    def step(self, state: int) -> int:
        """One clock: stages shift 1->2->...->n, stage 1 takes the feedback."""
        return ((state << 1) | self.feedback(state)) & self.mask

    def states(self, seed: int = 1) -> Iterator[int]:
        """Infinite state stream starting from (and including) ``seed``."""
        state = seed & self.mask
        while True:
            yield state
            state = self.step(state)

    def sequence(self, seed: int = 1, count: int = 0) -> List[int]:
        """First ``count`` states starting from ``seed``."""
        stream = self.states(seed)
        return [next(stream) for _ in range(count)]

    def period(self, seed: int = 1) -> int:
        """Cycle length of the orbit containing ``seed``."""
        seed &= self.mask
        state = self.step(seed)
        length = 1
        while state != seed:
            state = self.step(state)
            length += 1
            if length > self.mask + 1:
                raise TPGError("LFSR period exceeds state space (internal error)")
        return length

    def is_maximal(self) -> bool:
        """True iff a non-zero seed visits all 2^n - 1 non-zero states."""
        return self.period(1) == self.mask

    def stage(self, state: int, index: int) -> int:
        """Value of stage ``index`` (1-based) in a state."""
        if not 1 <= index <= self.n:
            raise TPGError(f"stage {index} out of range 1..{self.n}")
        return (state >> (index - 1)) & 1


class Type2LFSR:
    """Internal-XOR (Galois) LFSR, for contrast and for MISR construction.

    Type 2 LFSRs do *not* have the stage-shift property; the paper's TPG
    needs type 1.  Provided so tests can demonstrate the difference.
    """

    def __init__(self, n: int, polynomial: Optional[int] = None):
        if n < 1:
            raise TPGError("LFSR needs at least one stage")
        self.n = n
        self.polynomial = polynomial if polynomial is not None else primitive_polynomial(n)
        if degree(self.polynomial) != n:
            raise TPGError("polynomial degree mismatch")
        self.mask = (1 << n) - 1
        # XOR pattern applied when the bit shifted out is 1.
        self._xor_mask = (self.polynomial >> 1) & self.mask

    def step(self, state: int) -> int:
        out = state & 1
        state >>= 1
        if out:
            state ^= self._xor_mask
        return state

    def states(self, seed: int = 1) -> Iterator[int]:
        state = seed & self.mask
        while True:
            yield state
            state = self.step(state)

    def period(self, seed: int = 1) -> int:
        seed &= self.mask
        state = self.step(seed)
        length = 1
        while state != seed:
            state = self.step(state)
            length += 1
            if length > self.mask + 1:
                raise TPGError("LFSR period exceeds state space (internal error)")
        return length

    def is_maximal(self) -> bool:
        return self.period(1) == self.mask


class CompleteLFSR(Type1LFSR):
    """Complete feedback shift register (Wang & McCluskey, reference [15]).

    The de Bruijn modification: the feedback is complemented when stages
    1..n-1 are all zero, splicing the all-zero state into the maximal cycle.
    The period becomes exactly 2^n, supplying the all-0 pattern the plain
    LFSR can never produce (the paper uses this to cover the all-0 pattern
    it otherwise "ignores in the discussion").
    """

    def step(self, state: int) -> int:
        fb = self.feedback(state)
        low_stages = state & (self.mask >> 1)
        if low_stages == 0:
            fb ^= 1
        return ((state << 1) | fb) & self.mask

    def is_maximal(self) -> bool:
        """A complete LFSR cycles through all 2^n states."""
        return self.period(0) == self.mask + 1

"""Primitive polynomial table.

A curated table of low-weight primitive polynomials for degrees 1..32 —
enough for every register width the paper's circuits use — backed by an
on-demand search (:func:`repro.tpg.gf2.find_primitive_polynomial`) for any
other degree.  The degree-12 entry is the paper's own
``x^12 + x^7 + x^4 + x^3 + 1`` (Examples 2 and 3), verified primitive by the
test suite.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import TPGError
from repro.tpg.gf2 import find_primitive_polynomial, poly_from_exponents

# The polynomial used in the paper's Figures 13 and 15.
PAPER_POLY_12 = poly_from_exponents([12, 7, 4, 3, 0])

_TABLE_EXPONENTS: Dict[int, List[int]] = {
    1: [1, 0],
    2: [2, 1, 0],
    3: [3, 1, 0],
    4: [4, 1, 0],
    5: [5, 2, 0],
    6: [6, 1, 0],
    7: [7, 1, 0],
    8: [8, 4, 3, 2, 0],
    9: [9, 4, 0],
    10: [10, 3, 0],
    11: [11, 2, 0],
    12: [12, 7, 4, 3, 0],  # the paper's polynomial
    13: [13, 4, 3, 1, 0],
    14: [14, 5, 3, 1, 0],
    15: [15, 1, 0],
    16: [16, 5, 3, 2, 0],
    17: [17, 3, 0],
    18: [18, 7, 0],
    19: [19, 5, 2, 1, 0],
    20: [20, 3, 0],
    21: [21, 2, 0],
    22: [22, 1, 0],
    23: [23, 5, 0],
    24: [24, 4, 3, 1, 0],
    25: [25, 3, 0],
    26: [26, 6, 2, 1, 0],
    27: [27, 5, 2, 1, 0],
    28: [28, 3, 0],
    29: [29, 2, 0],
    30: [30, 6, 4, 1, 0],
    31: [31, 3, 0],
    32: [32, 7, 6, 2, 0],
}

_CACHE: Dict[int, int] = {}


def primitive_polynomial(degree: int) -> int:
    """A primitive polynomial of the given degree (bitmask form).

    Table entries are returned directly; other degrees trigger a search,
    cached per process.
    """
    if degree < 1:
        raise TPGError(f"no primitive polynomial of degree {degree}")
    if degree in _TABLE_EXPONENTS:
        return poly_from_exponents(_TABLE_EXPONENTS[degree])
    if degree not in _CACHE:
        _CACHE[degree] = find_primitive_polynomial(degree)
    return _CACHE[degree]


def tabulated_degrees() -> List[int]:
    """Degrees with a curated table entry."""
    return sorted(_TABLE_EXPONENTS)


def reciprocal(poly: int) -> int:
    """The reciprocal polynomial x^n * p(1/x) (primitive iff p is)."""
    from repro.tpg.gf2 import degree

    n = degree(poly)
    value = 0
    for i in range(n + 1):
        if (poly >> i) & 1:
            value |= 1 << (n - i)
    return value


def alternate_primitive_polynomial(degree: int, avoid: int) -> int:
    """A primitive polynomial of the given degree different from ``avoid``.

    Used to decouple a MISR from the TPG that feeds the circuit: when both
    use the *same* feedback polynomial, linearly-correlated error streams
    (e.g. a stuck-at on a TPG register bit) cancel systematically in the
    signature — empirically up to ~50% aliasing over near-period windows.
    The reciprocal polynomial is tried first, then a fresh search.
    """
    from repro.tpg.gf2 import find_primitive_polynomial, is_primitive

    candidate = primitive_polynomial(degree)
    if candidate != avoid:
        return candidate
    flipped = reciprocal(avoid)
    if flipped != avoid and is_primitive(flipped):
        return flipped
    for seed in range(1, 64):
        candidate = find_primitive_polynomial(degree, seed=seed)
        if candidate != avoid:
            return candidate
    return candidate  # degree 1/2 have a unique primitive polynomial

"""Procedure SC_TPG — TPG design for single-cone balanced BISTable kernels.

Implements the paper's Procedure SC_TPG verbatim (Section 4.1).  Registers
are processed in the order given by the kernel spec; consecutive registers
are *separated* by extra D flip-flops when the displacement
``delta_i = d_(i-1) - d_i`` is positive and *share* fanout stems (duplicate
labels) when it is negative.  FFs labelled L_1..L_M form a type-1 LFSR
(M = total kernel input width); any labels beyond M continue as a shift
register, and if sharing compresses the label span below M the string is
extended (the paper's step 5; Example 4 is the case where the first LFSR
stage comes out as L_0 — labels are normalised afterwards).

Theorem 5: the resulting TPG functionally exhaustively tests the kernel in
the minimum possible 2^M - 1 clock cycles (plus d flush cycles).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import TPGError
from repro.tpg.design import KernelSpec, Slot, TPGDesign, normalize_labels


def sc_tpg(kernel: KernelSpec, polynomial: Optional[int] = None) -> TPGDesign:
    """Build a TPG for a single-cone kernel.

    Raises
    ------
    TPGError
        If the kernel does not have exactly one cone, or the cone does not
        depend on every input register (then MC_TPG is the right tool).
    """
    if len(kernel.cones) != 1:
        raise TPGError(
            f"SC_TPG needs a single-cone kernel, got {len(kernel.cones)} cones"
        )
    cone = kernel.cones[0]
    for register in kernel.registers:
        if not cone.depends_on(register.name):
            raise TPGError(
                f"single cone must depend on every register; {register.name} missing"
            )

    registers = kernel.registers
    depths = [cone.depths[r.name] for r in registers]
    total_width = kernel.total_width

    slots: List[Slot] = []

    # Step 3: first register occupies labels 1..r_1.
    first = registers[0]
    for cell in range(1, first.width + 1):
        slots.append(Slot(cell, (first.name, cell)))
    k = first.width

    # Step 4: remaining registers, with separation or sharing.
    for i in range(1, len(registers)):
        register = registers[i]
        delta = depths[i - 1] - depths[i]
        if delta < 0:
            k -= -delta  # share |delta| signals with the previous register
        else:
            for label in range(k + 1, k + delta + 1):
                slots.append(Slot(label))  # separation FF
            k += delta
        for cell in range(1, register.width + 1):
            slots.append(Slot(k + cell, (register.name, cell)))
        k += register.width

    # Step 5: if sharing compressed the label span below M, extend the chain
    # so that M distinct consecutive labels exist for the LFSR.
    low = min(slot.label for slot in slots)
    high = max(slot.label for slot in slots)
    while high - low + 1 < total_width:
        high += 1
        slots.append(Slot(high))

    normalize_labels(slots)
    return TPGDesign(kernel, slots, total_width, polynomial)


def extra_flipflops_needed(kernel: KernelSpec) -> int:
    """Extra D FFs SC_TPG will use, without building the TPG.

    For depths sorted in descending order this is d_1 - d_n (the paper's
    closed form below Figure 11); for arbitrary orders it is the sum of the
    positive displacements plus any step-5 extension.
    """
    design = sc_tpg(kernel)
    return design.n_extra_flipflops

"""Circular self-test path (CSTP) — the paper's contrast technique [4].

Krasniewski & Pilarski's CSTP chains *all* register cells into one circular
path; in test mode each cell captures its functional input XORed with its
predecessor cell, so the register ring is simultaneously pattern generator
and compactor.  The paper contrasts it with the BIBS TPG: CSTP kernels
"can also be sequential and need not be balanced", but applying an
(effectively) exhaustive test set "requires about T * 2^M test patterns,
where T varies from 4 to 8", versus the BIBS TPG's guaranteed 2^M - 1 + d
— and CSTP's patterns are not functionally exhaustive.

:class:`CSTPSession` runs the scheme cycle-accurately on the same
gate-level engine as :class:`~repro.bist.session.BISTSession`, so the two
styles can be compared fault for fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bist.gatesim import MachineFault, SequentialGateSimulator
from repro.errors import SimulationError
from repro.faultsim.faults import Fault
from repro.rtl.circuit import RTLCircuit


@dataclass
class CSTPResult:
    """Outcome of a CSTP run over a fault list."""

    cycles: int
    golden_state: Tuple[int, ...]
    detected: List[Fault] = field(default_factory=list)
    undetected: List[Fault] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0


class CSTPSession:
    """Circular self-test path over every register cell of a circuit.

    The ring order concatenates registers in name order, LSB first; the
    final state (the ring's contents) is the test signature.
    """

    def __init__(self, circuit: RTLCircuit, seed: int = 1):
        self.circuit = circuit
        self.simulator = SequentialGateSimulator(circuit)
        self.ring: List[Tuple[str, int]] = []
        for name in sorted(circuit.registers):
            for bit in range(circuit.registers[name].width):
                self.ring.append((name, bit))
        if not self.ring:
            raise SimulationError("CSTP needs at least one register cell")
        self.seed = seed

    def _initial_state(self, machines: int) -> List[int]:
        mask = (1 << machines) - 1
        return [
            mask if (self.seed >> (i % 30)) & 1 else 0
            for i in range(len(self.ring))
        ]

    def fault_universe(self) -> List[Fault]:
        from repro.faultsim.collapse import collapse_faults

        representatives, _ = collapse_faults(self.simulator.netlist)
        return representatives

    def input_pattern_coverage(
        self,
        registers: Sequence[str],
        max_cycles: int,
        checkpoints: Sequence[int] = (),
    ) -> Dict[int, float]:
        """Fraction of the registers' joint input space applied over time.

        The paper's CSTP contrast: the ring's states are not a maximal-
        length sequence, so covering all 2^M patterns at a kernel's input
        registers takes "about T * 2^M" cycles, T in [4, 8] — versus the
        BIBS TPG's guaranteed single period.  Returns {cycles: fraction}
        at each checkpoint (and at ``max_cycles``); iteration stops early
        once coverage reaches 1.0.
        """
        total_width = sum(self.circuit.registers[name].width for name in registers)
        space = 1 << total_width
        marks = sorted(set(list(checkpoints) + [max_cycles]))
        cell_positions = [
            self.ring.index((name, bit))
            for name in registers
            for bit in range(self.circuit.registers[name].width)
        ]
        state = self._initial_state(1)
        pi_defaults = {
            self.circuit.nets[n].name: 0 for n in self.circuit.primary_inputs
        }
        cell_index = {
            (name, bit): i for i, (name, bit) in enumerate(self.ring)
        }
        seen: Set[int] = set()
        result: Dict[int, float] = {}
        n_cells = len(self.ring)
        for t in range(max_cycles):
            pattern = 0
            for position, cell in enumerate(cell_positions):
                if state[cell] & 1:
                    pattern |= 1 << position
            seen.add(pattern)
            captured: Dict[int, int] = {}

            def observe(_t, values, captured=captured):
                for name, bits in self.simulator.register_in_bits.items():
                    for bit, net in enumerate(bits):
                        captured[cell_index[(name, bit)]] = values[net]

            self.simulator.run(
                1,
                lambda _t: pi_defaults,
                observe=observe,
                packed_register_state={
                    name: [
                        state[cell_index[(name, bit)]]
                        for bit in range(self.circuit.registers[name].width)
                    ]
                    for name in self.circuit.registers
                },
            )
            state = [
                (captured.get(i, 0) ^ state[(i - 1) % n_cells]) & 1
                for i in range(n_cells)
            ]
            if t + 1 in marks or len(seen) == space:
                result[t + 1] = len(seen) / space
                if len(seen) == space:
                    break
        if max_cycles not in result and (not result or max(result) < max_cycles):
            result[max_cycles] = len(seen) / space
        return result

    def run(
        self,
        cycles: int,
        faults: Sequence[Fault] = (),
        machines_per_pass: int = 64,
    ) -> CSTPResult:
        """Run the circular path for ``cycles`` clocks against a fault list."""
        pi_defaults = {
            self.circuit.nets[n].name: 0 for n in self.circuit.primary_inputs
        }
        golden: Optional[Tuple[int, ...]] = None
        detected: List[Fault] = []
        undetected: List[Fault] = []

        pending = list(faults)
        first = True
        while pending or first:
            chunk = pending[: machines_per_pass - 1]
            pending = pending[machines_per_pass - 1:]
            machine_faults = [
                MachineFault(i + 1, fault.net, fault.stuck_at)
                for i, fault in enumerate(chunk)
            ]
            machines = len(chunk) + 1
            state = self._initial_state(machines)

            # The CSTP update is per-machine, so the simulator runs one
            # cycle at a time with explicit packed register state.
            mask = (1 << machines) - 1
            cell_index = {
                (name, bit): i for i, (name, bit) in enumerate(self.ring)
            }

            for t in range(cycles):
                captured: Dict[int, int] = {}

                def observe(_t, values, captured=captured):
                    for name, bits in self.simulator.register_in_bits.items():
                        for bit, net in enumerate(bits):
                            index = cell_index.get((name, bit))
                            if index is not None:
                                captured[index] = values[net]

                self.simulator.run(
                    1,
                    lambda _t: pi_defaults,
                    machines=machines,
                    faults=machine_faults,
                    observe=observe,
                    packed_register_state={
                        name: [
                            state[cell_index[(name, bit)]]
                            for bit in range(self.circuit.registers[name].width)
                        ]
                        for name in self.circuit.registers
                    },
                )
                # Ring update: cell_i' = functional_input_i XOR cell_{i-1}.
                n_cells = len(self.ring)
                state = [
                    (captured.get(i, 0) ^ state[(i - 1) % n_cells]) & mask
                    for i in range(n_cells)
                ]

            for machine in range(machines):
                signature = tuple(
                    (word >> machine) & 1 for word in state
                )
                if machine == 0:
                    if golden is None:
                        golden = signature
                    chunk_golden = signature
                else:
                    fault = chunk[machine - 1]
                    if signature != chunk_golden:
                        detected.append(fault)
                    else:
                        undetected.append(fault)
            first = False

        assert golden is not None
        return CSTPResult(cycles, golden, detected, undetected)

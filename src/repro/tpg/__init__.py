"""Test pattern generator design: LFSRs, SC_TPG, MC_TPG, verification."""

from repro.tpg.gf2 import (
    exponents_of,
    find_primitive_polynomial,
    is_irreducible,
    is_primitive,
    poly_from_exponents,
)
from repro.tpg.polynomials import PAPER_POLY_12, primitive_polynomial, tabulated_degrees
from repro.tpg.lfsr import CompleteLFSR, Type1LFSR, Type2LFSR
from repro.tpg.design import Cone, InputRegister, KernelSpec, Slot, TPGDesign
from repro.tpg.sc_tpg import extra_flipflops_needed, sc_tpg
from repro.tpg.mc_tpg import ConeSpan, cone_spans, mc_tpg
from repro.tpg.reconfigurable import (
    ReconfigurableTPG,
    TPGSession,
    build_reconfigurable,
    compare_with_monolithic,
)
from repro.tpg.verify import (
    ConeVerdict,
    cone_pattern_set,
    expected_pattern_count,
    is_functionally_exhaustive,
    verify_cone,
    verify_design,
)
# NOTE: repro.tpg.cstp depends on the higher-level repro.bist package and
# is intentionally not re-exported here (import repro.tpg.cstp directly).
from repro.tpg.minimal import (
    OffsetAssignment,
    design_from_offsets,
    minimal_tpg,
    optimality_gap,
)
from repro.tpg.pseudo_exhaustive import (
    PermutationSearchResult,
    TestSignalPlan,
    best_register_order,
    conflict_pairs,
    dependency_matrix,
    mcclauskey_extension_stages,
    minimal_test_signals,
)

__all__ = [
    "poly_from_exponents",
    "exponents_of",
    "is_irreducible",
    "is_primitive",
    "find_primitive_polynomial",
    "primitive_polynomial",
    "tabulated_degrees",
    "PAPER_POLY_12",
    "Type1LFSR",
    "Type2LFSR",
    "CompleteLFSR",
    "InputRegister",
    "Cone",
    "KernelSpec",
    "Slot",
    "TPGDesign",
    "sc_tpg",
    "extra_flipflops_needed",
    "mc_tpg",
    "cone_spans",
    "ConeSpan",
    "ReconfigurableTPG",
    "TPGSession",
    "build_reconfigurable",
    "compare_with_monolithic",
    "ConeVerdict",
    "verify_cone",
    "verify_design",
    "is_functionally_exhaustive",
    "cone_pattern_set",
    "expected_pattern_count",
    "dependency_matrix",
    "conflict_pairs",
    "minimal_test_signals",
    "TestSignalPlan",
    "best_register_order",
    "PermutationSearchResult",
    "mcclauskey_extension_stages",
    "minimal_tpg",
    "design_from_offsets",
    "optimality_gap",
    "OffsetAssignment",
]

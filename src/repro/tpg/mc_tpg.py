"""Procedure MC_TPG — TPG design for multiple-cone balanced BISTable kernels.

Implements the paper's Procedure MC_TPG (Section 4.2).  For every pair of
registers (i, j) and every cone depending on both, the sequential-length
difference ``delta_ij(x) = d_(j,x) - d_(i,x)`` constrains the displacement
of R_i with respect to R_j; the binding constraint is the maximum over
cones, translated to a displacement relative to the previous register
(step 3(a)iii).  After cell assignment the LFSR size is the maximum
*logical span* over cones (Theorem 7); labels beyond that span are shift-
register stages.

Complexity is O(m * n^2) for m cones and n registers, as the paper states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import TPGError
from repro.tpg.design import KernelSpec, Slot, TPGDesign, normalize_labels


@dataclass(frozen=True)
class ConeSpan:
    """Span bookkeeping for one cone under a finished assignment."""

    cone: str
    physical_span: int
    logical_span: int
    first_register: str
    last_register: str


def _pairwise_constraint(cone_list, reg_i: str, reg_j: str) -> Optional[int]:
    """Delta_{i,j}: max of d_(j,x) - d_(i,x) over cones depending on both."""
    best: Optional[int] = None
    for cone in cone_list:
        if cone.depends_on(reg_i) and cone.depends_on(reg_j):
            delta = cone.depths[reg_j] - cone.depths[reg_i]
            if best is None or delta > best:
                best = delta
    return best


def mc_tpg(kernel: KernelSpec, polynomial: Optional[int] = None) -> TPGDesign:
    """Build a TPG for a multiple-cone kernel (also handles single cones)."""
    registers = kernel.registers
    if not registers:
        raise TPGError("kernel has no input registers")
    cones = kernel.cones
    if not cones:
        raise TPGError("kernel has no output cones")

    slots: List[Slot] = []
    last_label: Dict[str, int] = {}  # k_i: label of the last cell of R_i

    first = registers[0]
    for cell in range(1, first.width + 1):
        slots.append(Slot(cell, (first.name, cell)))
    last_label[first.name] = first.width

    for i in range(1, len(registers)):
        register = registers[i]
        prev = registers[i - 1]
        k_prev = last_label[prev.name]
        candidates: List[int] = []
        for j in range(i):
            other = registers[j]
            constraint = _pairwise_constraint(cones, register.name, other.name)
            if constraint is None:
                continue
            candidates.append(constraint + last_label[other.name] - k_prev)
        if candidates:
            delta = max(candidates)
        else:
            # No cone relates this register to any earlier one: it may share
            # stages maximally.  Align its cells with the start of the string
            # (the permuted Example 7 relies on such sharing).
            delta = -k_prev
        if delta < 0:
            k = k_prev - (-delta)
        else:
            for label in range(k_prev + 1, k_prev + delta + 1):
                slots.append(Slot(label))
            k = k_prev + delta
        for cell in range(1, register.width + 1):
            slots.append(Slot(k + cell, (register.name, cell)))
        last_label[register.name] = k + register.width

    # Step 4: LFSR size = max logical span over cones.
    spans = _cone_spans(kernel, slots)
    lfsr_stages = max(span.logical_span for span in spans)
    if lfsr_stages < 1:
        raise TPGError("degenerate kernel: zero logical span")

    # Step 5: extend the label range so the LFSR has M consecutive stages.
    low = min(slot.label for slot in slots)
    high = max(slot.label for slot in slots)
    while high - low + 1 < lfsr_stages:
        high += 1
        slots.append(Slot(high))

    normalize_labels(slots)
    return TPGDesign(kernel, slots, lfsr_stages, polynomial)


def _cone_spans(kernel: KernelSpec, slots: List[Slot]) -> List[ConeSpan]:
    """Physical and logical spans per cone for a raw slot assignment.

    The *logical span* is the width of the feedback-bit-stream window the
    cone observes: a cell labelled L_k of a register at sequential length d
    sees bit b(t - (k - 1) - d).  This generalises Theorem 7's
    ``u_p - l_1 + 1 + d_p - d_1`` formula (with which it coincides whenever
    register placement follows processing order) to assignments where
    sharing pushes a later register physically before an earlier one.
    """
    first_cell: Dict[str, int] = {}
    last_cell: Dict[str, int] = {}
    for slot in slots:
        if slot.owner is None:
            continue
        name = slot.owner[0]
        first_cell[name] = min(first_cell.get(name, slot.label), slot.label)
        last_cell[name] = max(last_cell.get(name, slot.label), slot.label)

    spans: List[ConeSpan] = []
    for cone in kernel.cones:
        dependent = [r.name for r in kernel.registers if cone.depends_on(r.name)]
        if not dependent:
            raise TPGError(f"cone {cone.name} depends on no register")
        positions: List[int] = []
        seen = set()
        for name in dependent:
            depth = cone.depths[name]
            for label in range(first_cell[name], last_cell[name] + 1):
                position = (label - 1) + depth
                if position in seen:
                    raise TPGError(
                        f"cone {cone.name}: cells of {name} collide with "
                        "another register's cells at the same stream position"
                    )
                seen.add(position)
                positions.append(position)
        physical = (
            max(last_cell[n] for n in dependent)
            - min(first_cell[n] for n in dependent)
            + 1
        )
        logical = max(positions) - min(positions) + 1
        dependent.sort(key=lambda n: first_cell[n])
        spans.append(
            ConeSpan(cone.name, physical, logical, dependent[0], dependent[-1])
        )
    return spans


def cone_spans(design: TPGDesign) -> List[ConeSpan]:
    """Spans of a finished design (labels already normalised)."""
    return _cone_spans(design.kernel, design.slots)

"""Integer factorisation support for LFSR primitivity checking.

Primitivity of a degree-n polynomial over GF(2) requires the prime factors of
2^n - 1.  Miller-Rabin (deterministic for 64-bit inputs) plus Pollard's rho
handles every degree this library tabulates.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List


_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]


def is_probable_prime(n: int) -> bool:
    """Miller-Rabin primality test (deterministic below 3.3e24)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # These witnesses are deterministic for n < 3,317,044,064,679,887,385,961,981.
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _pollard_rho(n: int, rng: random.Random) -> int:
    """Find a non-trivial factor of composite odd n."""
    while True:
        c = rng.randrange(1, n)
        f = lambda x: (x * x + c) % n
        x = y = rng.randrange(2, n)
        d = 1
        while d == 1:
            x = f(x)
            y = f(f(y))
            d = math.gcd(abs(x - y), n)
        if d != n:
            return d


def factorize(n: int) -> Dict[int, int]:
    """Full prime factorisation as ``{prime: exponent}``."""
    if n < 1:
        raise ValueError("factorize needs a positive integer")
    factors: Dict[int, int] = {}
    for p in _SMALL_PRIMES:
        while n % p == 0:
            factors[p] = factors.get(p, 0) + 1
            n //= p
    rng = random.Random(0xB1B5)
    stack: List[int] = [n] if n > 1 else []
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        if is_probable_prime(m):
            factors[m] = factors.get(m, 0) + 1
            continue
        d = _pollard_rho(m, rng)
        stack.append(d)
        stack.append(m // d)
    return factors


def prime_factors(n: int) -> List[int]:
    """Distinct prime factors of n, ascending."""
    return sorted(factorize(n))

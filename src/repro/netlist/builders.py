"""Word-level gate builders.

These construct the arithmetic macros the paper's data-path circuits are made
of: ripple-carry adders and array multipliers (Table 1's circuits are 8-bit
adder/multiplier networks; only the 8 least-significant multiplier outputs
feed forward, which :func:`array_multiplier` supports via ``out_width``).
All builders append gates to an existing :class:`~repro.netlist.Netlist` and
return the output net ids, LSB first.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist


def half_adder(netlist: Netlist, a: int, b: int, name: str = "") -> Tuple[int, int]:
    """Append a half adder; returns ``(sum, carry)`` net ids."""
    s = netlist.add_gate(GateType.XOR, [a, b], name=f"{name}_s")
    c = netlist.add_gate(GateType.AND, [a, b], name=f"{name}_c")
    return s, c


def full_adder(netlist: Netlist, a: int, b: int, cin: int, name: str = "") -> Tuple[int, int]:
    """Append a full adder (2 XOR, 2 AND, 1 OR); returns ``(sum, carry)``."""
    axb = netlist.add_gate(GateType.XOR, [a, b], name=f"{name}_x1")
    s = netlist.add_gate(GateType.XOR, [axb, cin], name=f"{name}_s")
    t1 = netlist.add_gate(GateType.AND, [a, b], name=f"{name}_a1")
    t2 = netlist.add_gate(GateType.AND, [axb, cin], name=f"{name}_a2")
    c = netlist.add_gate(GateType.OR, [t1, t2], name=f"{name}_c")
    return s, c


def ripple_adder(
    netlist: Netlist,
    a: Sequence[int],
    b: Sequence[int],
    cin: Optional[int] = None,
    name: str = "add",
    keep_carry: bool = False,
) -> List[int]:
    """Append an n-bit ripple-carry adder.

    ``a`` and ``b`` are LSB-first net lists of equal width.  Returns the sum
    nets (width n, or n+1 with ``keep_carry``).  The paper's data paths are
    8 bits wide throughout, so by default the carry-out is dropped
    (modulo-2^n addition), matching a fixed-width datapath.
    """
    if len(a) != len(b):
        raise NetlistError(f"adder operand widths differ: {len(a)} vs {len(b)}")
    sums: List[int] = []
    carry = cin
    last = len(a) - 1
    for bit, (ai, bi) in enumerate(zip(a, b)):
        stage = f"{name}_fa{bit}"
        # The final stage's carry is dead logic unless kept; skip building it
        # so the netlist carries no structurally undetectable faults.
        need_carry = keep_carry or bit < last
        if carry is None:
            if need_carry:
                s, carry = half_adder(netlist, ai, bi, name=stage)
            else:
                s = netlist.add_gate(GateType.XOR, [ai, bi], name=f"{stage}_s")
        else:
            if need_carry:
                s, carry = full_adder(netlist, ai, bi, carry, name=stage)
            else:
                axb = netlist.add_gate(GateType.XOR, [ai, bi], name=f"{stage}_x1")
                s = netlist.add_gate(GateType.XOR, [axb, carry], name=f"{stage}_s")
        sums.append(s)
    if keep_carry:
        sums.append(carry)
    return sums


def array_multiplier(
    netlist: Netlist,
    a: Sequence[int],
    b: Sequence[int],
    name: str = "mul",
    out_width: Optional[int] = None,
) -> List[int]:
    """Append an unsigned array multiplier.

    Builds the classic carry-save partial-product array.  ``out_width``
    truncates the result; the paper's multipliers keep only the 8 LSBs
    ("only the 8 least significant output lines of each multiplier feed the
    next stage").  Truncation here still *builds* the full array; callers
    that want dead upper logic removed should run
    :meth:`Netlist.prune_to_outputs` after marking POs — that mirrors what a
    synthesis tool would sweep away.

    Returns LSB-first output nets.
    """
    n = len(a)
    m = len(b)
    if n == 0 or m == 0:
        raise NetlistError("multiplier operands must be non-empty")
    full_width = n + m
    width = full_width if out_width is None else min(out_width, full_width)

    # Partial products: pp[i][j] = a[j] AND b[i]
    partials: List[List[int]] = []
    for i in range(m):
        row = [
            netlist.add_gate(GateType.AND, [a[j], b[i]], name=f"{name}_pp{i}_{j}")
            for j in range(n)
        ]
        partials.append(row)

    outputs: List[int] = [partials[0][0]]
    # Running sum, LSB-first, currently bits 1..n-1 of row 0.
    acc: List[int] = partials[0][1:]
    for i in range(1, m):
        row = partials[i]
        next_acc: List[int] = []
        carry: Optional[int] = None
        for j in range(n):
            stage = f"{name}_r{i}c{j}"
            addend = acc[j] if j < len(acc) else None
            if addend is None and carry is None:
                s, c = row[j], None
            elif addend is None:
                s, c = half_adder(netlist, row[j], carry, name=stage)
            elif carry is None:
                s, c = half_adder(netlist, row[j], addend, name=stage)
            else:
                s, c = full_adder(netlist, row[j], addend, carry, name=stage)
            if j == 0:
                outputs.append(s)
            else:
                next_acc.append(s)
            carry = c
        if carry is not None:
            next_acc.append(carry)
        acc = next_acc
        if len(outputs) >= width and i < m - 1:
            # The bits still to be produced all lie above the truncation
            # width; keep folding so acc stays consistent, cheap enough.
            continue
    outputs.extend(acc)
    while len(outputs) < width:
        # Degenerate operand widths (e.g. 1x1) produce fewer bits than the
        # requested output width; the missing high bits are constant zero.
        outputs.append(
            netlist.add_gate(GateType.CONST0, [], name=f"{name}_z{len(outputs)}")
        )
    return outputs[:width]


def equality_comparator(netlist: Netlist, a: Sequence[int], b: Sequence[int], name: str = "eq") -> int:
    """Append an n-bit equality comparator; returns a single net (1 iff a==b)."""
    if len(a) != len(b):
        raise NetlistError("comparator operand widths differ")
    bits = [
        netlist.add_gate(GateType.XNOR, [ai, bi], name=f"{name}_x{i}")
        for i, (ai, bi) in enumerate(zip(a, b))
    ]
    if len(bits) == 1:
        return bits[0]
    return netlist.add_gate(GateType.AND, bits, name=f"{name}_and")


def mux2(netlist: Netlist, select: int, when0: int, when1: int, name: str = "mux") -> int:
    """Append a 2:1 mux; returns the output net."""
    not_sel = netlist.add_gate(GateType.NOT, [select], name=f"{name}_n")
    t0 = netlist.add_gate(GateType.AND, [not_sel, when0], name=f"{name}_a0")
    t1 = netlist.add_gate(GateType.AND, [select, when1], name=f"{name}_a1")
    return netlist.add_gate(GateType.OR, [t0, t1], name=f"{name}_o")


def word_mux2(
    netlist: Netlist,
    select: int,
    when0: Sequence[int],
    when1: Sequence[int],
    name: str = "wmux",
) -> List[int]:
    """Append a word-wide 2:1 mux."""
    if len(when0) != len(when1):
        raise NetlistError("mux operand widths differ")
    return [
        mux2(netlist, select, w0, w1, name=f"{name}_b{i}")
        for i, (w0, w1) in enumerate(zip(when0, when1))
    ]

"""Gate-level netlist substrate: gates, netlists, evaluation, builders, I/O."""

from repro.netlist.gates import GateType, evaluate_gate
from repro.netlist.netlist import Gate, Netlist, NetlistStats
from repro.netlist.levelize import levelize, levels
from repro.netlist.evaluate import (
    Evaluator,
    evaluate_single,
    pack_patterns,
    unpack_patterns,
)
from repro.netlist.builders import (
    array_multiplier,
    equality_comparator,
    full_adder,
    half_adder,
    mux2,
    ripple_adder,
    word_mux2,
)
from repro.netlist import bench_io

__all__ = [
    "GateType",
    "Gate",
    "Netlist",
    "NetlistStats",
    "Evaluator",
    "evaluate_gate",
    "evaluate_single",
    "levelize",
    "levels",
    "pack_patterns",
    "unpack_patterns",
    "half_adder",
    "full_adder",
    "ripple_adder",
    "array_multiplier",
    "equality_comparator",
    "mux2",
    "word_mux2",
    "bench_io",
]

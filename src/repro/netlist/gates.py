"""Gate primitives for the gate-level netlist.

Gates are the atoms of the combinational blocks that the paper's data-path
circuits (Table 1) are expanded into for fault simulation.  Every gate has a
type drawn from :class:`GateType`, an ordered list of input nets and a single
output net.

Evaluation is *packed*: a net's value is a Python integer whose bit ``i``
carries the value of the net under pattern ``i`` of the current batch.  Python
integers are arbitrary precision, so the batch width is a free parameter; the
fault simulator uses this to simulate hundreds of patterns per pass.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Sequence

from repro.errors import NetlistError


class GateType(enum.Enum):
    """The combinational primitives supported by the netlist."""

    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"

    @property
    def is_inverting(self) -> bool:
        """True for gates whose output is the complement of a base function."""
        return self in _INVERTING

    @property
    def base(self) -> "GateType":
        """The non-inverting gate implementing the same base function."""
        return _BASE_OF.get(self, self)

    @property
    def min_fanin(self) -> int:
        """Smallest legal number of inputs for this gate type."""
        if self in (GateType.CONST0, GateType.CONST1):
            return 0
        if self in (GateType.NOT, GateType.BUF):
            return 1
        return 2


_INVERTING = {GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT}
_BASE_OF = {
    GateType.NAND: GateType.AND,
    GateType.NOR: GateType.OR,
    GateType.XNOR: GateType.XOR,
    GateType.NOT: GateType.BUF,
}


def _eval_and(inputs: Sequence[int], mask: int) -> int:
    value = mask
    for v in inputs:
        value &= v
    return value


def _eval_or(inputs: Sequence[int], mask: int) -> int:
    value = 0
    for v in inputs:
        value |= v
    return value


def _eval_xor(inputs: Sequence[int], mask: int) -> int:
    value = 0
    for v in inputs:
        value ^= v
    return value


def _eval_buf(inputs: Sequence[int], mask: int) -> int:
    return inputs[0]


def _eval_const0(inputs: Sequence[int], mask: int) -> int:
    return 0


def _eval_const1(inputs: Sequence[int], mask: int) -> int:
    return mask


_BASE_EVAL: Dict[GateType, Callable[[Sequence[int], int], int]] = {
    GateType.AND: _eval_and,
    GateType.OR: _eval_or,
    GateType.XOR: _eval_xor,
    GateType.BUF: _eval_buf,
    GateType.CONST0: _eval_const0,
    GateType.CONST1: _eval_const1,
}


def evaluate_gate(gate_type: GateType, inputs: Sequence[int], mask: int) -> int:
    """Evaluate one gate over a packed batch of patterns.

    Parameters
    ----------
    gate_type:
        The gate's primitive type.
    inputs:
        Packed input values, one integer per input net.
    mask:
        ``(1 << batch_width) - 1``; every packed value must stay below it.

    Returns
    -------
    int
        The packed output value.
    """
    base = gate_type.base
    value = _BASE_EVAL[base](inputs, mask)
    if gate_type.is_inverting:
        value ^= mask
    return value


# Controlling value per base type: the input value that alone determines the
# output of AND/OR-family gates.  XOR-family gates have no controlling value.
CONTROLLING_VALUE = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}

# Output value produced when a controlling value is present at an input.
CONTROLLED_OUTPUT = {
    GateType.AND: 0,
    GateType.NAND: 1,
    GateType.OR: 1,
    GateType.NOR: 0,
}


def validate_fanin(gate_type: GateType, n_inputs: int) -> None:
    """Raise :class:`NetlistError` if ``n_inputs`` is illegal for the type."""
    if gate_type in (GateType.CONST0, GateType.CONST1):
        if n_inputs != 0:
            raise NetlistError(f"{gate_type.value} gate takes no inputs, got {n_inputs}")
    elif gate_type in (GateType.NOT, GateType.BUF):
        if n_inputs != 1:
            raise NetlistError(f"{gate_type.value} gate takes exactly 1 input, got {n_inputs}")
    else:
        if n_inputs < 2:
            raise NetlistError(f"{gate_type.value} gate needs >= 2 inputs, got {n_inputs}")

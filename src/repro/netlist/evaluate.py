"""Bit-parallel (packed) evaluation of a netlist.

A *batch* of W patterns is evaluated in one pass: each net carries a Python
integer whose bit ``i`` is the net's value under pattern ``i``.  Python's
arbitrary-precision integers make W a free parameter; the fault simulator
defaults to 256 patterns per batch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.netlist.gates import evaluate_gate
from repro.netlist.levelize import levelize


class Evaluator:
    """Reusable packed evaluator bound to one netlist.

    The gate order is computed once at construction; :meth:`run` then
    evaluates any number of batches.
    """

    def __init__(self, netlist):
        self.netlist = netlist
        self.order: List[int] = levelize(netlist)

    def run(
        self,
        input_values: Dict[int, int],
        mask: int,
        overrides: Optional[Dict[int, int]] = None,
    ) -> Dict[int, int]:
        """Evaluate one batch.

        Parameters
        ----------
        input_values:
            Packed value per primary-input net id.
        mask:
            ``(1 << batch_width) - 1``.
        overrides:
            Optional forced packed values per net id (used to inject
            stuck-at faults on gate outputs / stems).

        Returns
        -------
        dict
            Packed value for every net that received one.
        """
        values: Dict[int, int] = {}
        for net in self.netlist.primary_inputs:
            if net not in input_values:
                raise SimulationError(
                    f"missing value for primary input {self.netlist.net_name(net)}"
                )
            values[net] = input_values[net] & mask
        if overrides:
            for net, forced in overrides.items():
                values[net] = forced & mask
        gates = self.netlist.gates
        for gate_index in self.order:
            gate = gates[gate_index]
            if overrides and gate.output in overrides:
                continue
            packed_inputs = [values[n] for n in gate.inputs]
            values[gate.output] = evaluate_gate(gate.gtype, packed_inputs, mask)
        return values

    def outputs(self, values: Dict[int, int]) -> List[int]:
        """Extract the packed PO values from a :meth:`run` result."""
        return [values[net] for net in self.netlist.primary_outputs]


def pack_patterns(patterns: Sequence[Sequence[int]]) -> List[int]:
    """Pack a batch of bit-vectors column-wise.

    ``patterns[i][j]`` is the value of input ``j`` under pattern ``i``.
    Returns one packed integer per input position, with pattern ``i`` at
    bit ``i``.
    """
    if not patterns:
        return []
    width = len(patterns[0])
    packed = [0] * width
    for pattern_index, pattern in enumerate(patterns):
        if len(pattern) != width:
            raise SimulationError("ragged pattern batch")
        bit = 1 << pattern_index
        for position, value in enumerate(pattern):
            if value:
                packed[position] |= bit
    return packed


def unpack_patterns(packed: Sequence[int], count: int) -> List[List[int]]:
    """Inverse of :func:`pack_patterns` for the first ``count`` patterns."""
    return [
        [(word >> pattern_index) & 1 for word in packed]
        for pattern_index in range(count)
    ]


def evaluate_single(netlist, assignment: Dict[int, int]) -> Dict[int, int]:
    """Convenience: evaluate one (unpacked) input assignment.

    ``assignment`` maps primary-input net ids to 0/1.  Returns the value of
    every net.  Used heavily by tests as a trustworthy reference.
    """
    evaluator = Evaluator(netlist)
    return evaluator.run(assignment, 1)

"""ISCAS-style ``.bench`` reader/writer.

The paper's BITS system exchanges circuits as EDIF; we use the far simpler
textual ``.bench`` dialect that the test community standardised on (ISCAS-85
distribution format), which captures exactly the combinational netlists our
fault simulator consumes::

    INPUT(a)
    INPUT(b)
    OUTPUT(s)
    t = AND(a, b)
    s = XOR(a, t)

Supported functions: AND OR NAND NOR XOR XNOR NOT BUF(F) CONST0 CONST1.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.errors import NetlistError
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist

_LINE_RE = re.compile(r"^\s*(\S+)\s*=\s*([A-Za-z01]+)\s*\((.*)\)\s*$")
_IO_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*(\S+)\s*\)\s*$")

_NAME_TO_TYPE = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}


def loads(text: str, name: str = "bench", validate: bool = True) -> Netlist:
    """Parse ``.bench`` text into a :class:`Netlist`.

    ``validate=False`` skips the final :meth:`Netlist.validate` pass so
    structurally broken files (combinational cycles, floating outputs) can
    still be loaded — that is what lets ``repro-bist lint`` report *every*
    violation in a bad file instead of dying on the first.
    """
    netlist = Netlist(name)
    nets: Dict[str, int] = {}
    outputs: List[str] = []

    def net_of(token: str) -> int:
        if token not in nets:
            nets[token] = netlist.add_net(token)
        return nets[token]

    gate_lines: List[tuple] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            kind, token = io_match.groups()
            if kind == "INPUT":
                netlist.mark_input(net_of(token))
            else:
                outputs.append(token)
            continue
        gate_match = _LINE_RE.match(line)
        if not gate_match:
            raise NetlistError(f"unparseable .bench line: {raw_line!r}")
        target, func, arg_text = gate_match.groups()
        func = func.upper()
        if func not in _NAME_TO_TYPE:
            raise NetlistError(f"unknown .bench function {func!r}")
        args = [token.strip() for token in arg_text.split(",") if token.strip()]
        gate_lines.append((target, _NAME_TO_TYPE[func], args))

    for target, gtype, args in gate_lines:
        netlist.add_gate(gtype, [net_of(a) for a in args], net_of(target), name=target)
    for token in outputs:
        if token not in nets and validate:
            raise NetlistError(f"OUTPUT({token}) never defined")
        netlist.mark_output(net_of(token))
    if validate:
        netlist.validate()
    return netlist


def dumps(netlist: Netlist) -> str:
    """Serialise a :class:`Netlist` to ``.bench`` text."""
    lines: List[str] = [f"# {netlist.name}"]
    for net in netlist.primary_inputs:
        lines.append(f"INPUT({netlist.net_name(net)})")
    for net in netlist.primary_outputs:
        lines.append(f"OUTPUT({netlist.net_name(net)})")
    for gate in netlist.gates:
        args = ", ".join(netlist.net_name(n) for n in gate.inputs)
        lines.append(f"{netlist.net_name(gate.output)} = {gate.gtype.value}({args})")
    return "\n".join(lines) + "\n"


def load(path, name: str = "", validate: bool = True) -> Netlist:
    """Read a ``.bench`` file from disk."""
    with open(path) as handle:
        return loads(handle.read(), name or str(path), validate=validate)


def dump(netlist: Netlist, path) -> None:
    """Write a ``.bench`` file to disk."""
    with open(path, "w") as handle:
        handle.write(dumps(netlist))

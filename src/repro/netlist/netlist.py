"""Flat gate-level netlist container.

A :class:`Netlist` is a directed acyclic network of gates over named nets.
It is the substrate on which fault simulation runs.  RTL circuits are lowered
to a netlist by flattening each combinational block into gates; registers of a
*balanced* circuit are flattened into wires (see ``repro.faultsim`` — this
preserves per-pattern behaviour exactly, which is the substance of the paper's
1-step functional testability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import NetlistError
from repro.netlist.gates import GateType, validate_fanin


@dataclass
class Gate:
    """A single gate instance.

    Attributes
    ----------
    gtype:
        Primitive gate type.
    inputs:
        Ordered list of input net ids.
    output:
        The single output net id.
    name:
        Optional instance name (used in reports and .bench export).
    """

    gtype: GateType
    inputs: Tuple[int, ...]
    output: int
    name: str = ""


class Netlist:
    """A flat combinational netlist.

    Nets are integer ids handed out by :meth:`add_net`; each optionally has a
    human-readable name.  Gates are appended with :meth:`add_gate`.  The
    netlist is single-driver: a net may be the output of at most one gate.
    """

    def __init__(self, name: str = "netlist"):
        self.name = name
        self._net_names: List[Optional[str]] = []
        self._name_to_net: Dict[str, int] = {}
        self.gates: List[Gate] = []
        self.primary_inputs: List[int] = []
        self.primary_outputs: List[int] = []
        self._driver: Dict[int, int] = {}  # net id -> gate index

    # ------------------------------------------------------------------ nets

    @property
    def n_nets(self) -> int:
        """Number of nets in the netlist."""
        return len(self._net_names)

    def add_net(self, name: Optional[str] = None) -> int:
        """Create a new net and return its id.

        Named nets must be unique; anonymous nets get no name.
        """
        if name is not None:
            if name in self._name_to_net:
                raise NetlistError(f"duplicate net name {name!r}")
        net = len(self._net_names)
        self._net_names.append(name)
        if name is not None:
            self._name_to_net[name] = net
        return net

    def add_nets(self, count: int, prefix: Optional[str] = None) -> List[int]:
        """Create ``count`` nets, optionally named ``prefix0..prefixN-1``."""
        if prefix is None:
            return [self.add_net() for _ in range(count)]
        return [self.add_net(f"{prefix}{i}") for i in range(count)]

    def net_name(self, net: int) -> str:
        """Human-readable name of a net (``nN`` for anonymous nets)."""
        name = self._net_names[net]
        return name if name is not None else f"n{net}"

    def find_net(self, name: str) -> int:
        """Return the id of the named net, raising if absent."""
        try:
            return self._name_to_net[name]
        except KeyError:
            raise NetlistError(f"no net named {name!r}") from None

    # ----------------------------------------------------------------- gates

    def add_gate(
        self,
        gtype: GateType,
        inputs: Sequence[int],
        output: Optional[int] = None,
        name: str = "",
    ) -> int:
        """Add a gate; returns its output net id.

        ``output`` may name an existing (undriven) net; if omitted a fresh
        anonymous net is created.
        """
        validate_fanin(gtype, len(inputs))
        for net in inputs:
            if not 0 <= net < self.n_nets:
                raise NetlistError(f"gate input references unknown net {net}")
        if output is None:
            output = self.add_net()
        elif not 0 <= output < self.n_nets:
            raise NetlistError(f"gate output references unknown net {output}")
        if output in self._driver:
            raise NetlistError(f"net {self.net_name(output)} already driven")
        if output in self.primary_inputs:
            raise NetlistError(f"primary input {self.net_name(output)} cannot be driven")
        gate_index = len(self.gates)
        self.gates.append(Gate(gtype, tuple(inputs), output, name))
        self._driver[output] = gate_index
        return output

    def driver_of(self, net: int) -> Optional[int]:
        """Index of the gate driving ``net``, or None for PIs/floating nets."""
        return self._driver.get(net)

    # ------------------------------------------------------------------- I/O

    def mark_input(self, net: int) -> None:
        """Declare a net to be a primary input."""
        if net in self._driver:
            raise NetlistError(f"net {self.net_name(net)} is gate-driven, not an input")
        if net not in self.primary_inputs:
            self.primary_inputs.append(net)

    def mark_output(self, net: int) -> None:
        """Declare a net to be a primary output."""
        if net not in self.primary_outputs:
            self.primary_outputs.append(net)

    def new_input(self, name: Optional[str] = None) -> int:
        """Create a net and mark it as a primary input."""
        net = self.add_net(name)
        self.mark_input(net)
        return net

    def new_inputs(self, count: int, prefix: str) -> List[int]:
        """Create ``count`` named primary inputs."""
        return [self.new_input(f"{prefix}{i}") for i in range(count)]

    # ------------------------------------------------------------- structure

    def fanout_map(self) -> Dict[int, List[int]]:
        """Map each net id to the indices of gates reading it."""
        fanout: Dict[int, List[int]] = {}
        for index, gate in enumerate(self.gates):
            for net in gate.inputs:
                fanout.setdefault(net, []).append(index)
        return fanout

    def fanout_count(self, net: int) -> int:
        """Number of gate input pins reading ``net`` (PO counts do not add)."""
        count = 0
        for gate in self.gates:
            for input_net in gate.inputs:
                if input_net == net:
                    count += 1
        return count

    def transitive_fanout_gates(self, net: int) -> List[int]:
        """Gate indices in the transitive fanout of ``net``, in level order.

        Used by the fault simulator to restrict resimulation to the cone a
        fault can influence.  The returned list respects gate topological
        order (gates are appended in dependency order is *not* assumed —
        callers should levelize first; here we use a worklist over the
        fanout map).
        """
        fanout = self.fanout_map()
        affected: Set[int] = set()
        frontier = list(fanout.get(net, ()))
        while frontier:
            gate_index = frontier.pop()
            if gate_index in affected:
                continue
            affected.add(gate_index)
            out = self.gates[gate_index].output
            frontier.extend(fanout.get(out, ()))
        return sorted(affected)

    def support_of(self, nets: Iterable[int]) -> Set[int]:
        """The set of primary-input nets in the transitive fanin of ``nets``."""
        pis = set(self.primary_inputs)
        seen: Set[int] = set()
        support: Set[int] = set()
        stack = list(nets)
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            if net in pis:
                support.add(net)
                continue
            driver = self._driver.get(net)
            if driver is not None:
                stack.extend(self.gates[driver].inputs)
        return support

    def prune_to_outputs(self) -> "Netlist":
        """Return a copy keeping only logic in the fanin cone of the POs.

        The paper's multipliers feed only their 8 least-significant outputs
        forward; pruning removes the upper-half logic that can never be
        observed.
        """
        needed_nets: Set[int] = set()
        stack = list(self.primary_outputs)
        while stack:
            net = stack.pop()
            if net in needed_nets:
                continue
            needed_nets.add(net)
            driver = self._driver.get(net)
            if driver is not None:
                stack.extend(self.gates[driver].inputs)

        pruned = Netlist(self.name)
        remap: Dict[int, int] = {}
        for net in range(self.n_nets):
            if net in needed_nets or net in self.primary_inputs:
                remap[net] = pruned.add_net(self._net_names[net])
        for net in self.primary_inputs:
            pruned.mark_input(remap[net])
        for gate in self.gates:
            if gate.output in needed_nets:
                pruned.add_gate(
                    gate.gtype,
                    [remap[i] for i in gate.inputs],
                    remap[gate.output],
                    gate.name,
                )
        for net in self.primary_outputs:
            pruned.mark_output(remap[net])
        return pruned

    def validate(self) -> None:
        """Check structural sanity: POs reachable, no combinational cycles.

        Raises :class:`NetlistError` on the first violation found.
        """
        # every gate input must be driven or be a PI
        driven = set(self._driver) | set(self.primary_inputs)
        for gate in self.gates:
            for net in gate.inputs:
                if net not in driven:
                    raise NetlistError(
                        f"gate {gate.name or gate.gtype.value} reads floating net "
                        f"{self.net_name(net)}"
                    )
        for net in self.primary_outputs:
            if net not in driven:
                raise NetlistError(f"primary output {self.net_name(net)} is floating")
        # cycle check is performed by levelization
        from repro.netlist.levelize import levelize

        levelize(self)

    def fingerprint(self) -> str:
        """Stable digest of the netlist structure (gates, nets, I/O).

        Two netlists with equal fingerprints are structurally identical —
        same net ids, names, gates and port lists — so packed evaluation
        results computed for one are valid for the other.  Used as the
        golden-run cache key by :mod:`repro.engine`.
        """
        import hashlib

        digest = hashlib.sha256()
        digest.update(repr(self._net_names).encode())
        digest.update(repr(self.primary_inputs).encode())
        digest.update(repr(self.primary_outputs).encode())
        for gate in self.gates:
            digest.update(
                f"{gate.gtype.value}:{gate.inputs}:{gate.output}".encode()
            )
        return digest.hexdigest()

    # --------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def counts_by_type(self) -> Dict[GateType, int]:
        """Histogram of gate types, for Table-1 style reporting."""
        counts: Dict[GateType, int] = {}
        for gate in self.gates:
            counts[gate.gtype] = counts.get(gate.gtype, 0) + 1
        return counts

    def stats(self) -> "NetlistStats":
        """Summary statistics used by the experiment harness."""
        from repro.netlist.levelize import levelize

        order = levelize(self)
        depth = 0
        level: Dict[int, int] = {net: 0 for net in self.primary_inputs}
        for gate_index in order:
            gate = self.gates[gate_index]
            lvl = 1 + max((level.get(n, 0) for n in gate.inputs), default=0)
            level[gate.output] = lvl
            depth = max(depth, lvl)
        return NetlistStats(
            name=self.name,
            n_gates=len(self.gates),
            n_nets=self.n_nets,
            n_inputs=len(self.primary_inputs),
            n_outputs=len(self.primary_outputs),
            logic_depth=depth,
        )


@dataclass(frozen=True)
class NetlistStats:
    """Headline numbers describing a netlist."""

    name: str
    n_gates: int
    n_nets: int
    n_inputs: int
    n_outputs: int
    logic_depth: int

"""Topological levelization of a netlist.

Produces a gate evaluation order such that every gate appears after all gates
driving its inputs.  Detects combinational cycles, which the paper's circuit
model forbids (Section 3.1: "combinational cycles ... are not allowed").
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import NetlistError


def levelize(netlist) -> List[int]:
    """Return gate indices in topological (level) order.

    Raises
    ------
    NetlistError
        If the netlist contains a combinational cycle.
    """
    # Kahn's algorithm over the gate dependency graph.
    n_gates = len(netlist.gates)
    driver: Dict[int, int] = {}
    for index, gate in enumerate(netlist.gates):
        driver[gate.output] = index

    pending: List[int] = [0] * n_gates  # unresolved input count per gate
    dependents: Dict[int, List[int]] = {}
    ready: List[int] = []
    for index, gate in enumerate(netlist.gates):
        unresolved = 0
        for net in gate.inputs:
            source = driver.get(net)
            if source is not None:
                unresolved += 1
                dependents.setdefault(source, []).append(index)
        pending[index] = unresolved
        if unresolved == 0:
            ready.append(index)

    order: List[int] = []
    while ready:
        gate_index = ready.pop()
        order.append(gate_index)
        for dependent in dependents.get(gate_index, ()):
            pending[dependent] -= 1
            if pending[dependent] == 0:
                ready.append(dependent)

    if len(order) != n_gates:
        stuck = [netlist.gates[i].name or f"g{i}" for i in range(n_gates) if pending[i] > 0]
        raise NetlistError(f"combinational cycle involving gates: {stuck[:8]}")
    return order


def levels(netlist) -> Dict[int, int]:
    """Map each gate index to its logic level (PIs are level 0)."""
    order = levelize(netlist)
    net_level: Dict[int, int] = {net: 0 for net in netlist.primary_inputs}
    gate_level: Dict[int, int] = {}
    for gate_index in order:
        gate = netlist.gates[gate_index]
        lvl = 1 + max((net_level.get(n, 0) for n in gate.inputs), default=0)
        gate_level[gate_index] = lvl
        net_level[gate.output] = lvl
    return gate_level

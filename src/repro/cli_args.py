"""Shared CLI flag clusters and JSON serialization for engine commands.

``python -m repro selftest`` and ``python -m repro.experiments`` grew the
same four flag families independently — execution (``--jobs``,
``--executor``, ``--shard-timeout``), checkpointing (``--checkpoint-dir``,
``--resume``), governance (``--deadline``, ``--max-memory``,
``--max-patterns``) and telemetry (``--trace-out``, ``--metrics-out``,
``--quiet``).  This module defines them once as an argparse *parent*
parser, and maps the parsed namespace onto the engine's
:class:`~repro.exec.RunConfig` so both CLIs drive the run API the same
way a library caller would.

It is also the home of the one true ``--json`` serialization path:
:func:`render_json` / :func:`emit_json` fix the byte format (two-space
indent, sorted keys) and :func:`result_payload` fixes the result *shape*
(the unified ``to_json()`` surface plus run context and the guard block).
``repro-bist selftest --json``, ``python -m repro.experiments --json`` and
the ``repro.serve`` result endpoint all route through these helpers, so
the three surfaces emit byte-identical JSON for the same result.
"""

from __future__ import annotations

import argparse
import json
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Union

from repro.exec.base import available_executors
from repro.exec.config import (
    KERNEL_CHOICES,
    CheckpointPolicy,
    ExecutionPolicy,
    RetryPolicy,
    RunConfig,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from repro.guard.budget import Budget
    from repro.guard.cancel import CancelToken


def engine_parent_parser() -> argparse.ArgumentParser:
    """The shared engine/guard/telemetry flags as an argparse parent.

    Pass via ``parents=[engine_parent_parser()]`` when building a
    subcommand parser (``add_help=False`` keeps the child's ``-h`` the
    only help flag).  Flags parse into the namespace attributes
    :func:`runconfig_from_args` reads.
    """
    parent = argparse.ArgumentParser(add_help=False)
    execution = parent.add_argument_group("engine execution")
    execution.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="shard fault simulation over N workers "
             "(bit-identical to serial; see docs/ENGINE.md)")
    execution.add_argument(
        "--executor", default=None, choices=available_executors(),
        help="execution backend for sharded runs (default: "
             "$REPRO_ENGINE_EXECUTOR, then 'process'; results are "
             "bit-identical across backends — see docs/EXECUTORS.md)")
    execution.add_argument(
        "--kernel", default=None, choices=KERNEL_CHOICES,
        help="evaluation kernel: 'packed' (event-driven bigint loop), "
             "'vec' (numpy-vectorised, falls back to packed on "
             "unsupported netlists) or 'auto' (cost heuristic; the "
             "default, also via $REPRO_ENGINE_KERNEL); results are "
             "bit-identical across kernels — see docs/ENGINE.md")
    execution.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="seconds before a shard round is declared hung and retried "
             "on a fresh worker")
    execution.add_argument(
        "--peers", default=None, metavar="HOST:PORT,HOST:PORT",
        help="worker-agent peer set for --executor remote (also via "
             "$REPRO_PEERS); start peers with 'python -m repro worker' — "
             "see docs/DISTRIBUTED.md")
    execution.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="journal completed engine shard rounds under this directory "
             "(resumable runs)")
    execution.add_argument(
        "--resume", action="store_true",
        help="replay journaled shard rounds instead of re-running them")
    governance = parent.add_argument_group("run governance")
    governance.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; on expiry the run stops at the next "
             "round boundary with partial results")
    governance.add_argument(
        "--max-memory", default=None, metavar="SIZE",
        help="resident-memory ceiling (e.g. 2g, 512m); the engine sheds "
             "parallelism under pressure before stopping")
    governance.add_argument(
        "--max-patterns", type=int, default=None, metavar="N",
        help="pattern budget: stops each engine run at a round boundary "
             "once reached")
    governance.add_argument(
        "--analyze", action="store_true",
        help="run the static SCOAP/COP testability pre-flight and report "
             "the predicted-vs-measured coverage delta (advisory; never "
             "changes results — see docs/TESTABILITY.md)")
    telemetry = parent.add_argument_group("telemetry")
    telemetry.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="enable telemetry and write a Chrome trace_event file "
             "(chrome://tracing / Perfetto)")
    telemetry.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="enable telemetry and write a Prometheus text-format "
             "metrics file")
    telemetry.add_argument(
        "--quiet", action="store_true",
        help="suppress progress text (exit code still reports the "
             "outcome)")
    return parent


def runconfig_from_args(
    args: argparse.Namespace,
    *,
    budget: Optional["Budget"] = None,
    cancel: Optional["CancelToken"] = None,
    checkpoint_dir: Optional[Union[str, "Path"]] = None,
    max_patterns: Optional[int] = None,
) -> RunConfig:
    """Build a :class:`RunConfig` from a namespace the parent parser filled.

    ``budget`` / ``cancel`` are the caller's armed governance objects
    (``--deadline`` / ``--max-memory`` / ``--max-patterns`` feed
    ``Budget.from_cli``, not this function).  ``checkpoint_dir``
    overrides ``--checkpoint-dir`` when the caller resolved a default
    (e.g. ``<outdir>/checkpoints``); ``max_patterns`` caps the run when
    the command computed its own pattern budget.
    """
    peers = getattr(args, "peers", None)
    if peers:
        # Process-wide by design: the peer set is infrastructure, not run
        # shape (it is excluded from checkpoint run keys the same way the
        # executor choice is), so every run this CLI makes shares it.
        from repro.exec.remote import set_default_peers

        set_default_peers(peers)
    config = RunConfig(
        execution=ExecutionPolicy(
            executor=getattr(args, "executor", None),
            jobs=getattr(args, "jobs", None),
            kernel=getattr(args, "kernel", None),
        ),
        retry=RetryPolicy(shard_timeout=getattr(args, "shard_timeout", None)),
        checkpoint=CheckpointPolicy(
            directory=(checkpoint_dir if checkpoint_dir is not None
                       else getattr(args, "checkpoint_dir", None)),
            resume=getattr(args, "resume", False),
        ),
        budget=budget,
        cancel=cancel,
        analyze=getattr(args, "analyze", False),
    )
    if max_patterns is not None:
        config = config.replace(max_patterns=max_patterns)
    return config


# --------------------------------------------------------- JSON serialization

def render_json(payload: Mapping[str, Any]) -> str:
    """The canonical machine-readable rendering of one payload.

    Two-space indent, sorted keys, ``default=str`` for the occasional
    non-JSON-native leaf (paths, enums in figure reports).  Every surface
    that claims byte-identical JSON output renders through this function.
    """
    return json.dumps(payload, indent=2, sort_keys=True, default=str)


def emit_json(payload: Mapping[str, Any]) -> None:
    """Print one canonical JSON object on stdout."""
    print(render_json(payload))


def result_payload(
    result: Any,
    *,
    context: Optional[Mapping[str, Any]] = None,
    guard: Optional[Mapping[str, Any]] = None,
    include_faults: bool = False,
) -> Dict[str, Any]:
    """One result object -> the shared ``--json`` payload shape.

    ``result`` is anything with the unified ``to_json()`` surface
    (:mod:`repro.results`).  ``context`` adds run identification (circuit,
    kernel, seed, ...) at the top level; ``guard`` attaches the
    :func:`repro.guard.guard_summary` block under ``"guard"``.  The CLIs
    and the serve result endpoint build their payloads here so the shape
    can never fork again.
    """
    payload: Dict[str, Any] = result.to_json(include_faults)
    if context:
        payload.update(context)
    if guard is not None:
        payload["guard"] = dict(guard)
    return payload


def write_telemetry_artifacts(
    args: argparse.Namespace,
    config: Mapping[str, Any],
    shards: Optional[Any] = None,
    guard: Optional[Mapping[str, Any]] = None,
    announce: Optional[Any] = None,
    testability: Optional[Mapping[str, Any]] = None,
) -> None:
    """Write ``--trace-out`` / ``--metrics-out`` files for the current run.

    Shared by ``repro-bist selftest`` and ``python -m repro.experiments``;
    ``announce`` is an optional ``str -> None`` progress printer (silenced
    by ``--quiet`` at the call site).  ``testability`` is the
    predicted-vs-measured block an ``--analyze`` run stamped on its result
    (:attr:`~repro.engine.core.EngineResult.testability`); it lands under
    ``extra["testability"]`` in the run manifest.
    """
    from repro import telemetry

    extra = {"testability": dict(testability)} if testability else None
    manifest = telemetry.RunManifest.collect(
        config=dict(config), shards=shards, guard=guard, extra=extra,
    )
    if getattr(args, "trace_out", None):
        telemetry.export.write_trace(args.trace_out, manifest=manifest)
        if announce is not None:
            announce(f"wrote trace to {args.trace_out}")
    if getattr(args, "metrics_out", None):
        telemetry.export.write_metrics(args.metrics_out)
        if announce is not None:
            announce(f"wrote metrics to {args.metrics_out}")

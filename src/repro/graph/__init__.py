"""Circuit graph model G=(V,E,w) and structural queries (Section 3.1)."""

from repro.graph.model import (
    CircuitGraph,
    Edge,
    EdgeKind,
    Vertex,
    VertexKind,
    WIRE_WEIGHT,
)
from repro.graph.build import build_circuit_graph
from repro.graph.structures import (
    URFSWitness,
    cycle_register_edges,
    cyclic_vertices,
    find_urfs_witnesses,
    is_acyclic,
    sequential_path_lengths,
    simple_cycles,
    strongly_connected_components,
    topological_order,
)
from repro.graph.paths import (
    all_paths,
    maximal_delay,
    path_sequential_length,
    reachable_from,
    sequential_depth,
)

__all__ = [
    "CircuitGraph",
    "Vertex",
    "VertexKind",
    "Edge",
    "EdgeKind",
    "WIRE_WEIGHT",
    "build_circuit_graph",
    "strongly_connected_components",
    "is_acyclic",
    "cyclic_vertices",
    "simple_cycles",
    "cycle_register_edges",
    "URFSWitness",
    "find_urfs_witnesses",
    "sequential_path_lengths",
    "topological_order",
    "sequential_depth",
    "all_paths",
    "path_sequential_length",
    "maximal_delay",
    "reachable_from",
]

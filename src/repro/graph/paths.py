"""Path queries on circuit graphs: sequential lengths, depth, delay.

*Sequential length* of a path is its number of register edges; the
*sequential depth* of an acyclic circuit is the largest sequential length of
any PI-to-PO path (the ``d`` flush cycles in Corollary 1).  The *maximal
delay* of a BISTable design counts BILBO registers along PI-to-PO paths
(Table 2 row 4's metric: each BILBO register adds one time unit).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.errors import GraphError
from repro.graph.model import CircuitGraph
from repro.graph.structures import topological_order


def sequential_depth(graph: CircuitGraph) -> int:
    """Largest sequential length over all paths (acyclic graphs only)."""
    order = topological_order(graph)
    longest: Dict[str, int] = {name: 0 for name in order}
    best = 0
    for node in order:
        for edge in graph.out_edges(node):
            candidate = longest[node] + edge.sequential_length
            if candidate > longest[edge.head]:
                longest[edge.head] = candidate
                best = max(best, candidate)
    return best


def all_paths(
    graph: CircuitGraph,
    source: str,
    target: str,
    limit: int = 100000,
) -> List[List[str]]:
    """Enumerate simple paths from source to target (small graphs only)."""
    paths: List[List[str]] = []
    stack: List[Tuple[str, List[str]]] = [(source, [source])]
    while stack:
        node, path = stack.pop()
        for successor in graph.successors(node):
            if successor == target:
                paths.append(path + [successor])
                if len(paths) >= limit:
                    raise GraphError("too many paths to enumerate")
            elif successor not in path:
                stack.append((successor, path + [successor]))
    return paths


def path_sequential_length(graph: CircuitGraph, path: List[str]) -> int:
    """Number of register edges along a vertex path (min over parallel edges).

    When two vertices are joined by both a wire and a register edge the wire
    edge is the shorter continuation; the paper's path notion follows edges,
    so we take each hop's minimum available sequential step — callers that
    care about specific edges should enumerate edges directly.
    """
    total = 0
    for tail, head in zip(path, path[1:]):
        steps = [
            e.sequential_length for e in graph.out_edges(tail) if e.head == head
        ]
        if not steps:
            raise GraphError(f"no edge {tail} -> {head}")
        total += min(steps)
    return total


def maximal_delay(graph: CircuitGraph, bilbo_registers: Iterable[str]) -> int:
    """Maximal number of BILBO registers on any PI-to-PO path.

    The paper's Table 2 row 4: each BILBO register adds one unit of delay.
    Acyclic graphs use longest-path DP; cyclic graphs (feedback loops in
    normal operation) fall back to simple-path enumeration, which is fine
    at the paper's circuit sizes.
    """
    from repro.graph.structures import is_acyclic

    bilbo = set(bilbo_registers)
    if not is_acyclic(graph):
        return _maximal_delay_simple_paths(graph, bilbo)
    order = topological_order(graph)
    cost: Dict[str, int] = {}
    for vertex in graph.input_vertices():
        cost[vertex.name] = 0
    for node in order:
        if node not in cost:
            continue
        for edge in graph.out_edges(node):
            step = 1 if (edge.register in bilbo) else 0
            candidate = cost[node] + step
            if candidate > cost.get(edge.head, -1):
                cost[edge.head] = candidate
    return max(
        (cost.get(v.name, 0) for v in graph.output_vertices()),
        default=0,
    )


def _maximal_delay_simple_paths(graph: CircuitGraph, bilbo: Set[str]) -> int:
    """Max BILBO count over simple PI-to-PO paths (cyclic graphs)."""
    targets = {v.name for v in graph.output_vertices()}
    best = 0
    for source in graph.input_vertices():
        stack: List[Tuple[str, int, frozenset]] = [
            (source.name, 0, frozenset([source.name]))
        ]
        while stack:
            node, cost, visited = stack.pop()
            if node in targets:
                best = max(best, cost)
            for edge in graph.out_edges(node):
                if edge.head in visited:
                    continue
                step = 1 if edge.register in bilbo else 0
                stack.append((edge.head, cost + step, visited | {edge.head}))
    return best


def reachable_from(graph: CircuitGraph, sources: Iterable[str]) -> Set[str]:
    """Vertices reachable from any of the sources (inclusive)."""
    seen: Set[str] = set()
    stack = list(sources)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(graph.successors(node))
    return seen

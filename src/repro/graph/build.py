"""Build a circuit graph from an RTL circuit (Section 3.1's modelling rules).

Derivation rules, matching the paper's Figure 3 example:

* every combinational block, PI and PO becomes a vertex;
* a net read by more than one sink gets a **fanout vertex**, with a wire
  edge from the net's source and wire edges to each sink;
* a register becomes a **register edge** from the vertex supplying its input
  net to the vertex consuming its output net;
* when a register directly feeds another register with no fanout, a
  **vacuous vertex** is inserted between the two register edges.
"""

from __future__ import annotations


from repro.errors import GraphError
from repro.graph.model import CircuitGraph, EdgeKind, VertexKind
from repro.rtl.circuit import RTLCircuit


def _fanout_name(net_name: str) -> str:
    return f"FO({net_name})"


def _vacuous_name(net_name: str) -> str:
    return f"V({net_name})"


def build_circuit_graph(circuit: RTLCircuit) -> CircuitGraph:
    """Construct the circuit graph of an RTL circuit."""
    circuit.validate()
    graph = CircuitGraph(circuit.name)
    drivers = circuit.drivers()
    sinks = circuit.sinks()

    for block in circuit.blocks.values():
        graph.add_vertex(block.name, VertexKind.LOGIC)
    for net in circuit.primary_inputs:
        graph.add_vertex(f"PI({circuit.nets[net].name})", VertexKind.INPUT)
    for net in circuit.primary_outputs:
        graph.add_vertex(f"PO({circuit.nets[net].name})", VertexKind.OUTPUT)

    # Pass 1: create fanout vertices and the vacuous vertices needed for
    # register-to-register connections.
    for net in circuit.nets:
        net_sinks = sinks[net.index]
        if len(net_sinks) > 1:
            graph.add_vertex(_fanout_name(net.name), VertexKind.FANOUT)
        elif len(net_sinks) == 1:
            driver = drivers[net.index]
            sink = net_sinks[0]
            if driver.kind == "register" and sink.kind == "register":
                graph.add_vertex(_vacuous_name(net.name), VertexKind.VACUOUS)

    def source_vertex(net_index: int) -> str:
        """Vertex from which this net's value is taken for downstream edges."""
        net = circuit.nets[net_index]
        if len(sinks[net_index]) > 1:
            return _fanout_name(net.name)
        driver = drivers[net_index]
        if driver.kind == "pi":
            return f"PI({net.name})"
        if driver.kind == "block":
            return driver.name
        # register driver with a single sink
        sink = sinks[net_index][0]
        if sink.kind == "register":
            return _vacuous_name(net.name)
        raise GraphError(
            f"net {net.name}: register-driven single-sink net resolves at the sink"
        )

    def sink_vertex(sink) -> str:
        if sink.kind == "block":
            return sink.name
        if sink.kind == "po":
            return f"PO({sink.name})"
        raise GraphError("register sinks are handled through register edges")

    # Pass 2: wire edges.
    for net in circuit.nets:
        net_sinks = sinks[net.index]
        driver = drivers[net.index]
        if len(net_sinks) > 1:
            fanout = _fanout_name(net.name)
            # Edge from the driver into the fanout vertex (unless driven by a
            # register, in which case the register edge lands on the fanout
            # vertex directly in pass 3).
            if driver.kind == "pi":
                graph.add_edge(f"PI({net.name})", fanout, EdgeKind.WIRE)
            elif driver.kind == "block":
                graph.add_edge(driver.name, fanout, EdgeKind.WIRE)
            for sink in net_sinks:
                if sink.kind != "register":
                    graph.add_edge(fanout, sink_vertex(sink), EdgeKind.WIRE)
        else:
            sink = net_sinks[0]
            if driver.kind == "register" or sink.kind == "register":
                continue  # handled by register edges / vacuous vertices
            tail = f"PI({net.name})" if driver.kind == "pi" else driver.name
            graph.add_edge(tail, sink_vertex(sink), EdgeKind.WIRE)

    # Pass 3: register edges.
    for register in circuit.registers.values():
        in_net = register.input_net
        out_net = register.output_net
        tail = source_vertex(in_net)

        out_sinks = sinks[out_net]
        if len(out_sinks) > 1:
            head = _fanout_name(circuit.nets[out_net].name)
        else:
            sink = out_sinks[0]
            if sink.kind == "register":
                head = _vacuous_name(circuit.nets[out_net].name)
            else:
                head = sink_vertex(sink)
        graph.add_edge(tail, head, EdgeKind.REGISTER, register.width, register.name)

    return graph

"""Structural queries on circuit graphs: cycles, SCCs, URFS detection.

Theorem 2 of the paper needs two kinds of witnesses: *cycles* and
*unbalanced reconvergent-fanout structures* (URFS) — vertex pairs joined by
paths with differing numbers of register edges.  Both are produced here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.errors import GraphError
from repro.graph.model import CircuitGraph, Edge


def strongly_connected_components(graph: CircuitGraph) -> List[List[str]]:
    """Tarjan's SCC algorithm (iterative)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    for root in graph.vertices:
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_pos = work[-1]
            if child_pos == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            successors = graph.successors(node)
            advanced = False
            while child_pos < len(successors):
                child = successors[child_pos]
                child_pos += 1
                if child not in index:
                    work[-1] = (node, child_pos)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work[-1] = (node, child_pos)
            if child_pos >= len(successors):
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(sorted(component))
    return components


def is_acyclic(graph: CircuitGraph) -> bool:
    """True iff the graph has no directed cycle (self-loops included)."""
    if any(edge.tail == edge.head for edge in graph.edges):
        return False
    return all(len(c) == 1 for c in strongly_connected_components(graph))


def cyclic_vertices(graph: CircuitGraph) -> Set[str]:
    """Vertices that lie on at least one directed cycle."""
    bad: Set[str] = set()
    for component in strongly_connected_components(graph):
        if len(component) > 1:
            bad.update(component)
    for edge in graph.edges:
        if edge.tail == edge.head:
            bad.add(edge.tail)
    return bad


def simple_cycles(graph: CircuitGraph, limit: int = 10000) -> List[List[str]]:
    """Enumerate simple directed cycles (vertex lists, smallest-first start).

    Intended for the paper-scale example circuits; bails out at ``limit``.
    """
    cycles: List[List[str]] = []
    order = sorted(graph.vertices)
    position = {name: i for i, name in enumerate(order)}

    for start in order:
        # DFS only through vertices >= start to enumerate each cycle once.
        stack: List[Tuple[str, List[str]]] = [(start, [start])]
        while stack:
            node, path = stack.pop()
            for successor in graph.successors(node):
                if successor == start:
                    cycles.append(list(path))
                    if len(cycles) >= limit:
                        raise GraphError("too many simple cycles to enumerate")
                elif position[successor] > position[start] and successor not in path:
                    stack.append((successor, path + [successor]))
    return cycles


def cycle_register_edges(graph: CircuitGraph, cycle: List[str]) -> List[Edge]:
    """Register edges along one simple cycle (candidates for BILBO insertion)."""
    members = set(cycle)
    result = []
    for edge in graph.edges:
        if edge.is_register and edge.tail in members and edge.head in members:
            # keep only edges actually on the cycle's ring
            n = len(cycle)
            for i, name in enumerate(cycle):
                if edge.tail == name and edge.head == cycle[(i + 1) % n]:
                    result.append(edge)
                    break
    return result


@dataclass(frozen=True)
class URFSWitness:
    """Two vertices joined by paths of unequal sequential length."""

    source: str
    target: str
    min_length: int
    max_length: int

    @property
    def imbalance(self) -> int:
        return self.max_length - self.min_length


def sequential_path_lengths(graph: CircuitGraph) -> Dict[Tuple[str, str], Tuple[int, int]]:
    """(min, max) sequential length per ordered reachable vertex pair.

    Requires an acyclic graph; raises :class:`GraphError` otherwise.
    """
    if not is_acyclic(graph):
        raise GraphError("sequential path lengths need an acyclic graph")
    order = _topological_order(graph)
    result: Dict[Tuple[str, str], Tuple[int, int]] = {}
    # DP from each source, in reverse topological order of sources for reuse
    # simplicity we just run a forward DP per source (graphs here are small).
    for source in order:
        dist: Dict[str, Tuple[int, int]] = {source: (0, 0)}
        for node in order:
            if node not in dist:
                continue
            lo, hi = dist[node]
            for edge in graph.out_edges(node):
                step = edge.sequential_length
                entry = dist.get(edge.head)
                candidate = (lo + step, hi + step)
                if entry is None:
                    dist[edge.head] = candidate
                else:
                    dist[edge.head] = (
                        min(entry[0], candidate[0]),
                        max(entry[1], candidate[1]),
                    )
        for target, (lo, hi) in dist.items():
            if target != source:
                result[(source, target)] = (lo, hi)
    return result


def find_urfs_witnesses(graph: CircuitGraph) -> List[URFSWitness]:
    """All vertex pairs with unequal-sequential-length paths (URFS evidence)."""
    witnesses = []
    for (source, target), (lo, hi) in sequential_path_lengths(graph).items():
        if lo != hi:
            witnesses.append(URFSWitness(source, target, lo, hi))
    return witnesses


def _topological_order(graph: CircuitGraph) -> List[str]:
    indegree = {name: 0 for name in graph.vertices}
    for edge in graph.edges:
        indegree[edge.head] += 1
    ready = sorted(name for name, d in indegree.items() if d == 0)
    order: List[str] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for edge in graph.out_edges(node):
            indegree[edge.head] -= 1
            if indegree[edge.head] == 0:
                ready.append(edge.head)
    if len(order) != len(graph.vertices):
        raise GraphError("graph is cyclic; no topological order")
    return order


def topological_order(graph: CircuitGraph) -> List[str]:
    """Public topological order (raises on cyclic graphs)."""
    return _topological_order(graph)

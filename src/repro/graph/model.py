"""The circuit graph model G = (V, E, w) of Section 3.1.

Vertices represent combinational blocks (logic vertices), PIs/POs (I/O
vertices), fanout blocks and vacuous blocks.  Edges represent connections
through a register (register edges, weighted by register width) or through
wires (wire edges, weight "infinity" — a large number in practice, exactly
as the paper says).  Input/output *ports* of a block are the in-coming /
out-going edges of its vertex.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import GraphError

#: Wire-edge weight ("a large number in practice", Section 3.1).
WIRE_WEIGHT = 10 ** 9


class VertexKind(enum.Enum):
    LOGIC = "logic"
    INPUT = "input"
    OUTPUT = "output"
    FANOUT = "fanout"
    VACUOUS = "vacuous"


class EdgeKind(enum.Enum):
    REGISTER = "register"
    WIRE = "wire"


@dataclass(frozen=True)
class Vertex:
    """A circuit-graph vertex."""

    name: str
    kind: VertexKind

    @property
    def is_logic(self) -> bool:
        return self.kind is VertexKind.LOGIC


@dataclass(frozen=True)
class Edge:
    """A circuit-graph edge.

    ``register`` names the register an edge passes through (None for wire
    edges); ``weight`` is the register width for register edges and
    :data:`WIRE_WEIGHT` for wire edges.
    """

    index: int
    tail: str
    head: str
    kind: EdgeKind
    weight: int
    register: Optional[str] = None

    @property
    def is_register(self) -> bool:
        return self.kind is EdgeKind.REGISTER

    @property
    def sequential_length(self) -> int:
        """Contribution to a path's sequential length (1 per register edge)."""
        return 1 if self.is_register else 0


class CircuitGraph:
    """A directed multigraph over :class:`Vertex` and :class:`Edge`."""

    def __init__(self, name: str = "G"):
        self.name = name
        self.vertices: Dict[str, Vertex] = {}
        self.edges: List[Edge] = []
        self._out: Dict[str, List[int]] = {}
        self._in: Dict[str, List[int]] = {}

    # -------------------------------------------------------------- building

    def add_vertex(self, name: str, kind: VertexKind) -> Vertex:
        if name in self.vertices:
            raise GraphError(f"duplicate vertex {name!r}")
        vertex = Vertex(name, kind)
        self.vertices[name] = vertex
        self._out[name] = []
        self._in[name] = []
        return vertex

    def add_edge(
        self,
        tail: str,
        head: str,
        kind: EdgeKind,
        weight: Optional[int] = None,
        register: Optional[str] = None,
    ) -> Edge:
        if tail not in self.vertices:
            raise GraphError(f"unknown tail vertex {tail!r}")
        if head not in self.vertices:
            raise GraphError(f"unknown head vertex {head!r}")
        if kind is EdgeKind.REGISTER and register is None:
            raise GraphError("register edges must name their register")
        if kind is EdgeKind.WIRE:
            weight = WIRE_WEIGHT
        elif weight is None:
            raise GraphError("register edges need a weight (register width)")
        edge = Edge(len(self.edges), tail, head, kind, weight, register)
        self.edges.append(edge)
        self._out[tail].append(edge.index)
        self._in[head].append(edge.index)
        return edge

    # --------------------------------------------------------------- queries

    def vertex(self, name: str) -> Vertex:
        try:
            return self.vertices[name]
        except KeyError:
            raise GraphError(f"no vertex named {name!r}") from None

    def out_edges(self, name: str) -> List[Edge]:
        return [self.edges[i] for i in self._out[name]]

    def in_edges(self, name: str) -> List[Edge]:
        return [self.edges[i] for i in self._in[name]]

    def successors(self, name: str) -> List[str]:
        return [e.head for e in self.out_edges(name)]

    def predecessors(self, name: str) -> List[str]:
        return [e.tail for e in self.in_edges(name)]

    def register_edges(self) -> List[Edge]:
        return [e for e in self.edges if e.is_register]

    def wire_edges(self) -> List[Edge]:
        return [e for e in self.edges if not e.is_register]

    def edge_for_register(self, register: str) -> Edge:
        for edge in self.edges:
            if edge.register == register:
                return edge
        raise GraphError(f"no edge for register {register!r}")

    def vertices_of_kind(self, kind: VertexKind) -> List[Vertex]:
        return [v for v in self.vertices.values() if v.kind is kind]

    def input_vertices(self) -> List[Vertex]:
        return self.vertices_of_kind(VertexKind.INPUT)

    def output_vertices(self) -> List[Vertex]:
        return self.vertices_of_kind(VertexKind.OUTPUT)

    def logic_vertices(self) -> List[Vertex]:
        return self.vertices_of_kind(VertexKind.LOGIC)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self.vertices.values())

    def __len__(self) -> int:
        return len(self.vertices)

    # ------------------------------------------------------------- subgraphs

    def subgraph(self, vertex_names, edge_filter=None) -> "CircuitGraph":
        """Induced subgraph on ``vertex_names`` (optionally filtering edges)."""
        keep = set(vertex_names)
        sub = CircuitGraph(f"{self.name}[sub]")
        for name in keep:
            vertex = self.vertex(name)
            sub.add_vertex(vertex.name, vertex.kind)
        for edge in self.edges:
            if edge.tail in keep and edge.head in keep:
                if edge_filter is not None and not edge_filter(edge):
                    continue
                sub.add_edge(edge.tail, edge.head, edge.kind,
                             None if edge.kind is EdgeKind.WIRE else edge.weight,
                             edge.register)
        return sub

    def without_edges(self, edge_indices) -> "CircuitGraph":
        """A copy with the given edges removed (used to cut BILBO edges)."""
        drop = set(edge_indices)
        out = CircuitGraph(f"{self.name}[cut]")
        for vertex in self.vertices.values():
            out.add_vertex(vertex.name, vertex.kind)
        for edge in self.edges:
            if edge.index in drop:
                continue
            out.add_edge(edge.tail, edge.head, edge.kind,
                         None if edge.kind is EdgeKind.WIRE else edge.weight,
                         edge.register)
        return out

    def weakly_connected_components(self) -> List[List[str]]:
        """Components of the underlying undirected graph."""
        seen = set()
        components: List[List[str]] = []
        for start in self.vertices:
            if start in seen:
                continue
            stack = [start]
            component: List[str] = []
            seen.add(start)
            while stack:
                node = stack.pop()
                component.append(node)
                for neighbor in self.successors(node) + self.predecessors(node):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
            components.append(sorted(component))
        return components

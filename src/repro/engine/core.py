"""The parallel fault-simulation engine (single entry point: ``simulate``).

``simulate`` partitions the collapsed fault list into round-robin shards
and fans the shards out over a :class:`concurrent.futures.
ProcessPoolExecutor`: each worker holds a pickled copy of the netlist and
runs the existing bit-parallel event-driven propagator
(:meth:`repro.faultsim.simulator.FaultSimulator.simulate_batch`) over the
golden batches the parent ships it.  Per-shard ``first_detection`` maps are
merged deterministically — shards are disjoint and rounds arrive in
pattern order — so the result is **bit-identical to the serial path** for
every combination of ``stop_when_complete`` / ``drop_detected``.

The fault-free (golden) evaluation of each batch is computed once in the
parent, optionally through a :class:`~repro.engine.cache.GoldenCache`
shared across shards and across repeated runs.  ``jobs=None`` (or 1) runs
the same primitive serially in-process with zero multiprocessing overhead.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.cache import GoldenBatches, GoldenCache
from repro.engine.instrumentation import ShardStats
from repro.errors import SimulationError
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.faults import Fault
from repro.faultsim.patterns import PatternSource
from repro.faultsim.simulator import FaultSimulator
from repro.netlist.netlist import Netlist
from repro.results import FaultSimResult

#: Batches per fan-out round: large enough to amortize task dispatch and
#: golden-batch shipping, small enough that early stop wastes little work.
CHUNK_BATCHES = 4


@dataclass
class EngineResult(FaultSimResult):
    """A :class:`~repro.results.FaultSimResult` plus engine instrumentation.

    Drop-in compatible with the serial result everywhere (it *is* one);
    the extra fields surface how the run was executed.
    """

    jobs: int = 1
    wall_time: float = 0.0
    shards: List[ShardStats] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def events_propagated(self) -> int:
        return sum(shard.events_propagated for shard in self.shards)

    def to_json(self, include_faults: bool = False) -> Dict:
        payload = super().to_json(include_faults)
        payload["engine"] = {
            "jobs": self.jobs,
            "wall_time": self.wall_time,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "shards": [shard.to_json() for shard in self.shards],
        }
        return payload


# --------------------------------------------------------------- worker side

_WORKER_SIMULATOR: Optional[FaultSimulator] = None


def _init_worker(payload: bytes) -> None:
    """Build this worker process's simulator from the pickled netlist."""
    global _WORKER_SIMULATOR
    netlist, batch_width = pickle.loads(payload)
    _WORKER_SIMULATOR = FaultSimulator(netlist, batch_width)


def _run_shard_round(
    shard_id: int,
    faults: List[Fault],
    golden_batches: List[Tuple[int, Dict[int, int]]],
    pattern_base: int,
    drop_detected: bool,
) -> Tuple[int, Dict[Fault, int], List[Fault], Dict[str, float]]:
    """Simulate one round of batches for one shard inside a worker.

    ``golden_batches`` is a list of ``(mask, golden values)`` pairs; the
    batch width is recovered from the mask.  Returns the shard's new
    detections (absolute pattern indices), its surviving fault list, and
    round measurements.
    """
    simulator = _WORKER_SIMULATOR
    assert simulator is not None, "worker used before initialization"
    start = time.perf_counter()
    events_before = simulator.events_propagated
    detections: Dict[Fault, int] = {}
    live = list(faults)
    base = pattern_base
    patterns = 0
    for mask, good in golden_batches:
        width = mask.bit_length()
        live = simulator.simulate_batch(
            live, good, mask, base, detections, drop_detected
        )
        base += width
        patterns += width
        if not live:
            break
    measurements = {
        "events": simulator.events_propagated - events_before,
        "patterns": patterns,
        "wall": time.perf_counter() - start,
    }
    return shard_id, detections, live, measurements


# --------------------------------------------------------------- parent side

def _narrow(good: Dict[int, int], mask: int, batch_width: int) -> Dict[int, int]:
    """Restrict full-width golden values to a narrower final batch.

    Packed evaluation is bitwise per pattern lane, so masking the wide
    result equals evaluating at the narrow width directly.
    """
    if mask == (1 << batch_width) - 1:
        return good
    return {net: value & mask for net, value in good.items()}


def _plan_round(
    pattern_base: int, max_patterns: int, batch_width: int, n_batches: int
) -> List[int]:
    """Widths of the next up-to-``n_batches`` batches, respecting the cap."""
    widths: List[int] = []
    base = pattern_base
    while len(widths) < n_batches and base < max_patterns:
        width = min(batch_width, max_patterns - base)
        widths.append(width)
        base += width
    return widths


def _stopped_n_patterns(
    first_detection: Dict[Fault, int],
    n_faults: int,
    max_patterns: int,
    batch_width: int,
    stop_when_complete: bool,
    drop_detected: bool,
) -> int:
    """The serial loop's ``n_patterns`` accounting, computed analytically.

    The serial path stops at the end of the batch in which the last live
    fault was detected — either because fault dropping emptied the live
    list or because ``stop_when_complete`` saw full detection — and runs to
    ``max_patterns`` otherwise.
    """
    if n_faults == 0:
        return 0
    if len(first_detection) == n_faults and (drop_detected or stop_when_complete):
        last = max(first_detection.values())
        return min(max_patterns, (last // batch_width + 1) * batch_width)
    return max_patterns


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def simulate(
    netlist: Netlist,
    faults: Optional[Sequence[Fault]] = None,
    patterns: Optional[PatternSource] = None,
    *,
    max_patterns: int = 1 << 16,
    jobs: Optional[int] = None,
    cache: Optional[GoldenCache] = None,
    batch_width: int = 256,
    stop_when_complete: bool = True,
    drop_detected: bool = True,
    chunk_batches: int = CHUNK_BATCHES,
    simulator: Optional[FaultSimulator] = None,
) -> EngineResult:
    """Fault-simulate ``patterns`` against ``faults``, optionally in parallel.

    Parameters
    ----------
    netlist:
        The combinational circuit under test.
    faults:
        Fault list; defaults to the equivalence-collapsed universe.
    patterns:
        Pattern source; defaults to a seeded
        :class:`~repro.faultsim.patterns.RandomPatternSource`.
    max_patterns:
        Upper bound on applied patterns.
    jobs:
        ``None``/``1`` runs serially in-process; ``N > 1`` shards the fault
        list over ``N`` worker processes.  Results are bit-identical either
        way.
    cache:
        Optional :class:`GoldenCache` for fault-free batch evaluations,
        shared across shards and across repeated calls.
    batch_width / stop_when_complete / drop_detected:
        As on :meth:`FaultSimulator.run`.
    chunk_batches:
        Batches shipped per fan-out round in parallel mode.
    simulator:
        An existing :class:`FaultSimulator` to reuse for serial runs (the
        ``FaultSimulator.run`` routing passes itself).
    """
    if batch_width < 1:
        raise SimulationError("batch width must be positive")
    if chunk_batches < 1:
        raise SimulationError("chunk_batches must be positive")
    if faults is None:
        faults, _ = collapse_faults(netlist)
    if patterns is None:
        from repro.faultsim.patterns import RandomPatternSource

        patterns = RandomPatternSource(len(netlist.primary_inputs))
    if patterns.n_inputs != len(netlist.primary_inputs):
        raise SimulationError(
            f"pattern source width {patterns.n_inputs} != circuit inputs "
            f"{len(netlist.primary_inputs)}"
        )

    fault_list = list(faults)
    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0
    if simulator is not None and simulator.batch_width == batch_width:
        evaluator = simulator.evaluator
    else:
        evaluator = None
    golden: Optional[GoldenBatches] = None
    if cache is not None:
        golden = cache.batch_entry(netlist, patterns, batch_width, evaluator)
    if golden is None:
        if evaluator is None:
            from repro.netlist.evaluate import Evaluator

            evaluator = Evaluator(netlist)
        golden = GoldenBatches(evaluator, patterns, batch_width)

    start = time.perf_counter()
    n_jobs = 1 if jobs is None else max(1, int(jobs))
    if n_jobs == 1 or len(fault_list) <= 1:
        result = _simulate_serial(
            netlist, fault_list, golden, max_patterns, batch_width,
            stop_when_complete, drop_detected, simulator,
        )
    else:
        result = _simulate_parallel(
            netlist, fault_list, golden, max_patterns, batch_width,
            stop_when_complete, drop_detected, n_jobs, chunk_batches,
        )
    result.wall_time = time.perf_counter() - start
    if cache is not None:
        result.cache_hits = cache.hits - hits_before
        result.cache_misses = cache.misses - misses_before
    return result


def _simulate_serial(
    netlist: Netlist,
    faults: List[Fault],
    golden: GoldenBatches,
    max_patterns: int,
    batch_width: int,
    stop_when_complete: bool,
    drop_detected: bool,
    simulator: Optional[FaultSimulator],
) -> EngineResult:
    """The historical serial loop, driven through the golden provider."""
    if simulator is None or simulator.batch_width != batch_width:
        simulator = FaultSimulator(netlist, batch_width)
    stats = ShardStats(shard=0, n_faults=len(faults))
    events_before = simulator.events_propagated
    shard_start = time.perf_counter()

    detections: Dict[Fault, int] = {}
    live = list(faults)
    pattern_base = 0
    batch_index = 0
    while pattern_base < max_patterns and live:
        width = min(batch_width, max_patterns - pattern_base)
        mask = (1 << width) - 1
        good = _narrow(golden.golden_batch(batch_index), mask, batch_width)
        n_live = len(live)
        live = simulator.simulate_batch(
            live, good, mask, pattern_base, detections, drop_detected
        )
        stats.faults_dropped += n_live - len(live)
        pattern_base += width
        batch_index += 1
        if stop_when_complete and len(detections) == len(faults):
            break

    stats.events_propagated = simulator.events_propagated - events_before
    stats.patterns_simulated = pattern_base
    stats.wall_time = time.perf_counter() - shard_start
    return EngineResult(
        netlist=netlist,
        faults=faults,
        first_detection=detections,
        n_patterns=pattern_base,
        jobs=1,
        shards=[stats],
    )


def _simulate_parallel(
    netlist: Netlist,
    faults: List[Fault],
    golden: GoldenBatches,
    max_patterns: int,
    batch_width: int,
    stop_when_complete: bool,
    drop_detected: bool,
    jobs: int,
    chunk_batches: int,
) -> EngineResult:
    """Fan fault shards out over a process pool, round by round."""
    shards: Dict[int, List[Fault]] = {
        shard_id: faults[shard_id::jobs] for shard_id in range(jobs)
    }
    shards = {s: flist for s, flist in shards.items() if flist}
    stats = {
        shard_id: ShardStats(shard=shard_id, n_faults=len(flist))
        for shard_id, flist in shards.items()
    }
    merged: Dict[Fault, int] = {}
    payload = pickle.dumps((netlist, batch_width))
    pattern_base = 0
    batch_index = 0
    with ProcessPoolExecutor(
        max_workers=len(shards),
        mp_context=_mp_context(),
        initializer=_init_worker,
        initargs=(payload,),
    ) as executor:
        while pattern_base < max_patterns and any(shards.values()):
            widths = _plan_round(
                pattern_base, max_patterns, batch_width, chunk_batches
            )
            round_batches: List[Tuple[int, Dict[int, int]]] = []
            for width in widths:
                mask = (1 << width) - 1
                round_batches.append(
                    (mask, _narrow(golden.golden_batch(batch_index), mask, batch_width))
                )
                batch_index += 1
            futures = [
                executor.submit(
                    _run_shard_round,
                    shard_id,
                    live,
                    round_batches,
                    pattern_base,
                    drop_detected,
                )
                for shard_id, live in shards.items()
                if live
            ]
            for future in futures:
                shard_id, detections, survivors, measured = future.result()
                for fault, index in detections.items():
                    if fault not in merged:  # rounds arrive in pattern order
                        merged[fault] = index
                dropped = len(shards[shard_id]) - len(survivors)
                if drop_detected:
                    shards[shard_id] = survivors
                stats[shard_id].absorb(
                    int(measured["events"]),
                    int(measured["patterns"]),
                    float(measured["wall"]),
                    dropped if drop_detected else 0,
                )
            pattern_base += sum(widths)
            if stop_when_complete and len(merged) == len(faults):
                break

    n_patterns = _stopped_n_patterns(
        merged, len(faults), max_patterns, batch_width,
        stop_when_complete, drop_detected,
    )
    return EngineResult(
        netlist=netlist,
        faults=faults,
        first_detection=merged,
        n_patterns=n_patterns,
        jobs=jobs,
        shards=[stats[shard_id] for shard_id in sorted(stats)],
    )

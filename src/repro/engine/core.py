"""The parallel fault-simulation engine (single entry point: ``simulate``).

``simulate`` partitions the collapsed fault list into round-robin shards
and fans the shards out over a :class:`concurrent.futures.
ProcessPoolExecutor`: each worker holds a pickled copy of the netlist and
runs the existing bit-parallel event-driven propagator
(:meth:`repro.faultsim.simulator.FaultSimulator.simulate_batch`) over the
golden batches the parent ships it.  Per-shard ``first_detection`` maps are
merged deterministically — shards are disjoint and rounds arrive in
pattern order — so the result is **bit-identical to the serial path** for
every combination of ``stop_when_complete`` / ``drop_detected``.

The engine is fault tolerant: every shard round carries an integrity
checksum, is bounded by an optional ``shard_timeout``, and is retried with
exponential backoff on crash / timeout / corruption (the worker pool is
rebuilt, since a dead or hung worker poisons it).  A shard that exhausts
its retry budget degrades gracefully to in-process serial execution in the
parent, so a run *always* completes with results identical to ``jobs=1``.
With a ``checkpoint_dir``, completed rounds are journaled
(:mod:`repro.engine.checkpoint`) and ``resume=True`` replays them instead
of re-executing; a deterministic :class:`~repro.engine.chaos.FaultInjector`
(parameter or ``$REPRO_CHAOS``) makes all of these paths testable in CI.

The fault-free (golden) evaluation of each batch is computed once in the
parent, optionally through a :class:`~repro.engine.cache.GoldenCache`
shared across shards and across repeated runs.  ``jobs=None`` (or 1) runs
the same primitive serially in-process with zero multiprocessing overhead.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro import telemetry
from repro.engine import checkpoint as checkpoint_io
from repro.engine.cache import GoldenBatches, GoldenCache
from repro.engine.chaos import ChaosInterrupt, FaultInjector
from repro.engine.instrumentation import ShardStats, publish_engine_metrics
from repro.errors import ReproError, SimulationError
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.faults import Fault
from repro.faultsim.patterns import PatternSource
from repro.faultsim.simulator import FaultSimulator
from repro.guard.budget import Budget
from repro.guard.cancel import CancelToken
from repro.guard.runner import RunGuard
from repro.netlist.netlist import Netlist
from repro.results import FaultSimResult

#: Batches per fan-out round: large enough to amortize task dispatch and
#: golden-batch shipping, small enough that early stop wastes little work.
CHUNK_BATCHES = 4

#: Default bounded-retry budget per shard round before degrading to
#: in-process execution.
MAX_RETRIES = 2

#: Base of the exponential backoff between retry waves (seconds).
RETRY_BACKOFF = 0.05


@dataclass
class EngineResult(FaultSimResult):
    """A :class:`~repro.results.FaultSimResult` plus engine instrumentation.

    Drop-in compatible with the serial result everywhere (it *is* one);
    the extra fields surface how the run was executed.
    """

    jobs: int = 1
    wall_time: float = 0.0
    shards: List[ShardStats] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def events_propagated(self) -> int:
        return sum(shard.events_propagated for shard in self.shards)

    @property
    def rounds_resumed(self) -> int:
        """Shard rounds replayed from a checkpoint journal, summed."""
        return sum(shard.rounds_resumed for shard in self.shards)

    @property
    def retries(self) -> int:
        """Shard-round re-executions forced by failures, summed."""
        return sum(shard.retries for shard in self.shards)

    @property
    def degraded_shards(self) -> List[int]:
        """Shards that fell back to in-process execution."""
        return [shard.shard for shard in self.shards if shard.degraded]

    @property
    def memory_adaptations(self) -> int:
        """Guard memory-ladder steps applied during the run, summed."""
        return sum(shard.memory_adaptations for shard in self.shards)

    def to_json(self, include_faults: bool = False) -> Dict:
        payload = super().to_json(include_faults)
        payload["engine"] = {
            "jobs": self.jobs,
            "wall_time": self.wall_time,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "retries": self.retries,
            "rounds_resumed": self.rounds_resumed,
            "degraded_shards": self.degraded_shards,
            "shards": [shard.to_json() for shard in self.shards],
        }
        return payload


class _CorruptShardRound(SimulationError):
    """A shard round whose payload failed integrity verification."""


def _fault_key(fault: Fault) -> Tuple[int, int, int, int]:
    """A total-orderable identity tuple (stem faults carry None fields)."""
    return (
        fault.net,
        fault.stuck_at,
        -1 if fault.gate_index is None else fault.gate_index,
        -1 if fault.pin is None else fault.pin,
    )


def _round_checksum(
    detections: Dict[Fault, int], survivors: List[Fault], patterns: int
) -> str:
    """Integrity digest over one shard round's result payload."""
    blob = repr((
        sorted(_fault_key(f) + (index,) for f, index in detections.items()),
        [_fault_key(f) for f in survivors],
        patterns,
    )).encode()
    return hashlib.sha256(blob).hexdigest()


# --------------------------------------------------------------- worker side

_WORKER_SIMULATOR: Optional[FaultSimulator] = None


def _init_worker(payload: bytes) -> None:
    """Build this worker process's simulator from the pickled netlist."""
    global _WORKER_SIMULATOR
    netlist, batch_width, telemetry_on = pickle.loads(payload)
    # Forked workers inherit the parent's span buffer and metrics; wipe
    # them or every drain() would ship the parent's records back and the
    # join would duplicate them.  Spawn-started workers don't inherit the
    # parent's enable() call either way, so the init payload carries it.
    telemetry.get_telemetry().reset()
    if telemetry_on:
        telemetry.enable()
    _WORKER_SIMULATOR = FaultSimulator(netlist, batch_width)


def _consume_batches(
    simulator: FaultSimulator,
    faults: List[Fault],
    golden_batches: List[Tuple[int, Dict[int, int]]],
    pattern_base: int,
    drop_detected: bool,
) -> Tuple[Dict[Fault, int], List[Fault], Dict[str, float]]:
    """Run one round of batches for one fault list on one simulator.

    The shared primitive behind both the worker-side shard round and the
    parent's degraded in-process fallback — one implementation is what
    keeps every execution path bit-identical.
    """
    start = time.perf_counter()
    events_before = simulator.events_propagated
    detections: Dict[Fault, int] = {}
    live = list(faults)
    base = pattern_base
    patterns = 0
    for mask, good in golden_batches:
        width = mask.bit_length()
        live = simulator.simulate_batch(
            live, good, mask, base, detections, drop_detected
        )
        base += width
        patterns += width
        if not live:
            break
    measurements = {
        "events": simulator.events_propagated - events_before,
        "patterns": patterns,
        "wall": time.perf_counter() - start,
    }
    return detections, live, measurements


def _run_shard_round(
    shard_id: int,
    faults: List[Fault],
    golden_batches: List[Tuple[int, Dict[int, int]]],
    pattern_base: int,
    drop_detected: bool,
    round_index: int = 0,
    attempt: int = 0,
    injector: Optional[FaultInjector] = None,
) -> Tuple[int, Dict[Fault, int], List[Fault], Dict[str, float], str, List]:
    """Simulate one round of batches for one shard inside a worker.

    ``golden_batches`` is a list of ``(mask, golden values)`` pairs; the
    batch width is recovered from the mask.  Returns the shard's new
    detections (absolute pattern indices), its surviving fault list, round
    measurements, an integrity checksum (taken *before* any chaos
    corruption, so tampering is detectable by the parent) and the spans
    recorded in this worker since its last round — the worker-side half of
    the telemetry merge (the parent absorbs them at shard join).
    """
    simulator = _WORKER_SIMULATOR
    assert simulator is not None, "worker used before initialization"
    corrupt = (
        injector.apply(shard_id, round_index, attempt)
        if injector is not None
        else False
    )
    with telemetry.span(
        "engine.shard_round",
        shard=shard_id, round=round_index, attempt=attempt,
        n_faults=len(faults),
    ):
        detections, live, measurements = _consume_batches(
            simulator, faults, golden_batches, pattern_base, drop_detected
        )
    checksum = _round_checksum(detections, live, int(measurements["patterns"]))
    tele = telemetry.get_telemetry()
    spans = tele.tracer.drain() if tele.enabled else []
    if corrupt:
        if detections:
            first = next(iter(detections))
            detections[first] += 1
        elif live:
            detections[live[0]] = pattern_base
        else:
            measurements["patterns"] = int(measurements["patterns"]) + 1
    return shard_id, detections, live, measurements, checksum, spans


# --------------------------------------------------------------- parent side

def _narrow(good: Dict[int, int], mask: int, batch_width: int) -> Dict[int, int]:
    """Restrict full-width golden values to a narrower final batch.

    Packed evaluation is bitwise per pattern lane, so masking the wide
    result equals evaluating at the narrow width directly.
    """
    if mask == (1 << batch_width) - 1:
        return good
    return {net: value & mask for net, value in good.items()}


def _plan_round(
    pattern_base: int, max_patterns: int, batch_width: int, n_batches: int
) -> List[int]:
    """Widths of the next up-to-``n_batches`` batches, respecting the cap."""
    widths: List[int] = []
    base = pattern_base
    while len(widths) < n_batches and base < max_patterns:
        width = min(batch_width, max_patterns - base)
        widths.append(width)
        base += width
    return widths


def _widths_from_patterns(
    pattern_base: int, round_patterns: int, batch_width: int, max_patterns: int
) -> List[int]:
    """Reconstruct a journaled round's batch widths from its pattern count.

    A resumed run must execute every round with the geometry the *writing*
    run used — which may differ from a fresh plan when the writer's guard
    halved ``chunk_batches`` under memory pressure mid-run.  Each record
    stores the round's total patterns; decomposing that total greedily at
    ``batch_width`` reproduces the writer's widths exactly (the writer
    planned the same way).
    """
    widths: List[int] = []
    base = pattern_base
    remaining = round_patterns
    while remaining > 0:
        width = min(batch_width, max_patterns - base, remaining)
        if width <= 0:  # corrupt/foreign count; let the caller re-plan
            return []
        widths.append(width)
        base += width
        remaining -= width
    return widths


def _stopped_n_patterns(
    first_detection: Dict[Fault, int],
    n_faults: int,
    max_patterns: int,
    batch_width: int,
    stop_when_complete: bool,
    drop_detected: bool,
) -> int:
    """The serial loop's ``n_patterns`` accounting, computed analytically.

    The serial path stops at the end of the batch in which the last live
    fault was detected — either because fault dropping emptied the live
    list or because ``stop_when_complete`` saw full detection — and runs to
    ``max_patterns`` otherwise.
    """
    if n_faults == 0:
        return 0
    if len(first_detection) == n_faults and (drop_detected or stop_when_complete):
        last = max(first_detection.values())
        return min(max_patterns, (last // batch_width + 1) * batch_width)
    return max_patterns


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class _WorkerPool:
    """A restartable process pool.

    ``ProcessPoolExecutor`` is poisoned by a dead worker (BrokenProcessPool)
    and cannot cancel a hung one, so the recovery path for *any* shard
    failure is the same: abandon the executor, terminate its processes and
    build a fresh one lazily on the next submit.
    """

    def __init__(self, max_workers: int, init_payload: bytes):
        self._max_workers = max_workers
        self._init_payload = init_payload
        self._executor: Optional[ProcessPoolExecutor] = None
        self.restarts = 0

    def submit(self, fn, *args):
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._max_workers,
                mp_context=_mp_context(),
                initializer=_init_worker,
                initargs=(self._init_payload,),
            )
        return self._executor.submit(fn, *args)

    def restart(self) -> None:
        self.shutdown()
        self.restarts += 1

    def worker_pids(self) -> Tuple[int, ...]:
        """PIDs of the live worker processes (for RSS sampling)."""
        if self._executor is None:
            return ()
        processes = getattr(self._executor, "_processes", {}) or {}
        return tuple(
            process.pid for process in list(processes.values())
            if process is not None and process.pid is not None
        )

    def shutdown(self) -> None:
        executor, self._executor = self._executor, None
        if executor is None:
            return
        # Snapshot worker processes before shutdown: hung workers would
        # otherwise linger until their (possibly unbounded) task finishes.
        processes = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.terminate()
            except (OSError, ValueError, AttributeError):
                # Already exited/closed (or reaped by the executor between
                # our snapshot and the terminate); nothing left to kill.
                telemetry.count("engine.swallowed_errors")


def simulate(
    netlist: Netlist,
    faults: Optional[Sequence[Fault]] = None,
    patterns: Optional[PatternSource] = None,
    *,
    max_patterns: int = 1 << 16,
    jobs: Optional[int] = None,
    cache: Optional[GoldenCache] = None,
    batch_width: int = 256,
    stop_when_complete: bool = True,
    drop_detected: bool = True,
    chunk_batches: int = CHUNK_BATCHES,
    simulator: Optional[FaultSimulator] = None,
    shard_timeout: Optional[float] = None,
    max_retries: int = MAX_RETRIES,
    retry_backoff: float = RETRY_BACKOFF,
    chaos: Optional[FaultInjector] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    check: bool = True,
    budget: Optional[Budget] = None,
    cancel: Optional[CancelToken] = None,
) -> EngineResult:
    """Fault-simulate ``patterns`` against ``faults``, optionally in parallel.

    Parameters
    ----------
    netlist:
        The combinational circuit under test.
    faults:
        Fault list; defaults to the equivalence-collapsed universe.
    patterns:
        Pattern source; defaults to a seeded
        :class:`~repro.faultsim.patterns.RandomPatternSource`.
    max_patterns:
        Upper bound on applied patterns.
    jobs:
        ``None``/``1`` runs serially in-process; ``N > 1`` shards the fault
        list over ``N`` worker processes.  Results are bit-identical either
        way.
    cache:
        Optional :class:`GoldenCache` for fault-free batch evaluations,
        shared across shards and across repeated calls.
    batch_width / stop_when_complete / drop_detected:
        As on :meth:`FaultSimulator.run`.
    chunk_batches:
        Batches shipped per fan-out round in parallel mode.
    simulator:
        An existing :class:`FaultSimulator` to reuse for serial runs (the
        ``FaultSimulator.run`` routing passes itself).
    shard_timeout:
        Seconds a shard round may run before it is declared hung and
        retried (None: wait forever).
    max_retries:
        Bounded retry budget per shard round; past it the round runs
        degraded (serially, in-process) so the run still completes.
    retry_backoff:
        Base of the exponential backoff between retry waves (seconds).
    chaos:
        Deterministic failure injection for testing the recovery paths;
        defaults to :meth:`FaultInjector.from_env` (``$REPRO_CHAOS``).
    checkpoint_dir:
        Journal completed shard rounds under this directory (keyed by the
        run's content fingerprint) so an interrupted run can be resumed.
    resume:
        Replay rounds already journaled under ``checkpoint_dir`` instead
        of re-executing them; ``False`` clears any prior journal for this
        exact run.
    check:
        Run the :mod:`repro.lint` netlist rules as a pre-flight and raise
        :class:`~repro.errors.LintError` on error-severity findings (a
        combinational cycle, a floating net...) before any worker is
        spawned.  ``check=False`` skips the pre-flight entirely; results
        are bit-identical either way since lint never touches the run.
    budget:
        Optional :class:`~repro.guard.budget.Budget` (wall-clock deadline,
        pattern cap, RSS ceiling) checked cooperatively at round
        boundaries.  A tripped limit stops the run cleanly — checkpoint
        flushed, ``partial=True``, structured ``stop_reason`` — instead of
        raising; a checkpointed partial run resumed later completes
        bit-identically.  See ``docs/ROBUSTNESS.md``.
    cancel:
        Optional :class:`~repro.guard.cancel.CancelToken`; once tripped
        (by a signal handler via ``guard.signal_scope``, or in code) the
        run drains its in-flight round and returns a partial result.
    """
    if batch_width < 1:
        raise SimulationError("batch width must be positive")
    if chunk_batches < 1:
        raise SimulationError("chunk_batches must be positive")
    if max_retries < 0:
        raise SimulationError("max_retries must be >= 0")
    if check:
        # Fail fast with witnesses, before faults are collapsed, golden
        # batches are computed, or any shard process exists.
        from repro.lint.runner import preflight_netlist

        preflight_netlist(netlist)
    if faults is None:
        faults, _ = collapse_faults(netlist)
    if patterns is None:
        from repro.faultsim.patterns import RandomPatternSource

        patterns = RandomPatternSource(len(netlist.primary_inputs))
    if patterns.n_inputs != len(netlist.primary_inputs):
        raise SimulationError(
            f"pattern source width {patterns.n_inputs} != circuit inputs "
            f"{len(netlist.primary_inputs)}"
        )
    if chaos is None:
        chaos = FaultInjector.from_env()

    fault_list = list(faults)
    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0
    if simulator is not None and simulator.batch_width == batch_width:
        evaluator = simulator.evaluator
    else:
        evaluator = None
    golden: Optional[GoldenBatches] = None
    if cache is not None:
        golden = cache.batch_entry(netlist, patterns, batch_width, evaluator)
    if golden is None:
        if evaluator is None:
            from repro.netlist.evaluate import Evaluator

            evaluator = Evaluator(netlist)
        golden = GoldenBatches(evaluator, patterns, batch_width)

    start = time.perf_counter()
    guard = RunGuard.create(budget, cancel, chaos)
    n_jobs = 1 if jobs is None else max(1, int(jobs))
    serial = n_jobs == 1 or len(fault_list) <= 1
    store = checkpoint_io.open_store(
        checkpoint_dir, netlist, patterns, fault_list, batch_width,
        max_patterns, 1 if serial else n_jobs, chunk_batches,
        stop_when_complete, drop_detected, resume,
    )
    with telemetry.span(
        "engine.simulate",
        circuit=netlist.name, jobs=1 if serial else n_jobs,
        n_faults=len(fault_list), max_patterns=max_patterns,
    ) as run_span:
        if serial:
            result = _simulate_serial(
                netlist, fault_list, golden, max_patterns, batch_width,
                stop_when_complete, drop_detected, simulator, chaos, store,
                guard,
            )
        else:
            result = _simulate_parallel(
                netlist, fault_list, golden, max_patterns, batch_width,
                stop_when_complete, drop_detected, n_jobs, chunk_batches,
                shard_timeout, max_retries, retry_backoff, chaos, store,
                guard,
            )
        run_span.set_attribute("n_patterns", result.n_patterns)
        if result.partial:
            run_span.set_attribute("partial", True)
            run_span.set_attribute("stop_reason", result.stop_reason)
    result.wall_time = time.perf_counter() - start
    if cache is not None:
        result.cache_hits = cache.hits - hits_before
        result.cache_misses = cache.misses - misses_before
    tele = telemetry.get_telemetry()
    if tele.enabled:
        # ShardStats stays the single source of truth; the registry just
        # accumulates the per-run sums (see docs/OBSERVABILITY.md).
        publish_engine_metrics(result, tele.metrics)
    return result


def _replay_record(
    record: Dict[str, Any], fault_list: List[Fault]
) -> Tuple[Dict[Fault, int], List[Fault]]:
    """Indices-on-disk -> fault objects for one journaled round."""
    detections = {
        fault_list[index]: pattern
        for index, pattern in record["detections"].items()
    }
    survivors = [fault_list[index] for index in record["survivors"]]
    return detections, survivors


def _simulate_serial(
    netlist: Netlist,
    faults: List[Fault],
    golden: GoldenBatches,
    max_patterns: int,
    batch_width: int,
    stop_when_complete: bool,
    drop_detected: bool,
    simulator: Optional[FaultSimulator],
    chaos: Optional[FaultInjector],
    store: Optional[checkpoint_io.CheckpointStore],
    guard: Optional[RunGuard] = None,
) -> EngineResult:
    """The historical serial loop, driven through the golden provider.

    With a checkpoint store each batch is one journaled round (shard 0);
    chaos injection does not apply in-process (there is no worker to kill)
    except for the parent-side ``abort``/``sigterm``/``oom`` modes.  A
    tripped :class:`~repro.guard.runner.RunGuard` limit breaks the loop at
    the next batch boundary and flags the result partial.
    """
    if simulator is None or simulator.batch_width != batch_width:
        simulator = FaultSimulator(netlist, batch_width)
    stats = ShardStats(shard=0, n_faults=len(faults))
    events_before = simulator.events_propagated
    shard_start = time.perf_counter()
    journal = store.load() if store is not None else {}
    fault_index = {fault: i for i, fault in enumerate(faults)}

    detections: Dict[Fault, int] = {}
    live = list(faults)
    stop_reason: Optional[str] = None
    pattern_base = 0
    batch_index = 0
    while pattern_base < max_patterns and live:
        width = min(batch_width, max_patterns - pattern_base)
        if guard is not None:
            stop_reason = guard.should_stop(pattern_base, width)
            if stop_reason is not None:
                break
        record = journal.get((0, batch_index))
        if record is not None:
            batch_detections, survivors = _replay_record(record, faults)
            stats.rounds_resumed += 1
        else:
            mask = (1 << width) - 1
            good = _narrow(golden.golden_batch(batch_index), mask, batch_width)
            batch_detections = {}
            survivors = simulator.simulate_batch(
                live, good, mask, pattern_base, batch_detections, drop_detected
            )
            if store is not None:
                store.record(
                    0, batch_index,
                    {fault_index[f]: p for f, p in batch_detections.items()},
                    [fault_index[f] for f in survivors],
                    width,
                )
        for fault, index in batch_detections.items():
            if fault not in detections:
                detections[fault] = index
        stats.faults_dropped += len(live) - len(survivors)
        live = survivors
        pattern_base += width
        batch_index += 1
        telemetry.count("engine.rounds")
        if chaos is not None and chaos.aborts_after(batch_index - 1):
            raise ChaosInterrupt(
                f"chaos: run aborted after round {batch_index - 1}"
            )
        if guard is not None:
            guard.after_round(batch_index - 1)
            action = guard.memory_action(batch_index - 1, (), 1, True)
            if action == "stop" and pattern_base < max_patterns and live:
                # Only a stop that actually cuts work short is a stop; on
                # the final batch the run just completed normally.
                stop_reason = guard.stop_reason
                break
        if stop_when_complete and len(detections) == len(faults):
            break

    stats.events_propagated = simulator.events_propagated - events_before
    stats.patterns_simulated = pattern_base
    stats.wall_time = time.perf_counter() - shard_start
    stats.stop_reason = stop_reason
    return EngineResult(
        netlist=netlist,
        faults=faults,
        first_detection=detections,
        n_patterns=pattern_base,
        partial=stop_reason is not None,
        stop_reason=stop_reason,
        jobs=1,
        shards=[stats],
    )


def _simulate_parallel(
    netlist: Netlist,
    faults: List[Fault],
    golden: GoldenBatches,
    max_patterns: int,
    batch_width: int,
    stop_when_complete: bool,
    drop_detected: bool,
    jobs: int,
    chunk_batches: int,
    shard_timeout: Optional[float],
    max_retries: int,
    retry_backoff: float,
    chaos: Optional[FaultInjector],
    store: Optional[checkpoint_io.CheckpointStore],
    guard: Optional[RunGuard] = None,
) -> EngineResult:
    """Fan fault shards out over a process pool, round by round.

    Every round is executed fault-tolerantly (see ``_execute_round``) and
    journaled once complete; rounds present in the journal are replayed
    without touching the pool at all.  The guard is consulted at every
    round boundary: before a round for cancellation/deadline/pattern-cap
    stops, after it for chaos cancellation and the memory ladder (halve
    ``chunk_batches``, then run rounds in-process, then stop).
    """
    shards: Dict[int, List[Fault]] = {
        shard_id: faults[shard_id::jobs] for shard_id in range(jobs)
    }
    shards = {s: flist for s, flist in shards.items() if flist}
    stats = {
        shard_id: ShardStats(shard=shard_id, n_faults=len(flist))
        for shard_id, flist in shards.items()
    }
    merged: Dict[Fault, int] = {}
    fault_index = {fault: i for i, fault in enumerate(faults)}
    journal = store.load() if store is not None else {}
    payload = pickle.dumps((netlist, batch_width, telemetry.enabled()))
    pool = _WorkerPool(len(shards), payload)
    degraded_simulator: Optional[FaultSimulator] = None
    stop_reason: Optional[str] = None
    force_serial = False
    pattern_base = 0
    batch_index = 0
    round_index = 0
    try:
        while pattern_base < max_patterns and any(shards.values()):
            # A journaled record pins this round's geometry (the writing
            # run may have halved its chunk size mid-run under memory
            # pressure); otherwise plan from the current chunk setting.
            widths: List[int] = []
            for shard_id in sorted(shards):
                record = journal.get((shard_id, round_index))
                if record is not None:
                    widths = _widths_from_patterns(
                        pattern_base, int(record["patterns"]),
                        batch_width, max_patterns,
                    )
                    break
            if not widths:
                widths = _plan_round(
                    pattern_base, max_patterns, batch_width, chunk_batches
                )
            if guard is not None:
                stop_reason = guard.should_stop(pattern_base, sum(widths))
                if stop_reason is not None:
                    break
            with telemetry.span(
                "engine.round", round=round_index, pattern_base=pattern_base,
            ) as round_span:
                active = sorted(s for s, live in shards.items() if live)
                round_span.set_attribute("shards", len(active))
                need_golden = any(
                    (shard_id, round_index) not in journal
                    for shard_id in active
                )
                round_batches: List[Tuple[int, Dict[int, int]]] = []
                for offset, width in enumerate(widths):
                    mask = (1 << width) - 1
                    if need_golden:
                        round_batches.append((
                            mask,
                            _narrow(
                                golden.golden_batch(batch_index + offset),
                                mask, batch_width,
                            ),
                        ))
                batch_index += len(widths)

                # Replay journaled rounds; execute the rest fault-tolerantly.
                results: Dict[int, Tuple[Dict[Fault, int], List[Fault], Optional[Dict]]] = {}
                pending: Set[int] = set()
                for shard_id in active:
                    record = journal.get((shard_id, round_index))
                    if record is not None:
                        detections, survivors = _replay_record(record, faults)
                        results[shard_id] = (detections, survivors, None)
                        stats[shard_id].rounds_resumed += 1
                    else:
                        pending.add(shard_id)
                if pending and force_serial:
                    degraded_simulator = _run_round_in_process(
                        shards, pending, round_batches, pattern_base,
                        round_index, drop_detected, results, netlist,
                        batch_width, degraded_simulator,
                    )
                elif pending:
                    degraded_simulator = _execute_round(
                        pool, shards, stats, pending, round_batches,
                        pattern_base, round_index, drop_detected,
                        shard_timeout, max_retries, retry_backoff, chaos,
                        results, netlist, batch_width, degraded_simulator,
                    )

                with telemetry.span(
                    "engine.merge", round=round_index, shards=len(results),
                ):
                    for shard_id in sorted(results):
                        detections, survivors, measured = results[shard_id]
                        for fault, index in detections.items():
                            # Rounds arrive in pattern order.
                            if fault not in merged:
                                merged[fault] = index
                        dropped = len(shards[shard_id]) - len(survivors)
                        if measured is not None:
                            stats[shard_id].absorb(
                                int(measured["events"]),
                                int(measured["patterns"]),
                                float(measured["wall"]),
                                dropped if drop_detected else 0,
                            )
                            if store is not None:
                                store.record(
                                    shard_id, round_index,
                                    {fault_index[f]: p
                                     for f, p in detections.items()},
                                    [fault_index[f] for f in survivors],
                                    sum(widths),
                                )
                        else:
                            stats[shard_id].faults_dropped += (
                                dropped if drop_detected else 0
                            )
                        if drop_detected:
                            shards[shard_id] = survivors
                pattern_base += sum(widths)
                telemetry.count("engine.rounds")
            if chaos is not None and chaos.aborts_after(round_index):
                raise ChaosInterrupt(
                    f"chaos: run aborted after round {round_index}"
                )
            if guard is not None:
                guard.after_round(round_index)
                action = guard.memory_action(
                    round_index, pool.worker_pids(), chunk_batches,
                    force_serial,
                )
                if action is not None:
                    for shard_id, live in shards.items():
                        if live:
                            stats[shard_id].memory_adaptations += 1
                    if action == "halve":
                        chunk_batches = max(1, chunk_batches // 2)
                    elif action == "serial":
                        force_serial = True
                        pool.shutdown()
                        for shard_id, live in shards.items():
                            if live and stats[shard_id].degraded_reason is None:
                                stats[shard_id].degraded_reason = (
                                    f"memory pressure at round {round_index};"
                                    " degraded to in-process serial"
                                )
                    elif action == "stop" and pattern_base < max_patterns \
                            and any(shards.values()):
                        # A vacuous stop on the final round is not a stop.
                        stop_reason = guard.stop_reason
                        round_index += 1
                        break
            round_index += 1
            if stop_when_complete and len(merged) == len(faults):
                break
    finally:
        pool.shutdown()

    if stop_reason is not None:
        # Guard stop: patterns actually applied, reason stamped on every
        # shard that still had live faults when the run was cut short.
        n_patterns = pattern_base
        for shard_id, live in shards.items():
            if live:
                stats[shard_id].stop_reason = stop_reason
    else:
        n_patterns = _stopped_n_patterns(
            merged, len(faults), max_patterns, batch_width,
            stop_when_complete, drop_detected,
        )
    return EngineResult(
        netlist=netlist,
        faults=faults,
        first_detection=merged,
        n_patterns=n_patterns,
        partial=stop_reason is not None,
        stop_reason=stop_reason,
        jobs=jobs,
        shards=[stats[shard_id] for shard_id in sorted(stats)],
    )


def _execute_round(
    pool: _WorkerPool,
    shards: Dict[int, List[Fault]],
    stats: Dict[int, ShardStats],
    pending: Set[int],
    round_batches: List[Tuple[int, Dict[int, int]]],
    pattern_base: int,
    round_index: int,
    drop_detected: bool,
    shard_timeout: Optional[float],
    max_retries: int,
    retry_backoff: float,
    chaos: Optional[FaultInjector],
    results: Dict[int, Tuple[Dict[Fault, int], List[Fault], Optional[Dict]]],
    netlist: Netlist,
    batch_width: int,
    degraded_simulator: Optional[FaultSimulator],
) -> Optional[FaultSimulator]:
    """Run one round's pending shards to completion, whatever fails.

    Retry waves: all pending shards are submitted together; any that fail
    (worker crash, timeout, integrity mismatch) force a pool rebuild and
    are resubmitted after exponential backoff, up to ``max_retries`` times
    each.  A shard past its budget runs degraded — serially, in the parent
    process — so this function always returns with every pending shard in
    ``results``.  Returns the (lazily built) degraded-path simulator for
    reuse across rounds.
    """
    attempts = {shard_id: 0 for shard_id in pending}
    while pending:
        futures = {
            shard_id: pool.submit(
                _run_shard_round,
                shard_id,
                shards[shard_id],
                round_batches,
                pattern_base,
                drop_detected,
                round_index,
                attempts[shard_id],
                chaos,
            )
            for shard_id in sorted(pending)
        }
        deadline = (
            None if shard_timeout is None
            else time.monotonic() + shard_timeout
        )
        failed: List[int] = []
        for shard_id, future in futures.items():
            try:
                remaining = (
                    None if deadline is None
                    else max(deadline - time.monotonic(), 1e-3)
                )
                (_, detections, survivors, measured, checksum,
                 worker_spans) = future.result(timeout=remaining)
                if checksum != _round_checksum(
                    detections, survivors, int(measured["patterns"])
                ):
                    raise _CorruptShardRound(
                        f"shard {shard_id} round {round_index}: "
                        "integrity checksum mismatch"
                    )
            except FutureTimeoutError:
                stats[shard_id].timeouts += 1
                failed.append(shard_id)
            except (BrokenExecutor, ReproError, pickle.PickleError, OSError):
                # A dead worker (BrokenProcessPool), a worker-raised library
                # error (ChaosError, SimulationError), a corrupted payload
                # (_CorruptShardRound), or an IPC/pickling failure: all
                # retried the same way.  Anything else — a genuine bug —
                # propagates instead of being silently retried.
                stats[shard_id].failures += 1
                telemetry.count("engine.swallowed_errors")
                failed.append(shard_id)
            else:
                results[shard_id] = (detections, survivors, measured)
                pending.discard(shard_id)
                if worker_spans:
                    telemetry.get_telemetry().tracer.absorb(worker_spans)
        if not failed:
            break
        # A dead or hung worker poisons the executor; rebuild it before
        # the next wave (healthy shards already returned their results).
        pool.restart()
        for shard_id in failed:
            attempts[shard_id] += 1
            if attempts[shard_id] > max_retries:
                if degraded_simulator is None:
                    degraded_simulator = FaultSimulator(netlist, batch_width)
                with telemetry.span(
                    "engine.shard_round.degraded",
                    shard=shard_id, round=round_index,
                    attempts=attempts[shard_id],
                ):
                    detections, survivors, measured = _consume_batches(
                        degraded_simulator, shards[shard_id], round_batches,
                        pattern_base, drop_detected,
                    )
                results[shard_id] = (detections, survivors, measured)
                stats[shard_id].degraded_reason = (
                    f"retry budget exhausted after {attempts[shard_id]} "
                    f"attempts at round {round_index}; ran in-process"
                )
                pending.discard(shard_id)
            else:
                stats[shard_id].retries += 1
        if pending and retry_backoff > 0:
            wave = min(attempts[shard_id] for shard_id in pending)
            time.sleep(retry_backoff * (2 ** max(wave - 1, 0)))
    return degraded_simulator


def _run_round_in_process(
    shards: Dict[int, List[Fault]],
    pending: Set[int],
    round_batches: List[Tuple[int, Dict[int, int]]],
    pattern_base: int,
    round_index: int,
    drop_detected: bool,
    results: Dict[int, Tuple[Dict[Fault, int], List[Fault], Optional[Dict]]],
    netlist: Netlist,
    batch_width: int,
    degraded_simulator: Optional[FaultSimulator],
) -> Optional[FaultSimulator]:
    """Run one round's pending shards serially in the parent.

    The memory guard's last rung before stopping: the worker pool is gone,
    so every shard round goes through the same ``_consume_batches``
    primitive the workers use — results (and journal records) stay
    bit-identical, only the peak memory drops.
    """
    if degraded_simulator is None:
        degraded_simulator = FaultSimulator(netlist, batch_width)
    for shard_id in sorted(pending):
        with telemetry.span(
            "engine.shard_round.degraded",
            shard=shard_id, round=round_index, reason="memory",
        ):
            detections, survivors, measured = _consume_batches(
                degraded_simulator, shards[shard_id], round_batches,
                pattern_base, drop_detected,
            )
        results[shard_id] = (detections, survivors, measured)
    pending.clear()
    return degraded_simulator

"""The parallel fault-simulation engine (single entry point: ``simulate``).

``simulate`` partitions the collapsed fault list into round-robin shards
and fans the shards out over a pluggable :mod:`repro.exec` backend —
``process`` (a warm worker pool, the default), ``thread`` or ``serial`` —
each worker running the existing bit-parallel event-driven propagator
(:meth:`repro.faultsim.simulator.FaultSimulator.simulate_batch`) over the
golden batches the parent ships it.  Per-shard ``first_detection`` maps are
merged deterministically — shards are disjoint and rounds arrive in
pattern order — so the result is **bit-identical to the serial path** for
every backend and every combination of ``stop_when_complete`` /
``drop_detected``.

How a run is shaped now lives in one frozen object,
:class:`repro.exec.RunConfig`::

    from repro.exec import ExecutionPolicy, RunConfig

    result = simulate(netlist, faults, patterns, config=RunConfig(
        execution=ExecutionPolicy(jobs=4, executor="process"),
    ))

The historical keyword arguments (``jobs=4, shard_timeout=...``) are still
accepted through a deprecation shim that maps them onto a ``RunConfig``
and warns once per process.

The engine is fault tolerant: every shard round carries an integrity
checksum, is bounded by an optional ``shard_timeout``, and is retried with
exponential backoff on crash / timeout / corruption.  That machinery lives
in :class:`repro.exec.RoundDriver`, *above* the executor boundary, so
every backend inherits it; a shard that exhausts its retry budget degrades
gracefully to in-process serial execution in the parent, and a run
*always* completes with results identical to ``jobs=1``.  With a
checkpoint directory, completed rounds are journaled
(:mod:`repro.engine.checkpoint`) and ``resume=True`` replays them instead
of re-executing; a deterministic :class:`~repro.engine.chaos.FaultInjector`
(config field or ``$REPRO_CHAOS``) makes all of these paths testable in CI.

The fault-free (golden) evaluation of each batch is computed once in the
parent, optionally through a :class:`~repro.engine.cache.GoldenCache`
shared across shards and across repeated runs.  ``jobs=None`` (or 1) runs
the same primitive serially in-process with zero executor overhead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro import telemetry
from repro.engine import checkpoint as checkpoint_io
from repro.engine.cache import GoldenBatches, GoldenCache
from repro.engine.chaos import ChaosInterrupt, FaultInjector
from repro.engine.instrumentation import ShardStats, publish_engine_metrics
from repro.errors import SimulationError
from repro.exec.base import (
    ExecutionContext,
    NodeStats,
    create_executor,
    resolve_executor_name,
)
from repro.exec.config import (
    DEFAULT_CHUNK_BATCHES,
    DEFAULT_MAX_RETRIES,
    DEFAULT_RETRY_BACKOFF,
    RunConfig,
    runconfig_from_legacy,
)
from repro.engine.vec import resolve_kernel
from repro.exec.driver import CorruptShardRound, RoundDriver
from repro.exec.process import _WorkerPool  # noqa: F401  (compatibility alias)
from repro.exec.worker import (
    consume_batches,
    fault_key,
    make_simulator,
    round_checksum,
)
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.faults import Fault
from repro.faultsim.patterns import PatternSource
from repro.faultsim.simulator import FaultSimulator
from repro.guard.runner import RunGuard
from repro.netlist.netlist import Netlist
from repro.results import FaultSimResult

#: Historical names, kept importable: these constants and primitives moved
#: to :mod:`repro.exec` with the executor refactor.
CHUNK_BATCHES = DEFAULT_CHUNK_BATCHES
MAX_RETRIES = DEFAULT_MAX_RETRIES
RETRY_BACKOFF = DEFAULT_RETRY_BACKOFF
_fault_key = fault_key
_round_checksum = round_checksum
_consume_batches = consume_batches
_CorruptShardRound = CorruptShardRound


@dataclass
class EngineResult(FaultSimResult):
    """A :class:`~repro.results.FaultSimResult` plus engine instrumentation.

    Drop-in compatible with the serial result everywhere (it *is* one);
    the extra fields surface how the run was executed.
    """

    jobs: int = 1
    executor: str = "serial"
    kernel: str = "packed"
    kernel_fallback: Optional[str] = None
    wall_time: float = 0.0
    shards: List[ShardStats] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    #: Per-peer accounting when the run used the ``remote`` backend
    #: (empty for local backends); includes the synthetic ``node == -1``
    #: record when the run degraded to the local process fallback.
    nodes: List[NodeStats] = field(default_factory=list)
    #: Predicted-vs-measured coverage summary when the run was made with
    #: ``config.analyze=True`` (see :mod:`repro.analysis.random_testability`).
    testability: Optional[Dict[str, Any]] = None

    @property
    def events_propagated(self) -> int:
        return sum(shard.events_propagated for shard in self.shards)

    @property
    def rounds_resumed(self) -> int:
        """Shard rounds replayed from a checkpoint journal, summed."""
        return sum(shard.rounds_resumed for shard in self.shards)

    @property
    def retries(self) -> int:
        """Shard-round re-executions forced by failures, summed."""
        return sum(shard.retries for shard in self.shards)

    @property
    def degraded_shards(self) -> List[int]:
        """Shards that fell back to in-process execution."""
        return [shard.shard for shard in self.shards if shard.degraded]

    @property
    def memory_adaptations(self) -> int:
        """Guard memory-ladder steps applied during the run, summed."""
        return sum(shard.memory_adaptations for shard in self.shards)

    def to_json(self, include_faults: bool = False) -> Dict:
        payload = super().to_json(include_faults)
        payload["engine"] = {
            "jobs": self.jobs,
            "executor": self.executor,
            "kernel": self.kernel,
            "kernel_fallback": self.kernel_fallback,
            "wall_time": self.wall_time,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "retries": self.retries,
            "rounds_resumed": self.rounds_resumed,
            "degraded_shards": self.degraded_shards,
            "shards": [shard.to_json() for shard in self.shards],
        }
        if self.nodes:
            payload["engine"]["nodes"] = [node.to_json() for node in self.nodes]
        if self.testability is not None:
            payload["testability"] = self.testability
        return payload


# --------------------------------------------------------------- parent side

def _narrow(good: Dict[int, int], mask: int, batch_width: int) -> Dict[int, int]:
    """Restrict full-width golden values to a narrower final batch.

    Packed evaluation is bitwise per pattern lane, so masking the wide
    result equals evaluating at the narrow width directly.
    """
    if mask == (1 << batch_width) - 1:
        return good
    return {net: value & mask for net, value in good.items()}


def _plan_round(
    pattern_base: int, max_patterns: int, batch_width: int, n_batches: int
) -> List[int]:
    """Widths of the next up-to-``n_batches`` batches, respecting the cap."""
    widths: List[int] = []
    base = pattern_base
    while len(widths) < n_batches and base < max_patterns:
        width = min(batch_width, max_patterns - base)
        widths.append(width)
        base += width
    return widths


def _widths_from_patterns(
    pattern_base: int, round_patterns: int, batch_width: int, max_patterns: int
) -> List[int]:
    """Reconstruct a journaled round's batch widths from its pattern count.

    A resumed run must execute every round with the geometry the *writing*
    run used — which may differ from a fresh plan when the writer's guard
    halved ``chunk_batches`` under memory pressure mid-run.  Each record
    stores the round's total patterns; decomposing that total greedily at
    ``batch_width`` reproduces the writer's widths exactly (the writer
    planned the same way).
    """
    widths: List[int] = []
    base = pattern_base
    remaining = round_patterns
    while remaining > 0:
        width = min(batch_width, max_patterns - base, remaining)
        if width <= 0:  # corrupt/foreign count; let the caller re-plan
            return []
        widths.append(width)
        base += width
        remaining -= width
    return widths


def _stopped_n_patterns(
    first_detection: Dict[Fault, int],
    n_faults: int,
    max_patterns: int,
    batch_width: int,
    stop_when_complete: bool,
    drop_detected: bool,
) -> int:
    """The serial loop's ``n_patterns`` accounting, computed analytically.

    The serial path stops at the end of the batch in which the last live
    fault was detected — either because fault dropping emptied the live
    list or because ``stop_when_complete`` saw full detection — and runs to
    ``max_patterns`` otherwise.
    """
    if n_faults == 0:
        return 0
    if len(first_detection) == n_faults and (drop_detected or stop_when_complete):
        last = max(first_detection.values())
        return min(max_patterns, (last // batch_width + 1) * batch_width)
    return max_patterns


def simulate(
    netlist: Netlist,
    faults: Optional[Sequence[Fault]] = None,
    patterns: Optional[PatternSource] = None,
    *,
    config: Optional[RunConfig] = None,
    cache: Optional[GoldenCache] = None,
    simulator: Optional[FaultSimulator] = None,
    **options: Any,
) -> EngineResult:
    """Fault-simulate ``patterns`` against ``faults``, optionally in parallel.

    Parameters
    ----------
    netlist:
        The combinational circuit under test.
    faults:
        Fault list; defaults to the equivalence-collapsed universe.
    patterns:
        Pattern source; defaults to a seeded
        :class:`~repro.faultsim.patterns.RandomPatternSource`.
    config:
        A :class:`repro.exec.RunConfig` describing everything else about
        the run — execution backend and shard count
        (:class:`~repro.exec.ExecutionPolicy`), retry/timeout policy
        (:class:`~repro.exec.RetryPolicy`), checkpointing
        (:class:`~repro.exec.CheckpointPolicy`), budget, cancellation,
        chaos, pattern cap and stop/drop semantics.  Defaults to
        ``RunConfig()``: serial, 2^16 patterns, no checkpointing.
    cache:
        Optional :class:`GoldenCache` for fault-free batch evaluations,
        shared across shards and across repeated calls.  A *resource*, not
        run configuration — it stays a direct parameter.
    simulator:
        An existing :class:`FaultSimulator` to reuse for serial runs (the
        ``FaultSimulator.run`` routing passes itself).  Also a resource.
    **options:
        .. deprecated:: PR6
            The historical keyword surface (``jobs=``, ``max_patterns=``,
            ``shard_timeout=``, ``checkpoint_dir=``, ``budget=``, ...) is
            accepted via :func:`repro.exec.runconfig_from_legacy`, which
            maps it onto a ``RunConfig`` and emits one
            :class:`DeprecationWarning` per process.  Results are
            bit-identical to the equivalent ``config=`` call.  Passing
            both ``config`` and legacy options is an error.

    The run is bit-identical across executors (``serial`` / ``thread`` /
    ``process``) and across every failure-recovery path: retries, degraded
    in-process fallback, checkpoint resume, and the guard's memory ladder.
    A tripped budget or cancel token stops the run cleanly at a round
    boundary with ``partial=True`` and a structured ``stop_reason`` — see
    ``docs/ROBUSTNESS.md`` and ``docs/EXECUTORS.md``.
    """
    if config is not None and options:
        raise SimulationError(
            "simulate() takes either config=RunConfig(...) or the legacy "
            "keyword options, not both (got config plus: "
            f"{', '.join(sorted(options))})"
        )
    if config is None:
        config = runconfig_from_legacy(options)
    if config.check:
        # Fail fast with witnesses, before faults are collapsed, golden
        # batches are computed, or any shard process exists.
        from repro.lint.runner import preflight_netlist

        preflight_netlist(netlist)
    if faults is None:
        faults, _ = collapse_faults(netlist)
    if patterns is None:
        from repro.faultsim.patterns import RandomPatternSource

        patterns = RandomPatternSource(len(netlist.primary_inputs))
    if patterns.n_inputs != len(netlist.primary_inputs):
        raise SimulationError(
            f"pattern source width {patterns.n_inputs} != circuit inputs "
            f"{len(netlist.primary_inputs)}"
        )
    chaos = config.chaos if config.chaos is not None else FaultInjector.from_env()

    fault_list = list(faults)
    profile = None
    if config.analyze:
        # Opt-in static pre-flight: profile the same collapsed fault list
        # the run targets, so predicted and measured coverage share a
        # denominator.  Advisory only — never perturbs the run itself.
        from repro.analysis.random_testability import analyze_netlist

        with telemetry.span(
            "analysis.preflight", circuit=netlist.name,
            n_faults=len(fault_list),
        ):
            telemetry.count("analysis.preflight_runs")
            profile = analyze_netlist(netlist, fault_list)
    batch_width = config.execution.batch_width
    # Resolve the evaluation kernel once for the whole run: an explicitly
    # constructed simulator pins its own kernel (FaultSimulator.run passes
    # itself); otherwise config -> $REPRO_ENGINE_KERNEL -> cost heuristic,
    # with automatic packed fallback for unsupported netlists.
    requested_kernel = config.execution.kernel
    if requested_kernel is None and simulator is not None:
        requested_kernel = getattr(simulator, "kernel", None)
    kernel, kernel_fallback = resolve_kernel(
        requested_kernel, netlist, len(fault_list)
    )
    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0
    if simulator is not None and simulator.batch_width == batch_width:
        evaluator = simulator.evaluator
    else:
        evaluator = None
    golden: Optional[GoldenBatches] = None
    if cache is not None:
        golden = cache.batch_entry(netlist, patterns, batch_width, evaluator)
    if golden is None:
        if evaluator is None:
            from repro.netlist.evaluate import Evaluator

            evaluator = Evaluator(netlist)
        golden = GoldenBatches(evaluator, patterns, batch_width)

    start = time.perf_counter()
    guard = RunGuard.create(config.budget, config.cancel, chaos)
    n_jobs = config.execution.effective_jobs
    serial = n_jobs == 1 or len(fault_list) <= 1
    executor_name = (
        "serial" if serial
        else resolve_executor_name(config.execution.executor)
    )
    store = checkpoint_io.open_store(
        netlist, patterns, fault_list, config, 1 if serial else n_jobs,
    )
    with telemetry.span(
        "engine.simulate",
        circuit=netlist.name, jobs=1 if serial else n_jobs,
        executor=executor_name, kernel=kernel,
        n_faults=len(fault_list), max_patterns=config.max_patterns,
    ) as run_span:
        if serial:
            result = _simulate_serial(
                netlist, fault_list, golden, config, simulator, chaos,
                store, guard, kernel,
            )
        else:
            result = _simulate_parallel(
                netlist, fault_list, golden, config, n_jobs, executor_name,
                chaos, store, guard, kernel,
            )
        run_span.set_attribute("n_patterns", result.n_patterns)
        if result.partial:
            run_span.set_attribute("partial", True)
            run_span.set_attribute("stop_reason", result.stop_reason)
    result.kernel = kernel
    result.kernel_fallback = kernel_fallback
    result.wall_time = time.perf_counter() - start
    if profile is not None:
        window = result.n_patterns if result.n_patterns > 0 else config.max_patterns
        predicted = profile.predicted_coverage(window)
        measured = result.coverage()
        delta = predicted - measured
        result.testability = {
            "window": window,
            "predicted_coverage": predicted,
            "measured_coverage": measured,
            "delta": delta,
            "n_faults": profile.n_faults,
            "n_resistant": len(profile.random_resistant(1.0 / window)),
            "n_undetectable": len(profile.undetectable()),
        }
        telemetry.count("analysis.preflight_deltas")
        telemetry.gauge_set("analysis.predicted_coverage", predicted)
        telemetry.gauge_set("analysis.coverage_delta", delta)
    if cache is not None:
        result.cache_hits = cache.hits - hits_before
        result.cache_misses = cache.misses - misses_before
    tele = telemetry.get_telemetry()
    if tele.enabled:
        # ShardStats stays the single source of truth; the registry just
        # accumulates the per-run sums (see docs/OBSERVABILITY.md).
        publish_engine_metrics(result, tele.metrics)
    return result


def _replay_record(
    record: Dict[str, Any], fault_list: List[Fault]
) -> Tuple[Dict[Fault, int], List[Fault]]:
    """Indices-on-disk -> fault objects for one journaled round."""
    detections = {
        fault_list[index]: pattern
        for index, pattern in record["detections"].items()
    }
    survivors = [fault_list[index] for index in record["survivors"]]
    return detections, survivors


def _simulate_serial(
    netlist: Netlist,
    faults: List[Fault],
    golden: GoldenBatches,
    config: RunConfig,
    simulator: Optional[FaultSimulator],
    chaos: Optional[FaultInjector],
    store: Optional[checkpoint_io.CheckpointStore],
    guard: Optional[RunGuard] = None,
    kernel: str = "packed",
) -> EngineResult:
    """The historical serial loop, driven through the golden provider.

    With a checkpoint store each batch is one journaled round (shard 0);
    chaos injection does not apply in-process (there is no worker to kill)
    except for the parent-side ``abort``/``sigterm``/``oom`` modes.  A
    tripped :class:`~repro.guard.runner.RunGuard` limit breaks the loop at
    the next batch boundary and flags the result partial.
    """
    max_patterns = config.max_patterns
    batch_width = config.execution.batch_width
    drop_detected = config.drop_detected
    if (simulator is None or simulator.batch_width != batch_width
            or getattr(simulator, "kernel", "packed") != kernel):
        simulator = make_simulator(netlist, batch_width, kernel)
    stats = ShardStats(shard=0, n_faults=len(faults))
    events_before = simulator.events_propagated
    shard_start = time.perf_counter()
    journal = store.load() if store is not None else {}
    fault_index = {fault: i for i, fault in enumerate(faults)}

    detections: Dict[Fault, int] = {}
    live = list(faults)
    stop_reason: Optional[str] = None
    pattern_base = 0
    batch_index = 0
    while pattern_base < max_patterns and live:
        width = min(batch_width, max_patterns - pattern_base)
        if guard is not None:
            stop_reason = guard.should_stop(pattern_base, width)
            if stop_reason is not None:
                break
        record = journal.get((0, batch_index))
        if record is not None:
            batch_detections, survivors = _replay_record(record, faults)
            stats.rounds_resumed += 1
        else:
            mask = (1 << width) - 1
            good = _narrow(golden.golden_batch(batch_index), mask, batch_width)
            batch_detections = {}
            survivors = simulator.simulate_batch(
                live, good, mask, pattern_base, batch_detections, drop_detected
            )
            if store is not None:
                store.record(
                    0, batch_index,
                    {fault_index[f]: p for f, p in batch_detections.items()},
                    [fault_index[f] for f in survivors],
                    width,
                )
        for fault, index in batch_detections.items():
            if fault not in detections:
                detections[fault] = index
        stats.faults_dropped += len(live) - len(survivors)
        live = survivors
        pattern_base += width
        batch_index += 1
        telemetry.count("engine.rounds")
        if chaos is not None and chaos.aborts_after(batch_index - 1):
            raise ChaosInterrupt(
                f"chaos: run aborted after round {batch_index - 1}"
            )
        if guard is not None:
            guard.after_round(batch_index - 1)
            action = guard.memory_action(batch_index - 1, (), 1, True)
            if action == "stop" and pattern_base < max_patterns and live:
                # Only a stop that actually cuts work short is a stop; on
                # the final batch the run just completed normally.
                stop_reason = guard.stop_reason
                break
        if config.stop_when_complete and len(detections) == len(faults):
            break

    stats.events_propagated = simulator.events_propagated - events_before
    stats.patterns_simulated = pattern_base
    stats.wall_time = time.perf_counter() - shard_start
    stats.stop_reason = stop_reason
    return EngineResult(
        netlist=netlist,
        faults=faults,
        first_detection=detections,
        n_patterns=pattern_base,
        partial=stop_reason is not None,
        stop_reason=stop_reason,
        jobs=1,
        executor="serial",
        shards=[stats],
    )


def _simulate_parallel(
    netlist: Netlist,
    faults: List[Fault],
    golden: GoldenBatches,
    config: RunConfig,
    jobs: int,
    executor_name: str,
    chaos: Optional[FaultInjector],
    store: Optional[checkpoint_io.CheckpointStore],
    guard: Optional[RunGuard] = None,
    kernel: str = "packed",
) -> EngineResult:
    """Fan fault shards out over an execution backend, round by round.

    Every round is executed fault-tolerantly by the
    :class:`~repro.exec.RoundDriver` (retry waves, timeouts, integrity
    checks, degraded fallback) and journaled once complete; rounds present
    in the journal are replayed without touching the backend at all.  The
    guard is consulted at every round boundary: before a round for
    cancellation/deadline/pattern-cap stops, after it for chaos
    cancellation and the memory ladder (halve ``chunk_batches``, then
    release the backend and run rounds in-process, then stop) — uniformly,
    whatever the backend.
    """
    max_patterns = config.max_patterns
    batch_width = config.execution.batch_width
    stop_when_complete = config.stop_when_complete
    drop_detected = config.drop_detected
    chunk_batches = config.execution.chunk_batches
    shards: Dict[int, List[Fault]] = {
        shard_id: faults[shard_id::jobs] for shard_id in range(jobs)
    }
    shards = {s: flist for s, flist in shards.items() if flist}
    stats = {
        shard_id: ShardStats(shard=shard_id, n_faults=len(flist))
        for shard_id, flist in shards.items()
    }
    merged: Dict[Fault, int] = {}
    fault_index = {fault: i for i, fault in enumerate(faults)}
    journal = store.load() if store is not None else {}
    executor = create_executor(executor_name)
    executor.start(ExecutionContext(
        netlist=netlist,
        batch_width=batch_width,
        max_workers=len(shards),
        telemetry_enabled=telemetry.enabled(),
        kernel=kernel,
        # Parent-side only (never pickled to workers): the remote backend
        # watches it to forward cancellation frames to its peers.
        cancel=config.cancel,
    ))
    driver = RoundDriver(
        executor, netlist, batch_width, config.retry, chaos, kernel
    )
    stop_reason: Optional[str] = None
    force_serial = False
    pattern_base = 0
    batch_index = 0
    round_index = 0
    try:
        while pattern_base < max_patterns and any(shards.values()):
            # A journaled record pins this round's geometry (the writing
            # run may have halved its chunk size mid-run under memory
            # pressure); otherwise plan from the current chunk setting.
            widths: List[int] = []
            for shard_id in sorted(shards):
                record = journal.get((shard_id, round_index))
                if record is not None:
                    widths = _widths_from_patterns(
                        pattern_base, int(record["patterns"]),
                        batch_width, max_patterns,
                    )
                    break
            if not widths:
                widths = _plan_round(
                    pattern_base, max_patterns, batch_width, chunk_batches
                )
            if guard is not None:
                stop_reason = guard.should_stop(pattern_base, sum(widths))
                if stop_reason is not None:
                    break
            with telemetry.span(
                "engine.round", round=round_index, pattern_base=pattern_base,
            ) as round_span:
                active = sorted(s for s, live in shards.items() if live)
                round_span.set_attribute("shards", len(active))
                need_golden = any(
                    (shard_id, round_index) not in journal
                    for shard_id in active
                )
                round_batches: List[Tuple[int, Dict[int, int]]] = []
                for offset, width in enumerate(widths):
                    mask = (1 << width) - 1
                    if need_golden:
                        round_batches.append((
                            mask,
                            _narrow(
                                golden.golden_batch(batch_index + offset),
                                mask, batch_width,
                            ),
                        ))
                batch_index += len(widths)

                # Replay journaled rounds; execute the rest fault-tolerantly.
                results: Dict[int, Tuple[Dict[Fault, int], List[Fault], Optional[Dict]]] = {}
                pending: Set[int] = set()
                for shard_id in active:
                    record = journal.get((shard_id, round_index))
                    if record is not None:
                        detections, survivors = _replay_record(record, faults)
                        results[shard_id] = (detections, survivors, None)
                        stats[shard_id].rounds_resumed += 1
                    else:
                        pending.add(shard_id)
                if pending and force_serial:
                    driver.run_round_in_process(
                        shards, pending, round_batches, pattern_base,
                        round_index, drop_detected, results,
                    )
                elif pending:
                    driver.execute_round(
                        shards, stats, pending, round_batches, pattern_base,
                        round_index, drop_detected, results,
                    )

                with telemetry.span(
                    "engine.merge", round=round_index, shards=len(results),
                ):
                    for shard_id in sorted(results):
                        detections, survivors, measured = results[shard_id]
                        for fault, index in detections.items():
                            # Rounds arrive in pattern order.
                            if fault not in merged:
                                merged[fault] = index
                        dropped = len(shards[shard_id]) - len(survivors)
                        if measured is not None:
                            stats[shard_id].absorb(
                                int(measured["events"]),
                                int(measured["patterns"]),
                                float(measured["wall"]),
                                dropped if drop_detected else 0,
                            )
                            if store is not None:
                                store.record(
                                    shard_id, round_index,
                                    {fault_index[f]: p
                                     for f, p in detections.items()},
                                    [fault_index[f] for f in survivors],
                                    sum(widths),
                                )
                        else:
                            stats[shard_id].faults_dropped += (
                                dropped if drop_detected else 0
                            )
                        if drop_detected:
                            shards[shard_id] = survivors
                pattern_base += sum(widths)
                telemetry.count("engine.rounds")
            if chaos is not None and chaos.aborts_after(round_index):
                raise ChaosInterrupt(
                    f"chaos: run aborted after round {round_index}"
                )
            if guard is not None:
                guard.after_round(round_index)
                action = guard.memory_action(
                    round_index, executor.worker_pids(), chunk_batches,
                    force_serial,
                )
                if action is not None:
                    for shard_id, live in shards.items():
                        if live:
                            stats[shard_id].memory_adaptations += 1
                    if action == "halve":
                        chunk_batches = max(1, chunk_batches // 2)
                    elif action == "serial":
                        force_serial = True
                        # Hard release, not a stop: worker RSS must drop
                        # now, so warm-pool parking is not allowed.
                        executor.release()
                        for shard_id, live in shards.items():
                            if live and stats[shard_id].degraded_reason is None:
                                stats[shard_id].degraded_reason = (
                                    f"memory pressure at round {round_index};"
                                    " degraded to in-process serial"
                                )
                    elif action == "stop" and pattern_base < max_patterns \
                            and any(shards.values()):
                        # A vacuous stop on the final round is not a stop.
                        stop_reason = guard.stop_reason
                        round_index += 1
                        break
            round_index += 1
            if stop_when_complete and len(merged) == len(faults):
                break
    finally:
        # Stats objects survive stop(); snapshot them for the result.
        node_stats = list(executor.node_stats())
        executor.stop()

    if stop_reason is not None:
        # Guard stop: patterns actually applied, reason stamped on every
        # shard that still had live faults when the run was cut short.
        n_patterns = pattern_base
        for shard_id, live in shards.items():
            if live:
                stats[shard_id].stop_reason = stop_reason
    else:
        n_patterns = _stopped_n_patterns(
            merged, len(faults), max_patterns, batch_width,
            stop_when_complete, drop_detected,
        )
    return EngineResult(
        netlist=netlist,
        faults=faults,
        first_detection=merged,
        n_patterns=n_patterns,
        partial=stop_reason is not None,
        stop_reason=stop_reason,
        jobs=jobs,
        executor=executor_name,
        shards=[stats[shard_id] for shard_id in sorted(stats)],
        nodes=node_stats,
    )

"""Lightweight per-shard measurement of an engine run.

Every :func:`repro.engine.simulate` call returns one :class:`ShardStats`
per fault shard (a single implicit shard for serial runs), aggregated over
all rounds the shard participated in.  Fields are chosen to answer the
scaling questions the benchmarks ask: where did wall time go, how much
propagation work did each shard do, and how quickly were faults dropped.

``ShardStats`` is the *single source of truth* for per-run execution
counters: when telemetry is enabled the engine publishes the summed stats
into the global metrics registry once per run
(:func:`publish_engine_metrics`), rather than double-counting at every
failure-handling site.  ``to_json``/``from_json`` round-trip every field,
including the failure-handling ones, through ``EngineResult.to_json()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.core import EngineResult
    from repro.telemetry.metrics import MetricsRegistry


@dataclass
class ShardStats:
    """Aggregated measurements for one fault shard."""

    shard: int
    n_faults: int = 0              #: faults assigned to this shard
    faults_dropped: int = 0        #: faults removed after first detection
    events_propagated: int = 0     #: gate evaluations during fault propagation
    patterns_simulated: int = 0    #: patterns this shard actually consumed
    wall_time: float = 0.0         #: seconds spent inside the shard worker
    retries: int = 0               #: rounds re-executed after a failure
    timeouts: int = 0              #: attempts that exceeded the shard timeout
    failures: int = 0              #: attempts lost to crashes/errors/corruption
    rounds_resumed: int = 0        #: rounds replayed from a checkpoint journal
    degraded_reason: Optional[str] = None  #: why the shard fell back in-process
    memory_adaptations: int = 0    #: guard ladder steps applied while active
    stop_reason: Optional[str] = None  #: guard stop reason for a partial run

    @property
    def patterns_per_second(self) -> float:
        """Shard throughput; 0.0 when the shard did no timed work."""
        if self.wall_time <= 0.0:
            return 0.0
        return self.patterns_simulated / self.wall_time

    @property
    def degraded(self) -> bool:
        """True when the shard exhausted its retry budget and some of its
        rounds ran serially in the parent process instead."""
        return self.degraded_reason is not None

    def absorb(self, events: int, patterns: int, wall: float, dropped: int) -> None:
        """Fold one round's worker measurements into the totals."""
        self.events_propagated += events
        self.patterns_simulated += patterns
        self.wall_time += wall
        self.faults_dropped += dropped

    def to_json(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "n_faults": self.n_faults,
            "faults_dropped": self.faults_dropped,
            "events_propagated": self.events_propagated,
            "patterns_simulated": self.patterns_simulated,
            "wall_time": self.wall_time,
            "patterns_per_second": self.patterns_per_second,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "failures": self.failures,
            "rounds_resumed": self.rounds_resumed,
            "degraded_reason": self.degraded_reason,
            "memory_adaptations": self.memory_adaptations,
            "stop_reason": self.stop_reason,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "ShardStats":
        """Inverse of :meth:`to_json` (derived fields are recomputed)."""
        return cls(
            shard=int(payload["shard"]),
            n_faults=int(payload["n_faults"]),
            faults_dropped=int(payload["faults_dropped"]),
            events_propagated=int(payload["events_propagated"]),
            patterns_simulated=int(payload["patterns_simulated"]),
            wall_time=float(payload["wall_time"]),
            retries=int(payload["retries"]),
            timeouts=int(payload["timeouts"]),
            failures=int(payload["failures"]),
            rounds_resumed=int(payload["rounds_resumed"]),
            degraded_reason=payload["degraded_reason"],
            memory_adaptations=int(payload.get("memory_adaptations", 0)),
            stop_reason=payload.get("stop_reason"),
        )


def publish_engine_metrics(
    result: "EngineResult", metrics: "MetricsRegistry"
) -> None:
    """Fold one run's ShardStats into the telemetry metrics registry.

    Called once per :func:`repro.engine.simulate` call when telemetry is
    enabled — the registry accumulates across runs, the per-run truth
    stays in the result's ``ShardStats``.
    """
    from repro.telemetry.metrics import THROUGHPUT_BUCKETS

    metrics.counter(
        "engine.runs", help="simulate() calls completed"
    ).inc()
    metrics.counter(
        "engine.retries", help="shard rounds re-executed after a failure"
    ).inc(sum(s.retries for s in result.shards))
    metrics.counter(
        "engine.timeouts", help="shard attempts past the shard timeout"
    ).inc(sum(s.timeouts for s in result.shards))
    metrics.counter(
        "engine.failures",
        help="shard attempts lost to crashes, errors or corruption",
    ).inc(sum(s.failures for s in result.shards))
    metrics.counter(
        "engine.rounds_resumed",
        help="shard rounds replayed from a checkpoint journal",
    ).inc(sum(s.rounds_resumed for s in result.shards))
    metrics.counter(
        "engine.degraded_shards",
        help="shards that fell back to in-process serial execution",
    ).inc(len(result.degraded_shards))
    metrics.counter(
        "engine.partial_runs",
        help="runs stopped early by the guard (budget/cancel/memory)",
    ).inc(1 if result.partial else 0)
    metrics.counter(
        "guard.memory_adaptations",
        help="memory-ladder steps applied, summed over shards",
    ).inc(sum(s.memory_adaptations for s in result.shards))
    metrics.counter(
        "engine.faults_dropped", help="faults removed after first detection"
    ).inc(sum(s.faults_dropped for s in result.shards))
    metrics.counter(
        "engine.patterns_simulated",
        help="patterns consumed, summed over shards",
    ).inc(sum(s.patterns_simulated for s in result.shards))
    metrics.counter(
        "faultsim.events_propagated",
        help="gate evaluations during fault propagation",
    ).inc(result.events_propagated)
    histogram = metrics.histogram(
        "patterns_per_second", THROUGHPUT_BUCKETS,
        help="per-shard fault-simulation throughput",
    )
    for shard in result.shards:
        if shard.wall_time > 0.0:
            histogram.observe(shard.patterns_per_second)

"""Lightweight per-shard measurement of an engine run.

Every :func:`repro.engine.simulate` call returns one :class:`ShardStats`
per fault shard (a single implicit shard for serial runs), aggregated over
all rounds the shard participated in.  Fields are chosen to answer the
scaling questions the benchmarks ask: where did wall time go, how much
propagation work did each shard do, and how quickly were faults dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class ShardStats:
    """Aggregated measurements for one fault shard."""

    shard: int
    n_faults: int = 0              #: faults assigned to this shard
    faults_dropped: int = 0        #: faults removed after first detection
    events_propagated: int = 0     #: gate evaluations during fault propagation
    patterns_simulated: int = 0    #: patterns this shard actually consumed
    wall_time: float = 0.0         #: seconds spent inside the shard worker
    retries: int = 0               #: rounds re-executed after a failure
    timeouts: int = 0              #: attempts that exceeded the shard timeout
    failures: int = 0              #: attempts lost to crashes/errors/corruption
    rounds_resumed: int = 0        #: rounds replayed from a checkpoint journal
    degraded_reason: Optional[str] = None  #: why the shard fell back in-process

    @property
    def patterns_per_second(self) -> float:
        """Shard throughput; 0.0 when the shard did no timed work."""
        if self.wall_time <= 0.0:
            return 0.0
        return self.patterns_simulated / self.wall_time

    @property
    def degraded(self) -> bool:
        """True when the shard exhausted its retry budget and some of its
        rounds ran serially in the parent process instead."""
        return self.degraded_reason is not None

    def absorb(self, events: int, patterns: int, wall: float, dropped: int) -> None:
        """Fold one round's worker measurements into the totals."""
        self.events_propagated += events
        self.patterns_simulated += patterns
        self.wall_time += wall
        self.faults_dropped += dropped

    def to_json(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "n_faults": self.n_faults,
            "faults_dropped": self.faults_dropped,
            "events_propagated": self.events_propagated,
            "patterns_simulated": self.patterns_simulated,
            "wall_time": self.wall_time,
            "patterns_per_second": self.patterns_per_second,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "failures": self.failures,
            "rounds_resumed": self.rounds_resumed,
            "degraded_reason": self.degraded_reason,
        }

"""Deterministic chaos injection for the fault-tolerant engine.

The recovery machinery in :mod:`repro.engine.core` — shard retry with
backoff, per-shard timeouts, pool rebuilds, in-process degradation,
checkpoint/resume — is only trustworthy if it is exercised, and worker
processes do not fail on cue.  A :class:`FaultInjector` makes them: it is a
small picklable spec shipped to every shard round that decides, purely from
``(shard, round, attempt)``, whether to misbehave and how.  Because the
decision is a pure function of those coordinates, a chaos run is exactly
reproducible — CI asserts that the engine's results under injected crashes
are bit-identical to the serial path.

Failure modes
-------------

``crash``
    The worker process dies hard (``os._exit``), breaking the pool the way
    an OOM kill or segfault would.
``raise``
    The worker raises :class:`ChaosError`, exercising the clean-exception
    retry path (the pool survives).
``delay``
    The worker sleeps ``seconds`` before doing its work, tripping the
    engine's shard timeout (the work still completes eventually, so the
    leaked worker drains quickly in tests).
``corrupt``
    The worker silently tampers with its result payload *after* the
    integrity checksum is taken, so the parent's verification catches it —
    the corrupt-and-detect path.
``abort``
    Parent-side: the run raises :class:`ChaosInterrupt` after merging the
    given round, emulating a mid-run interruption (SIGKILL between rounds)
    for checkpoint/resume tests.  For this mode the spec's shard field is
    interpreted as the *round* to abort after.
``sigterm``
    Parent-side: trips the run's :class:`~repro.guard.cancel.CancelToken`
    after merging the given round, emulating a delivered SIGTERM at a
    deterministic point — the run then stops *cleanly* with a
    ``partial=True`` result (contrast ``abort``, which raises).  The shard
    field is the round to cancel after.
``oom``
    Parent-side: forces the guard's memory watchdog to report pressure on
    rounds ``shard .. shard+times-1``, driving the adaptation ladder
    (halve the batch count, degrade to serial) without exhausting real
    memory.  The shard field is the first pressured round.
``node_down``
    Coordinator-side (remote executor only): peer node ``R`` — the spec's
    shard field names a *node*, not a shard — is killed hard (the worker
    agent process exits) the first time the coordinator dispatches round
    ``round_index`` work to it, exercising the re-dispatch path the way a
    real node death would.  See ``docs/DISTRIBUTED.md``.
``node_hang``
    Coordinator-side: node ``R`` wedges for ``seconds`` before serving
    the dispatched unit, so the coordinator's dispatch timeout declares
    it hung and re-dispatches to a surviving peer.
``net_drop``
    Coordinator-side: the connection to node ``R`` is severed right after
    the unit is sent, ``times`` dispatch attempts in a row — a transient
    partition; the node itself stays healthy and is reconnected.

Specs parse from strings so the hook is reachable from the environment
(``REPRO_CHAOS=crash:1``) as well as from code::

    FaultInjector.parse("crash:1")               # crash shard 1, round 0, once
    FaultInjector.parse("delay:0:seconds=0.4")   # delay shard 0 by 0.4 s
    FaultInjector.parse("raise:2:round=1:times=3")
    FaultInjector.parse("abort:1")               # parent aborts after round 1

``times`` bounds how many *attempts* the injection fires on (default 1), so
by default the first retry of the afflicted shard round succeeds; setting
``times`` past the retry budget forces the degraded in-process path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError

#: Environment variable holding a chaos spec for any engine run that does
#: not pass an explicit injector.  Unset (or empty) means no chaos.
CHAOS_ENV_VAR = "REPRO_CHAOS"

_MODES = (
    "crash", "raise", "delay", "corrupt", "abort", "sigterm", "oom",
    "node_down", "node_hang", "net_drop",
)

#: Modes handled in the parent at round boundaries, never inside a worker.
_PARENT_MODES = ("abort", "sigterm", "oom")

#: Modes handled by the remote executor's coordinator when *dispatching*
#: to a peer node; the spec's shard field names the node index.  Workers
#: never act on them (``fires()`` is False), so a unit carrying a node
#: mode is harmless on every local backend.
_NODE_MODES = ("node_down", "node_hang", "net_drop")


class ChaosError(SimulationError):
    """Raised inside a worker by the ``raise`` failure mode."""


class ChaosInterrupt(RuntimeError):
    """Raised in the parent by the ``abort`` mode to emulate interruption."""


@dataclass(frozen=True)
class FaultInjector:
    """A deterministic failure plan for one engine run.

    Attributes
    ----------
    mode:
        One of ``crash``, ``raise``, ``delay``, ``corrupt``, ``abort``,
        ``sigterm``, ``oom``, ``node_down``, ``node_hang``, ``net_drop``.
    shard:
        The shard the injection targets (for the parent-side ``abort`` /
        ``sigterm`` / ``oom`` modes: the round it acts on; for the
        node-level modes: the remote peer's node index).
    round_index:
        The fan-out round the injection targets (default 0).
    times:
        Number of attempts the injection fires on: attempts ``0 ..
        times-1`` of the targeted shard round misbehave, later retries
        succeed.
    seconds:
        Sleep length for ``delay`` mode.
    """

    mode: str
    shard: int
    round_index: int = 0
    times: int = 1
    seconds: float = 5.0

    def __post_init__(self):
        if self.mode not in _MODES:
            raise SimulationError(
                f"unknown chaos mode {self.mode!r} (expected one of {_MODES})"
            )
        if self.times < 1:
            raise SimulationError("chaos times must be >= 1")

    # ------------------------------------------------------------- parsing

    @classmethod
    def parse(cls, spec: str) -> "FaultInjector":
        """Build an injector from a ``mode:shard[:key=value...]`` spec."""
        tokens = [t for t in spec.strip().split(":") if t]
        if len(tokens) < 2:
            raise SimulationError(
                f"chaos spec {spec!r} must look like 'mode:shard[:key=value...]'"
            )
        mode, shard = tokens[0], tokens[1]
        kwargs = {"round_index": 0, "times": 1, "seconds": 5.0}
        aliases = {"round": "round_index", "seconds": "seconds", "times": "times"}
        for token in tokens[2:]:
            if "=" not in token:
                raise SimulationError(
                    f"chaos spec option {token!r} must be key=value"
                )
            key, value = token.split("=", 1)
            if key not in aliases:
                raise SimulationError(f"unknown chaos spec option {key!r}")
            field = aliases[key]
            kwargs[field] = float(value) if field == "seconds" else int(value)
        try:
            shard_index = int(shard)
        except ValueError:
            raise SimulationError(f"chaos spec shard {shard!r} is not an int")
        return cls(mode=mode, shard=shard_index, **kwargs)

    @classmethod
    def from_env(cls) -> Optional["FaultInjector"]:
        """The injector named by ``$REPRO_CHAOS``, or None when unset."""
        spec = os.environ.get(CHAOS_ENV_VAR, "").strip()
        return cls.parse(spec) if spec else None

    # ------------------------------------------------------------ decisions

    def fires(self, shard: int, round_index: int, attempt: int) -> bool:
        """True when this (shard, round, attempt) should misbehave."""
        if self.mode in _PARENT_MODES or self.mode in _NODE_MODES:
            # Parent modes act at round boundaries (aborts_after() /
            # cancels_after() / oom_pressure()); node modes act at the
            # remote coordinator's dispatch sites (node_action()).
            return False
        return (
            shard == self.shard
            and round_index == self.round_index
            and attempt < self.times
        )

    def aborts_after(self, round_index: int) -> bool:
        """Parent-side: abort the run after merging this round?"""
        return self.mode == "abort" and round_index == self.shard

    def cancels_after(self, round_index: int) -> bool:
        """Parent-side: trip the cancel token after merging this round?"""
        return self.mode == "sigterm" and round_index == self.shard

    def oom_pressure(self, round_index: int) -> bool:
        """Parent-side: force memory pressure on this round?  ``times``
        widens the pressured window (rounds ``shard .. shard+times-1``)."""
        return (
            self.mode == "oom"
            and self.shard <= round_index < self.shard + self.times
        )

    def node_action(
        self, node: int, round_index: int, attempt: int
    ) -> Optional[str]:
        """Coordinator-side: how dispatching to ``node`` should misbehave.

        Consulted by the remote executor before every unit dispatch;
        ``attempt`` is the *dispatch* attempt for that unit (0 on first
        dispatch, bumped on every re-dispatch), so ``times`` bounds how
        many consecutive dispatches are sabotaged — exactly the worker-
        side ``times`` contract, transplanted to the node axis.  Returns
        the mode name to act on, or None.
        """
        if self.mode not in _NODE_MODES:
            return None
        if (
            node == self.shard
            and round_index == self.round_index
            and attempt < self.times
        ):
            return self.mode
        return None

    # --------------------------------------------------------- worker side

    def apply(self, shard: int, round_index: int, attempt: int) -> bool:
        """Misbehave if the coordinates match; called inside the worker.

        Returns True when the caller should corrupt its result payload
        (``corrupt`` mode); crash/raise never return, delay sleeps first.
        """
        if not self.fires(shard, round_index, attempt):
            return False
        if self.mode == "crash":
            os._exit(13)
        if self.mode == "raise":
            raise ChaosError(
                f"chaos: injected failure in shard {shard} round {round_index}"
            )
        if self.mode == "delay":
            import time

            time.sleep(self.seconds)
            return False
        return self.mode == "corrupt"

    def describe(self) -> str:
        if self.mode in ("abort", "sigterm"):
            return f"{self.mode}:after-round-{self.shard}"
        if self.mode == "oom":
            return f"oom:rounds-{self.shard}..{self.shard + self.times - 1}"
        if self.mode in _NODE_MODES:
            extra = f":seconds={self.seconds}" if self.mode == "node_hang" else ""
            return (
                f"{self.mode}:node={self.shard}:round={self.round_index}"
                f":times={self.times}{extra}"
            )
        extra = f":seconds={self.seconds}" if self.mode == "delay" else ""
        return (
            f"{self.mode}:shard={self.shard}:round={self.round_index}"
            f":times={self.times}{extra}"
        )

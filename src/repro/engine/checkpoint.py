"""Run checkpointing: journal completed shard rounds, resume interrupted runs.

Long Table 2 sweeps apply 2^17 patterns per kernel; losing a run to one
crashed machine and restarting from zero is exactly the cost this module
removes.  The engine journals every completed shard round — the round's new
detections and surviving faults, as *indices into the run's fault list* —
into a directory keyed by the same content fingerprints the golden-run
cache uses, plus every parameter that shapes shard/round boundaries.  A
re-invocation with ``resume=True`` replays journaled rounds instead of
re-executing them (surfaced as ``ShardStats.rounds_resumed``), then picks
up the real work where the interrupted run stopped.

Layout::

    <checkpoint root>/<run key (sha256 prefix)>/shard0003_round0012.rec

Records are pickled dicts written atomically (temp file, ``fsync``, then
``os.replace``) so an interruption — including a SIGKILL mid-flush — can
never leave a half-written record behind under the final name; stale
``*.tmp`` files from a killed writer are swept on the next ``load()`` /
``clear()``, and a record that fails to unpickle is simply treated as
never written.  The run key
covers the netlist fingerprint, the pattern-source fingerprint, the fault
list, and (batch width, max patterns, jobs, chunk size, stop/drop
semantics) — any change to those invalidates the journal wholesale, the
same stale-key philosophy as :class:`~repro.engine.cache.GoldenCache`.
Sources without a stable fingerprint cannot be journaled (``run_key``
returns None) and the engine silently runs without checkpointing.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.exec.config import RunConfig, canonical_fields
from repro.faultsim.faults import Fault
from repro.faultsim.patterns import PatternSource, source_fingerprint
from repro.netlist.netlist import Netlist

#: Bumped whenever the record layout changes; part of the run key so stale
#: journals from older engine versions can never be replayed.
JOURNAL_VERSION = 1


def run_key(
    netlist: Netlist,
    source: PatternSource,
    faults: Sequence[Fault],
    config: RunConfig,
    jobs: int,
) -> Optional[str]:
    """Content key identifying one resumable run, or None if unkeyable.

    Only the *canonical* configuration fields participate
    (:func:`repro.exec.config.canonical_fields`): executor choice, retry
    policy, budget and chaos are execution strategy that cannot move a
    result, so a journal written under one backend resumes under any
    other.  The blob layout is byte-identical to the pre-``RunConfig``
    engine — journals written before this refactor still resume (pinned
    by the golden-key regression test).
    """
    stream_id = source_fingerprint(source)
    if stream_id is None:
        return None
    fault_digest = hashlib.sha256(
        repr([
            (f.net, f.stuck_at, f.gate_index, f.pin) for f in faults
        ]).encode()
    ).hexdigest()
    blob = repr((
        JOURNAL_VERSION,
        netlist.fingerprint(),
        stream_id,
        fault_digest,
    ) + canonical_fields(config, jobs)).encode()
    return hashlib.sha256(blob).hexdigest()


def resolve_run_key(
    netlist: Netlist,
    source: PatternSource,
    faults: Sequence[Fault],
    config: RunConfig,
) -> Optional[str]:
    """The key :func:`repro.engine.simulate` will journal this run under.

    Applies the engine's shard-collapse rule before keying: a run with one
    worker — or too few faults to shard — executes serially, and its
    journal is keyed as ``jobs=1`` whatever the config requested.  This is
    the entry point for callers that need the key *without* running the
    engine, most importantly the ``repro.serve`` result cache, whose
    content addressing must match the journal exactly (pinned by a golden
    regression test against a real journal directory).
    """
    fault_list = list(faults)
    n_jobs = config.execution.effective_jobs
    serial = n_jobs == 1 or len(fault_list) <= 1
    return run_key(netlist, source, fault_list, config, 1 if serial else n_jobs)


class CheckpointStore:
    """One run's journal directory: load, record, and replay shard rounds."""

    def __init__(self, root, key: str):
        self.root = Path(root)
        self.key = key
        self.directory = self.root / key[:32]

    def _record_path(self, shard: int, round_index: int) -> Path:
        return self.directory / f"shard{shard:04d}_round{round_index:06d}.rec"

    # -------------------------------------------------------------- loading

    def load(self, *, sweep: bool = True) -> Dict[Tuple[int, int], Dict[str, Any]]:
        """All readable records, keyed by ``(shard, round)``.

        Unreadable (half-written, foreign) files are skipped, not fatal:
        the engine just re-executes those rounds.

        ``sweep=False`` makes the load strictly read-only.  The default
        sweep of stale ``*.tmp`` files is only safe when no writer is
        live — a concurrent reader (the serve progress endpoint polling a
        running job's journal) would otherwise delete a record the engine
        is about to rename into place.
        """
        records: Dict[Tuple[int, int], Dict[str, Any]] = {}
        if not self.directory.is_dir():
            return records
        if sweep:
            self._sweep_stale_tmp()
        for path in sorted(self.directory.glob("shard*_round*.rec")):
            try:
                with open(path, "rb") as handle:
                    record = pickle.load(handle)
                shard = int(record["shard"])
                round_index = int(record["round"])
            except (OSError, EOFError, pickle.UnpicklingError, KeyError,
                    IndexError, ValueError, TypeError, AttributeError,
                    ImportError):
                # Half-written or foreign record: unpickling garbage can
                # surface as almost any of these.  The round just re-runs.
                telemetry.count("engine.swallowed_errors")
                continue
            records[(shard, round_index)] = record
        return records

    def clear(self) -> None:
        """Drop every record of this run (a fresh, non-resumed start)."""
        if not self.directory.is_dir():
            return
        self._sweep_stale_tmp()
        for path in self.directory.glob("shard*_round*.rec"):
            try:
                path.unlink()
            except OSError:
                pass

    def _sweep_stale_tmp(self) -> None:
        """Remove temp files a killed writer left behind.

        A record is only ever visible under its final name (the ``.tmp``
        to final rename is atomic), so any surviving ``*.tmp`` is garbage
        from a writer that died mid-flush — never a live record.
        """
        for path in self.directory.glob("*.tmp"):
            try:
                path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------ recording

    def record(
        self,
        shard: int,
        round_index: int,
        detections: Dict[int, int],
        survivors: List[int],
        patterns: int,
    ) -> None:
        """Atomically journal one completed shard round.

        ``detections`` maps fault-list *indices* to absolute pattern
        indices; ``survivors`` lists the indices still live afterwards.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "shard": shard,
            "round": round_index,
            "detections": dict(detections),
            "survivors": list(survivors),
            "patterns": int(patterns),
        }
        descriptor, temp_name = tempfile.mkstemp(
            dir=str(self.directory), suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(payload, handle)
                handle.flush()
                # Durability, not just atomicity: without the fsync a
                # crash shortly after the rename can still surface a
                # zero-length file under the final name on some
                # filesystems — exactly the poisoned-journal case the
                # guard's signal path must never create.
                os.fsync(handle.fileno())
            os.replace(temp_name, self._record_path(shard, round_index))
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def n_records(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("shard*_round*.rec"))


def open_store(
    netlist: Netlist,
    source: PatternSource,
    faults: Sequence[Fault],
    config: RunConfig,
    jobs: int,
) -> Optional[CheckpointStore]:
    """The engine's entry point: a store for this run, or None.

    Returns None when ``config.checkpoint.directory`` is unset or the run
    has no stable content key.  With ``resume=False`` any existing journal
    for this exact run is cleared so the journal always reflects a single
    coherent run.
    """
    if config.checkpoint.directory is None:
        return None
    key = run_key(netlist, source, faults, config, jobs)
    if key is None:
        return None
    store = CheckpointStore(config.checkpoint.directory, key)
    if not config.checkpoint.resume:
        store.clear()
    return store

"""Vectorised fault-propagation kernel (numpy, all faults at once).

The packed simulator (:class:`repro.faultsim.simulator.FaultSimulator`)
propagates one fault at a time through an event-driven Python loop; its
per-gate cost is a dict lookup and a bigint op, and ``BENCH_engine.json``
shows that loop — not sharding — is the engine's bottleneck.  This module
trades the event-driven cone walk for brute-force breadth: every live
fault becomes a *lane*, every net's value across all lanes and all
pattern words of the batch lives in one row of a 2-D ``uint64`` array,
and each level of the levelised netlist is evaluated for all lanes with a
handful of numpy ufunc calls.

Layout (``W`` = 64-bit words per batch, ``C`` = fault lanes per chunk)::

    state : uint64[n_nets, C*W]      # row = net, lanes-major
    state.reshape(n_nets, C, W)[net, lane, :]   # one fault's words

Per level, gates are grouped at compile time by ``(base type, fanin)``
into index arrays, so evaluation is ``gather -> in-place AND/OR/XOR over
pins -> optional XOR with the batch mask -> scatter``.  Fault injection:

* **stem faults** overwrite their net's lane row with the forced constant
  right after the level that finalises the net (primary inputs count as
  level 0), so every downstream reader sees the stuck value;
* **branch faults** (one gate input pin) patch only that gate's output
  lane row, recomputed from golden input words with the pin forced —
  everything else in the lane still reads the healthy stem.

Detection XORs each primary-output row against the golden words and ORs
across outputs; the first set bit of a lane is its first-detecting
pattern.  The surviving-fault bookkeeping then replays the packed
simulator's merge semantics verbatim, which is what keeps the two kernels
**bit-identical** — same detection tables, same first-detection indices,
same survivor order — so checkpoints, chaos, guard and all three
executors compose unchanged (see ``docs/ENGINE.md``).

The kernel is an *execution strategy*, not a result parameter: it is
excluded from :func:`repro.exec.config.canonical_fields`, journals resume
across kernels, and :func:`resolve_kernel` silently falls back to the
packed simulator (recording a reason) for netlists it does not support —
missing numpy, fan-in beyond :data:`MAX_VEC_FANIN`, floating input nets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.exec.config import KERNEL_CHOICES
from repro.faultsim.faults import Fault
from repro.faultsim.simulator import FaultSimulator
from repro.netlist.gates import GateType, evaluate_gate
from repro.netlist.levelize import levels
from repro.netlist.netlist import Netlist

try:  # numpy is an optional extra; everything degrades to packed without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via _numpy_missing tests
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np
else:
    np = _np

#: Environment override for the kernel choice, same ambient idiom as
#: ``$REPRO_ENGINE_EXECUTOR`` — one of ``packed`` / ``vec`` / ``auto``.
KERNEL_ENV_VAR = "REPRO_ENGINE_KERNEL"

#: Auto-selection cost heuristic: vectorisation pays once the per-batch
#: work (every fault times every gate) dwarfs the numpy call overhead;
#: below it the packed event-driven cone walk wins (see BENCH_engine.json,
#: where mac4 stays packed and c3a2m goes vec).
VEC_AUTO_THRESHOLD = 100_000

#: Widest gate the vectorised per-pin reduction compiles.  Beyond this the
#: gather-per-pin cost grows linearly while the event-driven simulator
#: still touches only the fault cone, so wider gates fall back to packed.
MAX_VEC_FANIN = 16

#: Per-chunk state budget in bytes; fault lanes are chunked so
#: ``n_nets * C * W * 8`` stays under it.
VEC_MEMORY_BUDGET = 64 * 1024 * 1024


# -------------------------------------------------------------- support gate


def vec_support_reason(netlist: Netlist) -> Optional[str]:
    """Why the vec kernel cannot run this netlist, or ``None`` if it can.

    The reasons mirror the fallback table in ``docs/ENGINE.md``: the
    caller records the reason and runs the packed simulator instead, so
    an unsupported construct is never an error.
    """
    if np is None:
        return "numpy is not installed (pip install repro-bist[vec])"
    driven = set(netlist.primary_inputs)
    for gate in netlist.gates:
        driven.add(gate.output)
    for gate in netlist.gates:
        if len(gate.inputs) > MAX_VEC_FANIN:
            return (
                f"gate {gate.name or gate.gtype.value} has fan-in "
                f"{len(gate.inputs)} > {MAX_VEC_FANIN}"
            )
        for net in gate.inputs:
            if net not in driven:
                return (
                    f"gate {gate.name or gate.gtype.value} reads floating "
                    f"net {netlist.net_name(net)}"
                )
    return None


def resolve_kernel(
    requested: Optional[str],
    netlist: Netlist,
    n_faults: int,
) -> Tuple[str, Optional[str]]:
    """Pick the evaluation kernel for one run.

    Resolution order mirrors the executor's: explicit config value, then
    ``$REPRO_ENGINE_KERNEL``, then ``auto``.  ``auto`` picks vec when the
    netlist is supported and the run is large enough for vectorisation to
    pay (:data:`VEC_AUTO_THRESHOLD`); an explicit ``vec`` on an
    unsupported netlist falls back to packed rather than failing.

    Returns ``(kernel, fallback_reason)`` where ``kernel`` is ``"packed"``
    or ``"vec"`` and ``fallback_reason`` is non-None only when a vec
    request (explicit or auto-eligible) was downgraded.
    """
    import os

    name = requested
    if not name:
        name = os.environ.get(KERNEL_ENV_VAR, "").strip() or "auto"
    if name not in KERNEL_CHOICES:
        raise SimulationError(
            f"unknown engine kernel {name!r} "
            f"(expected one of: {', '.join(KERNEL_CHOICES)})"
        )
    if name == "packed":
        return "packed", None
    reason = vec_support_reason(netlist)
    if name == "vec":
        if reason is not None:
            return "packed", reason
        return "vec", None
    # auto: only vectorise when the batch work amortises the numpy overhead
    if n_faults * len(netlist.gates) < VEC_AUTO_THRESHOLD:
        return "packed", None
    if reason is not None:
        return "packed", reason
    return "vec", None


# ------------------------------------------------------------------- compile


class _GateGroup:
    """Gates of one level sharing a base type and fan-in, as index arrays."""

    __slots__ = ("base", "inverting", "out_idx", "in_idx")

    def __init__(self, base: GateType, inverting: bool,
                 out_idx: "np.ndarray", in_idx: List["np.ndarray"]):
        self.base = base
        self.inverting = inverting
        self.out_idx = out_idx
        self.in_idx = in_idx


class CompiledVecNetlist:
    """A netlist lowered to per-level gate groups of numpy index arrays.

    Compiled once per simulator; every :meth:`VecFaultSimulator.
    simulate_batch` call reuses it.  ``net_level`` maps each driven net to
    the level after which its value is final (primary inputs are level 0),
    which is where stem-fault overrides are applied; ``gate_level`` places
    branch-fault output patches.
    """

    def __init__(self, netlist: Netlist):
        reason = vec_support_reason(netlist)
        if reason is not None:
            raise SimulationError(f"netlist not vectorisable: {reason}")
        self.netlist = netlist
        self.n_nets = netlist.n_nets
        self.gate_level: Dict[int, int] = levels(netlist)
        self.net_level: Dict[int, int] = {
            net: 0 for net in netlist.primary_inputs
        }
        for index, gate in enumerate(netlist.gates):
            self.net_level[gate.output] = self.gate_level[index]
        self.depth = max(self.gate_level.values(), default=0)
        self.pi = list(netlist.primary_inputs)
        self.po = list(netlist.primary_outputs)
        # level -> [(base, inverting, fanin)] -> (out nets, per-pin inputs)
        grouped: Dict[int, Dict[Tuple[GateType, bool, int],
                                Tuple[List[int], List[List[int]]]]] = {}
        for index, gate in enumerate(netlist.gates):
            level = self.gate_level[index]
            key = (gate.gtype.base, gate.gtype.is_inverting, len(gate.inputs))
            outs, pins = grouped.setdefault(level, {}).setdefault(
                key, ([], [[] for _ in range(len(gate.inputs))])
            )
            outs.append(gate.output)
            for pin, net in enumerate(gate.inputs):
                pins[pin].append(net)
        self.level_groups: List[List[_GateGroup]] = []
        for level in range(1, self.depth + 1):
            groups = []
            for (base, inverting, _fanin), (outs, pins) in sorted(
                grouped.get(level, {}).items(),
                key=lambda item: (item[0][0].value, item[0][1], item[0][2]),
            ):
                groups.append(_GateGroup(
                    base, inverting,
                    np.asarray(outs, dtype=np.intp),
                    [np.asarray(p, dtype=np.intp) for p in pins],
                ))
            self.level_groups.append(groups)


def _words(value: int, n_words: int) -> "np.ndarray":
    """One packed bigint -> little-endian uint64 words."""
    return np.frombuffer(
        value.to_bytes(n_words * 8, "little"), dtype="<u8"
    ).astype(np.uint64, copy=False)


def _first_bits(det: "np.ndarray") -> Tuple["np.ndarray", "np.ndarray"]:
    """Per lane: (detected?, index of lowest set bit) of ``det[C, W]``."""
    nonzero = det != 0
    detected = nonzero.any(axis=1)
    word_idx = np.argmax(nonzero, axis=1)
    word = det[np.arange(det.shape[0]), word_idx]
    lsb = word & (~word + np.uint64(1))
    if hasattr(np, "bitwise_count"):
        # popcount(lsb - 1) is the trailing-zero count when lsb != 0; the
        # lsb == 0 lanes are masked out by ``detected`` anyway.
        trailing = np.where(
            lsb != 0, np.bitwise_count(lsb - np.uint64(1)), np.uint64(0)
        )
    else:  # pragma: no cover - numpy < 2.0
        # lsb is a power of two, so float64 log2 is exact.
        safe = np.where(lsb != 0, lsb, np.uint64(1))
        trailing = np.log2(safe.astype(np.float64)).astype(np.uint64)
    first = word_idx.astype(np.uint64) * np.uint64(64) + trailing
    return detected, first


# ----------------------------------------------------------------- simulator


class VecFaultSimulator(FaultSimulator):
    """Drop-in :class:`FaultSimulator` with a vectorised ``simulate_batch``.

    Construction compiles the netlist (:class:`CompiledVecNetlist`); the
    rest of the surface — ``run``, ``detects``, ``evaluator``, the golden
    cache interplay — is inherited unchanged, so every engine code path
    that builds or receives a simulator works identically with either
    kernel.  ``events_propagated`` counts gate evaluations times lanes
    (the full-forward equivalent of the packed event count): honest work
    accounting, not part of the bit-identity contract.
    """

    kernel = "vec"

    def __init__(self, netlist: Netlist, batch_width: int = 256):
        super().__init__(netlist, batch_width)
        self.compiled = CompiledVecNetlist(netlist)

    # The packed simulate_batch signature, replayed exactly.
    def simulate_batch(
        self,
        live: Sequence[Fault],
        good: Dict[int, int],
        mask: int,
        pattern_base: int,
        detections: Dict[Fault, int],
        drop_detected: bool = True,
    ) -> List[Fault]:
        if not live:
            return []
        compiled = self.compiled
        width = mask.bit_length()
        n_words = max(1, (width + 63) // 64)
        mask_words = _words(mask, n_words)

        # Golden words for the nets the kernel reads wholesale: primary
        # inputs seed the state, primary outputs anchor detection.  Branch
        # patches are evaluated on the packed bigints directly (cheaper
        # than per-fault numpy calls) and converted to words in bulk.
        needed = set(compiled.pi) | set(compiled.po)
        good_rows = {net: _words(good.get(net, 0), n_words) for net in needed}

        lanes_budget = max(
            1, VEC_MEMORY_BUDGET // (max(1, compiled.n_nets) * n_words * 8)
        )
        survivors: List[Fault] = []
        for start in range(0, len(live), lanes_budget):
            chunk = list(live[start:start + lanes_budget])
            detected, first = self._simulate_chunk(
                chunk, good, good_rows, mask, mask_words, n_words
            )
            for lane, fault in enumerate(chunk):
                if detected[lane] and fault not in detections:
                    detections[fault] = pattern_base + int(first[lane])
                if not detected[lane] or not drop_detected:
                    survivors.append(fault)
        return survivors

    def _simulate_chunk(
        self,
        chunk: List[Fault],
        good: Dict[int, int],
        good_rows: Dict[int, "np.ndarray"],
        mask: int,
        mask_words: "np.ndarray",
        n_words: int,
    ) -> Tuple["np.ndarray", "np.ndarray"]:
        """All of ``chunk``'s faults through the full netlist at once."""
        compiled = self.compiled
        n_lanes = len(chunk)
        state = np.zeros((compiled.n_nets, n_lanes * n_words), dtype=np.uint64)
        view = state.reshape(compiled.n_nets, n_lanes, n_words)
        for net in compiled.pi:
            view[net] = good_rows[net]
        mask_row = np.tile(mask_words, n_lanes)

        # Injection schedule: stem overrides keyed by the level at which
        # the net finalises, branch patches by the faulty gate's level.
        # Branch patches are single-gate bigint evaluations (same primitive
        # the packed kernel injects with), word-converted in bulk below.
        stem_at: Dict[int, Tuple[List[int], List[int], List[int]]] = {}
        branch_at: Dict[int, Tuple[List[int], List[int], List[int]]] = {}
        gates = self.netlist.gates
        for lane, fault in enumerate(chunk):
            if fault.is_stem:
                level = compiled.net_level.get(fault.net, 0)
                nets, lns, stuck = stem_at.setdefault(level, ([], [], []))
                nets.append(fault.net)
                lns.append(lane)
                stuck.append(fault.stuck_at)
            else:
                gate = gates[fault.gate_index]
                forced = mask if fault.stuck_at else 0
                inputs = [
                    forced if pin == fault.pin else good[net]
                    for pin, net in enumerate(gate.inputs)
                ]
                patched = evaluate_gate(gate.gtype, inputs, mask)
                level = compiled.gate_level[fault.gate_index]
                outs, lns, values = branch_at.setdefault(level, ([], [], []))
                outs.append(gate.output)
                lns.append(lane)
                values.append(patched)

        def apply_stems(level: int) -> None:
            sched = stem_at.get(level)
            if sched is None:
                return
            nets, lns, stuck = sched
            forced = np.where(
                np.asarray(stuck, dtype=np.uint64)[:, None] != 0,
                mask_words, np.uint64(0),
            )
            view[np.asarray(nets, dtype=np.intp),
                 np.asarray(lns, dtype=np.intp)] = forced

        def apply_branches(level: int) -> None:
            sched = branch_at.get(level)
            if sched is None:
                return
            outs, lns, values = sched
            blob = b"".join(v.to_bytes(n_words * 8, "little") for v in values)
            rows = np.frombuffer(blob, dtype="<u8").reshape(-1, n_words)
            view[np.asarray(outs, dtype=np.intp),
                 np.asarray(lns, dtype=np.intp)] = rows

        apply_stems(0)
        for level_index, groups in enumerate(compiled.level_groups):
            level = level_index + 1
            for group in groups:
                if group.base in (GateType.CONST0, GateType.CONST1):
                    state[group.out_idx] = (
                        mask_row if group.base is GateType.CONST1 else 0
                    )
                    if group.inverting:  # pragma: no cover - no such type
                        state[group.out_idx] ^= mask_row
                    continue
                acc = state[group.in_idx[0]]  # fancy index: already a copy
                if group.base is GateType.AND:
                    for pin in group.in_idx[1:]:
                        np.bitwise_and(acc, state[pin], out=acc)
                elif group.base is GateType.OR:
                    for pin in group.in_idx[1:]:
                        np.bitwise_or(acc, state[pin], out=acc)
                elif group.base is GateType.XOR:
                    for pin in group.in_idx[1:]:
                        np.bitwise_xor(acc, state[pin], out=acc)
                # BUF: acc is already the input copy
                if group.inverting:
                    np.bitwise_xor(acc, mask_row, out=acc)
                state[group.out_idx] = acc
            apply_stems(level)
            apply_branches(level)

        det = np.zeros((n_lanes, n_words), dtype=np.uint64)
        flat_det = det.reshape(n_lanes * n_words)
        good_po = {net: np.tile(good_rows[net], n_lanes)
                   for net in set(compiled.po)}
        for po in compiled.po:
            np.bitwise_or(
                flat_det, state[po] ^ good_po[po], out=flat_det
            )
        self.events_propagated += len(gates) * n_lanes
        return _first_bits(det)

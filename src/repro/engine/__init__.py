"""Parallel fault-simulation engine: sharding, golden-run cache, metrics.

The single entry point is :func:`simulate`::

    from repro.engine import GoldenCache, RunConfig, simulate
    from repro.exec import ExecutionPolicy

    cache = GoldenCache()
    result = simulate(netlist, faults, patterns, cache=cache,
                      config=RunConfig(execution=ExecutionPolicy(jobs=4)))

``repro.faultsim.simulator``, ``repro.bist.session``, the experiment
harness and the CLI all route their fault simulation through here; the
execution backends themselves live in :mod:`repro.exec`.  See
``docs/ENGINE.md`` for the sharding/merge semantics, cache keys and
instrumentation fields, and ``docs/EXECUTORS.md`` for the backend
protocol.
"""

from repro.engine.cache import GoldenBatches, GoldenCache
from repro.engine.chaos import ChaosError, ChaosInterrupt, FaultInjector
from repro.engine.checkpoint import CheckpointStore
from repro.engine.core import EngineResult, simulate
from repro.engine.instrumentation import ShardStats
from repro.engine.vec import (
    KERNEL_ENV_VAR,
    VecFaultSimulator,
    resolve_kernel,
    vec_support_reason,
)
from repro.exec.config import (
    CheckpointPolicy,
    ExecutionPolicy,
    RetryPolicy,
    RunConfig,
)

__all__ = [
    "ChaosError",
    "ChaosInterrupt",
    "CheckpointPolicy",
    "CheckpointStore",
    "EngineResult",
    "ExecutionPolicy",
    "FaultInjector",
    "GoldenBatches",
    "GoldenCache",
    "KERNEL_ENV_VAR",
    "RetryPolicy",
    "RunConfig",
    "ShardStats",
    "VecFaultSimulator",
    "resolve_kernel",
    "simulate",
    "vec_support_reason",
]

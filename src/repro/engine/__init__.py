"""Parallel fault-simulation engine: sharding, golden-run cache, metrics.

The single entry point is :func:`simulate`::

    from repro.engine import GoldenCache, simulate

    cache = GoldenCache()
    result = simulate(netlist, faults, patterns, jobs=4, cache=cache)

``repro.faultsim.simulator``, ``repro.bist.session``, the experiment
harness and the CLI all route their fault simulation through here; see
``docs/ENGINE.md`` for the sharding/merge semantics, cache keys and
instrumentation fields.
"""

from repro.engine.cache import GoldenBatches, GoldenCache
from repro.engine.chaos import ChaosError, ChaosInterrupt, FaultInjector
from repro.engine.checkpoint import CheckpointStore
from repro.engine.core import EngineResult, simulate
from repro.engine.instrumentation import ShardStats

__all__ = [
    "ChaosError",
    "ChaosInterrupt",
    "CheckpointStore",
    "EngineResult",
    "FaultInjector",
    "GoldenBatches",
    "GoldenCache",
    "ShardStats",
    "simulate",
]

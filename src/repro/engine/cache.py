"""Golden-run cache: fault-free evaluations shared across shards and runs.

Fault simulation spends a fixed cost per batch on the fault-free (golden)
circuit before any fault is injected; a BIST session likewise needs the
golden signature before faulty signatures mean anything.  Both are pure
functions of (circuit structure, stimulus stream), so the engine memoizes
them:

* **batch entries** hold packed fault-free net values per pattern batch,
  keyed by ``(netlist fingerprint, pattern-source fingerprint, batch
  width)``.  Within one parallel run the parent process evaluates each
  golden batch once and ships it to every shard; across runs the entry is
  reused outright (``experiments/table2.py`` re-simulating a kernel, a
  benchmark re-running a budget sweep).
* a **generic memo** stores small derived values under caller-built keys —
  ``repro.bist.session`` keeps golden MISR signatures there so repeated
  sessions on one kernel skip the fault-free machine entirely.

Sources that cannot state a stable :func:`~repro.faultsim.patterns.
source_fingerprint` are never cached (fresh compute beats a stale-key
collision).  Entries are bounded LRU.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

from repro import telemetry
from repro.faultsim.patterns import PatternSource, source_fingerprint
from repro.netlist.evaluate import Evaluator
from repro.netlist.netlist import Netlist


class GoldenBatches:
    """Lazily extended cache of fault-free packed evaluations for one stream.

    ``golden_batch(i)`` returns the full-width packed value of every net
    under patterns ``[i * batch_width, (i+1) * batch_width)``.  Batches are
    computed on demand and retained, so any consumer — serial loop, shard
    fan-out, a later run with the same key — pays for each batch once.

    ``max_cached_batches`` bounds retention: past it, the oldest batches
    are evicted LRU-fashion (a 2^17-pattern Table 2 run is 512 batches of
    every-net packed values per kernel; unbounded retention across a sweep
    dominates memory).  A re-request of an evicted batch restarts the
    pattern stream and recomputes — correct for any source that can state a
    :func:`~repro.faultsim.patterns.source_fingerprint`, because such
    sources are pure by contract (that purity is the whole reason their
    golden values are cacheable).
    """

    def __init__(
        self,
        evaluator: Evaluator,
        source: PatternSource,
        batch_width: int,
        max_cached_batches: Optional[int] = None,
    ):
        if max_cached_batches is not None and max_cached_batches < 1:
            raise ValueError("max_cached_batches must be positive")
        self._evaluator = evaluator
        self._source = source
        self._source_batches = source.batches(batch_width)
        self._pis = list(evaluator.netlist.primary_inputs)
        self._full_mask = (1 << batch_width) - 1
        self.batch_width = batch_width
        self.max_cached_batches = max_cached_batches
        self._golden: "OrderedDict[int, Dict[int, int]]" = OrderedDict()
        self._next_index = 0  #: next batch the stream iterator will yield
        self.evictions = 0
        self.recomputes = 0  #: batches re-evaluated after eviction

    @property
    def n_cached_batches(self) -> int:
        return len(self._golden)

    def _evaluate_next(self) -> Dict[int, int]:
        packed = next(self._source_batches)
        inputs = {
            net: packed[position] & self._full_mask
            for position, net in enumerate(self._pis)
        }
        self._next_index += 1
        return self._evaluator.run(inputs, self._full_mask)

    def golden_batch(self, index: int) -> Dict[int, int]:
        """Fault-free net values for batch ``index`` (computed if new)."""
        cached = self._golden.get(index)
        if cached is not None:
            self._golden.move_to_end(index)
            return cached
        if index < self._next_index:
            # Evicted: restart the (pure) stream and re-advance to it.
            self.recomputes += 1
            self._source_batches = self._source.batches(self.batch_width)
            self._next_index = 0
        while self._next_index <= index:
            position = self._next_index
            values = self._golden[position] = self._evaluate_next()
            if (
                self.max_cached_batches is not None
                and len(self._golden) > self.max_cached_batches
            ):
                self._golden.popitem(last=False)
                self.evictions += 1
                telemetry.count("cache.batch_evictions")
        return values


class GoldenCache:
    """Bounded LRU cache of golden runs, with hit/miss accounting.

    One instance can be shared across any number of
    :func:`repro.engine.simulate` calls and BIST sessions; it is keyed by
    content fingerprints, never by object identity.
    """

    def __init__(
        self,
        max_entries: int = 8,
        max_memo_entries: Optional[int] = None,
        max_batches_per_entry: Optional[int] = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_memo_entries is not None and max_memo_entries < 1:
            raise ValueError("max_memo_entries must be positive")
        self.max_entries = max_entries
        #: Bound on generic-memo entries; defaults to ``max_entries``.
        self.max_memo_entries = (
            max_memo_entries if max_memo_entries is not None else max_entries
        )
        #: Per-entry bound on retained golden batches (see
        #: :class:`GoldenBatches`); None keeps every batch.
        self.max_batches_per_entry = max_batches_per_entry
        self._batches: "OrderedDict[Hashable, GoldenBatches]" = OrderedDict()
        self._memo: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------- batch entries

    def batch_entry(
        self,
        netlist: Netlist,
        source: PatternSource,
        batch_width: int,
        evaluator: Optional[Evaluator] = None,
    ) -> Optional[GoldenBatches]:
        """The golden-batch entry for (netlist, source, width), or None.

        Returns None — and counts nothing — when the source has no stable
        fingerprint; callers then compute golden values uncached.
        """
        stream_id = source_fingerprint(source)
        if stream_id is None:
            return None
        key = ("batches", netlist.fingerprint(), stream_id, batch_width)
        entry = self._batches.get(key)
        if entry is not None:
            self.hits += 1
            telemetry.count("cache.hits")
            self._batches.move_to_end(key)
            return entry
        self.misses += 1
        telemetry.count("cache.misses")
        entry = GoldenBatches(
            evaluator if evaluator is not None else Evaluator(netlist),
            source,
            batch_width,
            max_cached_batches=self.max_batches_per_entry,
        )
        self._batches[key] = entry
        while len(self._batches) > self.max_entries:
            self._batches.popitem(last=False)
            self.evictions += 1
            telemetry.count("cache.evictions")
        return entry

    # -------------------------------------------------------- generic memo

    def get(self, key: Hashable) -> Optional[Any]:
        """Look up a memoized value (None on miss); counts hit/miss."""
        if key in self._memo:
            self.hits += 1
            telemetry.count("cache.hits")
            self._memo.move_to_end(key)
            return self._memo[key]
        self.misses += 1
        telemetry.count("cache.misses")
        return None

    def put(self, key: Hashable, value: Any) -> None:
        """Store a memoized value under a caller-built key."""
        self._memo[key] = value
        self._memo.move_to_end(key)
        while len(self._memo) > self.max_memo_entries:
            self._memo.popitem(last=False)
            self.evictions += 1
            telemetry.count("cache.evictions")

    # ------------------------------------------------------------ counters

    def counters(self) -> Dict[str, int]:
        """Hit/miss/eviction/entry counts, JSON-safe."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "batch_entries": len(self._batches),
            "memo_entries": len(self._memo),
        }

"""Table 2: BIBS vs KA-85 on the three data path circuits.

Regenerates all eight rows of the paper's Table 2 per circuit:

1. number of kernels              (exact match expected)
2. number of test sessions        (exact match expected)
3. number of BILBO registers      (exact match expected)
4. maximal delay                  (exact match expected)
5. patterns to 99.5% fault coverage
6. test time to 99.5% fault coverage (optimally scheduled)
7. patterns to 100% fault coverage (of detectable faults)
8. test time to 100% fault coverage

Rows 5-8 come from our own fault simulator and gate-level macros, so the
absolute numbers differ from the paper's; EXPERIMENTS.md records the shape
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro import telemetry
from repro.core.flow import compare_tdms
from repro.datapath.filters import all_filters
from repro.errors import SimulationError
from repro.experiments.render import fmt, render_table

if TYPE_CHECKING:
    from repro.engine.cache import GoldenCache
    from repro.exec.config import RunConfig

#: The paper's Table 2, for side-by-side reporting: circuit -> (BIBS, [3]).
PAPER_TABLE2 = {
    "c5a2m": {
        "kernels": (1, 7), "sessions": (1, 2), "bilbo_registers": (9, 15),
        "maximal_delay": (2, 4), "patterns_995": (1440, 1660),
        "time_995": (1440, 782), "patterns_100": (7300, 4440),
        "time_100": (7300, 2172),
    },
    "c3a2m": {
        "kernels": (1, 5), "sessions": (1, 2), "bilbo_registers": (7, 15),
        "maximal_delay": (2, 6), "patterns_995": (2060, 1596),
        "time_995": (2060, 782), "patterns_100": (9240, 4376),
        "time_100": (9240, 2172),
    },
    "c4a4m": {
        "kernels": (1, 7), "sessions": (1, 2), "bilbo_registers": (10, 20),
        "maximal_delay": (2, 4), "patterns_995": (1900, 4128),
        "time_995": (1900, 1037), "patterns_100": (19120, 8688),
        "time_100": (19120, 2172),
    },
}


@dataclass
class Table2Column:
    """One circuit's measured Table 2 values, (BIBS, KA) pairs."""

    circuit: str
    kernels: tuple
    sessions: tuple
    bilbo_registers: tuple
    maximal_delay: tuple
    patterns_995: tuple
    time_995: tuple
    patterns_100: tuple
    time_100: tuple


def measure_circuit(
    name: str,
    max_patterns: int = 1 << 17,
    seed: int = 1994,
    n_seeds: int = 3,
    *,
    config: Optional["RunConfig"] = None,
    cache: Optional["GoldenCache"] = None,
    **options,
) -> Table2Column:
    """Run the full Table 2 measurement for one circuit.

    ``config`` (a :class:`repro.exec.RunConfig`) shapes every kernel run:
    execution backend and shard count, retry policy, checkpointing (an
    interrupted measurement restarts from the last completed shard round),
    budget, cancellation and chaos.  ``cache`` reuses golden batches
    between the BIBS and KA evaluations of a kernel (same netlist +
    stream) and across repeated measurements.

    ``config.budget`` is armed here (idempotently), so its deadline spans
    every kernel run, and a tripped limit makes the unreached coverage
    rows report ``None`` instead of raising.  The historical keyword
    surface (``jobs=``, ``budget=``, ``checkpoint_dir=``, ...) is
    accepted via the engine's deprecation shim, which warns once per
    process.
    """
    from repro.exec.config import runconfig_from_legacy

    if config is not None and options:
        raise SimulationError(
            "measure_circuit() takes either config=RunConfig(...) or the "
            "legacy keyword options, not both (got config plus: "
            f"{', '.join(sorted(options))})"
        )
    if config is None:
        config = runconfig_from_legacy(options)
    compiled = all_filters()[name]
    if config.budget is not None:
        config.budget.arm()
    with telemetry.span(
        "table2.measure_circuit",
        circuit=name, max_patterns=max_patterns, n_seeds=n_seeds,
        jobs=config.execution.effective_jobs,
    ):
        return _measure_circuit(
            name, compiled, max_patterns, seed, n_seeds, config, cache
        )


def _measure_circuit(
    name, compiled, max_patterns, seed, n_seeds, config, cache
) -> Table2Column:
    comparison = compare_tdms(
        compiled.circuit,
        targets=(0.995, 1.0),
        max_patterns=max_patterns,
        seed=seed,
        n_seeds=n_seeds,
        config=config,
        cache=cache,
    )
    bibs, ka = comparison.bibs, comparison.ka
    return Table2Column(
        circuit=name,
        kernels=(bibs.n_logic_kernels, ka.n_logic_kernels),
        sessions=(_sessions(bibs), _sessions(ka)),
        bilbo_registers=(
            bibs.design.n_bilbo_registers, ka.design.n_bilbo_registers
        ),
        maximal_delay=(bibs.design.maximal_delay(), ka.design.maximal_delay()),
        patterns_995=(bibs.total_patterns(0.995), ka.total_patterns(0.995)),
        time_995=(bibs.scheduled_time(0.995), ka.scheduled_time(0.995)),
        patterns_100=(bibs.total_patterns(1.0), ka.total_patterns(1.0)),
        time_100=(bibs.scheduled_time(1.0), ka.scheduled_time(1.0)),
    )


def _sessions(evaluation) -> Optional[int]:
    """Session count, or None when a guard-truncated run never scheduled."""
    try:
        return evaluation.n_sessions
    except SimulationError:
        return None


def table2_columns(
    circuits: Sequence[str] = ("c5a2m", "c3a2m", "c4a4m"),
    max_patterns: int = 1 << 17,
    seed: int = 1994,
    n_seeds: int = 3,
    *,
    config: Optional["RunConfig"] = None,
    **options,
) -> List[Table2Column]:
    """Measure every circuit, sharing one golden-run cache across them.

    ``config.budget`` is armed once up front, so its deadline spans the
    whole sweep rather than restarting per circuit; ``config.cancel``
    lets one token (typically tripped by SIGINT/SIGTERM) stop every
    remaining run.

    The shared cache bounds per-entry golden-batch retention: a full-budget
    run holds 2^17/256 = 512 batches of every-net packed values *per
    kernel stream*, which across three circuits, two TDMs and three seeds
    is the dominant memory cost of the sweep — so only a recent window is
    kept (evicted batches recompute from the pure pattern stream on the
    rare re-read).
    """
    from repro.engine import GoldenCache
    from repro.exec.config import runconfig_from_legacy

    if config is not None and options:
        raise SimulationError(
            "table2_columns() takes either config=RunConfig(...) or the "
            "legacy keyword options, not both (got config plus: "
            f"{', '.join(sorted(options))})"
        )
    if config is None:
        config = runconfig_from_legacy(options)
    cache = GoldenCache(max_entries=16, max_batches_per_entry=64)
    if config.budget is not None:
        config.budget.arm()
    return [
        measure_circuit(
            c, max_patterns, seed, n_seeds, config=config, cache=cache
        )
        for c in circuits
    ]


def table2_json(
    columns: List[Table2Column], include_paper: bool = True
) -> Dict[str, Any]:
    """Table 2 as a JSON-safe dict (one entry per circuit, (BIBS, KA) pairs)."""
    payload: Dict[str, Any] = {
        "table": "table2",
        "rows": [attr for attr, _ in _ROW_LABELS],
        "measured": {
            column.circuit: {
                attr: list(getattr(column, attr)) for attr, _ in _ROW_LABELS
            }
            for column in columns
        },
    }
    if include_paper:
        payload["paper"] = {
            column.circuit: {
                attr: list(PAPER_TABLE2[column.circuit][attr])
                for attr, _ in _ROW_LABELS
            }
            for column in columns
        }
    return payload


_ROW_LABELS = [
    ("kernels", "1 # of kernels"),
    ("sessions", "2 # of test sessions"),
    ("bilbo_registers", "3 # of BILBO registers"),
    ("maximal_delay", "4 Maximal delay"),
    ("patterns_995", "5 # patterns @ 99.5% FC"),
    ("time_995", "6 Test time @ 99.5% FC"),
    ("patterns_100", "7 # patterns @ 100% FC"),
    ("time_100", "8 Test time @ 100% FC"),
]


def render_table2(columns: List[Table2Column], include_paper: bool = True) -> str:
    """Table 2 as text, optionally with the paper's numbers alongside."""
    headers = ["Row"]
    for column in columns:
        headers += [f"{column.circuit} BIBS", f"{column.circuit} [3]"]
    rows = []
    for attr, label in _ROW_LABELS:
        row = [label]
        for column in columns:
            bibs_value, ka_value = getattr(column, attr)
            row += [fmt(bibs_value), fmt(ka_value)]
        rows.append(row)
    text = render_table(headers, rows, title="Table 2 (measured)")
    if include_paper:
        paper_rows = []
        for attr, label in _ROW_LABELS:
            row = [label]
            for column in columns:
                bibs_value, ka_value = PAPER_TABLE2[column.circuit][attr]
                row += [fmt(bibs_value), fmt(ka_value)]
            paper_rows.append(row)
        text += "\n\n" + render_table(headers, paper_rows, title="Table 2 (paper)")
    return text

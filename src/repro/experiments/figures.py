"""Per-figure reproduction harness (Figures 1-21 / Examples 1-8).

Each function regenerates the quantities the paper states for a figure or
example and returns them in a small dict; ``render_*`` helpers produce the
text the benchmark targets print.  The benchmarks assert the expectations
listed in DESIGN.md Section 5.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.testability import classify
from repro.bilbo.cost import tpg_extra_area_fraction
from repro.core.ballast import make_balanced_by_scan
from repro.core.bibs import make_bibs_testable
from repro.core.ka85 import make_ka_testable
from repro.core.schedule import ScheduledKernel, schedule_kernels
from repro.graph.build import build_circuit_graph
from repro.graph.model import VertexKind
from repro.graph.structures import find_urfs_witnesses, simple_cycles
from repro.library import (
    example2_kernel,
    example3_kernel,
    example4_kernel,
    example5_kernel,
    example6_kernel,
    example7_kernel,
    figure1,
    figure2,
    figure3,
    figure4,
    figure9,
)
from repro.tpg.mc_tpg import cone_spans, mc_tpg
from repro.tpg.polynomials import PAPER_POLY_12
from repro.tpg.pseudo_exhaustive import (
    best_register_order,
    dependency_matrix,
    minimal_test_signals,
)
from repro.tpg.reconfigurable import build_reconfigurable
from repro.tpg.sc_tpg import sc_tpg


def figures_1_2_report() -> Dict[str, object]:
    """Figures 1-2: k-step functional testability classification."""
    report: Dict[str, object] = {}
    for circuit in (figure1(), figure2()):
        graph = build_circuit_graph(circuit)
        result = classify(graph)
        report[circuit.name] = {
            "balanced": result.balanced,
            "k_step": result.k_step,
        }
    return report


def figure3_report() -> Dict[str, object]:
    """Figure 3: circuit graph model features."""
    graph = build_circuit_graph(figure3())
    fanouts = [v.name for v in graph.vertices_of_kind(VertexKind.FANOUT)]
    vacuous = [v.name for v in graph.vertices_of_kind(VertexKind.VACUOUS)]
    cycles = simple_cycles(graph)
    # The URFS the paper highlights: unequal FO1 -> H paths.
    acyclic_part = graph.without_edges(
        e.index for e in graph.register_edges() if e.register in ("R7", "R8")
    )
    witnesses = find_urfs_witnesses(acyclic_part)
    fo_h = [
        w for w in witnesses if w.source.startswith("FO(") and w.target == "H"
    ]
    return {
        "n_vertices": len(graph),
        "n_register_edges": len(graph.register_edges()),
        "n_wire_edges": len(graph.wire_edges()),
        "fanout_vertices": fanouts,
        "vacuous_vertices": vacuous,
        "cycles": cycles,
        "fo1_to_h_witness": fo_h[0] if fo_h else None,
    }


def example1_report() -> Dict[str, object]:
    """Example 1 (Figures 4-6): partial scan vs BIBS."""
    circuit = figure4()
    graph = build_circuit_graph(circuit)
    scan = make_balanced_by_scan(graph)
    bibs = make_bibs_testable(graph)
    items = [
        ScheduledKernel(kernel, kernel.input_width) for kernel in bibs.kernels
    ]
    schedule = schedule_kernels(items)
    return {
        "scan_registers": scan.scan_registers,
        "bibs_registers": bibs.bilbo_registers,
        "n_bibs_registers": bibs.n_bilbo_registers,
        "n_kernels": bibs.n_kernels,
        "n_sessions": schedule.n_sessions,
        "kernels": [
            {
                "blocks": kernel.logic_blocks,
                "tpg": sorted(kernel.tpg_registers),
                "sa": sorted(kernel.sa_registers),
            }
            for kernel in bibs.kernels
        ],
    }


def figure9_report() -> Dict[str, object]:
    """Figure 9: KA-85's own example circuit, both TDMs."""
    graph = build_circuit_graph(figure9())
    bibs = make_bibs_testable(graph)
    ka = make_ka_testable(graph).design

    def sessions(design) -> int:
        items = [
            ScheduledKernel(kernel, max(1, kernel.input_width))
            for kernel in design.kernels
        ]
        return schedule_kernels(items).n_sessions

    return {
        "bibs": {
            "registers": bibs.n_bilbo_registers,
            "flipflops": bibs.n_bilbo_flipflops,
            "kernels": sum(1 for k in bibs.kernels if k.logic_blocks),
            "sessions": sessions(bibs),
        },
        "ka": {
            "registers": ka.n_bilbo_registers,
            "flipflops": ka.n_bilbo_flipflops,
            "kernels": sum(1 for k in ka.kernels if k.logic_blocks),
            "sessions": sessions(ka),
        },
    }


def tpg_examples_report() -> List[Dict[str, object]]:
    """Examples 2-6: the SC_TPG / MC_TPG showcase designs."""
    rows: List[Dict[str, object]] = []

    design2 = sc_tpg(example2_kernel(), polynomial=PAPER_POLY_12)
    rows.append({
        "example": 2,
        "lfsr_stages": design2.lfsr_stages,
        "extra_ffs": design2.n_extra_flipflops,
        "test_time": design2.test_time(),
        "area_fraction": tpg_extra_area_fraction(
            design2.n_extra_flipflops, design2.lfsr_stages
        ),
    })

    design3 = sc_tpg(example3_kernel(), polynomial=PAPER_POLY_12)
    rows.append({
        "example": 3,
        "lfsr_stages": design3.lfsr_stages,
        "extra_ffs": design3.n_extra_flipflops,
        "r1_span": design3.register_label_span("R1"),
        "r2_span": design3.register_label_span("R2"),
        "r3_span": design3.register_label_span("R3"),
        "max_label": design3.max_label,
    })

    design4 = sc_tpg(example4_kernel())
    r1_span = design4.register_label_span("R1")
    r2_span = design4.register_label_span("R2")
    shared = max(
        0, min(r1_span[1], r2_span[1]) - max(r1_span[0], r2_span[0]) + 1
    )
    rows.append({
        "example": 4,
        "lfsr_stages": design4.lfsr_stages,
        "shared_stages": shared,
        "extra_ffs": design4.n_extra_flipflops,
    })

    design5 = mc_tpg(example5_kernel())
    rows.append({
        "example": 5,
        "lfsr_stages": design5.lfsr_stages,
        "displacement": design5.displacement("R1", "R2") - example5_kernel().width_of("R2"),
        "spans": [(s.cone, s.physical_span, s.logical_span) for s in cone_spans(design5)],
    })

    kernel6 = example6_kernel()
    design6 = mc_tpg(kernel6)
    reconfigurable = build_reconfigurable(kernel6)
    rows.append({
        "example": 6,
        "lfsr_stages": design6.lfsr_stages,
        "monolithic_time": design6.test_time(),
        "reconfigurable_time": reconfigurable.total_test_time,
        "n_configurations": len(reconfigurable.sessions),
    })
    return rows


def pseudo_exhaustive_report() -> Dict[str, object]:
    """Examples 7-8: register permutation vs minimal test signals."""
    kernel = example7_kernel()
    default = mc_tpg(kernel)
    search = best_register_order(kernel)
    plan = minimal_test_signals(kernel)
    return {
        "dependency_matrix": dependency_matrix(kernel),
        "default_order_stages": default.lfsr_stages,
        "best_order": list(search.order),
        "best_order_stages": search.lfsr_stages,
        "lower_bound": search.lower_bound,
        "optimal": search.optimal,
        "mccluskey_signals": plan.n_signals,
        "mccluskey_stages": plan.lfsr_stages,
    }

"""Regenerate every table and figure in one go.

``python -m repro.experiments [outdir] [--quick]`` writes the same
artifacts the benchmark suite produces (Table 1, Table 2, the per-figure
reports) without pytest.  ``--quick`` shrinks the fault-simulation budget
for a fast smoke pass; ``--jobs N`` shards fault simulation over N
workers and ``--executor`` picks the :mod:`repro.exec` backend
(bit-identical results either way, see ``docs/ENGINE.md`` and
``docs/EXECUTORS.md``); ``--seed N`` changes the random-pattern seed;
``--json`` additionally writes ``table1.json``/``table2.json``
machine-readable artifacts.  The engine/guard/telemetry flag cluster is
shared with ``python -m repro selftest`` (see :mod:`repro.cli_args`).

Long Table 2 measurements are resumable: ``--checkpoint-dir DIR``
journals completed fault-simulation shard rounds (default
``<outdir>/checkpoints`` when ``--resume`` is given), and ``--resume``
replays the journal so an interrupted run picks up from the last
completed shard instead of restarting from zero.

The sweep is governed by :mod:`repro.guard` (see ``docs/ROBUSTNESS.md``):
``--deadline SECONDS`` bounds the whole run's wall clock, ``--max-memory
SIZE`` caps resident memory (e.g. ``2g``), ``--max-patterns N`` caps each
kernel run's pattern budget, and Ctrl-C / SIGTERM stop the sweep at the
next shard-round boundary — flushing the checkpoint journal and exiting
130/143 with a one-line notice instead of a traceback.  A re-run with
``--resume`` completes the measurement bit-identically.

``--trace-out FILE`` / ``--metrics-out FILE`` enable
:mod:`repro.telemetry` for the sweep and write a Chrome ``trace_event``
file and a Prometheus text-format metrics file describing where the wall
time went (per circuit, per kernel, per engine round — see
``docs/OBSERVABILITY.md``).  ``--quiet`` suppresses progress text.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.cli_args import (
    engine_parent_parser,
    render_json,
    runconfig_from_args,
    write_telemetry_artifacts,
)
from repro.experiments.figures import (
    example1_report,
    figure3_report,
    figure9_report,
    figures_1_2_report,
    pseudo_exhaustive_report,
    tpg_examples_report,
)
from repro.experiments.table1 import render_table1, table1_json, table1_rows
from repro.experiments.table2 import render_table2, table2_columns, table2_json
from repro.guard import (
    STOP_DEADLINE,
    Budget,
    CancelToken,
    exit_code,
    guard_summary,
    signal_scope,
)


def _announce_interrupt(checkpoint_dir, quiet: bool) -> None:
    """The whole user-facing story of an interrupted sweep: one line."""
    if quiet:
        return
    if checkpoint_dir:
        print(f"interrupted, checkpoint saved to {checkpoint_dir}",
              file=sys.stderr)
    else:
        print("interrupted", file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments",
                                     parents=[engine_parent_parser()])
    parser.add_argument("outdir", nargs="?", default="results")
    parser.add_argument("--quick", action="store_true",
                        help="smaller fault-sim budget (smoke pass)")
    parser.add_argument("--seed", type=int, default=1994,
                        help="random-pattern seed for Table 2")
    parser.add_argument("--json", action="store_true",
                        help="also write table1.json / table2.json")
    args = parser.parse_args(argv)

    outdir = pathlib.Path(args.outdir)
    checkpoint_dir = args.checkpoint_dir
    if checkpoint_dir is None and args.resume:
        checkpoint_dir = str(outdir / "checkpoints")

    budget = Budget.from_cli(args.deadline, args.max_memory, args.max_patterns)
    token = CancelToken()
    try:
        with signal_scope(token):
            code = _run_sweep(args, outdir, checkpoint_dir, budget, token)
    except KeyboardInterrupt:
        # Signals outside signal_scope (argument errors aside, only the
        # narrow windows before/after the sweep) still exit cleanly.
        _announce_interrupt(checkpoint_dir, args.quiet)
        return 130
    if token.cancelled:
        _announce_interrupt(checkpoint_dir, args.quiet)
        return exit_code(token)
    return code


def _run_sweep(args, outdir, checkpoint_dir, budget, token) -> int:
    if args.trace_out or args.metrics_out:
        from repro import telemetry

        telemetry.enable()

    outdir.mkdir(exist_ok=True)
    if budget is not None:
        budget.arm()

    def write(name: str, text: str) -> None:
        (outdir / name).write_text(text + "\n")
        if not args.quiet:
            print(f"wrote {outdir / name}")

    start = time.time()
    rows = table1_rows()
    write("table1.txt", render_table1(rows))
    if args.json:
        write("table1.json", render_json(table1_json(rows)))

    max_patterns = 1 << (13 if args.quick else 16)
    n_seeds = 1 if args.quick else 3
    config = runconfig_from_args(args, budget=budget, cancel=token,
                                 checkpoint_dir=checkpoint_dir)
    columns = table2_columns(
        max_patterns=max_patterns, seed=args.seed, n_seeds=n_seeds,
        config=config,
    )
    write("table2_full.txt", render_table2(columns))
    if args.json:
        write("table2.json", render_json(table2_json(columns)))

    stop_reason = None
    if token.cancelled:
        stop_reason = token.reason
    elif budget is not None and budget.expired():
        stop_reason = STOP_DEADLINE
    if stop_reason is None:
        # The figure reports are cheap but not guard-aware; skip them when
        # the sweep was cut so a deadline overrun stays an overrun of
        # seconds, not of report generation.
        write("figures_1_2.txt",
              json.dumps(figures_1_2_report(), indent=2, default=str))
        write("figure3.txt", json.dumps(figure3_report(), indent=2, default=str))
        write("example1.txt", json.dumps(example1_report(), indent=2, default=str))
        write("figure9.txt", json.dumps(figure9_report(), indent=2))
        write("tpg_examples.txt",
              json.dumps(tpg_examples_report(), indent=2, default=str))
        write("pseudo_exhaustive.txt",
              json.dumps(pseudo_exhaustive_report(), indent=2))

    if args.trace_out or args.metrics_out:
        def _announce(text: str) -> None:
            if not args.quiet:
                print(text)

        write_telemetry_artifacts(
            args,
            config={
                "command": "experiments", "quick": args.quick,
                "jobs": args.jobs, "executor": args.executor,
                "seed": args.seed,
                "max_patterns": max_patterns, "n_seeds": n_seeds,
            },
            guard=guard_summary(budget, token, stop_reason=stop_reason),
            announce=_announce,
        )

    if not args.quiet:
        if stop_reason is not None:
            print(f"stopped early ({stop_reason}) after "
                  f"{time.time() - start:.1f}s")
        else:
            print(f"done in {time.time() - start:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

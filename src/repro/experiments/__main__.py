"""Regenerate every table and figure in one go.

``python -m repro.experiments [outdir] [--quick]`` writes the same
artifacts the benchmark suite produces (Table 1, Table 2, the per-figure
reports) without pytest.  ``--quick`` shrinks the fault-simulation budget
for a fast smoke pass; ``--jobs N`` shards fault simulation over N worker
processes (bit-identical results, see ``docs/ENGINE.md``); ``--seed N``
changes the random-pattern seed; ``--json`` additionally writes
``table1.json``/``table2.json`` machine-readable artifacts.

Long Table 2 measurements are resumable: ``--checkpoint-dir DIR``
journals completed fault-simulation shard rounds (default
``<outdir>/checkpoints`` when ``--resume`` is given), and ``--resume``
replays the journal so an interrupted run picks up from the last
completed shard instead of restarting from zero.

``--trace-out FILE`` / ``--metrics-out FILE`` enable
:mod:`repro.telemetry` for the sweep and write a Chrome ``trace_event``
file and a Prometheus text-format metrics file describing where the wall
time went (per circuit, per kernel, per engine round — see
``docs/OBSERVABILITY.md``).  ``--quiet`` suppresses progress text.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.experiments.figures import (
    example1_report,
    figure3_report,
    figure9_report,
    figures_1_2_report,
    pseudo_exhaustive_report,
    tpg_examples_report,
)
from repro.experiments.table1 import render_table1, table1_json, table1_rows
from repro.experiments.table2 import render_table2, table2_columns, table2_json


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments")
    parser.add_argument("outdir", nargs="?", default="results")
    parser.add_argument("--quick", action="store_true",
                        help="smaller fault-sim budget (smoke pass)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="shard fault simulation over N worker processes")
    parser.add_argument("--seed", type=int, default=1994,
                        help="random-pattern seed for Table 2")
    parser.add_argument("--json", action="store_true",
                        help="also write table1.json / table2.json")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="journal completed fault-sim shard rounds "
                             "under this directory (resumable runs)")
    parser.add_argument("--resume", action="store_true",
                        help="replay journaled shard rounds from the "
                             "checkpoint directory instead of re-running")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="enable telemetry and write a Chrome "
                             "trace_event file for the sweep")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="enable telemetry and write a Prometheus "
                             "text-format metrics file")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress text")
    args = parser.parse_args(argv)

    if args.trace_out or args.metrics_out:
        from repro import telemetry

        telemetry.enable()

    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(exist_ok=True)
    checkpoint_dir = args.checkpoint_dir
    if checkpoint_dir is None and args.resume:
        checkpoint_dir = str(outdir / "checkpoints")

    def write(name: str, text: str) -> None:
        (outdir / name).write_text(text + "\n")
        if not args.quiet:
            print(f"wrote {outdir / name}")

    start = time.time()
    rows = table1_rows()
    write("table1.txt", render_table1(rows))
    if args.json:
        write("table1.json", json.dumps(table1_json(rows), indent=2))

    max_patterns = 1 << (13 if args.quick else 16)
    n_seeds = 1 if args.quick else 3
    columns = table2_columns(
        max_patterns=max_patterns, seed=args.seed, n_seeds=n_seeds,
        jobs=args.jobs, checkpoint_dir=checkpoint_dir, resume=args.resume,
    )
    write("table2_full.txt", render_table2(columns))
    if args.json:
        write("table2.json", json.dumps(table2_json(columns), indent=2))

    write("figures_1_2.txt", json.dumps(figures_1_2_report(), indent=2, default=str))
    write("figure3.txt", json.dumps(figure3_report(), indent=2, default=str))
    write("example1.txt", json.dumps(example1_report(), indent=2, default=str))
    write("figure9.txt", json.dumps(figure9_report(), indent=2))
    write("tpg_examples.txt", json.dumps(tpg_examples_report(), indent=2, default=str))
    write("pseudo_exhaustive.txt", json.dumps(pseudo_exhaustive_report(), indent=2))

    if args.trace_out or args.metrics_out:
        from repro import telemetry

        manifest = telemetry.RunManifest.collect(config={
            "command": "experiments", "quick": args.quick,
            "jobs": args.jobs, "seed": args.seed,
            "max_patterns": max_patterns, "n_seeds": n_seeds,
        })
        if args.trace_out:
            telemetry.export.write_trace(args.trace_out, manifest=manifest)
            if not args.quiet:
                print(f"wrote trace to {args.trace_out}")
        if args.metrics_out:
            telemetry.export.write_metrics(args.metrics_out)
            if not args.quiet:
                print(f"wrote metrics to {args.metrics_out}")

    if not args.quiet:
        print(f"done in {time.time() - start:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

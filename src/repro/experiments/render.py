"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from typing import List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([str(v) for v in row])
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]

    def line(row: Sequence[str]) -> str:
        return " | ".join(value.ljust(width) for value, width in zip(row, widths))

    separator = "-+-".join("-" * width for width in widths)
    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(cells[0]))
    out.append(separator)
    for row in cells[1:]:
        out.append(line(row))
    return "\n".join(out)


def fmt(value: object) -> str:
    """Format an optional number for table cells."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)

"""Experiment harness: regenerates every table and figure of the paper."""

from repro.experiments.render import fmt, render_table
from repro.experiments.table1 import Table1Row, render_table1, table1_rows
from repro.experiments.table2 import (
    PAPER_TABLE2,
    Table2Column,
    measure_circuit,
    render_table2,
    table2_columns,
)
from repro.experiments.figures import (
    example1_report,
    figure3_report,
    figure9_report,
    figures_1_2_report,
    pseudo_exhaustive_report,
    tpg_examples_report,
)

__all__ = [
    "render_table",
    "fmt",
    "Table1Row",
    "table1_rows",
    "render_table1",
    "PAPER_TABLE2",
    "Table2Column",
    "measure_circuit",
    "table2_columns",
    "render_table2",
    "figures_1_2_report",
    "figure3_report",
    "example1_report",
    "figure9_report",
    "tpg_examples_report",
    "pseudo_exhaustive_report",
]

"""Table 1: summary of the data path circuits.

Regenerates the paper's Table 1 rows — function, implementation summary and
gate count — for c5a2m, c3a2m and c4a4m.  Gate counts are for our own
adder/multiplier macros (the original MABAL netlists are unavailable), so
absolute values differ from the paper's 2,542 / 2,218 / 4,096; the ordering
and magnitude relationships are what the benchmark asserts.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List

from repro.core.bibs import make_bibs_testable
from repro.core.flow import lower_kernel_to_netlist
from repro.datapath.filters import FUNCTION_STRINGS, all_filters
from repro.experiments.render import render_table
from repro.graph.build import build_circuit_graph


@dataclass(frozen=True)
class Table1Row:
    """One circuit's summary line."""

    name: str
    function: str
    n_adders: int
    n_multipliers: int
    n_registers: int
    n_register_bits: int
    n_gates: int             # all block logic, including full products
    n_observable_gates: int  # logic in the PO cone (BIBS-kernel view)
    width: int = 8


def full_gate_count(circuit) -> int:
    """Gates of every block expanded standalone (nothing pruned)."""
    from repro.netlist.netlist import Netlist

    total = 0
    for block in circuit.blocks.values():
        scratch = Netlist(f"count:{block.name}")
        inputs = [
            scratch.new_inputs(circuit.nets[n].width, prefix=f"i{p}_")
            for p, n in enumerate(block.input_nets)
        ]
        if block.gate_expander is None:
            continue
        block.gate_expander(scratch, inputs, block.name)
        total += len(scratch.gates)
    return total


def table1_rows() -> List[Table1Row]:
    """Compute the Table 1 data for all three circuits."""
    rows: List[Table1Row] = []
    for name, compiled in all_filters().items():
        circuit = compiled.circuit
        graph = build_circuit_graph(circuit)
        design = make_bibs_testable(graph)
        kernel = [k for k in design.kernels if k.logic_blocks][0]
        netlist = lower_kernel_to_netlist(circuit, kernel)
        rows.append(
            Table1Row(
                name=name,
                function=FUNCTION_STRINGS[name],
                n_adders=compiled.n_adders,
                n_multipliers=compiled.n_multipliers,
                n_registers=len(circuit.registers),
                n_register_bits=circuit.total_register_bits(),
                n_gates=full_gate_count(circuit),
                n_observable_gates=len(netlist.gates),
            )
        )
    return rows


def table1_json(rows=None) -> Dict[str, Any]:
    """Table 1 as a JSON-safe dict (one entry per circuit)."""
    if rows is None:
        rows = table1_rows()
    return {
        "table": "table1",
        "circuits": {row.name: asdict(row) for row in rows},
    }


def render_table1(rows=None) -> str:
    """Table 1 as text."""
    if rows is None:
        rows = table1_rows()
    return render_table(
        ["Circuit", "Function", "Adders", "Mults", "Regs", "Reg bits",
         "Gates (ours)", "Observable gates"],
        [
            (r.name, r.function, r.n_adders, r.n_multipliers,
             r.n_registers, r.n_register_bits, r.n_gates, r.n_observable_gates)
            for r in rows
        ],
        title="Table 1: Summary of the data path circuits",
    )

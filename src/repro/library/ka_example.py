"""Figure 9: the example circuit from Krasniewski & Albicki [3].

The original figure's full wiring is not recoverable from the paper's text;
this reconstruction is engineered so that the *reported outcomes* hold
exactly:

* KA-85 converts 10 BILBO registers totalling 52 flip-flops;
* BIBS converts 8 BILBO registers totalling 43 flip-flops;
* both designs need two test sessions.

Structure: two input clusters (a 2-port block feeding a single-input block
through a wire) deliver 4- and 5-bit words into a 3-port merge block B5,
which drives two POs and a 2-bit feedback loop through B6.  KA-85
additionally converts the cluster output registers R9 (4 bits) and R10
(5 bits) because they feed input ports of the multi-port B5; BIBS leaves
them inside its single big kernel.  The B5/B6 cycle forces two BILBO edges
(R7, R8) under both TDMs (Theorem 2 / KA criterion 3).
"""

from __future__ import annotations

from repro.rtl.circuit import RTLCircuit


def figure9() -> RTLCircuit:
    """The reconstructed [3] example circuit."""
    circuit = RTLCircuit("figure9")

    # PI registers: 4 x 8 bits = 32 FFs.
    r_out = {}
    for name in ("a", "b", "c", "d"):
        pi = circuit.new_input(name, 8)
        out = circuit.add_net(f"r_{name}", 8)
        circuit.add_register(f"R{['a','b','c','d'].index(name) + 1}", pi, out)
        r_out[name] = out

    # Cluster 1: B1 (2 ports) -> wire -> B2 -> R9 (4 bits).
    w1 = circuit.add_net("w1", 8)
    circuit.add_block("B1", [r_out["a"], r_out["b"]], [w1])
    w2 = circuit.add_net("w2", 4)
    circuit.add_block("B2", [w1], [w2])
    v9 = circuit.add_net("v9", 4)
    circuit.add_register("R9", w2, v9)

    # Cluster 2: B3 (2 ports) -> wire -> B4 -> R10 (5 bits).
    w3 = circuit.add_net("w3", 8)
    circuit.add_block("B3", [r_out["c"], r_out["d"]], [w3])
    w4 = circuit.add_net("w4", 5)
    circuit.add_block("B4", [w3], [w4])
    v10 = circuit.add_net("v10", 5)
    circuit.add_register("R10", w4, v10)

    # Merge block B5 with a 2-bit feedback loop through B6.
    fb = circuit.add_net("fb", 2)
    y1 = circuit.add_net("y1", 4)
    y2 = circuit.add_net("y2", 3)
    y3 = circuit.add_net("y3", 2)
    circuit.add_block("B5", [v9, v10, fb], [y1, y2, y3])

    o1 = circuit.add_net("o1", 4)
    circuit.add_register("R5", y1, o1)
    circuit.mark_output(o1)
    o2 = circuit.add_net("o2", 3)
    circuit.add_register("R6", y2, o2)
    circuit.mark_output(o2)

    z1 = circuit.add_net("z1", 2)
    circuit.add_register("R7", y3, z1)
    z2 = circuit.add_net("z2", 2)
    circuit.add_block("B6", [z1], [z2])
    circuit.add_register("R8", z2, fb)
    return circuit

"""The paper's TPG-design example kernels (Sections 4.1-4.3).

Two forms are provided:

* :class:`~repro.tpg.design.KernelSpec` objects — the generalized
  structures the SC_TPG/MC_TPG procedures consume directly, exactly as the
  examples state them (register widths and sequential lengths);
* full RTL circuits for Figures 12(a), 17(a) and 21(a), from which
  ``repro.analysis.cones`` re-derives those same specs — exercising the
  whole structural pipeline.

``*_small`` variants shrink register widths so the exhaustive Theorem-4
verification stays fast in tests.
"""

from __future__ import annotations

from repro.rtl.circuit import RTLCircuit
from repro.tpg.design import Cone, InputRegister, KernelSpec


# ----------------------------------------------------------- kernel specs

def example2_kernel(width: int = 4) -> KernelSpec:
    """Example 2 (Figures 12a/13): depths 2, 1, 0 — descending order."""
    return KernelSpec.single_cone(
        [("R1", width, 2), ("R2", width, 1), ("R3", width, 0)], name="example2"
    )


def example3_kernel(width: int = 4) -> KernelSpec:
    """Example 3 (Figure 15): depths 1, 2, 0 — the sharing + separation case."""
    return KernelSpec.single_cone(
        [("R1", width, 1), ("R2", width, 2), ("R3", width, 0)], name="example3"
    )


def example4_kernel(width: int = 4) -> KernelSpec:
    """Example 4 (Figure 16): displacement -5 exceeds the register width."""
    return KernelSpec.single_cone(
        [("R1", width, 0), ("R2", width, 5)], name="example4"
    )


def example5_kernel(width: int = 4) -> KernelSpec:
    """Example 5 (Figure 17): two cones, displacements +2 and +1."""
    return KernelSpec(
        (InputRegister("R1", width), InputRegister("R2", width)),
        (
            Cone("O1", {"R1": 2, "R2": 0}),
            Cone("O2", {"R1": 1, "R2": 0}),
        ),
        name="example5",
    )


def example6_kernel(width: int = 4) -> KernelSpec:
    """Example 6 (Figures 19/20): the reconfigurable-TPG candidate."""
    return KernelSpec(
        (InputRegister("R1", width), InputRegister("R2", width)),
        (
            Cone("O1", {"R1": 2, "R2": 0}),
            Cone("O2", {"R1": 0, "R2": 1}),
        ),
        name="example6",
    )


def example7_kernel(width: int = 4) -> KernelSpec:
    """Examples 7/8 (Figure 21): three cones, permutation-sensitive."""
    return KernelSpec(
        (
            InputRegister("R1", width),
            InputRegister("R2", width),
            InputRegister("R3", width),
        ),
        (
            Cone("O1", {"R1": 2, "R2": 0}),
            Cone("O2", {"R1": 0, "R3": 1}),
            Cone("O3", {"R2": 1, "R3": 0}),
        ),
        name="example7",
    )


# ------------------------------------------------------------ RTL circuits

def figure12a(width: int = 4) -> RTLCircuit:
    """Figure 12(a): the balanced BISTable kernel behind Example 2.

    R1 feeds C1, whose output reaches C3 through C2 and C4 (both via one
    internal register, sequential length 2 from R1); R2 reaches C3 through
    one internal register (length 1); R3 reaches C3 through the
    single-input block C5 by wire (length 0).
    """
    circuit = RTLCircuit("figure12a")
    x1 = circuit.new_input("x1", width)
    x2 = circuit.new_input("x2", width)
    x3 = circuit.new_input("x3", width)
    r1 = circuit.add_net("r1", width)
    circuit.add_register("R1", x1, r1)
    r2 = circuit.add_net("r2", width)
    circuit.add_register("R2", x2, r2)
    r3 = circuit.add_net("r3", width)
    circuit.add_register("R3", x3, r3)

    c1_out = circuit.add_net("c1_out", width)
    circuit.add_block("C1", [r1], [c1_out])
    ra_out = circuit.add_net("ra_out", width)
    circuit.add_register("Ra", c1_out, ra_out)
    rb_out = circuit.add_net("rb_out", width)
    circuit.add_register("Rb", c1_out, rb_out)

    c2_out = circuit.add_net("c2_out", width)
    circuit.add_block("C2", [ra_out, r2], [c2_out])
    rc_out = circuit.add_net("rc_out", width)
    circuit.add_register("Rc", c2_out, rc_out)

    c4_out = circuit.add_net("c4_out", width)
    circuit.add_block("C4", [rb_out], [c4_out])
    rd_out = circuit.add_net("rd_out", width)
    circuit.add_register("Rd", c4_out, rd_out)

    c5_out = circuit.add_net("c5_out", width)
    circuit.add_block("C5", [r3], [c5_out])

    c3_out = circuit.add_net("c3_out", width)
    circuit.add_block("C3", [rc_out, rd_out, c5_out], [c3_out])
    po = circuit.add_net("po", width)
    circuit.add_register("Rout", c3_out, po)
    circuit.mark_output(po)
    return circuit


def figure17a(width: int = 4) -> RTLCircuit:
    """Figure 17(a): the two-cone kernel of Example 5.

    Cone O1 sees R1 through two internal registers and R2 directly; cone O2
    sees R1 through one internal register and R2 directly.
    """
    circuit = RTLCircuit("figure17a")
    x1 = circuit.new_input("x1", width)
    x2 = circuit.new_input("x2", width)
    r1 = circuit.add_net("r1", width)
    circuit.add_register("R1", x1, r1)
    r2 = circuit.add_net("r2", width)
    circuit.add_register("R2", x2, r2)

    c1_out = circuit.add_net("c1_out", width)
    circuit.add_block("C1", [r1], [c1_out])
    ra = circuit.add_net("ra", width)
    circuit.add_register("Ra", c1_out, ra)

    # Branch to cone O2 after one internal register.
    c4_out = circuit.add_net("c4_out", width)
    circuit.add_block("C4", [ra, r2], [c4_out])
    po2 = circuit.add_net("po2", width)
    circuit.add_register("Rout2", c4_out, po2)
    circuit.mark_output(po2)

    # Cone O1 after a second internal register.
    c2_out = circuit.add_net("c2_out", width)
    circuit.add_block("C2", [ra], [c2_out])
    rb = circuit.add_net("rb", width)
    circuit.add_register("Rb", c2_out, rb)
    c3_out = circuit.add_net("c3_out", width)
    circuit.add_block("C3", [rb, r2], [c3_out])
    po1 = circuit.add_net("po1", width)
    circuit.add_register("Rout1", c3_out, po1)
    circuit.mark_output(po1)
    return circuit


def figure21a(width: int = 4) -> RTLCircuit:
    """Figure 21(a): the three-cone kernel of Examples 7/8.

    Dependencies (register -> cone sequential lengths): O1 {R1:2, R2:0},
    O2 {R1:0, R3:1}, O3 {R2:1, R3:0}.
    """
    circuit = RTLCircuit("figure21a")
    inputs = {}
    for index, name in enumerate(("R1", "R2", "R3"), start=1):
        pi = circuit.new_input(f"x{index}", width)
        out = circuit.add_net(f"{name.lower()}_out", width)
        circuit.add_register(name, pi, out)
        inputs[name] = out

    # Cone O1: R1 through two internal registers, R2 direct.
    a1 = circuit.add_net("a1", width)
    circuit.add_block("P1", [inputs["R1"]], [a1])
    d1 = circuit.add_net("d1", width)
    circuit.add_register("Ia", a1, d1)
    a2 = circuit.add_net("a2", width)
    circuit.add_block("P2", [d1], [a2])
    d2 = circuit.add_net("d2", width)
    circuit.add_register("Ib", a2, d2)
    o1_out = circuit.add_net("o1_out", width)
    circuit.add_block("C_O1", [d2, inputs["R2"]], [o1_out])
    po1 = circuit.add_net("po1", width)
    circuit.add_register("S1", o1_out, po1)
    circuit.mark_output(po1)

    # Cone O2: R1 direct, R3 through one internal register.
    b1 = circuit.add_net("b1", width)
    circuit.add_block("P3", [inputs["R3"]], [b1])
    d3 = circuit.add_net("d3", width)
    circuit.add_register("Ic", b1, d3)
    o2_out = circuit.add_net("o2_out", width)
    circuit.add_block("C_O2", [inputs["R1"], d3], [o2_out])
    po2 = circuit.add_net("po2", width)
    circuit.add_register("S2", o2_out, po2)
    circuit.mark_output(po2)

    # Cone O3: R2 through one internal register, R3 direct.
    e1 = circuit.add_net("e1", width)
    circuit.add_block("P4", [inputs["R2"]], [e1])
    d4 = circuit.add_net("d4", width)
    circuit.add_register("Id", e1, d4)
    o3_out = circuit.add_net("o3_out", width)
    circuit.add_block("C_O3", [d4, inputs["R3"]], [o3_out])
    po3 = circuit.add_net("po3", width)
    circuit.add_register("S3", o3_out, po3)
    circuit.mark_output(po3)
    return circuit

"""Random balanced-datapath synthesis for property-based testing.

Generates random pipelined RTL circuits in the MABAL style the paper's
evaluation uses: a random expression DAG of adders and multipliers over a
random set of inputs, compiled by ``repro.datapath.compiler`` (whose
per-stage register placement makes the result balanced by construction).
End-to-end property tests drive the whole pipeline with these: BIBS must
need only the PI/PO registers, the kernel spec must round-trip, and the
TPG must verify functionally exhaustive at small widths.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.datapath.compiler import Add, CompiledDatapath, Expr, Mul, Var, compile_datapath


def random_expression(
    rng: random.Random,
    variables: List[Var],
    depth: int,
) -> Expr:
    """A random Add/Mul tree of bounded depth over the given variables."""
    if depth <= 0:
        return rng.choice(variables)
    op = rng.choice((Add, Mul))
    left = random_expression(rng, variables, rng.randrange(depth))
    right = random_expression(rng, variables, rng.randrange(depth))
    if isinstance(left, Var) and isinstance(right, Var) and left is right:
        others = [v for v in variables if v is not left]
        if others:
            right = rng.choice(others)
    return op(left, right)


def random_structural_circuit(
    seed: int,
    n_blocks: int = 6,
    n_pis: int = 2,
    register_probability: float = 0.6,
) -> "RTLCircuit":
    """A random, usually *unbalanced* structural RTL circuit.

    Blocks form a random DAG; each connection passes through a register
    with the given probability, so reconvergent paths get unequal
    sequential lengths most of the time.  Blocks carry no behaviour —
    these circuits exercise the structural pipeline (balance analysis,
    BALLAST, BIBS selection) on adversarial shapes.
    """
    from repro.rtl.circuit import RTLCircuit

    rng = random.Random(seed)
    circuit = RTLCircuit(f"struct{seed}")
    width = 4
    sources: List[int] = []  # nets available as block inputs
    register_count = 0

    for index in range(n_pis):
        pi = circuit.new_input(f"pi{index}", width)
        out = circuit.add_net(f"pi{index}_r", width)
        circuit.add_register(f"Rpi{index}", pi, out)
        sources.append(out)

    def registered(net: int, tag: str) -> int:
        nonlocal register_count
        if rng.random() < register_probability:
            register_count += 1
            out = circuit.add_net(f"{tag}_q{register_count}", width)
            circuit.add_register(f"R{register_count}_{tag}", net, out)
            return out
        return net

    block_outputs: List[int] = []
    for index in range(n_blocks):
        n_inputs = rng.randrange(1, min(3, len(sources)) + 1)
        inputs = rng.sample(sources, n_inputs)
        out = circuit.add_net(f"b{index}_out", width)
        circuit.add_block(f"B{index}", inputs, [out])
        block_outputs.append(out)
        sources.append(registered(out, f"b{index}"))

    # Terminate every unread net at a PO register so validation passes.
    sinks = circuit.sinks()
    po_count = 0
    for net in list(range(len(circuit.nets))):
        if not sinks[circuit.nets[net].index]:
            po_count += 1
            po = circuit.add_net(f"po{po_count}", width)
            circuit.add_register(f"Rpo{po_count}", net, po)
            circuit.mark_output(po)
    circuit.validate()
    return circuit


def random_datapath(
    seed: int,
    width: int = 3,
    max_depth: int = 3,
    n_outputs: int = 1,
    max_inputs: int = 4,
) -> CompiledDatapath:
    """A random balanced pipelined datapath (deterministic per seed)."""
    rng = random.Random(seed)
    n_vars = rng.randrange(2, max_inputs + 1)
    variables = [Var(name) for name in "abcdefgh"[:n_vars]]
    outputs: List[Tuple[str, Expr]] = []
    for index in range(n_outputs):
        expr = random_expression(rng, variables, rng.randrange(1, max_depth + 1))
        while isinstance(expr, Var):
            expr = random_expression(rng, variables, max_depth)
        outputs.append((f"o{index}", expr))
    return compile_datapath(outputs, f"rand{seed}", width=width)

"""Reusable paper-figure circuits and example kernels."""

from repro.library.figures import figure1, figure2, figure3, figure4
from repro.library.ka_example import figure9
from repro.library.iscas import c17
from repro.library.synth import random_datapath, random_structural_circuit
from repro.library.kernels import (
    example2_kernel,
    example3_kernel,
    example4_kernel,
    example5_kernel,
    example6_kernel,
    example7_kernel,
    figure12a,
    figure17a,
    figure21a,
)

__all__ = [
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure9",
    "example2_kernel",
    "example3_kernel",
    "example4_kernel",
    "example5_kernel",
    "example6_kernel",
    "example7_kernel",
    "figure12a",
    "figure17a",
    "figure21a",
    "c17",
    "random_datapath",
    "random_structural_circuit",
]

"""ISCAS-85 reference circuits (the test community's standard fixtures).

Only c17 — the canonical six-NAND teaching circuit — ships inline; it
exercises the ``.bench`` reader, the fault universe, the simulator and
PODEM against a netlist whose properties are documented in forty years of
literature (22 collapsed faults, all detectable).
"""

from __future__ import annotations

from repro.netlist import bench_io
from repro.netlist.netlist import Netlist

C17_BENCH = """
# c17 — ISCAS-85
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


def c17() -> Netlist:
    """The ISCAS-85 c17 benchmark (5 inputs, 2 outputs, 6 NAND gates)."""
    return bench_io.loads(C17_BENCH, name="c17")

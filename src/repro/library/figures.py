"""The paper's illustrative circuits (Figures 1-4), rebuilt from the text.

Where a figure's exact internal wiring is not recoverable from the prose,
the reconstruction preserves every property the paper states about it (the
reconstructions are documented in DESIGN.md Section 3).  Blocks carry no
word functions — these circuits exist for structural analysis.
"""

from __future__ import annotations

from repro.rtl.circuit import RTLCircuit


def figure1() -> RTLCircuit:
    """Figure 1: the unbalanced circuit.

    A PI fans out to a combinational block C both directly and through a
    register R; the two F-to-C paths have sequential lengths 0 and 1, so
    faults in C may need two-vector sequences (2-pattern detectable; the
    circuit is 2-step functionally testable).
    """
    circuit = RTLCircuit("figure1")
    pi = circuit.new_input("pi", 8)
    r_out = circuit.add_net("r_out", 8)
    circuit.add_register("R", pi, r_out)
    c_out = circuit.add_net("c_out", 8)
    circuit.add_block("C", [pi, r_out], [c_out])
    circuit.mark_output(c_out)
    return circuit


def figure2() -> RTLCircuit:
    """Figure 2: the 1-step functionally testable pipeline.

    PI -> R1 -> C1 -> R2 -> C2 -> PO.  Balanced, so 1-step functionally
    testable: applying all patterns at R1 tests C2 functionally
    exhaustively even though C1's image may not cover all 2^n patterns.
    """
    circuit = RTLCircuit("figure2")
    pi = circuit.new_input("pi", 8)
    r1_out = circuit.add_net("r1_out", 8)
    circuit.add_register("R1", pi, r1_out)
    c1_out = circuit.add_net("c1_out", 8)
    circuit.add_block("C1", [r1_out], [c1_out])
    r2_out = circuit.add_net("r2_out", 8)
    circuit.add_register("R2", c1_out, r2_out)
    c2_out = circuit.add_net("c2_out", 8)
    circuit.add_block("C2", [r2_out], [c2_out])
    circuit.mark_output(c2_out)
    return circuit


def figure3() -> RTLCircuit:
    """Figure 3: the circuit-graph modelling example.

    Reconstructed to exhibit every feature the text calls out: a fanout
    vertex FO1 after R1 feeding blocks A, B and C; a vacuous vertex between
    the directly-chained registers R2 and R3; the cycle through F and H
    (two register edges); and the URFS through FO1, A, C, D, E, G, H where
    the FO1-to-H paths have sequential lengths 2 (via A, D) and 1 (via C,
    E, G).  All registers are 8 bits wide, as in the paper's example.
    """
    circuit = RTLCircuit("figure3")
    w = 8
    pi = circuit.new_input("pi", w)
    r1_out = circuit.add_net("r1_out", w)
    circuit.add_register("R1", pi, r1_out)

    # r1_out fans out to A, B and C -> fanout vertex FO1 in the graph.
    a_out = circuit.add_net("a_out", w)
    circuit.add_block("A", [r1_out], [a_out])
    b_out = circuit.add_net("b_out", w)
    circuit.add_block("B", [r1_out], [b_out])
    c_out = circuit.add_net("c_out", w)
    circuit.add_block("C", [r1_out], [c_out])

    # URFS branch 1: A -> R4 -> D -> R5 -> H (two register edges).
    r4_out = circuit.add_net("r4_out", w)
    circuit.add_register("R4", a_out, r4_out)
    d_out = circuit.add_net("d_out", w)
    circuit.add_block("D", [r4_out], [d_out])
    r5_out = circuit.add_net("r5_out", w)
    circuit.add_register("R5", d_out, r5_out)

    # URFS branch 2: C -> R6 -> E -> G -> H (one register edge).
    r6_out = circuit.add_net("r6_out", w)
    circuit.add_register("R6", c_out, r6_out)
    e_out = circuit.add_net("e_out", w)
    circuit.add_block("E", [r6_out], [e_out])
    g_out = circuit.add_net("g_out", w)
    circuit.add_block("G", [e_out], [g_out])

    # B -> R2 -> (vacuous) -> R3 -> H: register-to-register chain.
    r2_out = circuit.add_net("r2_out", w)
    circuit.add_register("R2", b_out, r2_out)
    r3_out = circuit.add_net("r3_out", w)
    circuit.add_register("R3", r2_out, r3_out)

    # The F <-> H cycle, one register edge each way.
    r8_out = circuit.add_net("r8_out", w)   # F -> R8 -> H
    r7_out = circuit.add_net("r7_out", w)   # H -> R7 -> F
    f_out = circuit.add_net("f_out", w)
    circuit.add_block("F", [r7_out], [f_out])
    circuit.add_register("R8", f_out, r8_out)

    h_to_f = circuit.add_net("h_to_f", w)
    h_to_po = circuit.add_net("h_to_po", w)
    circuit.add_block(
        "H", [r5_out, g_out, r3_out, r8_out], [h_to_f, h_to_po]
    )
    circuit.add_register("R7", h_to_f, r7_out)
    po = circuit.add_net("po", w)
    circuit.add_register("R9", h_to_po, po)
    circuit.mark_output(po)
    return circuit


def figure4() -> RTLCircuit:
    """Figure 4 / Example 1: the partial-scan vs BIBS comparison circuit.

    Reconstructed so that the paper's reported solutions hold exactly:

    * minimal partial scan converts R3 and R9 (the two narrow 4-bit
      registers on the short C1->C3 and C2->C3 paths);
    * BIBS must convert R1, R3, R6, R7, R8, R9 (six registers), yielding
      two balanced BISTable kernels tested in two sessions — kernel 1
      (C1, C2, C4) with R1 as TPG, kernel 2 (C3) with R6 as SA.

    Paths from C1 to C3 have sequential lengths 1 (via R3), 2 (via R7/R8)
    and 3 (via R5, C4, R9), so the circuit is unbalanced as stated.
    """
    circuit = RTLCircuit("figure4")
    wide, narrow = 8, 4
    pi = circuit.new_input("pi", wide)
    r1_out = circuit.add_net("r1_out", wide)
    circuit.add_register("R1", pi, r1_out)

    c1_out = circuit.add_net("c1_out", wide)
    c1_narrow = circuit.add_net("c1_narrow", narrow)
    circuit.add_block("C1", [r1_out], [c1_out, c1_narrow])
    # The wide output reaches C2 over two parallel registers (so no single
    # register cut can disconnect the long paths); the narrow output is the
    # short C1 -> R3 -> C3 path.
    r2_out = circuit.add_net("r2_out", wide)
    circuit.add_register("R2", c1_out, r2_out)
    r4_out = circuit.add_net("r4_out", wide)
    circuit.add_register("R4", c1_out, r4_out)
    r3_out = circuit.add_net("r3_out", narrow)
    circuit.add_register("R3", c1_narrow, r3_out)

    mid = 5
    c2_mid = circuit.add_net("c2_mid", mid)
    c2_out = circuit.add_net("c2_out", wide)
    circuit.add_block("C2", [r2_out, r4_out], [c2_mid, c2_out])
    # C2 reaches C3 directly through R7 and R8 (length 2 from C1) and
    # through R5 -> C4 -> R9 (length 3 from C1).
    r7_out = circuit.add_net("r7_out", mid)
    circuit.add_register("R7", c2_mid, r7_out)
    r8_out = circuit.add_net("r8_out", mid)
    circuit.add_register("R8", c2_mid, r8_out)
    r5_out = circuit.add_net("r5_out", wide)
    circuit.add_register("R5", c2_out, r5_out)

    c4_narrow = circuit.add_net("c4_narrow", narrow)
    circuit.add_block("C4", [r5_out], [c4_narrow])
    r9_out = circuit.add_net("r9_out", narrow)
    circuit.add_register("R9", c4_narrow, r9_out)

    c3_out = circuit.add_net("c3_out", wide)
    circuit.add_block("C3", [r3_out, r9_out, r7_out, r8_out], [c3_out])
    po = circuit.add_net("po", wide)
    circuit.add_register("R6", c3_out, po)
    circuit.mark_output(po)
    return circuit

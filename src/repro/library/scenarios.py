"""Standing benchmark/regression scenarios as lowered netlists.

The engine's committed benchmark (``benchmarks/record.py``), the golden
coverage-regression corpus (``tests/fixtures/golden_coverage``) and the
kernel/executor cross-product equivalence tests all need the *same*
circuits, lowered the same way — a scenario that drifts between them
would let a benchmark claim ride on a netlist the regression suite never
pins.  This module is that single source: each builder returns a fresh
:class:`~repro.netlist.netlist.Netlist` for one named scenario.

The standing set brackets the engine's operating range:

``c3a2m_kernel``
    The paper's c3a2m multiplier kernel (Table 1/2): a large fault
    universe where the vectorised kernel and process sharding pay.
``mac4_kernel``
    A 4-bit multiply-accumulate kernel: small enough that dispatch
    overhead dominates and the packed serial path wins.
``figure4_kernel`` / ``figure9_kernel``
    The paper's Figure 4 and Figure 9 example circuits, BIBS-partitioned
    and lowered — the golden corpus's small, human-checkable anchors.
``synth20k_kernel``
    A synthetic ~20k-gate array multiplier built from
    :mod:`repro.netlist.builders` — an order of magnitude beyond the
    paper's kernels, sized so vectorisation and multi-job sharding are
    measured where they matter.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.bibs import make_bibs_testable
from repro.core.flow import lower_kernel_to_netlist
from repro.core.ka85 import make_ka_testable
from repro.datapath.compiler import Add, Mul, Var, compile_datapath
from repro.datapath.filters import c3a2m
from repro.graph.build import build_circuit_graph
from repro.library.figures import figure4
from repro.library.ka_example import figure9
from repro.netlist.builders import array_multiplier
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist


def attach_generic_expanders(circuit) -> None:
    """Give structural blocks a deterministic gate-level behaviour.

    The paper's Figure 4/Figure 9 circuits are register-transfer sketches:
    their combinational blocks carry no gate expander, so they cannot be
    lowered as-is.  Each output bit becomes XOR(AND(a, b), c) over a
    rotating selection of input bits — every block mixes its inputs, the
    lowered kernels get a non-trivial fault population, and the expansion
    is a pure function of the block shape, so golden fixtures stay stable.
    """

    def make_expander(out_widths):
        def expander(netlist, inputs, prefix):
            flat = [bit for group in inputs for bit in group]
            outputs = []
            for position, width in enumerate(out_widths):
                bits = []
                for i in range(width):
                    a = flat[(position + i) % len(flat)]
                    b = flat[(position + 2 * i + 1) % len(flat)]
                    c = flat[(3 * position + i + 2) % len(flat)]
                    conj = netlist.add_gate(
                        GateType.AND, [a, b], name=f"{prefix}_a{position}_{i}"
                    )
                    bits.append(netlist.add_gate(
                        GateType.XOR, [conj, c], name=f"{prefix}_x{position}_{i}"
                    ))
                outputs.append(bits)
            return outputs

        return expander

    for block in circuit.blocks.values():
        if block.gate_expander is None:
            widths = [circuit.nets[n].width for n in block.output_nets]
            block.gate_expander = make_expander(widths)


def c3a2m_kernel() -> Netlist:
    """The c3a2m multiplier kernel, lowered — the large standing scenario."""
    compiled = c3a2m()
    design = make_ka_testable(build_circuit_graph(compiled.circuit)).design
    kernel = next(
        k for k in design.kernels
        if any(b.startswith("M") for b in k.logic_blocks)
    )
    return lower_kernel_to_netlist(compiled.circuit, kernel)


def mac4_kernel() -> Netlist:
    """A 4-bit multiply-accumulate kernel — the small-kernel scenario.

    Small enough that per-round work is dominated by dispatch overhead:
    the cell where the thread and serial backends should beat the
    process pool, and where the packed kernel should beat vec.
    """
    compiled = compile_datapath(
        [("o", Add(Mul(Var("a"), Var("b")), Var("c")))], "mac4", width=4
    )
    design = make_bibs_testable(build_circuit_graph(compiled.circuit))
    kernel = next(k for k in design.kernels if k.logic_blocks)
    return lower_kernel_to_netlist(compiled.circuit, kernel)


def figure4_kernel() -> Netlist:
    """The paper's Figure 4 circuit, BIBS-partitioned, first logic kernel."""
    circuit = figure4()
    attach_generic_expanders(circuit)
    design = make_bibs_testable(build_circuit_graph(circuit))
    kernel = next(k for k in design.kernels if k.logic_blocks)
    return lower_kernel_to_netlist(circuit, kernel)


def figure9_kernel() -> Netlist:
    """The paper's Figure 9 circuit, BIBS-partitioned, first logic kernel."""
    circuit = figure9()
    attach_generic_expanders(circuit)
    design = make_bibs_testable(build_circuit_graph(circuit))
    kernel = next(k for k in design.kernels if k.logic_blocks)
    return lower_kernel_to_netlist(circuit, kernel)


def synth20k_kernel() -> Netlist:
    """A ~20k-gate synthetic scenario: one wide array multiplier.

    60x60 unsigned multiplication is ≈21k gates of partial products and
    carry-save adders — an order of magnitude beyond the paper's kernels.
    The benchmark samples its collapsed fault universe (see
    ``benchmarks/record.py``) so a cell still completes in seconds.
    """
    netlist = Netlist("synth20k")
    a = netlist.new_inputs(60, "a")
    b = netlist.new_inputs(60, "b")
    for net in array_multiplier(netlist, a, b, name="mul"):
        netlist.mark_output(net)
    return netlist


#: Scenario registry: name -> netlist builder.  Order is the presentation
#: order used by the benchmark snapshot and the golden corpus.
SCENARIOS: Dict[str, Callable[[], Netlist]] = {
    "c3a2m_kernel": c3a2m_kernel,
    "mac4_kernel": mac4_kernel,
    "figure4_kernel": figure4_kernel,
    "figure9_kernel": figure9_kernel,
    "synth20k_kernel": synth20k_kernel,
}

"""Full BIST session simulation: TPG drives, circuit runs, MISRs compress.

This is the system the paper's hardware would actually execute: the
kernel's input registers are reconfigured as the SC_TPG/MC_TPG pattern
generator, the circuit operates for N cycles, and every SA register folds
its input words into a signature.  A fault is *detected by the session* iff
at least one SA signature differs from the fault-free (golden) signature —
the practical notion behind Table 2's fault-coverage rows, including MISR
aliasing, which this module also measures empirically.

The fault-free (golden) signatures are memoized through the engine's
:class:`~repro.engine.cache.GoldenCache`, so repeated sessions on the same
kernel/TPG/seed skip the golden machine entirely; and
:meth:`BISTSession.pattern_coverage` routes the session's stimulus through
:func:`repro.engine.simulate` for per-pattern (aliasing-free) coverage,
optionally sharded over worker processes.  :class:`SessionResult` now
lives in :mod:`repro.results`; the import here is a compatibility shim.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.bilbo.misr import MISR
from repro.bist.gatesim import MachineFault, SequentialGateSimulator
from repro.core.kernels import Kernel
from repro.engine.cache import GoldenCache
from repro.errors import SimulationError
from repro.faultsim.collapse import collapse_faults
from repro.faultsim.faults import Fault
from repro.results import SessionResult  # noqa: F401  (compatibility shim)
from repro.rtl.circuit import RTLCircuit
from repro.tpg.design import TPGDesign
from repro.tpg.mc_tpg import mc_tpg

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.config import RunConfig
    from repro.guard.budget import Budget
    from repro.guard.cancel import CancelToken


class BISTSession:
    """One kernel's self-test session.

    Parameters
    ----------
    circuit:
        The full RTL circuit (blocks need gate expanders).
    kernel:
        The kernel under test (its TPG registers are driven by the TPG,
        its SA registers compress their input nets).
    tpg:
        The pattern generator; defaults to MC_TPG on the kernel's spec.
    seed:
        TPG seed (non-zero).
    cache:
        Golden-run cache for fault-free signatures; defaults to a private
        per-session cache so repeated :meth:`run` calls with the same
        cycle count reuse the golden machine.  Pass a shared
        :class:`~repro.engine.cache.GoldenCache` to pool across sessions.
    check:
        When True (the default) the kernel structure and the TPG design
        are linted before anything is simulated, raising a structured
        :class:`~repro.errors.LintError` on violations (cyclic kernel,
        unbalanced paths, non-primitive polynomial, ...).  ``check=False``
        skips the pre-flight; session results are identical either way.
    """

    def __init__(
        self,
        circuit: RTLCircuit,
        kernel: Kernel,
        tpg: Optional[TPGDesign] = None,
        seed: int = 1,
        cache: Optional[GoldenCache] = None,
        check: bool = True,
    ):
        self.circuit = circuit
        self.kernel = kernel
        self.spec = kernel.to_kernel_spec()
        self.tpg = tpg if tpg is not None else mc_tpg(self.spec)
        if check:
            from repro.lint.runner import preflight_session

            preflight_session(kernel, self.tpg)
        self.seed = seed
        self.cache = cache if cache is not None else GoldenCache()
        self.simulator = SequentialGateSimulator(circuit)
        for name in kernel.sa_registers:
            if name not in circuit.registers:
                raise SimulationError(f"unknown SA register {name}")
        self._sa_input_bits = {
            name: self.simulator.register_in_bits[name]
            for name in kernel.sa_registers
        }
        # Decouple each MISR from the TPG: with the default table polynomial
        # the error streams of TPG-register faults (linear images of the
        # m-sequence) cancel systematically in the signature over
        # near-period windows — measured ~45% aliasing versus ~8% with the
        # reciprocal polynomial (see benchmarks/test_bist_session.py).
        from repro.tpg.polynomials import (
            alternate_primitive_polynomial,
            primitive_polynomial,
        )

        self._misrs = {
            name: MISR(
                width,
                alternate_primitive_polynomial(width, primitive_polynomial(width)),
            )
            for name, width in kernel.sa_registers.items()
        }

    def recommended_cycles(self) -> int:
        """A session length avoiding period-aligned signature cancellation.

        Compressing over an integer number of TPG periods makes the error
        streams of faults linearly coupled to the m-sequence sum to zero in
        the MISR (measured: ~20-26% aliasing at 1.0x/2.0x the period versus
        ~0-2% at 0.5x/1.5x on the 4-bit MAC kernel).  The functionally
        exhaustive 2^M-1+d window is exactly one period plus the flush, so
        the session re-applies half a period more to break the alignment.
        """
        period = (1 << self.tpg.lfsr_stages) - 1
        return self.tpg.test_time() + period // 2

    # --------------------------------------------------------------- faults

    def fault_universe(self) -> List[Fault]:
        """Collapsed stuck-at faults of the expanded gate netlist."""
        representatives, _ = collapse_faults(self.simulator.netlist)
        return representatives

    def kernel_fault_universe(self) -> List[Fault]:
        """Faults the session can possibly test: those on nets both driven
        (transitively) by the TPG registers and observed (transitively) by
        an SA register, traversing *through* the kernel's internal
        registers.  Faults outside this cone — raw PI nets held constant
        during test, logic feeding only dead register bits — are another
        kernel's or test mode's responsibility."""
        observable = self._fanin_nets(
            [net for bits in self._sa_input_bits.values() for net in bits]
        )
        controllable = self._fanout_nets(
            [
                net
                for name in self.kernel.tpg_registers
                for net in self.simulator.register_out_bits[name]
            ]
        )
        cone = observable & controllable
        return [f for f in self.fault_universe() if f.net in cone]

    def _register_hops(self):
        """(output bit -> input bit, input bit -> output bit) maps for
        internal registers (TPG registers are overridden every cycle, so
        nothing propagates through them)."""
        out_to_in: Dict[int, int] = {}
        in_to_out: Dict[int, int] = {}
        for name, out_bits in self.simulator.register_out_bits.items():
            if name in self.kernel.tpg_registers:
                continue
            in_bits = self.simulator.register_in_bits[name]
            for o, i in zip(out_bits, in_bits):
                out_to_in[o] = i
                in_to_out[i] = o
        return out_to_in, in_to_out

    def _fanin_nets(self, nets) -> set:
        netlist = self.simulator.netlist
        out_to_in, _ = self._register_hops()
        seen: set = set()
        stack = list(nets)
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            driver = netlist.driver_of(net)
            if driver is not None:
                stack.extend(netlist.gates[driver].inputs)
            elif net in out_to_in:
                stack.append(out_to_in[net])
        return seen

    def _fanout_nets(self, nets) -> set:
        netlist = self.simulator.netlist
        _, in_to_out = self._register_hops()
        fanout = netlist.fanout_map()
        seen: set = set()
        stack = list(nets)
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            for gate_index in fanout.get(net, ()):
                stack.append(netlist.gates[gate_index].output)
            if net in in_to_out:
                stack.append(in_to_out[net])
        return seen

    # -------------------------------------------------------------- running

    def _pi_defaults(self) -> Dict[str, int]:
        return {
            self.circuit.nets[n].name: 0 for n in self.circuit.primary_inputs
        }

    def _golden_key(self, cycles: int, streams: Dict[str, List[int]]) -> Tuple:
        """Content key for the cached golden signatures.

        Hashes the actual TPG stream (not the TPG object) so any generator
        producing the same stimulus shares the entry, and differing ones
        can never collide.
        """
        stream_digest = hashlib.sha256(
            repr(sorted((name, tuple(s)) for name, s in streams.items())).encode()
        ).hexdigest()
        return (
            "session-golden",
            self.simulator.netlist.fingerprint(),
            tuple(sorted(self.kernel.sa_registers)),
            cycles,
            stream_digest,
        )

    def golden_signatures(self, cycles: int) -> Dict[str, int]:
        """Fault-free MISR signatures for a session of ``cycles`` cycles.

        Memoized in the session's golden-run cache: the fault-free machine
        is simulated once per (kernel, stimulus, length), however many
        times :meth:`run` or :meth:`aliasing_study` need it.
        """
        streams = self.tpg.register_streams(cycles, seed=self.seed)
        return self._golden_signatures(cycles, streams)

    def _golden_signatures(
        self, cycles: int, streams: Dict[str, List[int]]
    ) -> Dict[str, int]:
        key = self._golden_key(cycles, streams)
        cached = self.cache.get(key)
        if cached is not None:
            return dict(cached)
        from repro import telemetry

        with telemetry.span(
            "session.golden_signatures",
            kernel=self.kernel.name, cycles=cycles,
        ):
            return self._compute_golden_signatures(cycles, streams, key)

    def _compute_golden_signatures(
        self, cycles: int, streams: Dict[str, List[int]], key: Tuple
    ) -> Dict[str, int]:
        pi_defaults = self._pi_defaults()
        tpg_registers = set(self.kernel.tpg_registers)
        misr_states = {name: 0 for name in self._misrs}

        def observe(t: int, values: Dict[int, int]) -> None:
            for name, bits in self._sa_input_bits.items():
                word = self.simulator.machine_word(values, bits, 0)
                misr_states[name] = self._misrs[name]._lfsr.step(misr_states[name]) ^ word

        self.simulator.run(
            cycles,
            lambda t: pi_defaults,
            machines=1,
            forced_registers=lambda t: {
                name: streams[name][t] for name in tpg_registers
            },
            observe=observe,
        )
        golden = dict(misr_states)
        self.cache.put(key, dict(golden))
        return golden

    def run(
        self,
        cycles: int,
        faults: Sequence[Fault] = (),
        machines_per_pass: int = 64,
        budget: Optional["Budget"] = None,
        cancel: Optional["CancelToken"] = None,
        config: Optional["RunConfig"] = None,
    ) -> SessionResult:
        """Run the session against a fault list.

        The golden machine comes from the cached :meth:`golden_signatures`
        run, so every pass packs ``machines_per_pass`` *faulty* machines.

        ``budget`` / ``cancel`` (see :mod:`repro.guard`) bound the run
        cooperatively at machine-pass boundaries: a tripped deadline or
        cancellation stops after the current pass and returns a
        ``partial=True`` result covering the faults simulated so far, with
        a structured ``stop_reason``.  A ``max_patterns`` budget caps the
        session's cycle count up front.  A :class:`repro.exec.RunConfig`
        supplies both when the explicit arguments are absent, so one
        config object governs a whole flow (the session itself is a
        sequential gate-level loop — the executor and retry policy in the
        config apply to :meth:`pattern_coverage`, not here).
        """
        from repro import telemetry

        if config is not None:
            budget = budget if budget is not None else config.budget
            cancel = cancel if cancel is not None else config.cancel
        with telemetry.span(
            "session.run",
            kernel=self.kernel.name, cycles=cycles, n_faults=len(faults),
        ):
            return self._run(cycles, faults, machines_per_pass, budget, cancel)

    def _run(
        self,
        cycles: int,
        faults: Sequence[Fault],
        machines_per_pass: int,
        budget: Optional["Budget"] = None,
        cancel: Optional["CancelToken"] = None,
    ) -> SessionResult:
        from repro.guard import STOP_PATTERNS, RunGuard

        guard = RunGuard.create(budget, cancel)
        capped = False
        if budget is not None and budget.max_patterns is not None:
            capped = budget.max_patterns < cycles
            cycles = min(cycles, budget.max_patterns)
        streams = self.tpg.register_streams(cycles, seed=self.seed)
        pi_defaults = self._pi_defaults()
        tpg_registers = set(self.kernel.tpg_registers)

        def drive(t: int) -> Dict[str, int]:
            return pi_defaults

        def forced(t: int) -> Dict[str, int]:
            return {name: streams[name][t] for name in tpg_registers}

        golden = self._golden_signatures(cycles, streams)
        fault_signatures: Dict[Fault, Dict[str, int]] = {}
        pending = list(faults)
        stop_reason: Optional[str] = None
        while pending:
            if guard is not None:
                # Deadline / cancellation are checked between machine
                # passes; the pattern budget was applied to ``cycles``
                # up front, so it never fires here.
                stop_reason = guard.should_stop(0, 0)
                if stop_reason is not None:
                    break
            chunk = pending[:machines_per_pass]
            pending = pending[machines_per_pass:]
            machine_faults = [
                MachineFault(i, fault.net, fault.stuck_at)
                for i, fault in enumerate(chunk)
            ]
            machines = len(chunk)
            misr_states: Dict[str, List[int]] = {
                name: [0] * machines for name in self._misrs
            }

            def observe(t: int, values: Dict[int, int]) -> None:
                for name, bits in self._sa_input_bits.items():
                    misr = self._misrs[name]
                    states = misr_states[name]
                    for machine in range(machines):
                        word = self.simulator.machine_word(values, bits, machine)
                        states[machine] = misr._lfsr.step(states[machine]) ^ word

            self.simulator.run(
                cycles,
                drive,
                machines=machines,
                faults=machine_faults,
                forced_registers=forced,
                observe=observe,
            )
            for i, fault in enumerate(chunk):
                fault_signatures[fault] = {
                    name: misr_states[name][i] for name in self._misrs
                }

        if stop_reason is None and capped:
            # The pattern budget clipped the session length: every fault
            # was processed, but over fewer cycles than requested.
            stop_reason = STOP_PATTERNS
        result = SessionResult(
            cycles,
            golden,
            fault_signatures,
            partial=stop_reason is not None,
            stop_reason=stop_reason,
        )
        for fault, signatures in fault_signatures.items():
            if signatures != golden:
                result.detected.append(fault)
            else:
                result.undetected.append(fault)
        return result

    def pattern_coverage(
        self,
        max_patterns: Optional[int] = None,
        faults: Optional[Sequence[Fault]] = None,
        *,
        config: Optional["RunConfig"] = None,
        cache: Optional[GoldenCache] = None,
        **options,
    ):
        """Per-pattern kernel fault coverage under the session's stimulus.

        Lowers the kernel to a combinational netlist, replays the TPG
        register streams as explicit patterns and routes the run through
        :func:`repro.engine.simulate` — measuring what the patterns detect
        *before* MISR compression (so the gap to :meth:`run`'s coverage is
        exactly the aliasing loss).  ``faults`` defaults to the lowered
        netlist's collapsed universe (its net ids, not the sequential
        simulator's).

        ``config`` (a :class:`repro.exec.RunConfig`) carries the execution
        backend, shard count, retry policy, checkpointing, budget and
        cancellation; the stimulus *length* stays this method's own
        ``max_patterns`` argument (default :meth:`recommended_cycles`) —
        the session decides how many cycles it generates, the config only
        bounds and shapes their simulation.  The historical keyword
        surface (``jobs=``, ``checkpoint_dir=``, ``budget=``, ...) is
        accepted via the engine's deprecation shim, which warns once per
        process.
        """
        from repro import telemetry
        from repro.core.flow import lower_kernel_to_netlist
        from repro.engine import simulate
        from repro.exec.config import runconfig_from_legacy

        if config is not None and options:
            raise SimulationError(
                "pattern_coverage() takes either config=RunConfig(...) or "
                "the legacy keyword options, not both (got config plus: "
                f"{', '.join(sorted(options))})"
            )
        if config is None:
            config = runconfig_from_legacy(options)
        n = max_patterns if max_patterns is not None else self.recommended_cycles()
        config = config.replace(max_patterns=n)
        from repro.faultsim.patterns import SequencePatternSource

        with telemetry.span(
            "session.pattern_coverage",
            kernel=self.kernel.name,
            max_patterns=n,
            jobs=config.execution.effective_jobs,
        ):
            netlist = lower_kernel_to_netlist(self.circuit, self.kernel)
            streams = self.tpg.register_streams(n, seed=self.seed)
            names = sorted(self.kernel.tpg_registers)
            widths = [self.circuit.registers[name].width for name in names]
            patterns = []
            for t in range(n):
                bits: List[int] = []
                for name, width in zip(names, widths):
                    word = streams[name][t]
                    bits.extend(
                        (word >> position) & 1 for position in range(width)
                    )
                patterns.append(tuple(bits))
            source = SequencePatternSource(patterns)
            return simulate(
                netlist,
                faults,
                source,
                config=config,
                cache=cache if cache is not None else self.cache,
            )

    def aliasing_study(
        self, cycles: int, faults: Sequence[Fault]
    ) -> Tuple[int, int]:
        """(faults detected per-cycle but aliased in the signature, total
        per-cycle detected) — the empirical MISR aliasing rate."""
        streams = self.tpg.register_streams(cycles, seed=self.seed)
        pi_defaults = self._pi_defaults()
        tpg_registers = set(self.kernel.tpg_registers)

        per_cycle_detected: Dict[Fault, bool] = {f: False for f in faults}
        session = self.run(cycles, faults)

        # Re-run observing raw SA inputs for direct comparison.
        chunk = list(faults)
        machine_faults = [
            MachineFault(i + 1, fault.net, fault.stuck_at)
            for i, fault in enumerate(chunk)
        ]
        machines = len(chunk) + 1

        def observe(t: int, values: Dict[int, int]) -> None:
            for name, bits in self._sa_input_bits.items():
                golden_word = self.simulator.machine_word(values, bits, 0)
                for i, fault in enumerate(chunk):
                    if per_cycle_detected[fault]:
                        continue
                    word = self.simulator.machine_word(values, bits, i + 1)
                    if word != golden_word:
                        per_cycle_detected[fault] = True

        self.simulator.run(
            cycles,
            lambda t: pi_defaults,
            machines=machines,
            faults=machine_faults,
            forced_registers=lambda t: {
                name: streams[name][t] for name in tpg_registers
            },
            observe=observe,
        )
        observable = [f for f, hit in per_cycle_detected.items() if hit]
        signature_detected = set(session.detected)
        aliased = [f for f in observable if f not in signature_detected]
        return len(aliased), len(observable)

"""Signature-based fault diagnosis (the BIST follow-up to detection).

After a self-test fails, the observed signatures themselves carry
diagnostic information: a *fault dictionary* built by simulating each
modelled fault's session maps every distinct signature combination to its
candidate fault set.  Resolution is limited by MISR compression — faults
whose full response streams differ can still share a signature — so the
dictionary also reports its equivalence-class structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bist.session import BISTSession
from repro.faultsim.faults import Fault

Signature = Tuple[Tuple[str, int], ...]


def _freeze(signatures: Dict[str, int]) -> Signature:
    return tuple(sorted(signatures.items()))


@dataclass
class FaultDictionary:
    """Signature -> candidate-fault lookup for one BIST session setup."""

    cycles: int
    golden: Signature
    classes: Dict[Signature, List[Fault]] = field(default_factory=dict)

    @property
    def n_faults(self) -> int:
        return sum(len(members) for members in self.classes.values())

    @property
    def n_classes(self) -> int:
        return len(self.classes)

    def candidates(self, observed: Dict[str, int]) -> List[Fault]:
        """Faults consistent with an observed signature set.

        The golden signature returns an empty list (no modelled fault);
        an unknown signature also returns [] — the failure is outside the
        modelled fault universe.
        """
        key = _freeze(observed)
        if key == self.golden:
            return []
        return list(self.classes.get(key, []))

    def diagnostic_resolution(self) -> float:
        """Average candidate-set size over faulty classes (1.0 = perfect)."""
        sizes = [len(members) for members in self.classes.values()]
        return sum(sizes) / len(sizes) if sizes else 0.0

    def distinguishable_fraction(self) -> float:
        """Fraction of faults uniquely identified by their signature."""
        unique = sum(
            len(members) for members in self.classes.values()
            if len(members) == 1
        )
        return unique / self.n_faults if self.n_faults else 1.0


def build_fault_dictionary(
    session: BISTSession,
    cycles: int,
    faults: Optional[Sequence[Fault]] = None,
) -> FaultDictionary:
    """Simulate every fault's session and index the signatures.

    Undetected faults (signature == golden) are excluded from the
    dictionary: they are indistinguishable from a fault-free device by
    this session.
    """
    if faults is None:
        faults = session.kernel_fault_universe()
    result = session.run(cycles, faults=faults)
    dictionary = FaultDictionary(cycles, _freeze(result.golden_signatures))
    for fault in result.detected:
        key = _freeze(result.fault_signatures[fault])
        dictionary.classes.setdefault(key, []).append(fault)
    return dictionary

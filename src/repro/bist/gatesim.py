"""Gate-level sequential simulation with multi-machine fault injection.

The most faithful layer of the reproduction: the circuit's blocks are
expanded to gates once, registers hold state across cycles, and up to W
*machines* run in parallel in one packed pass — bit ``m`` of every net
carries machine ``m``'s value.  Machine 0 is conventionally the fault-free
(golden) circuit; each other machine carries one permanent stuck-at fault,
injected by masking the faulted net's packed value after its driver
evaluates.  This is what lets a BIST session compute a golden signature and
dozens of faulty signatures in a single sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.netlist.evaluate import Evaluator
from repro.netlist.gates import evaluate_gate
from repro.netlist.netlist import Netlist
from repro.rtl.circuit import RTLCircuit


@dataclass(frozen=True)
class MachineFault:
    """A stuck-at fault bound to one simulation machine."""

    machine: int
    net: int       # net id in the expanded netlist
    stuck_at: int


class SequentialGateSimulator:
    """Cycle-accurate gate-level simulator for an RTL circuit.

    The expanded combinational netlist treats circuit PIs *and* register
    outputs as inputs; register inputs are captured at each clock edge.
    """

    def __init__(self, circuit: RTLCircuit):
        circuit.validate()
        self.circuit = circuit
        self.netlist = Netlist(f"{circuit.name}:gates")
        drivers = circuit.drivers()
        values: Dict[int, List[int]] = {}

        self.pi_bits: Dict[str, List[int]] = {}
        for net_index in circuit.primary_inputs:
            net = circuit.nets[net_index]
            bits = self.netlist.new_inputs(net.width, prefix=f"{net.name}_")
            values[net_index] = bits
            self.pi_bits[net.name] = bits

        self.register_out_bits: Dict[str, List[int]] = {}
        for register in circuit.registers.values():
            bits = self.netlist.new_inputs(
                register.width, prefix=f"{register.name}_q"
            )
            values[register.output_net] = bits
            self.register_out_bits[register.name] = bits

        def resolve(net_index: int) -> List[int]:
            if net_index in values:
                return values[net_index]
            driver = drivers[net_index]
            if driver.kind != "block":
                raise SimulationError(
                    f"cannot resolve net {circuit.nets[net_index].name}"
                )
            block = circuit.blocks[driver.name]
            if block.gate_expander is None:
                raise SimulationError(f"block {block.name} has no gate expander")
            inputs = [resolve(n) for n in block.input_nets]
            outputs = block.gate_expander(self.netlist, inputs, block.name)
            for out_net, out_bits in zip(block.output_nets, outputs):
                values[out_net] = list(out_bits)
            return values[net_index]

        for net_index in range(len(circuit.nets)):
            resolve(net_index)

        self.register_in_bits: Dict[str, List[int]] = {
            register.name: values[register.input_net]
            for register in circuit.registers.values()
        }
        self.po_bits: Dict[str, List[int]] = {
            circuit.nets[n].name: values[n] for n in circuit.primary_outputs
        }
        self.net_bits: Dict[str, List[int]] = {
            circuit.nets[i].name: values[i] for i in range(len(circuit.nets))
        }
        self._evaluator = Evaluator(self.netlist)
        self._order = self._evaluator.order

    # ------------------------------------------------------------- running

    def run(
        self,
        cycles: int,
        drive: Callable[[int], Dict[str, int]],
        machines: int = 1,
        faults: Sequence[MachineFault] = (),
        forced_registers: Optional[Callable[[int], Dict[str, int]]] = None,
        observe: Optional[Callable[[int, Dict[int, int]], None]] = None,
        reset_state: int = 0,
        packed_register_state: Optional[Dict[str, List[int]]] = None,
    ) -> List[Dict[str, int]]:
        """Simulate ``cycles`` clock cycles with ``machines`` parallel copies.

        ``drive(t)`` returns PI words for cycle t (applied to every machine).
        ``forced_registers(t)`` optionally overrides named registers' output
        words for cycle t (how a TPG drives kernel input registers).
        ``faults`` pins nets of individual machines to stuck values.
        ``observe(t, net_values)`` sees every packed net value per cycle.
        ``packed_register_state`` initialises registers with explicit packed
        per-bit values (per machine), overriding ``reset_state`` — used by
        the CSTP session, whose ring state differs between machines.

        Returns the per-cycle PO words of machine 0.
        """
        if machines < 1 or machines > 1 << 16:
            raise SimulationError("1..65536 machines supported")
        for fault in faults:
            if not 0 <= fault.machine < machines:
                raise SimulationError("fault bound to unknown machine")
        mask = (1 << machines) - 1
        # Per-net fault masks: clear the machine's bit, then OR its value.
        clear: Dict[int, int] = {}
        force: Dict[int, int] = {}
        for fault in faults:
            bit = 1 << fault.machine
            clear[fault.net] = clear.get(fault.net, 0) | bit
            if fault.stuck_at:
                force[fault.net] = force.get(fault.net, 0) | bit

        def apply_fault(net: int, value: int) -> int:
            c = clear.get(net)
            if c is None:
                return value
            return (value & ~c) | force.get(net, 0)

        if packed_register_state is not None:
            state = {
                name: [word & mask for word in packed_register_state[name]]
                for name in self.register_out_bits
            }
        else:
            state = {
                name: [
                    (mask if (reset_state >> i) & 1 else 0)
                    for i in range(len(bits))
                ]
                for name, bits in self.register_out_bits.items()
            }
        gates = self.netlist.gates
        trace: List[Dict[str, int]] = []

        for t in range(cycles):
            values: Dict[int, int] = {}
            pi_words = drive(t)
            for name, bits in self.pi_bits.items():
                word = pi_words[name]
                for position, net in enumerate(bits):
                    packed = mask if (word >> position) & 1 else 0
                    values[net] = apply_fault(net, packed)
            overrides = forced_registers(t) if forced_registers else {}
            for name, bits in self.register_out_bits.items():
                if name in overrides:
                    word = overrides[name]
                    for position, net in enumerate(bits):
                        packed = mask if (word >> position) & 1 else 0
                        values[net] = apply_fault(net, packed)
                else:
                    for position, net in enumerate(bits):
                        values[net] = apply_fault(net, state[name][position])
            for gate_index in self._order:
                gate = gates[gate_index]
                value = evaluate_gate(
                    gate.gtype, [values[n] for n in gate.inputs], mask
                )
                values[gate.output] = apply_fault(gate.output, value)
            # Clock edge: capture register inputs.
            for name, bits in self.register_in_bits.items():
                state[name] = [values[net] for net in bits]
            if observe is not None:
                observe(t, values)
            trace.append(
                {
                    name: sum(
                        ((values[net] >> 0) & 1) << position
                        for position, net in enumerate(bits)
                    )
                    for name, bits in self.po_bits.items()
                }
            )
        return trace

    def machine_word(self, values: Dict[int, int], bits: List[int], machine: int) -> int:
        """Extract one machine's word from packed net values."""
        word = 0
        for position, net in enumerate(bits):
            if (values[net] >> machine) & 1:
                word |= 1 << position
        return word

"""Cycle-accurate BIST execution: gate-level simulation, sessions, signatures."""

from repro.bist.gatesim import MachineFault, SequentialGateSimulator
from repro.bist.session import BISTSession, SessionResult
from repro.bist.diagnosis import FaultDictionary, build_fault_dictionary

__all__ = [
    "SequentialGateSimulator",
    "MachineFault",
    "BISTSession",
    "SessionResult",
    "FaultDictionary",
    "build_fault_dictionary",
]

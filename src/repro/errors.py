"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Structural problem in a gate-level netlist (bad fan-in, unknown net...)."""


class RTLError(ReproError):
    """Structural problem in an RTL circuit description."""


class GraphError(ReproError):
    """Problem constructing or querying a circuit graph."""


class BalanceError(ReproError):
    """A balance requirement was violated (e.g. a kernel is not balanced)."""


class TPGError(ReproError):
    """A test pattern generator could not be constructed or is invalid."""


class SelectionError(ReproError):
    """No valid BILBO-register selection could be found."""


class ScheduleError(ReproError):
    """Test-session scheduling failed."""


class SimulationError(ReproError):
    """Fault simulation was asked to do something impossible."""


class LintError(ReproError):
    """Static design-rule checking found error-severity findings.

    Raised by the :mod:`repro.lint` pre-flight hooks (``engine.simulate``
    and ``BISTSession`` with ``check=True``).  ``findings`` carries the
    offending :class:`repro.lint.Finding` records, witnesses included, so
    callers can render or triage them without re-running the analysis.
    """

    def __init__(self, message: str, findings=()):
        super().__init__(message)
        self.findings = list(findings)

    def payload(self):
        """The structured error document every surface emits for lint failures.

        One mapping shared by ``repro-bist selftest --json``, the
        experiments runner and the ``repro.serve`` HTTP 422 response, so a
        rejected netlist looks the same whether it arrived on the command
        line or over the wire: the rule id, severity and machine-checkable
        witness of every finding, never a bare traceback.
        """
        return {
            "error": "lint",
            "message": str(self),
            "findings": [finding.to_json() for finding in self.findings],
        }

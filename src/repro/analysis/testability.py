"""k-step functional testability classification (Section 2).

The paper: an acyclic circuit is *k-step functionally testable* if every
detectable fault (not altering the circuit's sequential behaviour) has a
detecting test sequence of length k.  Balanced circuits are 1-step
functionally testable (Theorem 1 via BALLAST); an imbalance of j between
some vertex pair forces test sequences of up to j+1 vectors (Figure 1's
circuit is 2-step because its two F-to-C paths differ by one register).

Operationally we classify by structure:  k = 1 + the largest
sequential-length imbalance over all vertex pairs.  Cyclic circuits are not
k-step functionally testable for any bounded k and classify as ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.graph.model import CircuitGraph
from repro.graph.structures import find_urfs_witnesses, is_acyclic, URFSWitness


@dataclass(frozen=True)
class TestabilityReport:
    """Structural testability classification of a circuit graph."""

    acyclic: bool
    balanced: bool
    k_step: Optional[int]  # None for cyclic circuits
    worst_witness: Optional[URFSWitness]

    @property
    def one_step(self) -> bool:
        return self.k_step == 1


def classify(graph: CircuitGraph) -> TestabilityReport:
    """Classify a circuit graph's k-step functional testability."""
    if not is_acyclic(graph):
        return TestabilityReport(False, False, None, None)
    witnesses = find_urfs_witnesses(graph)
    if not witnesses:
        return TestabilityReport(True, True, 1, None)
    worst = max(witnesses, key=lambda w: w.imbalance)
    return TestabilityReport(True, False, 1 + worst.imbalance, worst)


def k_step(graph: CircuitGraph) -> Optional[int]:
    """Just the k of the classification (None for cyclic circuits)."""
    return classify(graph).k_step


def is_one_step_functionally_testable(graph: CircuitGraph) -> bool:
    """True iff the circuit is balanced, hence 1-step (Theorem 1)."""
    return classify(graph).one_step

"""COP random-pattern testability: per-fault detection probabilities.

The statistical half of the static-testability story (the structural half
is :mod:`repro.analysis.scoap`).  Under uniform random patterns, each
net's 1-probability follows from COP signal probabilities
(:func:`repro.faultsim.cop.signal_probabilities`); an error's chance of
reaching a primary output follows from a pin-resolved observability pass;
and a stuck-at fault's single-pattern detection probability is

    P(detect) = P(excite) * P(observe)

with ``P(excite)`` the probability the site carries the value opposite
the stuck one.  The geometric detection model then gives everything the
BIST planner needs *before* any simulation: the expected pattern count
per fault, the predicted coverage-vs-length curve, and — the payoff —
the ranked random-pattern-resistant fault tail that reseeding/ATPG PRs
must target (ROADMAP: beyond pure pseudo-random TPG).

Estimates assume signal independence, so reconvergent fanout makes them
approximate; how approximate is itself a checked artifact — the golden
corpus (``tests/test_testability_golden.py``) pins predicted-vs-measured
coverage deltas per scenario with a committed tolerance contract.  See
``docs/TESTABILITY.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.faultsim.cop import (
    predicted_patterns_for_coverage,
    signal_probabilities,
)
from repro.faultsim.faults import Fault
from repro.netlist.gates import GateType
from repro.netlist.levelize import levelize
from repro.netlist.netlist import Netlist

#: The paper's Table 2 coverage bar: BIBS kernels reach 99.5%+ under
#: pseudo-random patterns.  Predicted coverage below this at the default
#: window is what the ``TB003`` lint rule flags.
DEFAULT_COVERAGE_TARGET = 0.995

#: Default pattern window: the engine's default run length
#: (:data:`repro.exec.config.DEFAULT_MAX_PATTERNS`, 2^16).
DEFAULT_WINDOW = 1 << 16


def pin_observabilities(
    netlist: Netlist,
    probabilities: Optional[Dict[int, float]] = None,
) -> Tuple[Dict[int, float], Dict[Tuple[int, int], float]]:
    """COP observabilities, resolved to stems *and* individual gate pins.

    Returns ``(stem_obs, pin_obs)``: ``stem_obs[net]`` is the
    independence-model union over every sink of the net (gate pins and a
    direct primary-output connection); ``pin_obs[(gate, pin)]`` is the
    probability an error entering that one pin reaches a primary output.
    Branch faults need the pin-level map — a stuck pin is observed only
    through its own gate, not through the stem's other branches.
    """
    if probabilities is None:
        probabilities = signal_probabilities(netlist)
    po = set(netlist.primary_outputs)
    obs: Dict[int, float] = {}
    pin_obs: Dict[Tuple[int, int], float] = {}
    fanout = netlist.fanout_map()
    order = list(reversed(levelize(netlist)))

    def stem_observability(net: int) -> float:
        miss = 0.0 if net in po else 1.0
        for gate_index in fanout.get(net, ()):
            gate = netlist.gates[gate_index]
            for pin, pin_net in enumerate(gate.inputs):
                if pin_net == net:
                    miss *= 1.0 - pin_obs.get((gate_index, pin), 0.0)
        return 1.0 - miss

    for gate_index in order:
        gate = netlist.gates[gate_index]
        out_obs = obs.get(gate.output)
        if out_obs is None:
            out_obs = stem_observability(gate.output)
            obs[gate.output] = out_obs
        base = gate.gtype.base
        for pin, net in enumerate(gate.inputs):
            if base is GateType.AND:
                through = math.prod(
                    probabilities[other]
                    for k, other in enumerate(gate.inputs) if k != pin
                )
            elif base is GateType.OR:
                through = math.prod(
                    1.0 - probabilities[other]
                    for k, other in enumerate(gate.inputs) if k != pin
                )
            else:  # XOR parity and BUF/NOT always propagate a flip
                through = 1.0
            pin_obs[(gate_index, pin)] = out_obs * through

    for net in range(netlist.n_nets):
        if net not in obs:
            obs[net] = stem_observability(net)
    return obs, pin_obs


@dataclass(frozen=True)
class FaultTestability:
    """One fault's static random-pattern testability."""

    fault: Fault
    excitation: float
    observability: float

    @property
    def detection_probability(self) -> float:
        return self.excitation * self.observability

    def expected_patterns(self) -> float:
        """Mean random patterns to first detection (geometric model)."""
        p = self.detection_probability
        return math.inf if p <= 0.0 else 1.0 / p

    def escape_probability(self, n_patterns: int) -> float:
        """Chance the fault survives ``n_patterns`` random patterns."""
        return (1.0 - self.detection_probability) ** n_patterns

    def key(self) -> str:
        """Stable id matching the golden-fixture fault key format."""
        fault = self.fault
        if fault.is_stem:
            return f"{fault.net}:{fault.stuck_at}"
        return f"{fault.net}:{fault.stuck_at}:{fault.gate_index}:{fault.pin}"

    def to_json(self, netlist: Optional[Netlist] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "fault": self.key(),
            "excitation": self.excitation,
            "observability": self.observability,
            "detection_probability": self.detection_probability,
            "expected_patterns": (
                None if self.detection_probability <= 0.0
                else self.expected_patterns()
            ),
        }
        if netlist is not None:
            payload["describe"] = self.fault.describe(netlist)
        return payload


@dataclass
class TestabilityProfile:
    """The static testability picture of one netlist's fault universe.

    Window-free by construction: per-fault probabilities are intrinsic,
    and every windowed question (predicted coverage at N, the resistant
    tail under a TPG window) is answered at query time.
    """

    netlist: Netlist
    faults: List[FaultTestability]

    __test__ = False  # not a pytest class, despite the Test* name

    @property
    def n_faults(self) -> int:
        return len(self.faults)

    def predicted_coverage(self, n_patterns: int) -> float:
        """Expected detected fraction after ``n_patterns`` random patterns."""
        if not self.faults:
            return 1.0
        detected = sum(
            1.0 - entry.escape_probability(n_patterns)
            for entry in self.faults
        )
        return detected / len(self.faults)

    def coverage_curve(
        self, max_patterns: int = DEFAULT_WINDOW, points: int = 16
    ) -> List[Dict[str, float]]:
        """Predicted coverage at geometrically spaced pattern counts."""
        lengths: List[int] = []
        n = 1
        while n < max_patterns and len(lengths) < points - 1:
            lengths.append(n)
            n *= 2
        lengths.append(max_patterns)
        return [
            {"patterns": float(n), "coverage": self.predicted_coverage(n)}
            for n in lengths
        ]

    def random_resistant(self, threshold: float) -> List[FaultTestability]:
        """Faults with detection probability below ``threshold``, ranked
        hardest (lowest probability) first — the tail reseeded-LFSR /
        deterministic-embedding TPG modes must cover."""
        resistant = [
            entry for entry in self.faults
            if entry.detection_probability < threshold
        ]
        resistant.sort(key=lambda e: (e.detection_probability, e.key()))
        return resistant

    def undetectable(self) -> List[FaultTestability]:
        """Faults with detection probability exactly 0 under the model."""
        return [e for e in self.faults if e.detection_probability <= 0.0]

    def expected_patterns_for(self, target: float) -> Optional[int]:
        """Patterns needed for the *expected* coverage to reach ``target``.

        ``None`` when statically unreachable (undetectable faults push the
        ceiling below the target).
        """
        from repro.faultsim.cop import FaultEstimate

        estimates = [
            FaultEstimate(e.fault, e.detection_probability)
            for e in self.faults
        ]
        return predicted_patterns_for_coverage(estimates, target)

    def to_json(
        self,
        *,
        window: int = DEFAULT_WINDOW,
        threshold: Optional[float] = None,
        top: int = 50,
        coverage_target: float = DEFAULT_COVERAGE_TARGET,
    ) -> Dict[str, Any]:
        """A bounded JSON document (full per-fault tables stay in memory).

        ``threshold`` defaults to ``1 / window`` — the probability below
        which a fault is not expected to fall inside the TPG window.
        """
        if threshold is None:
            threshold = 1.0 / window
        resistant = self.random_resistant(threshold)
        return {
            "kind": "testability-profile",
            "circuit": self.netlist.name,
            "n_faults": self.n_faults,
            "window": window,
            "threshold": threshold,
            "predicted_coverage": self.predicted_coverage(window),
            "coverage_target": coverage_target,
            "expected_patterns_to_target":
                self.expected_patterns_for(coverage_target),
            "coverage_curve": self.coverage_curve(window),
            "n_resistant": len(resistant),
            "n_undetectable": len(self.undetectable()),
            "resistant": [
                entry.to_json(self.netlist) for entry in resistant[:top]
            ],
        }


def analyze_netlist(
    netlist: Netlist,
    faults: Optional[Sequence[Fault]] = None,
    *,
    pi_probability: float = 0.5,
) -> TestabilityProfile:
    """Build the :class:`TestabilityProfile` of a netlist's fault list.

    ``faults`` defaults to the equivalence-collapsed universe — the same
    list :func:`repro.engine.simulate` targets, so predicted and measured
    coverage are fractions of the *same* denominator.
    """
    if faults is None:
        from repro.faultsim.collapse import collapse_faults

        faults = collapse_faults(netlist)[0]
    fault_list = list(faults)
    with telemetry.span(
        "analysis.profile", circuit=netlist.name,
        n_gates=len(netlist.gates), n_faults=len(fault_list),
    ):
        probabilities = signal_probabilities(netlist, pi_probability)
        stem_obs, pin_obs = pin_observabilities(netlist, probabilities)
        entries: List[FaultTestability] = []
        for fault in fault_list:
            p1 = probabilities[fault.net]
            excite = p1 if fault.stuck_at == 0 else 1.0 - p1
            if fault.is_stem:
                observe = stem_obs[fault.net]
            else:
                observe = pin_obs.get((fault.gate_index, fault.pin), 0.0)
            entries.append(FaultTestability(fault, excite, observe))
    telemetry.count("analysis.profiles")
    telemetry.count("analysis.faults_profiled", len(entries))
    return TestabilityProfile(netlist, entries)

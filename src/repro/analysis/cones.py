"""Cone extraction: from a kernel subgraph to a TPG :class:`KernelSpec`.

A *cone* is all the logic associated with one output port of a kernel
(Section 4).  For a balanced BISTable kernel each (input register, cone)
pair has a well-defined sequential length, which is exactly the data
SC_TPG/MC_TPG consume.  This module bridges the structural world
(``repro.graph``) to the TPG world (``repro.tpg.design``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import BalanceError
from repro.graph.model import CircuitGraph, Edge
from repro.graph.structures import sequential_path_lengths
from repro.tpg.design import Cone, InputRegister, KernelSpec


def kernel_spec_from_graph(
    kernel_graph: CircuitGraph,
    input_edges: Iterable[Edge],
    output_edges: Iterable[Edge],
    name: str = "kernel",
) -> KernelSpec:
    """Build a generalized-structure spec for one kernel.

    Parameters
    ----------
    kernel_graph:
        The kernel's subgraph (BILBO edges already cut away).
    input_edges:
        BILBO register edges feeding the kernel (their heads are kernel
        vertices); these registers form the TPG.
    output_edges:
        BILBO register edges fed by the kernel (their tails are kernel
        vertices); each is one output port / cone, captured by an SA.

    Raises
    ------
    BalanceError
        If some (input register, output port) pair sees paths of unequal
        sequential length — the kernel is not balanced.
    """
    inputs = sorted(input_edges, key=lambda e: e.register or "")
    outputs = sorted(output_edges, key=lambda e: e.register or "")
    lengths = sequential_path_lengths(kernel_graph)

    registers = tuple(
        InputRegister(edge.register or f"in{edge.index}", edge.weight)
        for edge in inputs
    )

    cones: List[Cone] = []
    for out_edge in outputs:
        depths: Dict[str, int] = {}
        for in_edge in inputs:
            source = in_edge.head
            target = out_edge.tail
            if source == target:
                depth: Optional[int] = 0
            else:
                pair = lengths.get((source, target))
                if pair is None:
                    continue  # cone does not depend on this register
                lo, hi = pair
                if lo != hi:
                    raise BalanceError(
                        f"kernel {name}: paths {source} -> {target} have "
                        f"unequal sequential lengths ({lo} vs {hi})"
                    )
                depth = lo
            depths[in_edge.register or f"in{in_edge.index}"] = depth
        cones.append(Cone(out_edge.register or f"out{out_edge.index}", depths))

    used = {r for cone in cones for r in cone.depths}
    kept = tuple(r for r in registers if r.name in used)
    return KernelSpec(kept, tuple(cones), name)


def cone_dependencies(
    kernel_graph: CircuitGraph,
    input_edges: Iterable[Edge],
    output_edges: Iterable[Edge],
) -> Dict[str, List[str]]:
    """Which input registers each output cone depends on (by register name)."""
    spec = kernel_spec_from_graph(kernel_graph, input_edges, output_edges)
    return {
        cone.name: sorted(cone.depths) for cone in spec.cones
    }

"""Balance analysis (Section 2 / Definition 1).

A synchronous sequential circuit is *balanced* iff it is acyclic and all
directed paths between every vertex pair have the same sequential length.
Equivalently — and this is how we test it in linear time — each weakly
connected component admits a *level potential* ℓ with

    ℓ(head(e)) = ℓ(tail(e)) + s(e)

for every edge e (s = 1 for register edges, 0 for wire edges).  Any path
u→v then has sequential length ℓ(v) - ℓ(u), so all are equal; conversely an
unbalanced pair or a register-bearing cycle makes the constraints
inconsistent.  A failed BFS labelling returns the offending edge as a
witness, which the BIBS selection heuristics consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import BalanceError
from repro.graph.model import CircuitGraph, Edge
from repro.graph.structures import is_acyclic


@dataclass(frozen=True)
class BalanceConflict:
    """Witness of imbalance: an edge whose constraint is inconsistent."""

    edge: Edge
    expected_level: int
    found_level: int

    @property
    def imbalance(self) -> int:
        return abs(self.expected_level - self.found_level)


@dataclass
class BalanceResult:
    """Outcome of the level-potential labelling."""

    levels: Optional[Dict[str, int]]
    conflict: Optional[BalanceConflict]
    acyclic: bool

    @property
    def balanced(self) -> bool:
        return self.acyclic and self.conflict is None


def balance_levels(graph: CircuitGraph) -> BalanceResult:
    """Attempt a consistent level assignment per weakly connected component.

    Levels are normalised so every component's minimum level is 0.
    """
    acyclic = is_acyclic(graph)
    levels: Dict[str, int] = {}
    conflict: Optional[BalanceConflict] = None

    for component in graph.weakly_connected_components():
        start = component[0]
        local: Dict[str, int] = {start: 0}
        queue = [start]
        while queue and conflict is None:
            node = queue.pop()
            for edge in graph.out_edges(node):
                expected = local[node] + edge.sequential_length
                if edge.head not in local:
                    local[edge.head] = expected
                    queue.append(edge.head)
                elif local[edge.head] != expected:
                    conflict = BalanceConflict(edge, expected, local[edge.head])
                    break
            if conflict is not None:
                break
            for edge in graph.in_edges(node):
                expected = local[node] - edge.sequential_length
                if edge.tail not in local:
                    local[edge.tail] = expected
                    queue.append(edge.tail)
                elif local[edge.tail] != expected:
                    conflict = BalanceConflict(edge, expected, local[edge.tail])
                    break
            if conflict is not None:
                break
        if conflict is not None:
            return BalanceResult(None, conflict, acyclic)
        floor = min(local.values())
        for name, level in local.items():
            levels[name] = level - floor

    if not acyclic:
        return BalanceResult(None, conflict, False)
    return BalanceResult(levels, None, True)


def is_balanced(graph: CircuitGraph) -> bool:
    """Balanced per the paper: acyclic, and for every ordered vertex pair all
    directed paths have equal sequential length.

    Note this is the paper's *pairwise* definition.  A consistent level
    potential (:func:`balance_levels`) is sufficient but slightly stronger:
    a circuit can be pairwise-balanced without admitting a potential when
    two vertices are connected to common sources through disjoint paths
    only.  We test the exact definition.
    """
    if not is_acyclic(graph):
        return False
    from repro.graph.structures import find_urfs_witnesses

    return not find_urfs_witnesses(graph)


def require_levels(graph: CircuitGraph) -> Dict[str, int]:
    """Levels of a balanced graph; raises :class:`BalanceError` otherwise."""
    result = balance_levels(graph)
    if not result.balanced or result.levels is None:
        raise BalanceError(f"graph {graph.name} is not balanced")
    return result.levels


def is_balanced_bistable(graph: CircuitGraph, bilbo_edges: List[Edge]) -> bool:
    """Definition 1 check for a kernel given its surrounding BILBO edges.

    ``graph`` is the kernel itself (BILBO edges removed); ``bilbo_edges`` are
    the cut register edges, used for condition 3: no cut edge may have both
    endpoints inside this kernel (the register would simultaneously be a TPG
    and an SA for the kernel).
    """
    if not is_balanced(graph):
        return False
    members = set(graph.vertices)
    for edge in bilbo_edges:
        if edge.tail in members and edge.head in members:
            return False
    return True


def path_length_between(graph: CircuitGraph, source: str, target: str) -> Optional[int]:
    """Sequential length from source to target in a balanced graph.

    Returns None when target is unreachable.  Raises :class:`BalanceError`
    if paths of different lengths exist (the graph is not balanced for this
    pair).
    """
    from repro.graph.structures import sequential_path_lengths

    lengths = sequential_path_lengths(graph).get((source, target))
    if lengths is None:
        return None
    lo, hi = lengths
    if lo != hi:
        raise BalanceError(
            f"paths {source} -> {target} have unequal sequential lengths "
            f"({lo} vs {hi})"
        )
    return lo

"""SCOAP combinational testability measures (Goldstein 1979).

The classic integer controllability/observability metrics, computed
level-by-level over a gate-level :class:`~repro.netlist.netlist.Netlist`:

``CC0(n)`` / ``CC1(n)``
    The *combinational controllability* of net ``n`` — a proxy for how
    many primary-input assignments must be fixed to force the net to 0
    (resp. 1).  Primary inputs cost 1; an AND output's CC1 is the sum of
    its input CC1s plus one (every input must be 1), while its CC0 is the
    cheapest single input at 0 plus one.  OR is the dual; XOR folds a
    parity DP over its inputs; inverting gates swap the output measures.

``CO(n)``
    The *combinational observability* — how much input fixing it takes to
    sensitize a path from the net to some primary output.  Primary
    outputs cost 0; propagating through a gate costs the controllability
    of holding every *other* input at its non-controlling value, plus one.
    A multi-fanout stem takes the cheapest branch.

Pin-level observabilities (``pin_co``) are kept alongside the net-level
map because branch faults — a stuck pin on one specific gate — are
observed only through *that* gate, which matters exactly on the
reconvergent stems fault collapsing leaves behind.

Values are floats so unachievable measures (a ``CONST0`` net can never be
1) are representable as ``inf`` instead of a magic sentinel; on ordinary
logic every measure is a whole number, matching the textbook tables.

This is the *structural* half of the static-testability story; the
probabilistic half (COP detection probabilities, predicted coverage) is
:mod:`repro.analysis.random_testability`, and ``docs/TESTABILITY.md``
walks through both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.netlist.gates import GateType
from repro.netlist.levelize import levelize
from repro.netlist.netlist import Netlist

#: Measure assigned to an unachievable value (e.g. ``CC1`` of a CONST0
#: net): no finite amount of input fixing produces it.
UNACHIEVABLE = math.inf


def _xor_fold(pairs: List[Tuple[float, float]]) -> Tuple[float, float]:
    """Parity DP: cheapest way to make the XOR of ``pairs`` 0 resp. 1.

    Each element is one input's ``(cc0, cc1)``; folding left to right
    keeps the cheapest cost of even and odd parity over the prefix.
    """
    even, odd = 0.0, UNACHIEVABLE
    for cc0, cc1 in pairs:
        even, odd = (
            min(even + cc0, odd + cc1),
            min(even + cc1, odd + cc0),
        )
    return even, odd


@dataclass
class ScoapMeasures:
    """The three SCOAP maps for one netlist, plus per-pin observability."""

    cc0: Dict[int, float] = field(default_factory=dict)
    cc1: Dict[int, float] = field(default_factory=dict)
    co: Dict[int, float] = field(default_factory=dict)
    #: ``(gate index, pin position) -> observability through that pin``.
    pin_co: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def testability(self, net: int) -> float:
        """A single hardness score for a net: ``min(CC0, CC1) + CO``.

        Used to rank nets; ``inf`` when the net is uncontrollable or
        unobservable.
        """
        return min(self.cc0[net], self.cc1[net]) + self.co[net]

    def hardest_nets(self, count: int = 10) -> List[Tuple[int, float]]:
        """The ``count`` nets with the worst (highest) testability score."""
        scored = sorted(
            ((net, self.testability(net)) for net in self.co),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return scored[:count]


def _output_controllability(
    gate_type: GateType, inputs: List[Tuple[float, float]]
) -> Tuple[float, float]:
    """``(cc0, cc1)`` of a gate output from its input controllabilities."""
    base = gate_type.base
    if gate_type is GateType.CONST0:
        value = (0.0, UNACHIEVABLE)
    elif gate_type is GateType.CONST1:
        value = (UNACHIEVABLE, 0.0)
    elif base is GateType.AND:
        value = (
            min(cc0 for cc0, _ in inputs) + 1.0,
            sum(cc1 for _, cc1 in inputs) + 1.0,
        )
    elif base is GateType.OR:
        value = (
            sum(cc0 for cc0, _ in inputs) + 1.0,
            min(cc1 for _, cc1 in inputs) + 1.0,
        )
    elif base is GateType.XOR:
        even, odd = _xor_fold(inputs)
        value = (even + 1.0, odd + 1.0)
    else:  # BUF / NOT
        value = (inputs[0][0] + 1.0, inputs[0][1] + 1.0)
    if gate_type.is_inverting:
        value = (value[1], value[0])
    return value


def scoap(netlist: Netlist) -> ScoapMeasures:
    """Compute SCOAP CC0/CC1/CO for every net of a combinational netlist.

    One forward pass over the levelized gate order for controllability,
    one reverse pass for observability.  Nets that reach no primary
    output keep ``CO = inf`` (dead logic is unobservable by definition —
    the same nets lint's ``NL004`` flags).
    """
    measures = ScoapMeasures()
    cc0, cc1 = measures.cc0, measures.cc1
    for net in netlist.primary_inputs:
        cc0[net] = 1.0
        cc1[net] = 1.0

    order = levelize(netlist)
    for gate_index in order:
        gate = netlist.gates[gate_index]
        pairs = [(cc0[n], cc1[n]) for n in gate.inputs]
        cc0[gate.output], cc1[gate.output] = _output_controllability(
            gate.gtype, pairs
        )

    co = measures.co
    pin_co = measures.pin_co
    fanout = netlist.fanout_map()
    po = set(netlist.primary_outputs)

    def stem_co(net: int) -> float:
        value = 0.0 if net in po else UNACHIEVABLE
        for gate_index in fanout.get(net, ()):
            gate = netlist.gates[gate_index]
            for pin, pin_net in enumerate(gate.inputs):
                if pin_net == net:
                    value = min(value, pin_co.get((gate_index, pin),
                                                  UNACHIEVABLE))
        return value

    for gate_index in reversed(order):
        gate = netlist.gates[gate_index]
        out_co = co.get(gate.output)
        if out_co is None:
            out_co = stem_co(gate.output)
            co[gate.output] = out_co
        base = gate.gtype.base
        for pin, net in enumerate(gate.inputs):
            if base is GateType.AND:
                hold = sum(cc1[other] for k, other in enumerate(gate.inputs)
                           if k != pin)
            elif base is GateType.OR:
                hold = sum(cc0[other] for k, other in enumerate(gate.inputs)
                           if k != pin)
            elif base is GateType.XOR:
                hold = sum(
                    min(cc0[other], cc1[other])
                    for k, other in enumerate(gate.inputs) if k != pin
                )
            else:  # BUF / NOT / CONST (no inputs)
                hold = 0.0
            pin_co[(gate_index, pin)] = out_co + hold + 1.0

    # Finalize stems never pulled by the reverse walk (PIs, fanout stems
    # whose drivers were handled before their readers, dead nets).
    for net in range(netlist.n_nets):
        if net not in co:
            co[net] = stem_co(net)
    return measures

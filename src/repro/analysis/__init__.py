"""Structural analysis: balance, cones, k-step functional testability,
SCOAP measures and COP random-pattern testability profiles."""

from repro.analysis.balance import (
    BalanceConflict,
    BalanceResult,
    balance_levels,
    is_balanced,
    is_balanced_bistable,
    path_length_between,
    require_levels,
)
from repro.analysis.cones import cone_dependencies, kernel_spec_from_graph
from repro.analysis.random_testability import (
    DEFAULT_COVERAGE_TARGET,
    DEFAULT_WINDOW,
    FaultTestability,
    TestabilityProfile,
    analyze_netlist,
    pin_observabilities,
)
from repro.analysis.scoap import UNACHIEVABLE, ScoapMeasures, scoap
from repro.analysis.testability import (
    TestabilityReport,
    classify,
    is_one_step_functionally_testable,
    k_step,
)

__all__ = [
    "BalanceConflict",
    "BalanceResult",
    "balance_levels",
    "is_balanced",
    "is_balanced_bistable",
    "require_levels",
    "path_length_between",
    "kernel_spec_from_graph",
    "cone_dependencies",
    "TestabilityReport",
    "classify",
    "k_step",
    "is_one_step_functionally_testable",
    "DEFAULT_COVERAGE_TARGET",
    "DEFAULT_WINDOW",
    "FaultTestability",
    "TestabilityProfile",
    "analyze_netlist",
    "pin_observabilities",
    "UNACHIEVABLE",
    "ScoapMeasures",
    "scoap",
]

"""Wire protocol for the BIST service: request schema, typed API errors.

The submission document is deliberately *semantic*: every field either
names the circuit under test (``design`` / ``bench``) or maps onto a
:class:`repro.exec.RunConfig` field the engine already understands.
Execution-strategy knobs that cannot move a result (``jobs``,
``executor``, ``kernel``) are accepted but excluded from the result-cache
key by construction — the key is the checkpoint run key
(:func:`repro.engine.checkpoint.resolve_run_key`), which only hashes
canonical fields.

Errors travel as structured JSON, never tracebacks.  A netlist that fails
the :mod:`repro.lint` pre-flight maps to HTTP 422 carrying the full
:class:`~repro.lint.Finding` list via :meth:`repro.errors.LintError.
payload` — the same document ``repro-bist selftest --json`` prints for
the same netlist.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.errors import SimulationError
from repro.exec.config import (
    DEFAULT_BATCH_WIDTH,
    DEFAULT_CHUNK_BATCHES,
    KERNEL_CHOICES,
    CheckpointPolicy,
    ExecutionPolicy,
    RunConfig,
)

#: Default pattern budget for service jobs: big enough to be a real
#: measurement, small enough that one request cannot monopolize a worker.
DEFAULT_JOB_PATTERNS = 1 << 12

#: Hard ceiling a single request may ask for (guards the shared service).
MAX_JOB_PATTERNS = 1 << 20

#: Largest accepted ``bench`` upload, in characters (~4 MB of netlist).
MAX_BENCH_CHARS = 4 << 20

#: Tenant bucket used when a submission names none.
DEFAULT_TENANT = "default"


class ApiError(Exception):
    """An HTTP-mappable request failure with a structured JSON body."""

    def __init__(self, status: int, error: str, message: str,
                 extra: Optional[Mapping[str, Any]] = None):
        super().__init__(message)
        self.status = status
        self.error = error
        self.extra = dict(extra or {})

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "error": self.error,
            "message": str(self),
        }
        body.update(self.extra)
        return body


def bad_request(message: str) -> ApiError:
    return ApiError(400, "bad-request", message)


#: Submission fields and their validators: name -> (type check, default).
_BOOL_FIELDS = ("stop_when_complete", "drop_detected", "include_faults")
_KNOWN_FIELDS = {
    "design", "bench", "tenant", "seed", "max_patterns", "deadline",
    "jobs", "executor", "kernel", "batch_width", "chunk_batches",
    "stop_when_complete", "drop_detected", "include_faults",
}


def _require_int(doc: Mapping[str, Any], key: str,
                 default: Optional[int], minimum: int,
                 maximum: Optional[int] = None) -> Optional[int]:
    value = doc.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise bad_request(f"{key} must be an integer")
    if value < minimum:
        raise bad_request(f"{key} must be >= {minimum}")
    if maximum is not None and value > maximum:
        raise bad_request(f"{key} must be <= {maximum}")
    return value


@dataclass(frozen=True)
class JobRequest:
    """A validated submission: what to simulate, and how."""

    design: Optional[str]
    bench: Optional[str]
    tenant: str
    seed: int
    max_patterns: int
    deadline: Optional[float]
    jobs: Optional[int]
    executor: Optional[str]
    kernel: Optional[str]
    batch_width: int
    chunk_batches: int
    stop_when_complete: bool
    drop_detected: bool
    include_faults: bool

    @classmethod
    def from_json(cls, doc: Any) -> "JobRequest":
        """Validate one submission document (raises :class:`ApiError`)."""
        if not isinstance(doc, dict):
            raise bad_request("submission body must be a JSON object")
        unknown = sorted(set(doc) - _KNOWN_FIELDS)
        if unknown:
            raise bad_request(
                f"unknown field(s): {', '.join(unknown)} "
                f"(accepted: {', '.join(sorted(_KNOWN_FIELDS))})"
            )
        design = doc.get("design")
        bench = doc.get("bench")
        if (design is None) == (bench is None):
            raise bad_request(
                "exactly one of 'design' (a library design name) or "
                "'bench' (.bench netlist text) is required"
            )
        if design is not None and not isinstance(design, str):
            raise bad_request("design must be a string")
        if bench is not None:
            if not isinstance(bench, str):
                raise bad_request("bench must be a string of .bench text")
            if len(bench) > MAX_BENCH_CHARS:
                raise ApiError(413, "too-large",
                               f"bench text exceeds {MAX_BENCH_CHARS} chars")
        tenant = doc.get("tenant", DEFAULT_TENANT)
        if not isinstance(tenant, str) or not tenant:
            raise bad_request("tenant must be a non-empty string")
        deadline = doc.get("deadline")
        if deadline is not None:
            if isinstance(deadline, bool) or \
                    not isinstance(deadline, (int, float)):
                raise bad_request("deadline must be a number of seconds")
            if deadline < 0:
                raise bad_request("deadline must be >= 0")
            deadline = float(deadline)
        executor = doc.get("executor")
        if executor is not None:
            from repro.exec.base import available_executors

            if executor not in available_executors():
                raise bad_request(
                    f"unknown executor {executor!r} "
                    f"(available: {', '.join(available_executors())})"
                )
        kernel = doc.get("kernel")
        if kernel is not None and kernel not in KERNEL_CHOICES:
            raise bad_request(
                f"unknown kernel {kernel!r} "
                f"(choose from: {', '.join(KERNEL_CHOICES)})"
            )
        for key in _BOOL_FIELDS:
            if key in doc and not isinstance(doc[key], bool):
                raise bad_request(f"{key} must be a boolean")
        seed = _require_int(doc, "seed", 1994, minimum=0)
        assert seed is not None
        return cls(
            design=design,
            bench=bench,
            tenant=tenant,
            seed=seed,
            max_patterns=_require_int(
                doc, "max_patterns", DEFAULT_JOB_PATTERNS,
                minimum=1, maximum=MAX_JOB_PATTERNS) or DEFAULT_JOB_PATTERNS,
            deadline=deadline,
            jobs=_require_int(doc, "jobs", None, minimum=1, maximum=64),
            executor=executor,
            kernel=kernel,
            batch_width=_require_int(
                doc, "batch_width", DEFAULT_BATCH_WIDTH,
                minimum=1, maximum=4096) or DEFAULT_BATCH_WIDTH,
            chunk_batches=_require_int(
                doc, "chunk_batches", DEFAULT_CHUNK_BATCHES,
                minimum=1, maximum=256) or DEFAULT_CHUNK_BATCHES,
            stop_when_complete=bool(doc.get("stop_when_complete", True)),
            drop_detected=bool(doc.get("drop_detected", True)),
            include_faults=bool(doc.get("include_faults", False)),
        )

    # ----------------------------------------------------------- derivations

    @property
    def target(self) -> str:
        """Human-readable name of what this job simulates."""
        if self.design is not None:
            return self.design
        digest = hashlib.sha256(str(self.bench).encode()).hexdigest()
        return f"bench-{digest[:12]}"

    def run_config(self, journal_root, budget: Any,
                   cancel: Any) -> RunConfig:
        """The engine :class:`RunConfig` this submission maps onto.

        ``resume=True`` against the service's shared journal root is what
        makes a drained job resumable: the interrupted run's journal is
        keyed by the same run key a resubmission computes, so the restart
        replays completed rounds instead of re-executing them.
        """
        try:
            execution = ExecutionPolicy(
                executor=self.executor,
                jobs=self.jobs,
                batch_width=self.batch_width,
                chunk_batches=self.chunk_batches,
                kernel=self.kernel,
            )
        except SimulationError as error:  # pragma: no cover - pre-validated
            raise bad_request(str(error)) from error
        return RunConfig(
            execution=execution,
            checkpoint=CheckpointPolicy(directory=journal_root, resume=True),
            budget=budget,
            cancel=cancel,
            max_patterns=self.max_patterns,
            stop_when_complete=self.stop_when_complete,
            drop_detected=self.drop_detected,
            # The service pre-flights explicitly at submission (so lint
            # failures are a 422 before the job ever queues); re-linting
            # inside the engine would only duplicate the work.
            check=False,
        )

    def to_json(self) -> Dict[str, Any]:
        """The submission as recorded on the job (bench text elided)."""
        return {
            "design": self.design,
            "bench_chars": len(self.bench) if self.bench is not None else None,
            "tenant": self.tenant,
            "seed": self.seed,
            "max_patterns": self.max_patterns,
            "deadline": self.deadline,
            "jobs": self.jobs,
            "executor": self.executor,
            "kernel": self.kernel,
            "batch_width": self.batch_width,
            "chunk_batches": self.chunk_batches,
            "stop_when_complete": self.stop_when_complete,
            "drop_detected": self.drop_detected,
        }
